// The PARINDA interactive designer as a command-line tool — the CLI analogue
// of the demo's GUI (Figures 2 & 3), backed by a DesignSession so each
// add/drop delta re-plans only the queries it touches. Reads commands from
// stdin:
//
//   workload add <SQL>           add a query to the workload
//   workload load <path>         load a semicolon-separated workload file
//   workload clear               drop all queries
//   add index <table> <col>[,<col>...]      add a what-if index
//   add partition <table> <col>[,<col>...]  add a what-if vertical partition
//   add range <table> <col> <k>             range-partition into k pieces
//   add join [nonestloop] [nomergejoin] [nohashjoin]   disable join methods
//   drop <id>                    remove one design feature by id
//   list                         show the current design features
//   clear                        drop the whole design
//   evaluate                     report per-query + average benefit
//   explain <SQL>                show the optimizer plan under the design
//   verify <table> <col>[,...]   what-if vs materialized accuracy check
//   suggest indexes [budget_mb]  run the ILP index advisor
//   suggest partitions           run AutoPart
//   compress                     show the workload's fold classes (duplicate
//                                queries the advisors evaluate only once)
//   budget <ms>|off              time-budget evaluate/suggest (anytime mode)
//   save-cache <path>            spill the evaluation cost cache to a file
//   load-cache <path>            warm the cost cache from a spill file
//   stats                        dump session metrics (counters/latencies)
//   stats dump <path>            write a catalog statistics dump
//   trace <path>                 write the session trace (Chrome JSON)
//   tables                       list catalog tables
//   quit
//
// Example: printf 'tables\nquit\n' | ./interactive_designer
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/stats_io.h"

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "rewriter/rewriter.h"
#include "whatif/whatif_index.h"
#include "workload/compress.h"
#include "workload/sdss.h"

using namespace parinda;  // NOLINT: example brevity

namespace {

Result<std::vector<ColumnId>> ParseColumns(const TableInfo& table,
                                           const std::string& list) {
  std::vector<ColumnId> out;
  for (const std::string& name : Split(list, ',')) {
    const ColumnId col = table.schema.FindColumn(name);
    if (col == kInvalidColumnId) {
      return Status::NotFound("no column '" + name + "' in " + table.name);
    }
    out.push_back(col);
  }
  return out;
}

}  // namespace

int main() {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 10000;
  auto dataset = BuildSdssDatabase(&db, config);
  if (!dataset.ok()) return 1;
  Parinda tool(&db);
  // Record spans for the whole session so `trace <path>` always has data;
  // an interactive session never runs hot enough for this to matter.
  trace::Start();

  std::vector<std::string> workload_sql;
  std::unique_ptr<Workload> workload_obj;
  DesignSession session(db.catalog(), nullptr);
  int partition_counter = 0;
  int index_counter = 0;
  // Time budget for evaluate/suggest, in milliseconds; < 0 = unlimited.
  // Deadlines are absolute instants, so each command arms a fresh one.
  double budget_ms = -1.0;
  auto arm_budget = [&]() {
    return budget_ms < 0 ? Deadline::Infinite()
                         : Deadline::AfterMillis(static_cast<int64_t>(budget_ms));
  };
  auto print_degradation = [](const DegradationReport& degradation) {
    if (!degradation.degraded) return;
    std::string rungs;
    for (const std::string& f : degradation.fallbacks) {
      if (!rungs.empty()) rungs += ", ";
      rungs += f;
    }
    std::printf("  (budget expired — best-effort result; fallbacks: %s)\n",
                rungs.c_str());
  };

  // Rebinds the workload and points the session at it (costs cached so far
  // are dropped — the query set changed).
  auto refresh_workload = [&]() -> bool {
    if (workload_sql.empty()) {
      workload_obj.reset();
      session.SetWorkload(nullptr);
      return true;
    }
    auto workload = MakeWorkload(db.catalog(), workload_sql);
    if (!workload.ok()) {
      std::printf("error: %s\n", workload.status().ToString().c_str());
      return false;
    }
    workload_obj = std::make_unique<Workload>(std::move(*workload));
    session.SetWorkload(workload_obj.get());
    return true;
  };

  std::printf("PARINDA interactive designer. SDSS sample loaded. "
              "Type commands; 'quit' exits.\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "tables") {
      for (const TableInfo* table : db.catalog().AllTables()) {
        std::printf("  %-16s %10.0f rows %8.0f pages %3d columns\n",
                    table->name.c_str(), table->row_count, table->pages,
                    table->schema.num_columns());
      }
      continue;
    }
    if (cmd == "workload") {
      std::string sub;
      in >> sub;
      if (sub == "clear") {
        workload_sql.clear();
        (void)refresh_workload();
        std::printf("workload cleared\n");
      } else if (sub == "load") {
        std::string path;
        in >> path;
        std::ifstream file(path);
        if (!file) {
          std::printf("error: cannot open '%s'\n", path.c_str());
          continue;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        auto loaded = LoadWorkloadText(db.catalog(), buffer.str());
        if (!loaded.ok()) {
          std::printf("error: %s\n", loaded.status().ToString().c_str());
          continue;
        }
        for (const WorkloadQuery& query : loaded->queries) {
          workload_sql.push_back(query.sql);
        }
        if (!refresh_workload()) continue;
        std::printf("loaded %d queries (%zu total)\n", loaded->size(),
                    workload_sql.size());
      } else if (sub == "add") {
        std::string sql;
        std::getline(in, sql);
        auto parsed = ParseSelect(sql);
        if (!parsed.ok()) {
          std::printf("error: %s\n", parsed.status().ToString().c_str());
          continue;
        }
        if (auto bound = BindStatement(db.catalog(), &*parsed); !bound.ok()) {
          std::printf("error: %s\n", bound.ToString().c_str());
          continue;
        }
        workload_sql.push_back(std::string(StripWhitespace(sql)));
        if (!refresh_workload()) {
          workload_sql.pop_back();
          continue;
        }
        std::printf("Q%zu added\n", workload_sql.size());
      }
      continue;
    }
    if (cmd == "add") {
      std::string sub;
      in >> sub;
      if (sub == "join") {
        WhatIfJoinDef def;
        std::string flag;
        bool bad_flag = false;
        while (in >> flag) {
          if (flag == "nonestloop") {
            def.enable_nestloop = false;
          } else if (flag == "nomergejoin") {
            def.enable_mergejoin = false;
          } else if (flag == "nohashjoin") {
            def.enable_hashjoin = false;
          } else {
            std::printf("error: unknown join flag '%s'\n", flag.c_str());
            bad_flag = true;
            break;
          }
        }
        if (bad_flag) continue;
        auto id = session.AddJoinFlags(def);
        if (!id.ok()) {
          std::printf("error: %s\n", id.status().ToString().c_str());
          continue;
        }
        std::printf("[%lld] join flags: nestloop=%d mergejoin=%d hashjoin=%d\n",
                    static_cast<long long>(*id), def.enable_nestloop,
                    def.enable_mergejoin, def.enable_hashjoin);
        continue;
      }
      std::string table_name;
      std::string columns;
      in >> table_name >> columns;
      const TableInfo* table = db.catalog().FindTable(table_name);
      if (table == nullptr) {
        std::printf("error: unknown table '%s'\n", table_name.c_str());
        continue;
      }
      if (sub == "range") {
        const ColumnId col = table->schema.FindColumn(columns);
        int k = 4;
        in >> k;
        if (col == kInvalidColumnId) {
          std::printf("error: no column '%s'\n", columns.c_str());
          continue;
        }
        auto bounds = SuggestEqualMassBounds(db.catalog(), table->id, col, k);
        if (!bounds.ok()) {
          std::printf("error: %s\n", bounds.status().ToString().c_str());
          continue;
        }
        RangePartitionDef def;
        def.parent = table->id;
        def.column = col;
        def.bounds = *bounds;
        auto id = session.AddRangePartitioning(def);
        if (!id.ok()) {
          std::printf("error: %s\n", id.status().ToString().c_str());
          continue;
        }
        std::printf("[%lld] range partitioning of %s on %s into %zu ranges\n",
                    static_cast<long long>(*id), table_name.c_str(),
                    columns.c_str(), bounds->size() + 1);
        continue;
      }
      auto cols = ParseColumns(*table, columns);
      if (!cols.ok()) {
        std::printf("error: %s\n", cols.status().ToString().c_str());
        continue;
      }
      if (sub == "index") {
        WhatIfIndexDef def;
        def.table = table->id;
        def.columns = *cols;
        def.name = "wif_idx_" + std::to_string(index_counter++);
        auto pages = WhatIfIndexSet::EstimatePages(db.catalog(), def);
        auto id = session.AddIndex(def);
        if (!id.ok()) {
          std::printf("error: %s\n", id.status().ToString().c_str());
          continue;
        }
        std::printf("[%lld] index on %s(%s): %.0f leaf pages (Equation 1)\n",
                    static_cast<long long>(*id), table_name.c_str(),
                    columns.c_str(), pages.value_or(0.0));
      } else if (sub == "partition") {
        WhatIfPartitionDef def;
        def.parent = table->id;
        def.columns = *cols;
        def.name = table->name + "_wifp" + std::to_string(partition_counter++);
        auto id = session.AddPartition(def);
        if (!id.ok()) {
          std::printf("error: %s\n", id.status().ToString().c_str());
          continue;
        }
        std::printf("[%lld] partition %s { %s } (+ primary key)\n",
                    static_cast<long long>(*id), def.name.c_str(),
                    columns.c_str());
      } else {
        std::printf("usage: add index|partition|range|join ...\n");
      }
      continue;
    }
    if (cmd == "drop") {
      long long id = 0;
      if (!(in >> id)) {
        std::printf("usage: drop <id>\n");
        continue;
      }
      Status dropped = session.Drop(id);
      if (!dropped.ok()) {
        std::printf("error: %s\n", dropped.ToString().c_str());
        continue;
      }
      std::printf("dropped [%lld]; %d queries to re-plan\n", id,
                  session.pending_queries());
      continue;
    }
    if (cmd == "list") {
      const auto components = session.Components();
      if (components.empty()) {
        std::printf("  (empty design)\n");
        continue;
      }
      for (const DesignSession::ComponentEntry& e : components) {
        std::printf("  [%lld] %-6s %s\n", static_cast<long long>(e.id),
                    OverlayKindName(e.kind), e.description.c_str());
      }
      continue;
    }
    if (cmd == "clear") {
      session.ClearDesign();
      std::printf("design cleared\n");
      continue;
    }
    if (cmd == "save-cache" || cmd == "load-cache") {
      std::string path;
      in >> path;
      if (path.empty()) {
        std::printf("usage: %s <path>\n", cmd.c_str());
        continue;
      }
      if (workload_obj == nullptr) {
        std::printf("error: empty workload (the cache is keyed by query)\n");
        continue;
      }
      session.set_deadline(arm_budget());
      if (cmd == "save-cache") {
        if (Status saved = session.SaveCache(path); !saved.ok()) {
          std::printf("error: %s\n", saved.ToString().c_str());
          continue;
        }
        std::printf("cache saved to %s\n", path.c_str());
      } else {
        auto report = session.LoadCache(path);
        if (!report.ok()) {
          // A bad spill file is a cold cache, not a broken session.
          std::printf("cache not loaded (%s); continuing cold\n",
                      report.status().ToString().c_str());
          continue;
        }
        std::printf("cache loaded from %s: %lld records, %lld rejected\n",
                    path.c_str(),
                    static_cast<long long>(report->records_loaded),
                    static_cast<long long>(report->records_rejected));
        if (!report->diagnosis.empty()) {
          std::printf("  (%s)\n", report->diagnosis.c_str());
        }
      }
      continue;
    }
    if (cmd == "budget") {
      std::string value;
      in >> value;
      if (value == "off") {
        budget_ms = -1.0;
        std::printf("budget off (evaluate/suggest run to completion)\n");
      } else {
        std::istringstream parse(value);
        double ms = 0.0;
        if (!(parse >> ms) || ms < 0) {
          std::printf("usage: budget <ms>|off\n");
          continue;
        }
        budget_ms = ms;
        std::printf("budget %.0f ms (degraded results are flagged; re-run "
                    "to refine)\n", budget_ms);
      }
      continue;
    }
    if (cmd == "evaluate") {
      if (workload_obj == nullptr) {
        std::printf("error: empty workload\n");
        continue;
      }
      const int pending = session.pending_queries();
      session.set_deadline(arm_budget());
      auto report = session.Evaluate();
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      for (size_t q = 0; q < report->per_query_base.size(); ++q) {
        std::printf("  Q%zu: %.1f -> %.1f (%.1f%%)\n", q + 1,
                    report->per_query_base[q], report->per_query_optimized[q],
                    report->per_query_benefit_pct[q]);
      }
      std::printf("  average benefit: %.1f%%\n", report->average_benefit_pct);
      std::printf("  re-planned %d of %zu queries (%lld planner calls)\n",
                  pending, report->per_query_base.size(),
                  static_cast<long long>(session.last_eval_planner_calls()));
      print_degradation(report->degradation);
      continue;
    }
    if (cmd == "explain") {
      std::string sql;
      std::getline(in, sql);
      const ComposedOverlay& overlay = session.overlay();
      auto parsed = ParseSelect(sql);
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      if (auto bound = BindStatement(overlay.catalog(), &*parsed);
          !bound.ok()) {
        std::printf("error: %s\n", bound.ToString().c_str());
        continue;
      }
      auto rewritten =
          RewriteForPartitions(overlay.catalog(), *parsed, overlay.fragments());
      if (!rewritten.ok()) {
        std::printf("error: %s\n", rewritten.status().ToString().c_str());
        continue;
      }
      PlannerOptions options;
      options.params = overlay.params();
      options.hooks = &overlay.hooks();
      auto plan = PlanQuery(overlay.catalog(), rewritten->stmt, options);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", plan->ToString(overlay.catalog()).c_str());
      continue;
    }
    if (cmd == "verify") {
      std::string table_name;
      std::string columns;
      in >> table_name >> columns;
      const TableInfo* table = db.catalog().FindTable(table_name);
      if (table == nullptr || workload_sql.empty()) {
        std::printf("error: need a table and at least one workload query\n");
        continue;
      }
      auto cols = ParseColumns(*table, columns);
      if (!cols.ok()) {
        std::printf("error: %s\n", cols.status().ToString().c_str());
        continue;
      }
      auto report = tool.VerifyIndexSimulation(
          workload_sql.front(), {"verify", table->id, *cols, false});
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("  size: %.0f what-if vs %.0f real pages (%.1f%% error)\n",
                  report->whatif_pages, report->materialized_pages,
                  100.0 * report->size_error_fraction);
      std::printf("  cost: %.1f what-if vs %.1f real (%.1f%% error)\n",
                  report->whatif_cost, report->materialized_cost,
                  100.0 * report->cost_error_fraction);
      continue;
    }
    if (cmd == "stats") {
      std::string sub;
      std::string path;
      in >> sub >> path;
      if (sub.empty()) {
        // Bare `stats`: dump the process-wide metrics registry (counters,
        // gauges, latency histograms) accumulated this session.
        std::fputs(metrics::Registry::Global().Snapshot().ToText().c_str(),
                   stdout);
      } else if (sub == "dump") {
        std::ofstream file(path);
        if (!file) {
          std::printf("error: cannot open '%s'\n", path.c_str());
          continue;
        }
        file << DumpCatalogStats(db.catalog());
        std::printf("statistics written to %s\n", path.c_str());
      } else {
        std::printf("usage: stats [dump <path>]\n");
      }
      continue;
    }
    if (cmd == "trace") {
      std::string path;
      in >> path;
      if (path.empty()) {
        std::printf("usage: trace <path>\n");
        continue;
      }
      const Status written = trace::WriteChromeJson(path);
      if (!written.ok()) {
        std::printf("error: %s\n", written.ToString().c_str());
        continue;
      }
      std::printf("trace written to %s (%zu events; open in "
                  "chrome://tracing or ui.perfetto.dev)\n",
                  path.c_str(), trace::Snapshot().size());
      continue;
    }
    if (cmd == "compress") {
      if (workload_obj == nullptr) {
        std::printf("error: empty workload\n");
        continue;
      }
      const CompressedWorkload compressed =
          CompressWorkload(db.catalog(), *workload_obj);
      std::printf("  %d queries -> %d fold classes (%.2fx); advisors "
                  "evaluate one representative per class\n",
                  compressed.original_size, compressed.workload.size(),
                  compressed.ratio());
      for (int c = 0; c < compressed.workload.size(); ++c) {
        const WorkloadQuery& rep = compressed.workload.queries[c];
        std::string sql = rep.sql;
        if (sql.size() > 56) sql = sql.substr(0, 53) + "...";
        std::printf("  [%d] x%zu w=%.1f  %s\n", c,
                    compressed.expansion.members[c].size(), rep.weight,
                    sql.c_str());
      }
      continue;
    }
    if (cmd == "suggest") {
      std::string sub;
      in >> sub;
      if (workload_obj == nullptr) {
        std::printf("error: empty workload\n");
        continue;
      }
      if (sub == "indexes") {
        double budget_mb = 1e9;
        in >> budget_mb;
        IndexAdvisorOptions options;
        options.storage_budget_bytes = budget_mb * 1024 * 1024;
        options.deadline = arm_budget();
        auto advice = tool.SuggestIndexes(*workload_obj, options);
        if (!advice.ok()) {
          std::printf("error: %s\n", advice.status().ToString().c_str());
          continue;
        }
        for (const SuggestedIndex& s : advice->indexes) {
          const TableInfo* t = db.catalog().GetTable(s.def.table);
          std::string cols;
          for (size_t i = 0; i < s.def.columns.size(); ++i) {
            if (i > 0) cols += ",";
            cols += t->schema.column(s.def.columns[i]).name;
          }
          std::printf("  CREATE INDEX ON %s(%s)  -- %.2f MB\n",
                      t->name.c_str(), cols.c_str(),
                      s.size_bytes / 1024.0 / 1024.0);
        }
        std::printf("  estimated speedup: %.2fx\n", advice->Speedup());
        print_degradation(advice->degradation);
      } else if (sub == "partitions") {
        AutoPartOptions part_options;
        part_options.deadline = arm_budget();
        auto advice = tool.SuggestPartitions(*workload_obj, part_options);
        if (!advice.ok()) {
          std::printf("error: %s\n", advice.status().ToString().c_str());
          continue;
        }
        for (const FragmentDef& frag : advice->fragments) {
          const TableInfo* t = db.catalog().GetTable(frag.table);
          std::string cols;
          for (size_t i = 0; i < frag.columns.size(); ++i) {
            if (i > 0) cols += ",";
            cols += t->schema.column(frag.columns[i]).name;
          }
          std::printf("  PARTITION %s { %s }\n", t->name.c_str(), cols.c_str());
        }
        std::printf("  estimated speedup: %.2fx\n", advice->Speedup());
        print_degradation(advice->degradation);
      }
      continue;
    }
    std::printf("unknown command '%s'\n", cmd.c_str());
  }
  return 0;
}
