// The PARINDA interactive designer as a command-line tool — the CLI analogue
// of the demo's GUI (Figures 2 & 3). Reads commands from stdin:
//
//   workload add <SQL>           add a query to the workload
//   workload load <path>         load a semicolon-separated workload file
//   workload clear               drop all queries
//   whatif index <table> <col>[,<col>...]      add a what-if index
//   whatif partition <table> <col>[,<col>...]  add a what-if partition
//   whatif range <table> <col> <k>             what-if range-partition into k
//   whatif clear                 drop the design
//   evaluate                     report per-query + average benefit
//   explain <SQL>                show the optimizer plan (with what-ifs)
//   verify <table> <col>[,...]   what-if vs materialized accuracy check
//   suggest indexes [budget_mb]  run the ILP index advisor
//   suggest partitions           run AutoPart
//   stats dump <path>            write a catalog statistics dump
//   tables                       list catalog tables
//   quit
//
// Example: printf 'tables\nquit\n' | ./interactive_designer
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/stats_io.h"

#include "common/strings.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "whatif/whatif_index.h"
#include "whatif/whatif_table.h"
#include "workload/sdss.h"

using namespace parinda;  // NOLINT: example brevity

namespace {

Result<std::vector<ColumnId>> ParseColumns(const TableInfo& table,
                                           const std::string& list) {
  std::vector<ColumnId> out;
  for (const std::string& name : Split(list, ',')) {
    const ColumnId col = table.schema.FindColumn(name);
    if (col == kInvalidColumnId) {
      return Status::NotFound("no column '" + name + "' in " + table.name);
    }
    out.push_back(col);
  }
  return out;
}

}  // namespace

int main() {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 10000;
  auto dataset = BuildSdssDatabase(&db, config);
  if (!dataset.ok()) return 1;
  Parinda tool(&db);

  std::vector<std::string> workload_sql;
  InteractiveDesign design;
  int partition_counter = 0;

  std::printf("PARINDA interactive designer. SDSS sample loaded. "
              "Type commands; 'quit' exits.\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "tables") {
      for (const TableInfo* table : db.catalog().AllTables()) {
        std::printf("  %-16s %10.0f rows %8.0f pages %3d columns\n",
                    table->name.c_str(), table->row_count, table->pages,
                    table->schema.num_columns());
      }
      continue;
    }
    if (cmd == "workload") {
      std::string sub;
      in >> sub;
      if (sub == "clear") {
        workload_sql.clear();
        std::printf("workload cleared\n");
      } else if (sub == "load") {
        std::string path;
        in >> path;
        std::ifstream file(path);
        if (!file) {
          std::printf("error: cannot open '%s'\n", path.c_str());
          continue;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        auto loaded = LoadWorkloadText(db.catalog(), buffer.str());
        if (!loaded.ok()) {
          std::printf("error: %s\n", loaded.status().ToString().c_str());
          continue;
        }
        for (const WorkloadQuery& query : loaded->queries) {
          workload_sql.push_back(query.sql);
        }
        std::printf("loaded %d queries (%zu total)\n", loaded->size(),
                    workload_sql.size());
      } else if (sub == "add") {
        std::string sql;
        std::getline(in, sql);
        auto parsed = ParseSelect(sql);
        if (!parsed.ok()) {
          std::printf("error: %s\n", parsed.status().ToString().c_str());
          continue;
        }
        if (auto bound = BindStatement(db.catalog(), &*parsed); !bound.ok()) {
          std::printf("error: %s\n", bound.ToString().c_str());
          continue;
        }
        workload_sql.push_back(std::string(StripWhitespace(sql)));
        std::printf("Q%zu added\n", workload_sql.size());
      }
      continue;
    }
    if (cmd == "whatif") {
      std::string sub;
      in >> sub;
      if (sub == "clear") {
        design = InteractiveDesign{};
        std::printf("design cleared\n");
        continue;
      }
      std::string table_name;
      std::string columns;
      in >> table_name >> columns;
      const TableInfo* table = db.catalog().FindTable(table_name);
      if (table == nullptr) {
        std::printf("error: unknown table '%s'\n", table_name.c_str());
        continue;
      }
      if (sub == "range") {
        const ColumnId col = table->schema.FindColumn(columns);
        int k = 4;
        in >> k;
        if (col == kInvalidColumnId) {
          std::printf("error: no column '%s'\n", columns.c_str());
          continue;
        }
        auto bounds = SuggestEqualMassBounds(db.catalog(), table->id, col, k);
        if (!bounds.ok()) {
          std::printf("error: %s\n", bounds.status().ToString().c_str());
          continue;
        }
        RangePartitionDef def;
        def.parent = table->id;
        def.column = col;
        def.bounds = *bounds;
        design.range_partitions.push_back(def);
        std::printf("what-if range partitioning of %s on %s into %zu ranges\n",
                    table_name.c_str(), columns.c_str(), bounds->size() + 1);
        continue;
      }
      auto cols = ParseColumns(*table, columns);
      if (!cols.ok()) {
        std::printf("error: %s\n", cols.status().ToString().c_str());
        continue;
      }
      if (sub == "index") {
        WhatIfIndexDef def;
        def.table = table->id;
        def.columns = *cols;
        def.name = "wif_idx_" + std::to_string(design.indexes.size());
        auto pages = WhatIfIndexSet::EstimatePages(db.catalog(), def);
        design.indexes.push_back(def);
        std::printf("what-if index on %s(%s): %.0f leaf pages (Equation 1)\n",
                    table_name.c_str(), columns.c_str(), pages.value_or(0.0));
      } else if (sub == "partition") {
        WhatIfPartitionDef def;
        def.parent = table->id;
        def.columns = *cols;
        def.name = table->name + "_wifp" + std::to_string(partition_counter++);
        design.partitions.push_back(def);
        std::printf("what-if partition %s { %s } (+ primary key)\n",
                    def.name.c_str(), columns.c_str());
      }
      continue;
    }
    if (cmd == "evaluate") {
      auto workload = MakeWorkload(db.catalog(), workload_sql);
      if (!workload.ok() || workload->size() == 0) {
        std::printf("error: empty or unbindable workload\n");
        continue;
      }
      auto report = tool.EvaluateDesign(*workload, design);
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      for (size_t q = 0; q < report->per_query_base.size(); ++q) {
        std::printf("  Q%zu: %.1f -> %.1f (%.1f%%)\n", q + 1,
                    report->per_query_base[q], report->per_query_whatif[q],
                    report->per_query_benefit_pct[q]);
      }
      std::printf("  average benefit: %.1f%%\n", report->average_benefit_pct);
      continue;
    }
    if (cmd == "explain") {
      std::string sql;
      std::getline(in, sql);
      WhatIfTableCatalog overlay(db.catalog());
      for (const WhatIfPartitionDef& p : design.partitions) {
        (void)overlay.AddPartition(p);
      }
      for (const RangePartitionDef& r : design.range_partitions) {
        (void)overlay.AddRangePartitioning(r);
      }
      WhatIfIndexSet indexes(overlay);
      for (const WhatIfIndexDef& d : design.indexes) {
        (void)indexes.AddIndex(d);
      }
      HookRegistry hooks;
      hooks.set_relation_info_hook(indexes.MakeHook());
      auto parsed = ParseSelect(sql);
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      if (auto bound = BindStatement(overlay, &*parsed); !bound.ok()) {
        std::printf("error: %s\n", bound.ToString().c_str());
        continue;
      }
      PlannerOptions options;
      options.hooks = &hooks;
      auto plan = PlanQuery(overlay, *parsed, options);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", plan->ToString(overlay).c_str());
      continue;
    }
    if (cmd == "verify") {
      std::string table_name;
      std::string columns;
      in >> table_name >> columns;
      const TableInfo* table = db.catalog().FindTable(table_name);
      if (table == nullptr || workload_sql.empty()) {
        std::printf("error: need a table and at least one workload query\n");
        continue;
      }
      auto cols = ParseColumns(*table, columns);
      if (!cols.ok()) {
        std::printf("error: %s\n", cols.status().ToString().c_str());
        continue;
      }
      auto report = tool.VerifyIndexSimulation(
          workload_sql.front(), {"verify", table->id, *cols, false});
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("  size: %.0f what-if vs %.0f real pages (%.1f%% error)\n",
                  report->whatif_pages, report->materialized_pages,
                  100.0 * report->size_error_fraction);
      std::printf("  cost: %.1f what-if vs %.1f real (%.1f%% error)\n",
                  report->whatif_cost, report->materialized_cost,
                  100.0 * report->cost_error_fraction);
      continue;
    }
    if (cmd == "stats") {
      std::string sub;
      std::string path;
      in >> sub >> path;
      if (sub == "dump") {
        std::ofstream file(path);
        if (!file) {
          std::printf("error: cannot open '%s'\n", path.c_str());
          continue;
        }
        file << DumpCatalogStats(db.catalog());
        std::printf("statistics written to %s\n", path.c_str());
      } else {
        std::printf("usage: stats dump <path>\n");
      }
      continue;
    }
    if (cmd == "suggest") {
      std::string sub;
      in >> sub;
      auto workload = MakeWorkload(db.catalog(), workload_sql);
      if (!workload.ok() || workload->size() == 0) {
        std::printf("error: empty or unbindable workload\n");
        continue;
      }
      if (sub == "indexes") {
        double budget_mb = 1e9;
        in >> budget_mb;
        IndexAdvisorOptions options;
        options.storage_budget_bytes = budget_mb * 1024 * 1024;
        auto advice = tool.SuggestIndexes(*workload, options);
        if (!advice.ok()) {
          std::printf("error: %s\n", advice.status().ToString().c_str());
          continue;
        }
        for (const SuggestedIndex& s : advice->indexes) {
          const TableInfo* t = db.catalog().GetTable(s.def.table);
          std::string cols;
          for (size_t i = 0; i < s.def.columns.size(); ++i) {
            if (i > 0) cols += ",";
            cols += t->schema.column(s.def.columns[i]).name;
          }
          std::printf("  CREATE INDEX ON %s(%s)  -- %.2f MB\n",
                      t->name.c_str(), cols.c_str(),
                      s.size_bytes / 1024.0 / 1024.0);
        }
        std::printf("  estimated speedup: %.2fx\n", advice->Speedup());
      } else if (sub == "partitions") {
        auto advice = tool.SuggestPartitions(*workload);
        if (!advice.ok()) {
          std::printf("error: %s\n", advice.status().ToString().c_str());
          continue;
        }
        for (const FragmentDef& frag : advice->fragments) {
          const TableInfo* t = db.catalog().GetTable(frag.table);
          std::string cols;
          for (size_t i = 0; i < frag.columns.size(); ++i) {
            if (i > 0) cols += ",";
            cols += t->schema.column(frag.columns[i]).name;
          }
          std::printf("  PARTITION %s { %s }\n", t->name.c_str(), cols.c_str());
        }
        std::printf("  estimated speedup: %.2fx\n", advice->Speedup());
      }
      continue;
    }
    std::printf("unknown command '%s'\n", cmd.c_str());
  }
  return 0;
}
