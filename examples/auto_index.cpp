// Automatic index suggestion (demo scenario 3): run the ILP advisor over the
// 30 prototypical SDSS queries under a storage budget, print the suggested
// indexes, per-query benefits, and the measured speedup after materializing.
#include <cstdio>
#include <string>

#include "catalog/size_model.h"
#include "executor/executor.h"
#include "parinda/parinda.h"
#include "workload/sdss.h"

using namespace parinda;  // NOLINT: example brevity

namespace {

std::string ColumnsToString(const Database& db, const WhatIfIndexDef& def) {
  const TableInfo* table = db.catalog().GetTable(def.table);
  std::string out = table->name + "(";
  for (size_t i = 0; i < def.columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += table->schema.column(def.columns[i]).name;
  }
  return out + ")";
}

double ExecuteWorkloadCost(const Database& db, const Workload& workload) {
  CostParams params;
  double total = 0.0;
  for (const WorkloadQuery& query : workload.queries) {
    auto result = ExecuteSql(db, query.sql);
    if (result.ok()) total += result->stats.MeasuredCost(params);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const double budget_mb = argc > 1 ? std::atof(argv[1]) : 16.0;

  Database db;
  SdssConfig config;
  config.photoobj_rows = 20000;
  auto dataset = BuildSdssDatabase(&db, config);
  if (!dataset.ok()) return 1;
  auto workload = MakeSdssWorkload(db.catalog());
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  std::printf("SDSS workload: %d queries; storage budget: %.1f MB\n",
              workload->size(), budget_mb);

  Parinda tool(&db);
  IndexAdvisorOptions options;
  options.storage_budget_bytes = budget_mb * 1024 * 1024;
  auto advice = tool.SuggestIndexes(*workload, options);
  if (!advice.ok()) {
    std::fprintf(stderr, "%s\n", advice.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSuggested indexes (%zu, %.1f MB total, %s):\n",
              advice->indexes.size(),
              advice->total_size_bytes / 1024.0 / 1024.0,
              advice->proved_optimal ? "ILP optimum proved"
                                     : "ILP node limit hit");
  for (const SuggestedIndex& s : advice->indexes) {
    std::printf("  %-40s %8.2f MB  used by %zu queries\n",
                ColumnsToString(db, s.def).c_str(),
                s.size_bytes / 1024.0 / 1024.0, s.used_by.size());
  }
  std::printf("\nEstimated workload cost: %.0f -> %.0f (%.2fx)\n",
              advice->base_cost, advice->optimized_cost, advice->Speedup());
  std::printf("Optimizer calls: %d for %d INUM estimates\n",
              advice->optimizer_calls, advice->inum_estimates);

  // Materialize and measure for real.
  const double before = ExecuteWorkloadCost(db, *workload);
  auto created = tool.MaterializeIndexes(*advice);
  if (!created.ok()) return 1;
  const double after = ExecuteWorkloadCost(db, *workload);
  std::printf("Measured workload cost:  %.0f -> %.0f (%.2fx)\n", before, after,
              after > 0 ? before / after : 1.0);
  return 0;
}
