// Automatic partition suggestion (demo scenario 2): run AutoPart over a
// column-subset workload, print the suggested fragments, the per-query
// benefit, and the rewritten queries.
#include <cstdio>
#include <string>

#include "parinda/parinda.h"
#include "workload/sdss.h"

using namespace parinda;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const double replication_mb = argc > 1 ? std::atof(argv[1]) : 64.0;

  Database db;
  SdssConfig config;
  config.photoobj_rows = 10000;
  auto dataset = BuildSdssDatabase(&db, config);
  if (!dataset.ok()) return 1;

  // A narrow analytical slice of the prototypical workload — the shape
  // vertical partitioning exists for.
  auto workload = MakeWorkload(
      db.catalog(),
      {
          "SELECT count(*), avg(petrorad_r) FROM photoobj "
          "WHERE type = 3 AND petrorad_r > 25",
          "SELECT objid, ra, dec FROM photoobj WHERE dec > 80",
          "SELECT avg(petror50_r), avg(petror90_r) FROM photoobj "
          "WHERE type = 3 AND r BETWEEN 16 AND 17",
          "SELECT objid FROM photoobj WHERE extinction_r > 0.55 AND type = 3",
          "SELECT type, count(*) FROM photoobj GROUP BY type",
      });
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  Parinda tool(&db);
  AutoPartOptions options;
  options.replication_limit_bytes = replication_mb * 1024 * 1024;
  auto advice = tool.SuggestPartitions(*workload, options);
  if (!advice.ok()) {
    std::fprintf(stderr, "%s\n", advice.status().ToString().c_str());
    return 1;
  }

  std::printf("Suggested partitions (%zu fragments, %.2f MB replicated):\n",
              advice->fragments.size(),
              advice->replicated_bytes / 1024.0 / 1024.0);
  for (const FragmentDef& frag : advice->fragments) {
    const TableInfo* table = db.catalog().GetTable(frag.table);
    std::string cols;
    for (size_t i = 0; i < frag.columns.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += table->schema.column(frag.columns[i]).name;
    }
    std::printf("  %s: { %s } (+ primary key)\n", table->name.c_str(),
                cols.c_str());
  }

  std::printf("\n%-4s %12s %12s %9s\n", "Q", "base cost", "partitioned",
              "benefit");
  for (size_t q = 0; q < advice->per_query_base.size(); ++q) {
    const double benefit =
        100.0 * (advice->per_query_base[q] - advice->per_query_optimized[q]) /
        advice->per_query_base[q];
    std::printf("Q%-3zu %12.1f %12.1f %8.1f%%\n", q + 1,
                advice->per_query_base[q], advice->per_query_optimized[q],
                benefit);
  }
  std::printf("\nWorkload: %.0f -> %.0f (%.2fx) after %d evaluations, "
              "%d iterations\n",
              advice->base_cost, advice->optimized_cost, advice->Speedup(),
              advice->evaluations, advice->iterations_run);

  std::printf("\nRewritten workload (save-ready):\n");
  for (size_t q = 0; q < advice->rewritten_sql.size(); ++q) {
    std::printf("  Q%zu: %s\n", q + 1, advice->rewritten_sql[q].c_str());
  }

  // Scenario 2's "create on disk" button.
  auto created = tool.MaterializePartitions(*advice);
  if (created.ok()) {
    std::printf("\nMaterialized %zu partitions on 'disk'.\n", created->size());
  }
  return 0;
}
