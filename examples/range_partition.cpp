// Horizontal range partitioning (extension beyond the EDBT demo, which
// covers the vertical side): pick equal-mass split points on a sky
// coordinate, simulate the partitioning with what-if statistics, then
// materialize it and measure the pruning win on coordinate-box queries.
#include <cstdio>

#include "executor/executor.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "whatif/whatif_horizontal.h"
#include "whatif/whatif_table.h"
#include "workload/sdss.h"

using namespace parinda;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const int partitions = argc > 1 ? std::atoi(argv[1]) : 8;

  Database db;
  SdssConfig config;
  config.photoobj_rows = 20000;
  auto dataset = BuildSdssDatabase(&db, config);
  if (!dataset.ok()) return 1;
  const TableInfo* photoobj = db.catalog().GetTable(dataset->photoobj);
  const ColumnId ra = photoobj->schema.FindColumn("ra");

  // 1. A simple range-partition advisor: equal-mass bounds from the
  //    histogram.
  auto bounds = SuggestEqualMassBounds(db.catalog(), dataset->photoobj, ra,
                                       partitions);
  if (!bounds.ok()) {
    std::fprintf(stderr, "%s\n", bounds.status().ToString().c_str());
    return 1;
  }
  std::printf("Partitioning photoobj on ra into %d ranges at:", partitions);
  for (const Value& b : *bounds) std::printf(" %.1f", b.ToNumeric());
  std::printf("\n");

  // 2. Simulate first (what-if): coordinate-box queries prune to one range.
  auto workload = MakeWorkload(
      db.catalog(),
      {"SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180 AND 195 "
       "AND dec BETWEEN 0 AND 12",
       "SELECT count(*) FROM photoobj WHERE ra < 45",
       "SELECT objid FROM photoobj WHERE ra BETWEEN 300 AND 310 AND g < 17"});
  if (!workload.ok()) return 1;
  Parinda tool(&db);
  InteractiveDesign design;
  RangePartitionDef def;
  def.parent = dataset->photoobj;
  def.column = ra;
  def.bounds = *bounds;
  design.range_partitions.push_back(def);
  auto report = tool.EvaluateDesign(*workload, design);
  if (!report.ok()) return 1;
  std::printf("\nWhat-if evaluation (no data touched):\n");
  for (size_t q = 0; q < report->per_query_base.size(); ++q) {
    std::printf("  Q%zu: %.1f -> %.1f (%.1f%%)\n", q + 1,
                report->per_query_base[q], report->per_query_optimized[q],
                report->per_query_benefit_pct[q]);
  }

  // 3. Materialize and measure for real.
  auto children =
      db.MaterializeRangePartitions(dataset->photoobj, ra, *bounds);
  if (!children.ok()) {
    std::fprintf(stderr, "%s\n", children.status().ToString().c_str());
    return 1;
  }
  CostParams params;
  std::printf("\nMaterialized %zu children. Measured page work:\n",
              children->size());
  for (const WorkloadQuery& query : workload->queries) {
    auto result = ExecuteSql(db, query.sql);
    if (!result.ok()) return 1;
    std::printf("  %-70.70s  cost %.0f\n", query.sql.c_str(),
                result->stats.MeasuredCost(params));
  }
  return 0;
}
