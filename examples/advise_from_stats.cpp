// Advise without the data: dump a "production" catalog's statistics to a
// text file, load it into a fresh stats-only catalog, and run the ILP index
// advisor against the copy. Every PARINDA scenario consumes only statistics,
// so the suggestions are identical to advising on the live database — the
// practical upshot of the paper's what-if architecture.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "catalog/stats_io.h"
#include "parinda/report.h"
#include "workload/sdss.h"

using namespace parinda;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "/tmp/parinda_stats.txt";

  // --- On the "production" side: dump statistics (no data leaves). ---
  {
    Database production;
    SdssConfig config;
    config.photoobj_rows = 20000;
    if (!BuildSdssDatabase(&production, config).ok()) return 1;
    std::ofstream out(path);
    out << DumpCatalogStats(production.catalog());
    std::printf("Dumped catalog statistics to %s\n", path);
  }

  // --- On the DBA's side: load the dump, advise. ---
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto catalog = LoadCatalogStats(buffer.str());
  if (!catalog.ok()) {
    std::fprintf(stderr, "load: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu tables (statistics only, zero rows of data).\n",
              (*catalog)->AllTables().size());

  auto workload = MakeSdssWorkload(**catalog);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 8.0 * 1024 * 1024;
  IndexAdvisor advisor(**catalog, *workload, options);
  auto advice = advisor.SuggestWithIlp();
  if (!advice.ok()) {
    std::fprintf(stderr, "%s\n", advice.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", FormatIndexAdvice(**catalog, *advice).c_str());
  return 0;
}
