// Quickstart: build a small SDSS-like database, simulate a physical design
// with what-if features, and print the workload benefit report — PARINDA's
// interactive scenario in ~60 lines of client code.
#include <cstdio>

#include "parinda/parinda.h"
#include "workload/sdss.h"

using namespace parinda;  // NOLINT: example brevity

int main() {
  // 1. A database instance (the substrate PARINDA tunes).
  Database db;
  SdssConfig config;
  config.photoobj_rows = 10000;
  auto dataset = BuildSdssDatabase(&db, config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded SDSS sample: photoobj=%.0f rows (%.0f pages)\n",
              db.catalog().GetTable(dataset->photoobj)->row_count,
              db.catalog().GetTable(dataset->photoobj)->pages);

  // 2. A workload (here: three of the 30 prototypical queries).
  auto workload = MakeWorkload(
      db.catalog(),
      {
          "SELECT objid, u, g, r, i, z FROM photoobj WHERE objid = 4242",
          "SELECT count(*), avg(petrorad_r) FROM photoobj "
          "WHERE type = 3 AND petrorad_r > 25",
          "SELECT objid, ra, dec FROM photoobj WHERE dec > 80",
      });
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // 3. A manual physical design to test — one what-if index and one what-if
  //    partition. Nothing is built on disk; the optimizer is fed statistics.
  Parinda tool(&db);
  InteractiveDesign design;
  design.indexes.push_back({"idx_objid", dataset->photoobj, {0}, true});
  design.partitions.push_back(
      {"photoobj_sky", dataset->photoobj, {1, 2, 3, 17}});  // ra,dec,type,rad

  auto report = tool.EvaluateDesign(*workload, design);
  if (!report.ok()) {
    std::fprintf(stderr, "evaluate: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // 4. The Figure-2-style report: average + per-query benefit.
  std::printf("\n%-4s %12s %12s %9s\n", "Q", "base cost", "what-if", "benefit");
  for (size_t q = 0; q < report->per_query_base.size(); ++q) {
    std::printf("Q%-3zu %12.1f %12.1f %8.1f%%\n", q + 1,
                report->per_query_base[q], report->per_query_optimized[q],
                report->per_query_benefit_pct[q]);
  }
  std::printf("\nAverage workload benefit: %.1f%%\n",
              report->average_benefit_pct);
  std::printf("Rewritten query 2 (uses the what-if partition):\n  %s\n",
              report->rewritten_sql[1].c_str());
  return 0;
}
