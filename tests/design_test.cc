// Tests for the DesignSession layer: composable what-if overlays with
// incremental re-evaluation (DESIGN.md §9). The two core guarantees under
// test are determinism — a warmed session's report is bit-identical to the
// stateless Parinda::EvaluateDesign for any Add/Drop interleaving reaching
// the same component set — and invalidation precision — a delta on table T
// re-plans only the queries referencing T.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "design/design_session.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

class DesignSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SdssConfig config;
    config.photoobj_rows = 3000;
    auto dataset = BuildSdssDatabase(db_, config);
    PARINDA_CHECK_OK(dataset);
    dataset_ = new SdssDataset(*dataset);
    auto workload = MakeSdssWorkload(db_->catalog());
    PARINDA_CHECK_OK(workload);
    sdss_ = new Workload(std::move(*workload));
  }
  static void TearDownTestSuite() {
    delete sdss_;
    delete dataset_;
    delete db_;
    db_ = nullptr;
    dataset_ = nullptr;
    sdss_ = nullptr;
  }

  /// Queries in `workload` referencing `table` (the invalidation unit).
  static int QueriesReferencing(const Workload& workload, TableId table) {
    int n = 0;
    for (const WorkloadQuery& query : workload.queries) {
      for (const TableRef& ref : query.stmt.from) {
        if (ref.bound_table == table) {
          ++n;
          break;
        }
      }
    }
    return n;
  }

  static void ExpectReportsBitIdentical(const InteractiveReport& a,
                                        const InteractiveReport& b) {
    EXPECT_EQ(a.base_cost, b.base_cost);
    EXPECT_EQ(a.optimized_cost, b.optimized_cost);
    EXPECT_EQ(a.average_benefit_pct, b.average_benefit_pct);
    ASSERT_EQ(a.per_query_base.size(), b.per_query_base.size());
    for (size_t q = 0; q < a.per_query_base.size(); ++q) {
      EXPECT_EQ(a.per_query_base[q], b.per_query_base[q]) << "query " << q;
      EXPECT_EQ(a.per_query_optimized[q], b.per_query_optimized[q]) << "query " << q;
      EXPECT_EQ(a.per_query_benefit_pct[q], b.per_query_benefit_pct[q])
          << "query " << q;
      EXPECT_EQ(a.rewritten_sql[q], b.rewritten_sql[q]) << "query " << q;
    }
  }

  static Database* db_;
  static SdssDataset* dataset_;
  static Workload* sdss_;
};

Database* DesignSessionTest::db_ = nullptr;
SdssDataset* DesignSessionTest::dataset_ = nullptr;
Workload* DesignSessionTest::sdss_ = nullptr;

TEST_F(DesignSessionTest, PlannerStatsCountPlansBuilt) {
  const int64_t before = Planner::stats().plans_built;
  auto workload =
      MakeWorkload(db_->catalog(), {"SELECT objid FROM photoobj WHERE "
                                    "objid = 7"});
  ASSERT_TRUE(workload.ok());
  auto plan = PlanQuery(db_->catalog(), workload->queries[0].stmt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Planner::stats().plans_built, before + 1);
}

TEST_F(DesignSessionTest, FirstEvaluateIsTheStatelessEvaluation) {
  Parinda tool(db_);
  InteractiveDesign design;
  design.indexes.push_back({"ds_objid", dataset_->photoobj, {0}, false});
  auto reference = tool.EvaluateDesign(*sdss_, design);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  DesignSession session(db_->catalog(), sdss_);
  ASSERT_TRUE(
      session.AddIndex({"ds_objid", dataset_->photoobj, {0}, false}).ok());
  EXPECT_EQ(session.pending_queries(), sdss_->size());
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectReportsBitIdentical(*report, *reference);
}

TEST_F(DesignSessionTest, ExpiredDeadlineDegradesAndFreshBudgetCompletes) {
  Parinda tool(db_);
  InteractiveDesign design;
  design.indexes.push_back({"ds_budget_objid", dataset_->photoobj, {0}, false});
  auto reference = tool.EvaluateDesign(*sdss_, design);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  DesignSession session(db_->catalog(), sdss_);
  ASSERT_TRUE(
      session.AddIndex({"ds_budget_objid", dataset_->photoobj, {0}, false})
          .ok());
  // A pre-expired budget: no query gets re-costed; the report is flagged and
  // every cost stays at its last-known value (zero on a cold session).
  session.set_deadline(Deadline::After(0.0));
  auto truncated = session.Evaluate();
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_TRUE(truncated->degradation.degraded);
  EXPECT_FALSE(truncated->degradation.fallbacks.empty());

  // Re-arming with a fresh (infinite) budget finishes the pending queries
  // and lands exactly on the stateless evaluation.
  session.set_deadline(Deadline::Infinite());
  auto completed = session.Evaluate();
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_FALSE(completed->degradation.degraded);
  ExpectReportsBitIdentical(*completed, *reference);
}

TEST_F(DesignSessionTest, WarmedSessionBitIdenticalForAnyInterleaving) {
  // Reach the component set {partition(photoobj), range(photoobj.ra),
  // index(field.quality)} through a messy interleaving with intermediate
  // evaluations and a drop/re-add, then compare against the one-shot
  // stateless evaluation of the same set.
  WhatIfPartitionDef partition{"ds_shape", dataset_->photoobj, {3, 17}};
  RangePartitionDef range;
  range.parent = dataset_->photoobj;
  range.column = 1;  // ra
  range.bounds = {Value::Double(90), Value::Double(180), Value::Double(270)};
  WhatIfIndexDef field_idx{"ds_quality", dataset_->field, {8}, false};
  WhatIfIndexDef transient{"ds_transient", dataset_->specobj, {2}, false};

  DesignSession session(db_->catalog(), sdss_);
  auto transient_id = session.AddIndex(transient);
  ASSERT_TRUE(transient_id.ok());
  ASSERT_TRUE(session.AddPartition(partition).ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddIndex(field_idx).ok());
  ASSERT_TRUE(session.Drop(*transient_id).ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddRangePartitioning(range).ok());
  auto warmed = session.Evaluate();
  ASSERT_TRUE(warmed.ok()) << warmed.status().ToString();
  EXPECT_EQ(session.Components().size(), 3u);

  Parinda tool(db_);
  InteractiveDesign design;
  design.partitions.push_back(partition);
  design.range_partitions.push_back(range);
  design.indexes.push_back(field_idx);
  auto reference = tool.EvaluateDesign(*sdss_, design);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ExpectReportsBitIdentical(*warmed, *reference);

  // A re-evaluation with nothing pending is free and unchanged.
  EXPECT_EQ(session.pending_queries(), 0);
  auto again = session.Evaluate();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session.last_eval_planner_calls(), 0);
  ExpectReportsBitIdentical(*again, *reference);
}

TEST_F(DesignSessionTest, SingleTableDeltaReplansOnlyReferencingQueries) {
  const int referencing = QueriesReferencing(*sdss_, dataset_->field);
  ASSERT_GT(referencing, 0);
  ASSERT_LT(referencing, sdss_->size());

  DesignSession session(db_->catalog(), sdss_);
  ASSERT_TRUE(session.Evaluate().ok());  // warm every cache

  auto id = session.AddIndex({"ds_field_q", dataset_->field, {8}, false});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(session.pending_queries(), referencing);
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // One planner invocation per invalidated query, none for the rest (base
  // costs stay cached too).
  EXPECT_EQ(session.last_eval_planner_calls(), referencing);

  // Dropping it re-pends the same slice, but the drop returns those queries
  // to their pre-add cache keys — the engine serves the already-planned
  // costs, so re-evaluation costs zero planner calls (CoPhy-style reuse).
  ASSERT_TRUE(session.Drop(*id).ok());
  EXPECT_EQ(session.pending_queries(), referencing);
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.last_eval_planner_calls(), 0);
}

TEST_F(DesignSessionTest, JoinFlagsInvalidateEveryQuery) {
  DesignSession session(db_->catalog(), sdss_);
  ASSERT_TRUE(session.Evaluate().ok());
  WhatIfJoinDef flags;
  flags.enable_nestloop = false;
  auto id = session.AddJoinFlags(flags);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(session.pending_queries(), sdss_->size());
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  Parinda tool(db_);
  InteractiveDesign design;
  design.join_flags.push_back(flags);
  auto reference = tool.EvaluateDesign(*sdss_, design);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ExpectReportsBitIdentical(*report, *reference);
}

TEST_F(DesignSessionTest, InumModeRecostsIndexOnlyDeltas) {
  DesignSessionOptions options;
  options.inum_index_deltas = true;
  DesignSession session(db_->catalog(), sdss_, options);
  ASSERT_TRUE(session.Evaluate().ok());

  ASSERT_TRUE(
      session.AddIndex({"ds_inum_q", dataset_->field, {8}, false}).ok());
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const int referencing = QueriesReferencing(*sdss_, dataset_->field);
  // Every invalidated query is INUM-eligible (no table/range components);
  // queries INUM cannot model fall back to the exact path.
  EXPECT_GT(session.last_eval_inum_recosts(), 0);
  EXPECT_LE(session.last_eval_inum_recosts(), referencing);

  // INUM recomposition approximates the exact re-plan closely.
  Parinda tool(db_);
  InteractiveDesign design;
  design.indexes.push_back({"ds_inum_q", dataset_->field, {8}, false});
  auto reference = tool.EvaluateDesign(*sdss_, design);
  ASSERT_TRUE(reference.ok());
  for (size_t q = 0; q < report->per_query_optimized.size(); ++q) {
    EXPECT_NEAR(report->per_query_optimized[q], reference->per_query_optimized[q],
                0.15 * reference->per_query_optimized[q] + 1e-6)
        << "query " << q;
  }
}

TEST_F(DesignSessionTest, DropOfUnknownIdFails) {
  DesignSession session(db_->catalog(), sdss_);
  EXPECT_FALSE(session.Drop(42).ok());
}

TEST_F(DesignSessionTest, DropRestoresSessionWhenRemainderDoesNotCompose) {
  DesignSession session(db_->catalog(), sdss_);
  auto partition_id =
      session.AddPartition({"ds_frag", dataset_->photoobj, {3, 17}});
  ASSERT_TRUE(partition_id.ok());
  // Index the hypothetical fragment: resolves only while the partition is in
  // the design.
  const TableInfo* fragment = session.overlay().catalog().FindTable("ds_frag");
  ASSERT_NE(fragment, nullptr);
  ASSERT_TRUE(fragment->hypothetical);
  auto index_id = session.AddIndex({"ds_frag_idx", fragment->id, {0}, false});
  ASSERT_TRUE(index_id.ok()) << index_id.status().ToString();

  // Dropping the partition would orphan the fragment index: refused, and the
  // session keeps working exactly as before.
  EXPECT_FALSE(session.Drop(*partition_id).ok());
  EXPECT_EQ(session.Components().size(), 2u);
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Dropping in dependency order works.
  ASSERT_TRUE(session.Drop(*index_id).ok());
  ASSERT_TRUE(session.Drop(*partition_id).ok());
  EXPECT_TRUE(session.Components().empty());
}

TEST_F(DesignSessionTest, EagerValidationRejectsBadComponents) {
  DesignSession session(db_->catalog(), sdss_);
  // Unknown table id: nothing is added.
  EXPECT_FALSE(session.AddIndex({"ds_bad", 99999, {0}, false}).ok());
  EXPECT_TRUE(session.Components().empty());
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->optimized_cost, report->base_cost);
}

TEST_F(DesignSessionTest, ComponentsReportsIdsKindsAndDescriptions) {
  DesignSession session(db_->catalog(), sdss_);
  auto a = session.AddIndex({"ds_list_idx", dataset_->photoobj, {0}, false});
  auto b = session.AddPartition({"ds_list_frag", dataset_->specobj, {2, 4}});
  WhatIfJoinDef flags;
  flags.enable_hashjoin = false;
  auto c = session.AddJoinFlags(flags);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_LT(*a, *b);
  EXPECT_LT(*b, *c);

  const auto components = session.Components();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0].kind, OverlayKind::kIndex);
  EXPECT_EQ(components[1].kind, OverlayKind::kTable);
  EXPECT_EQ(components[2].kind, OverlayKind::kJoinFlags);
  for (const DesignSession::ComponentEntry& e : components) {
    EXPECT_FALSE(e.description.empty());
  }

  session.ClearDesign();
  EXPECT_TRUE(session.Components().empty());
  auto cleared = session.Evaluate();
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(cleared->optimized_cost, cleared->base_cost);
}

TEST_F(DesignSessionTest, SetWorkloadDiscardsCachedCosts) {
  auto small = MakeWorkload(
      db_->catalog(),
      {"SELECT objid FROM photoobj WHERE objid = 3",
       "SELECT field_id FROM field WHERE quality = 3"});
  ASSERT_TRUE(small.ok());

  DesignSession session(db_->catalog(), sdss_);
  ASSERT_TRUE(session.Evaluate().ok());
  session.SetWorkload(&*small);
  EXPECT_EQ(session.pending_queries(), small->size());
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->per_query_base.size(), 2u);
}

TEST_F(DesignSessionTest, NullWorkloadYieldsEmptyReport) {
  DesignSession session(db_->catalog(), nullptr);
  ASSERT_TRUE(
      session.AddIndex({"ds_nw", dataset_->photoobj, {0}, false}).ok());
  auto report = session.Evaluate();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->per_query_base.size(), 0u);
  EXPECT_EQ(report->base_cost, 0.0);
}

}  // namespace
}  // namespace parinda
