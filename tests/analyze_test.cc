#include "analyze/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace parinda {
namespace analyze {
namespace {

using lint::Diagnostic;

int CountCheck(const std::vector<Diagnostic>& diags,
               const std::string& check) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.check == check; }));
}

const Diagnostic* FindCheck(const std::vector<Diagnostic>& diags,
                            const std::string& check) {
  for (const Diagnostic& d : diags) {
    if (d.check == check) return &d;
  }
  return nullptr;
}

AnalyzerOptions LayersOnly(const std::string& config) {
  AnalyzerOptions options;
  options.layers_config = config;
  options.check_locks = false;
  options.check_deadlines = false;
  return options;
}

AnalyzerOptions LocksOnly() {
  AnalyzerOptions options;
  options.check_layering = false;
  options.check_deadlines = false;
  return options;
}

AnalyzerOptions DeadlinesOnly() {
  AnalyzerOptions options;
  options.check_layering = false;
  options.check_locks = false;
  return options;
}

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

TEST(AnalyzeLayering, FlagsUpwardAndSameLayerIncludes) {
  Analyzer analyzer;
  analyzer.AddSource("src/low/low.h",
                     "#ifndef L_\n#define L_\n"
                     "#include \"high/high.h\"\n"
                     "#endif\n");
  analyzer.AddSource("src/high/high.h", "#ifndef H_\n#define H_\n#endif\n");
  analyzer.AddSource("src/high/other.h",
                     "#ifndef O_\n#define O_\n"
                     "#include \"sibling/s.h\"\n"
                     "#endif\n");
  analyzer.AddSource("src/sibling/s.h", "#ifndef S_\n#define S_\n#endif\n");
  auto diags =
      analyzer.Run(LayersOnly("layer low\nlayer high sibling\n"));
  ASSERT_EQ(CountCheck(diags, "layering"), 2);
  const Diagnostic* up = FindCheck(diags, "layering");
  EXPECT_EQ(up->file, "src/high/other.h");
  EXPECT_NE(up->message.find("same layer"), std::string::npos);
  EXPECT_EQ(diags[1].file, "src/low/low.h");
  EXPECT_EQ(diags[1].line, 3);
  EXPECT_NE(diags[1].message.find("higher layer"), std::string::npos);
}

TEST(AnalyzeLayering, AcceptsDownwardAndSameModuleIncludes) {
  Analyzer analyzer;
  analyzer.AddSource("src/high/high.h",
                     "#ifndef H_\n#define H_\n"
                     "#include \"high/impl.h\"\n"
                     "#include \"low/low.h\"\n"
                     "#include \"vendor/external.h\"\n"  // not a src/ module
                     "#endif\n");
  analyzer.AddSource("src/high/impl.h", "#ifndef I_\n#define I_\n#endif\n");
  analyzer.AddSource("src/low/low.h", "#ifndef L_\n#define L_\n#endif\n");
  auto diags = analyzer.Run(LayersOnly("layer low\nlayer high\n"));
  EXPECT_EQ(CountCheck(diags, "layering"), 0);
}

TEST(AnalyzeLayering, ReportsUndeclaredModuleOnce) {
  Analyzer analyzer;
  analyzer.AddSource("src/mystery/a.h", "#ifndef A_\n#define A_\n#endif\n");
  analyzer.AddSource("src/mystery/b.h", "#ifndef B_\n#define B_\n#endif\n");
  auto diags = analyzer.Run(LayersOnly("layer low\n"));
  ASSERT_EQ(CountCheck(diags, "module-undeclared"), 1);
  EXPECT_NE(FindCheck(diags, "module-undeclared")->message.find("mystery"),
            std::string::npos);
}

TEST(AnalyzeLayering, FilesOutsideSrcAreExempt) {
  Analyzer analyzer;
  analyzer.AddSource("tools/thing/main.cc",
                     "#include \"high/high.h\"\nint main() {}\n");
  analyzer.AddSource("src/high/high.h", "#ifndef H_\n#define H_\n#endif\n");
  auto diags = analyzer.Run(LayersOnly("layer high\n"));
  EXPECT_EQ(CountCheck(diags, "layering"), 0);
  EXPECT_EQ(CountCheck(diags, "module-undeclared"), 0);
}

TEST(AnalyzeLayering, DetectsIncludeCycle) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/a.h",
                     "#ifndef A_\n#define A_\n#include \"m/b.h\"\n#endif\n");
  analyzer.AddSource("src/m/b.h",
                     "#ifndef B_\n#define B_\n#include \"m/a.h\"\n#endif\n");
  auto diags = analyzer.Run(LayersOnly("layer m\n"));
  ASSERT_EQ(CountCheck(diags, "include-cycle"), 1);
  const Diagnostic* d = FindCheck(diags, "include-cycle");
  EXPECT_NE(d->message.find("m/a.h"), std::string::npos);
  EXPECT_NE(d->message.find("m/b.h"), std::string::npos);
}

TEST(AnalyzeLayering, AcyclicDiamondIsClean) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/a.h",
                     "#ifndef A_\n#define A_\n#include \"m/b.h\"\n"
                     "#include \"m/c.h\"\n#endif\n");
  analyzer.AddSource("src/m/b.h",
                     "#ifndef B_\n#define B_\n#include \"m/d.h\"\n#endif\n");
  analyzer.AddSource("src/m/c.h",
                     "#ifndef C_\n#define C_\n#include \"m/d.h\"\n#endif\n");
  analyzer.AddSource("src/m/d.h", "#ifndef D_\n#define D_\n#endif\n");
  auto diags = analyzer.Run(LayersOnly("layer m\n"));
  EXPECT_EQ(CountCheck(diags, "include-cycle"), 0);
}

TEST(AnalyzeLayering, EngineSitsBetweenSolversAndAdvisors) {
  // The real layering: engine/ may reach down into inum/ (and lower), the
  // advisor stratum may reach down into engine/, and inum/ must not reach
  // up into engine/.
  Analyzer analyzer;
  analyzer.AddSource("src/inum/inum.h",
                     "#ifndef I_\n#define I_\n"
                     "#include \"engine/engine.h\"\n"
                     "#endif\n");
  analyzer.AddSource("src/inum/model.h", "#ifndef M_\n#define M_\n#endif\n");
  analyzer.AddSource("src/engine/engine.h",
                     "#ifndef E_\n#define E_\n"
                     "#include \"inum/model.h\"\n"
                     "#endif\n");
  analyzer.AddSource("src/autopart/autopart.h",
                     "#ifndef A_\n#define A_\n"
                     "#include \"engine/engine.h\"\n"
                     "#endif\n");
  auto diags = analyzer.Run(
      LayersOnly("layer inum\nlayer engine\nlayer autopart\n"));
  ASSERT_EQ(CountCheck(diags, "layering"), 1);
  const Diagnostic* up = FindCheck(diags, "layering");
  EXPECT_EQ(up->file, "src/inum/inum.h");
  EXPECT_NE(up->message.find("higher layer"), std::string::npos);
}

TEST(AnalyzeLayering, MalformedConfigIsReported) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/a.h", "#ifndef A_\n#define A_\n#endif\n");
  auto diags = analyzer.Run(LayersOnly("strata m\n"));
  EXPECT_EQ(CountCheck(diags, "layer-config"), 1);
}

// ---------------------------------------------------------------------------
// Lock discipline
// ---------------------------------------------------------------------------

constexpr char kCounterHeader[] =
    "#ifndef C_\n#define C_\n"
    "#include \"common/annotations.h\"\n"
    "namespace parinda {\n"
    "class Counter {\n"
    " public:\n"
    "  void Add(int n);\n"
    "  int Unsafe() { return count_; }\n"
    "  int Safe() {\n"
    "    MutexLock lock(mu_);\n"
    "    return count_;\n"
    "  }\n"
    "  void Reset() PARINDA_REQUIRES(mu_);\n"
    " private:\n"
    "  Mutex mu_;\n"
    "  int count_ PARINDA_GUARDED_BY(mu_) = 0;\n"
    "};\n"
    "}  // namespace parinda\n"
    "#endif\n";

TEST(AnalyzeLocks, FlagsAccessOutsideLockAndAcceptsLockedAccess) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/counter.h", kCounterHeader);
  auto diags = analyzer.Run(LocksOnly());
  ASSERT_EQ(CountCheck(diags, "guarded-field"), 1);
  const Diagnostic* d = FindCheck(diags, "guarded-field");
  EXPECT_EQ(d->line, 8);  // Unsafe(); Safe() holds the MutexLock
  EXPECT_NE(d->message.find("count_"), std::string::npos);
  EXPECT_NE(d->message.find("mu_"), std::string::npos);
}

TEST(AnalyzeLocks, StdLockGuardAndScopedLockAreRecognized) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/counter.h", kCounterHeader);
  analyzer.AddSource("src/m/counter.cc",
                     "#include \"m/counter.h\"\n"
                     "namespace parinda {\n"
                     "void Counter::Add(int n) {\n"
                     "  std::lock_guard<std::mutex> lock(mu_);\n"
                     "  count_ += n;\n"
                     "}\n"
                     "}  // namespace parinda\n");
  auto diags = analyzer.Run(LocksOnly());
  // Only the seeded Unsafe() finding from the header remains.
  ASSERT_EQ(CountCheck(diags, "guarded-field"), 1);
  EXPECT_EQ(FindCheck(diags, "guarded-field")->file, "src/m/counter.h");
}

TEST(AnalyzeLocks, RequiresAnnotationOnDeclarationCoversDefinition) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/counter.h", kCounterHeader);
  analyzer.AddSource("src/m/counter.cc",
                     "#include \"m/counter.h\"\n"
                     "namespace parinda {\n"
                     "void Counter::Add(int n) { MutexLock l(mu_); "
                     "count_ += n; }\n"
                     "void Counter::Reset() { count_ = 0; }\n"
                     "}  // namespace parinda\n");
  auto diags = analyzer.Run(LocksOnly());
  // Reset() is declared PARINDA_REQUIRES(mu_) in the header, so its
  // out-of-line body may touch count_ without taking the lock itself.
  ASSERT_EQ(CountCheck(diags, "guarded-field"), 1);
  EXPECT_EQ(FindCheck(diags, "guarded-field")->file, "src/m/counter.h");
}

TEST(AnalyzeLocks, LockScopeEndsAtItsBrace) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/s.h",
                     "#ifndef S_\n#define S_\n"
                     "#include \"common/annotations.h\"\n"
                     "class S {\n"
                     " public:\n"
                     "  int Get() {\n"
                     "    int copy = 0;\n"
                     "    {\n"
                     "      MutexLock lock(mu_);\n"
                     "      copy = v_;\n"
                     "    }\n"
                     "    return v_;\n"  // outside the scope: flagged
                     "  }\n"
                     " private:\n"
                     "  parinda::Mutex mu_;\n"
                     "  int v_ PARINDA_GUARDED_BY(mu_) = 0;\n"
                     "};\n"
                     "#endif\n");
  auto diags = analyzer.Run(LocksOnly());
  ASSERT_EQ(CountCheck(diags, "guarded-field"), 1);
  EXPECT_EQ(FindCheck(diags, "guarded-field")->line, 12);
}

TEST(AnalyzeLocks, QualifiedAccessThroughLocalReference) {
  Analyzer analyzer;
  analyzer.AddSource(
      "src/m/reg.cc",
      "#include \"common/annotations.h\"\n"
      "namespace {\n"
      "struct Registry {\n"
      "  parinda::Mutex mu;\n"
      "  int entries PARINDA_GUARDED_BY(mu) = 0;\n"
      "};\n"
      "Registry& Get() { static Registry r; return r; }\n"
      "}  // namespace\n"
      "int CountLocked() {\n"
      "  Registry& registry = Get();\n"
      "  parinda::MutexLock lock(registry.mu);\n"
      "  return registry.entries;\n"
      "}\n"
      "int CountUnlocked() {\n"
      "  Registry& registry = Get();\n"
      "  return registry.entries;\n"
      "}\n"
      "void TouchRequired(Registry& registry) "
      "PARINDA_REQUIRES(registry.mu) {\n"
      "  registry.entries++;\n"
      "}\n");
  auto diags = analyzer.Run(LocksOnly());
  ASSERT_EQ(CountCheck(diags, "guarded-field"), 1);
  EXPECT_EQ(FindCheck(diags, "guarded-field")->line, 16);
}

TEST(AnalyzeLocks, ConstructorsAndDestructorsAreExempt) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/c.h",
                     "#ifndef C_\n#define C_\n"
                     "#include \"common/annotations.h\"\n"
                     "class C {\n"
                     " public:\n"
                     "  C() { v_ = 1; }\n"
                     "  ~C() { v_ = 0; }\n"
                     " private:\n"
                     "  parinda::Mutex mu_;\n"
                     "  int v_ PARINDA_GUARDED_BY(mu_) = 0;\n"
                     "};\n"
                     "#endif\n");
  auto diags = analyzer.Run(LocksOnly());
  EXPECT_EQ(CountCheck(diags, "guarded-field"), 0);
}

// ---------------------------------------------------------------------------
// Deadline reachability
// ---------------------------------------------------------------------------

TEST(AnalyzeDeadline, FlagsFailpointUnreachableFromAnyBudget) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/slow.cc",
                     "void Step() { PARINDA_FAILPOINT(\"m.step\"); }\n"
                     "void Drive() { Step(); }\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  ASSERT_EQ(CountCheck(diags, "deadline-unreachable"), 1);
  const Diagnostic* d = FindCheck(diags, "deadline-unreachable");
  EXPECT_EQ(d->line, 1);
  EXPECT_NE(d->message.find("Step"), std::string::npos);
}

TEST(AnalyzeDeadline, BudgetedParameterReachesThroughCallGraph) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/slow.cc",
                     "void Step() { PARINDA_FAILPOINT(\"m.step\"); }\n"
                     "void Drive(const Deadline& deadline) { Step(); }\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  EXPECT_EQ(CountCheck(diags, "deadline-unreachable"), 0);
}

TEST(AnalyzeDeadline, OptionsStructCarryingDeadlineCounts) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/opts.h",
                     "#ifndef O_\n#define O_\n"
                     "struct MOptions { Deadline deadline; int depth = 0; };\n"
                     "class Engine {\n"
                     " public:\n"
                     "  void Run();\n"
                     " private:\n"
                     "  MOptions options_;\n"
                     "};\n"
                     "#endif\n");
  analyzer.AddSource("src/m/opts.cc",
                     "#include \"m/opts.h\"\n"
                     "void Engine::Run() { PARINDA_FAILPOINT(\"m.run\"); }\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  // Engine holds MOptions which holds a Deadline: the budget-carrying
  // closure makes Engine::Run budgeted.
  EXPECT_EQ(CountCheck(diags, "deadline-unreachable"), 0);
}

TEST(AnalyzeDeadline, SubmitLoopNeedsABudget) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/fan.cc",
                     "void FanOut(ThreadPool* pool, int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    pool->Submit([] {});\n"
                     "  }\n"
                     "}\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  ASSERT_EQ(CountCheck(diags, "deadline-unreachable"), 1);
  EXPECT_EQ(FindCheck(diags, "deadline-unreachable")->line, 3);
}

TEST(AnalyzeDeadline, SubmitLoopReachableFromBudgetedCallerIsClean) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/fan.cc",
                     "void FanOut(ThreadPool* pool, int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    pool->Submit([] {});\n"
                     "  }\n"
                     "}\n"
                     "void Plan(ThreadPool* pool, const Deadline& deadline) "
                     "{\n"
                     "  FanOut(pool, 8);\n"
                     "}\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  EXPECT_EQ(CountCheck(diags, "deadline-unreachable"), 0);
}

TEST(AnalyzeDeadline, SingleSubmitOutsideLoopIsClean) {
  Analyzer analyzer;
  analyzer.AddSource("src/m/one.cc",
                     "void One(ThreadPool* pool) { pool->Submit([] {}); }\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  EXPECT_EQ(CountCheck(diags, "deadline-unreachable"), 0);
}

// ---------------------------------------------------------------------------
// Suppressions (shared syntax with parinda-lint)
// ---------------------------------------------------------------------------

TEST(AnalyzeSuppression, AllowOnSameOrPreviousLine) {
  Analyzer analyzer;
  analyzer.AddSource(
      "src/m/slow.cc",
      "void A() { PARINDA_FAILPOINT(\"m.a\"); }  "
      "// parinda-lint: allow(deadline-unreachable)\n"
      "// parinda-analyze: allow(deadline-unreachable)\n"
      "void B() { PARINDA_FAILPOINT(\"m.b\"); }\n"
      "void C() { PARINDA_FAILPOINT(\"m.c\"); }\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  ASSERT_EQ(CountCheck(diags, "deadline-unreachable"), 1);
  EXPECT_EQ(FindCheck(diags, "deadline-unreachable")->line, 4);
}

TEST(AnalyzeSuppression, AllowFileWithinWindowCoversWholeFile) {
  Analyzer analyzer;
  analyzer.AddSource(
      "src/m/slow.cc",
      "// parinda-analyze: allow-file(deadline-unreachable)\n"
      "\n\n\n\n\n\n\n\n"
      "void A() { PARINDA_FAILPOINT(\"m.a\"); }\n"
      "void B() { PARINDA_FAILPOINT(\"m.b\"); }\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  EXPECT_EQ(CountCheck(diags, "deadline-unreachable"), 0);
}

TEST(AnalyzeSuppression, AllowFileBeyondWindowDoesNotCount) {
  Analyzer analyzer;
  std::string padding(12, '\n');  // pushes the comment past line 10
  analyzer.AddSource(
      "src/m/slow.cc",
      padding + "// parinda-analyze: allow-file(deadline-unreachable)\n" +
          "void A() { PARINDA_FAILPOINT(\"m.a\"); }\n");
  auto diags = analyzer.Run(DeadlinesOnly());
  EXPECT_EQ(CountCheck(diags, "deadline-unreachable"), 1);
}

// ---------------------------------------------------------------------------
// Golden run: the real tree must be clean at HEAD
// ---------------------------------------------------------------------------

TEST(AnalyzeGolden, RealSourceTreeHasZeroFindings) {
  const std::string root = PARINDA_REPO_ROOT;
  std::ifstream layers(root + "/tools/analyze/layers.txt");
  ASSERT_TRUE(layers.is_open());
  std::ostringstream layers_buf;
  layers_buf << layers.rdbuf();

  std::vector<std::string> errors;
  std::vector<std::string> files =
      lint::CollectSourcePaths({root + "/src"}, &errors);
  ASSERT_TRUE(errors.empty());
  ASSERT_GT(files.size(), 50u);

  Analyzer analyzer;
  for (const std::string& f : files) {
    ASSERT_TRUE(analyzer.AddFile(f)) << f;
  }
  AnalyzerOptions options;
  options.layers_config = layers_buf.str();
  auto diags = analyzer.Run(options);
  EXPECT_TRUE(diags.empty()) << lint::FormatText(diags);
}

}  // namespace
}  // namespace analyze
}  // namespace parinda
