#include <gtest/gtest.h>

#include "common/check.h"
#include "advisor/candidates.h"
#include "catalog/size_model.h"
#include "advisor/index_advisor.h"
#include "optimizer/query_analysis.h"
#include "tests/test_util.h"
#include "workload/sdss.h"
#include "workload/tpch_mini.h"

namespace parinda {
namespace {

class CandidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 3000);
    customers_ = testing_util::MakeCustomersTable(&db_, 300);
  }
  Database db_;
  TableId orders_ = kInvalidTableId;
  TableId customers_ = kInvalidTableId;
};

TEST_F(CandidateTest, GeneratesSinglesForPredicateColumns) {
  auto workload = MakeWorkload(
      db_.catalog(),
      {"SELECT amount FROM orders WHERE id = 5",
       "SELECT id FROM orders WHERE amount > 900"});
  ASSERT_TRUE(workload.ok());
  auto candidates = GenerateCandidateIndexes(db_.catalog(), *workload);
  ASSERT_TRUE(candidates.ok());
  bool has_id = false;
  bool has_amount = false;
  for (const WhatIfIndexDef& def : *candidates) {
    if (def.table == orders_ && def.columns == std::vector<ColumnId>{0}) {
      has_id = true;
    }
    if (def.table == orders_ && def.columns == std::vector<ColumnId>{2}) {
      has_amount = true;
    }
  }
  EXPECT_TRUE(has_id);
  EXPECT_TRUE(has_amount);
}

TEST_F(CandidateTest, GeneratesMulticolumnCandidates) {
  auto workload = MakeWorkload(
      db_.catalog(),
      {"SELECT id FROM orders WHERE region = 'north' AND amount > 900"});
  ASSERT_TRUE(workload.ok());
  auto candidates = GenerateCandidateIndexes(db_.catalog(), *workload);
  ASSERT_TRUE(candidates.ok());
  bool has_pair = false;
  for (const WhatIfIndexDef& def : *candidates) {
    if (def.table == orders_ &&
        def.columns == std::vector<ColumnId>{3, 2}) {  // (region, amount)
      has_pair = true;
    }
  }
  EXPECT_TRUE(has_pair);
}

TEST_F(CandidateTest, GeneratesJoinColumnCandidates) {
  auto workload = MakeWorkload(
      db_.catalog(),
      {"SELECT o.amount FROM orders o, customers c "
       "WHERE o.customer_id = c.cid"});
  ASSERT_TRUE(workload.ok());
  auto candidates = GenerateCandidateIndexes(db_.catalog(), *workload);
  ASSERT_TRUE(candidates.ok());
  bool join_col = false;
  for (const WhatIfIndexDef& def : *candidates) {
    if (def.table == orders_ && def.columns == std::vector<ColumnId>{1}) {
      join_col = true;
    }
  }
  EXPECT_TRUE(join_col);
}

TEST_F(CandidateTest, RespectsWidthAndCountCaps) {
  auto workload = MakeSdssWorkload(db_.catalog());
  // SDSS tables are absent in this db; build a dedicated one instead.
  ASSERT_FALSE(workload.ok());
  auto small = MakeWorkload(
      db_.catalog(),
      {"SELECT id FROM orders WHERE region = 'x' AND amount > 1 AND "
       "customer_id = 2 AND flag = true"});
  ASSERT_TRUE(small.ok());
  CandidateOptions options;
  options.max_width = 1;
  auto singles = GenerateCandidateIndexes(db_.catalog(), *small, options);
  ASSERT_TRUE(singles.ok());
  for (const WhatIfIndexDef& def : *singles) {
    EXPECT_EQ(def.columns.size(), 1u);
  }
  options.max_width = 2;
  options.max_candidates = 3;
  auto capped = GenerateCandidateIndexes(db_.catalog(), *small, options);
  ASSERT_TRUE(capped.ok());
  EXPECT_LE(capped->size(), 3u);
}

TEST_F(CandidateTest, DedupesAcrossQueries) {
  auto workload = MakeWorkload(
      db_.catalog(), {"SELECT id FROM orders WHERE amount > 1",
                      "SELECT region FROM orders WHERE amount < 5"});
  ASSERT_TRUE(workload.ok());
  auto candidates = GenerateCandidateIndexes(db_.catalog(), *workload);
  ASSERT_TRUE(candidates.ok());
  int amount_singles = 0;
  for (const WhatIfIndexDef& def : *candidates) {
    if (def.table == orders_ && def.columns == std::vector<ColumnId>{2}) {
      ++amount_singles;
    }
  }
  EXPECT_EQ(amount_singles, 1);
}

class IndexAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 20000);
    customers_ = testing_util::MakeCustomersTable(&db_, 2000);
    auto workload = MakeWorkload(
        db_.catalog(),
        {
            "SELECT amount FROM orders WHERE id = 123",
            "SELECT id FROM orders WHERE id BETWEEN 100 AND 120",
            "SELECT o.amount FROM orders o, customers c "
            "WHERE o.customer_id = c.cid AND c.cid = 5",
            "SELECT count(*) FROM customers WHERE score > 99",
            "SELECT region, count(*) FROM orders GROUP BY region",
        });
    PARINDA_CHECK_OK(workload);
    workload_ = std::move(*workload);
  }

  Database db_;
  TableId orders_ = kInvalidTableId;
  TableId customers_ = kInvalidTableId;
  Workload workload_;
};

TEST_F(IndexAdvisorTest, IlpFindsBeneficialIndexes) {
  IndexAdvisor advisor(db_.catalog(), workload_);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_FALSE(advice->indexes.empty());
  EXPECT_LT(advice->optimized_cost, advice->base_cost);
  EXPECT_TRUE(advice->proved_optimal);
  EXPECT_GT(advice->Speedup(), 1.0);
  // The point-lookup index on orders.id must be in the suggestion.
  bool has_id_index = false;
  for (const SuggestedIndex& s : advice->indexes) {
    if (s.def.table == orders_ && !s.def.columns.empty() &&
        s.def.columns[0] == 0) {
      has_id_index = true;
      EXPECT_FALSE(s.used_by.empty());
    }
  }
  EXPECT_TRUE(has_id_index);
}

TEST_F(IndexAdvisorTest, PerQueryBenefitsReported) {
  IndexAdvisor advisor(db_.catalog(), workload_);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok());
  ASSERT_EQ(advice->per_query_base.size(), 5u);
  ASSERT_EQ(advice->per_query_optimized.size(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    EXPECT_LE(advice->per_query_optimized[q],
              advice->per_query_base[q] + 1e-6);
  }
  // The point query (q0) must improve dramatically.
  EXPECT_LT(advice->per_query_optimized[0], advice->per_query_base[0] * 0.2);
}

TEST_F(IndexAdvisorTest, StorageBudgetRespected) {
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 400.0 * kPageSize;  // tight budget
  IndexAdvisor advisor(db_.catalog(), workload_, options);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok());
  EXPECT_LE(advice->total_size_bytes, options.storage_budget_bytes + 1.0);
}

TEST_F(IndexAdvisorTest, ZeroBudgetSuggestsNothing) {
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 0.0;
  IndexAdvisor advisor(db_.catalog(), workload_, options);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok());
  EXPECT_TRUE(advice->indexes.empty());
  EXPECT_DOUBLE_EQ(advice->optimized_cost, advice->base_cost);
}

TEST_F(IndexAdvisorTest, GreedyAlsoImproves) {
  IndexAdvisor advisor(db_.catalog(), workload_);
  auto advice = advisor.SuggestWithGreedy();
  ASSERT_TRUE(advice.ok());
  EXPECT_FALSE(advice->indexes.empty());
  EXPECT_LT(advice->optimized_cost, advice->base_cost);
}

TEST_F(IndexAdvisorTest, IlpAtLeastMatchesGreedyUnderBudget) {
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 600.0 * kPageSize;
  IndexAdvisor ilp_advisor(db_.catalog(), workload_, options);
  auto ilp = ilp_advisor.SuggestWithIlp();
  ASSERT_TRUE(ilp.ok());
  IndexAdvisor greedy_advisor(db_.catalog(), workload_, options);
  auto greedy = greedy_advisor.SuggestWithGreedy();
  ASSERT_TRUE(greedy.ok());
  // The exact solver should never lose to greedy on the same model by more
  // than rounding noise.
  EXPECT_LE(ilp->optimized_cost, greedy->optimized_cost * 1.02);
}

TEST_F(IndexAdvisorTest, UsesInumCache) {
  IndexAdvisor advisor(db_.catalog(), workload_);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok());
  // Far fewer optimizer calls than cost estimates — the INUM effect.
  EXPECT_GT(advice->inum_estimates, advice->optimizer_calls);
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

TEST_F(IndexAdvisorTest, UpdateCostsDiscourageMarginalIndexes) {
  IndexAdvisor cheap(db_.catalog(), workload_);
  auto no_updates = cheap.SuggestWithIlp();
  ASSERT_TRUE(no_updates.ok());
  ASSERT_FALSE(no_updates->indexes.empty());
  EXPECT_DOUBLE_EQ(no_updates->total_maintenance_cost, 0.0);

  IndexAdvisorOptions options;
  options.update_rows[orders_] = 1e7;  // orders is update-hot
  IndexAdvisor expensive(db_.catalog(), workload_, options);
  auto with_updates = expensive.SuggestWithIlp();
  ASSERT_TRUE(with_updates.ok());
  // Every orders index now costs more to maintain than it saves.
  for (const SuggestedIndex& s : with_updates->indexes) {
    EXPECT_NE(s.def.table, orders_) << s.def.name;
  }
  EXPECT_LT(with_updates->indexes.size(), no_updates->indexes.size());
}

TEST_F(IndexAdvisorTest, ModerateUpdateRateReportsMaintenance) {
  IndexAdvisorOptions options;
  options.update_rows[orders_] = 10.0;  // mild
  IndexAdvisor advisor(db_.catalog(), workload_, options);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok());
  ASSERT_FALSE(advice->indexes.empty());
  bool any_maintenance = false;
  for (const SuggestedIndex& s : advice->indexes) {
    if (s.def.table == orders_) {
      EXPECT_GT(s.maintenance_cost, 0.0);
      any_maintenance = true;
    }
  }
  EXPECT_TRUE(any_maintenance);
  EXPECT_GT(advice->total_maintenance_cost, 0.0);
}

TEST_F(IndexAdvisorTest, GreedyAlsoRespectsUpdateCosts) {
  IndexAdvisorOptions options;
  options.update_rows[orders_] = 1e7;
  options.update_rows[customers_] = 1e7;
  IndexAdvisor advisor(db_.catalog(), workload_, options);
  auto advice = advisor.SuggestWithGreedy();
  ASSERT_TRUE(advice.ok());
  EXPECT_TRUE(advice->indexes.empty());
}

TEST_F(IndexAdvisorTest, AdviceIsBitIdenticalAcrossParallelism) {
  // The parallel evaluation layer writes into pre-sized per-query slots, so
  // the benefit matrix — and everything derived from it — must be exactly
  // the same at parallelism 1 and 4: same recommended configuration, same
  // total benefit, same costs, bit for bit.
  auto run = [&](int parallelism) {
    IndexAdvisorOptions options;
    options.parallelism = parallelism;
    IndexAdvisor advisor(db_.catalog(), workload_, options);
    auto advice = advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(advice);
    return std::move(*advice);
  };
  const IndexAdvice serial = run(1);
  const IndexAdvice parallel = run(4);

  ASSERT_EQ(parallel.indexes.size(), serial.indexes.size());
  double serial_benefit = 0.0;
  double parallel_benefit = 0.0;
  for (size_t s = 0; s < serial.indexes.size(); ++s) {
    EXPECT_EQ(parallel.indexes[s].def.name, serial.indexes[s].def.name);
    EXPECT_EQ(parallel.indexes[s].def.table, serial.indexes[s].def.table);
    EXPECT_EQ(parallel.indexes[s].def.columns, serial.indexes[s].def.columns);
    EXPECT_EQ(parallel.indexes[s].benefit, serial.indexes[s].benefit);
    EXPECT_EQ(parallel.indexes[s].used_by, serial.indexes[s].used_by);
    serial_benefit += serial.indexes[s].benefit;
    parallel_benefit += parallel.indexes[s].benefit;
  }
  EXPECT_EQ(parallel_benefit, serial_benefit);
  EXPECT_EQ(parallel.base_cost, serial.base_cost);
  EXPECT_EQ(parallel.optimized_cost, serial.optimized_cost);
  EXPECT_EQ(parallel.per_query_base, serial.per_query_base);
  EXPECT_EQ(parallel.per_query_optimized, serial.per_query_optimized);
  EXPECT_EQ(parallel.total_size_bytes, serial.total_size_bytes);
  EXPECT_EQ(parallel.optimizer_calls, serial.optimizer_calls);
}

TEST_F(IndexAdvisorTest, ExpiredDeadlineDegradesInsteadOfFailing) {
  // The anytime contract: a budget that expires before any work happened
  // still produces a well-formed (if empty-handed) advice, flagged degraded,
  // never an error and never a crash.
  IndexAdvisorOptions options;
  options.deadline = Deadline::After(0.0);
  IndexAdvisor advisor(db_.catalog(), workload_, options);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_TRUE(advice->degradation.degraded);
  EXPECT_FALSE(advice->degradation.fallbacks.empty());
  EXPECT_FALSE(advice->proved_optimal);
  // The summary names the rungs taken, for the REPL report.
  EXPECT_NE(advice->degradation.ToString().find("degraded"),
            std::string::npos);

  // Greedy has its own ladder (static ranking when the models are gone).
  IndexAdvisor greedy(db_.catalog(), workload_, options);
  auto greedy_advice = greedy.SuggestWithGreedy();
  ASSERT_TRUE(greedy_advice.ok()) << greedy_advice.status().ToString();
  EXPECT_TRUE(greedy_advice->degradation.degraded);
}

TEST_F(IndexAdvisorTest, InfiniteBudgetBitIdenticalToUnbudgeted) {
  // Deadline::Infinite() (== the default) never reads the clock, so a
  // budgeted run with an infinite budget is the unbudgeted run, bit for
  // bit, at any parallelism.
  IndexAdvisor plain_advisor(db_.catalog(), workload_);
  auto plain = plain_advisor.SuggestWithIlp();
  ASSERT_TRUE(plain.ok());
  for (int parallelism : {1, 4}) {
    SCOPED_TRACE(parallelism);
    IndexAdvisorOptions options;
    options.parallelism = parallelism;
    options.deadline = Deadline::Infinite();
    IndexAdvisor advisor(db_.catalog(), workload_, options);
    auto budgeted = advisor.SuggestWithIlp();
    ASSERT_TRUE(budgeted.ok());
    EXPECT_FALSE(budgeted->degradation.degraded);
    EXPECT_TRUE(budgeted->degradation.fallbacks.empty());
    ASSERT_EQ(budgeted->indexes.size(), plain->indexes.size());
    for (size_t s = 0; s < plain->indexes.size(); ++s) {
      EXPECT_EQ(budgeted->indexes[s].def.columns, plain->indexes[s].def.columns);
      EXPECT_EQ(budgeted->indexes[s].benefit, plain->indexes[s].benefit);
    }
    EXPECT_EQ(budgeted->base_cost, plain->base_cost);
    EXPECT_EQ(budgeted->optimized_cost, plain->optimized_cost);
    EXPECT_EQ(budgeted->per_query_base, plain->per_query_base);
    EXPECT_EQ(budgeted->per_query_optimized, plain->per_query_optimized);
  }
}

TEST_F(IndexAdvisorTest, GreedyAlsoBitIdenticalAcrossParallelism) {
  auto run = [&](int parallelism) {
    IndexAdvisorOptions options;
    options.parallelism = parallelism;
    IndexAdvisor advisor(db_.catalog(), workload_, options);
    auto advice = advisor.SuggestWithGreedy();
    PARINDA_CHECK_OK(advice);
    return std::move(*advice);
  };
  const IndexAdvice serial = run(1);
  const IndexAdvice parallel = run(4);
  ASSERT_EQ(parallel.indexes.size(), serial.indexes.size());
  for (size_t s = 0; s < serial.indexes.size(); ++s) {
    EXPECT_EQ(parallel.indexes[s].def.name, serial.indexes[s].def.name);
    EXPECT_EQ(parallel.indexes[s].benefit, serial.indexes[s].benefit);
  }
  EXPECT_EQ(parallel.optimized_cost, serial.optimized_cost);
}

// ---------------------------------------------------------------------------
// Golden bit-identity tests over the two demo schemas. The literals were
// captured from the pre-engine advisor with %.17g (exact double round-trip),
// so every EXPECT_EQ below is bit-for-bit. The engine-backed advisor (shared
// EvalContext + InumBank) must reproduce them exactly at any parallelism.
// ---------------------------------------------------------------------------

struct GoldenIndex {
  const char* name;
  double benefit;
  double size_bytes;
  std::vector<ColumnId> columns;
  std::vector<int> used_by;
};

void ExpectGoldenIndexes(const IndexAdvice& advice,
                         const std::vector<GoldenIndex>& golden) {
  ASSERT_EQ(advice.indexes.size(), golden.size());
  for (size_t s = 0; s < golden.size(); ++s) {
    SCOPED_TRACE(golden[s].name);
    EXPECT_EQ(advice.indexes[s].def.name, golden[s].name);
    EXPECT_EQ(advice.indexes[s].def.columns, golden[s].columns);
    EXPECT_EQ(advice.indexes[s].benefit, golden[s].benefit);
    EXPECT_EQ(advice.indexes[s].size_bytes, golden[s].size_bytes);
    EXPECT_EQ(advice.indexes[s].used_by, golden[s].used_by);
  }
}

TEST(IlpGoldenTest, SdssIlpAdviceBitIdenticalAcrossParallelism) {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 3000;
  auto dataset = BuildSdssDatabase(&db, config);
  ASSERT_TRUE(dataset.ok());
  auto workload = MakeSdssWorkload(db.catalog());
  ASSERT_TRUE(workload.ok());

  const std::vector<GoldenIndex> kGolden = {
      {"cand_t1_c1", 30.075450860400053, 98304.0, {1}, {0}},
      {"cand_t1_c2", 55.378864558738513, 98304.0, {2}, {21}},
      {"cand_t1_c8", 55.691536964647682, 98304.0, {8}, {2, 27}},
      {"cand_t1_c9", 90.448379018509243, 98304.0, {9}, {3, 8, 24}},
      {"cand_t1_c3_c17", 25.825874555457347, 122880.0, {3, 17}, {4}},
      {"cand_t1_c0", 238.44, 98304.0, {0}, {5, 9, 11}},
      {"cand_t1_c3_c9", 117.13087808739164, 122880.0, {3, 9}, {7, 28}},
      {"cand_t3_c2", 19.678474037265726, 49152.0, {2}, {16, 17}},
      {"cand_t3_c0_c2", 22.488227954566248, 65536.0, {0, 2}, {15}},
      {"cand_t4_c0", 33.115000000000002, 73728.0, {0}, {18}},
      {"cand_t4_c2", 17.629426697282234, 73728.0, {2}, {19}},
      {"cand_t1_c5", 31.391786953988557, 98304.0, {5}, {20}},
      {"cand_t1_c4_c6", 86.119853905503035, 122880.0, {4, 6}, {22}},
      {"cand_t1_c20", 32.21458627177114, 98304.0, {20}, {26}}};
  const std::vector<double> kGoldenBase = {
      131,                127.95750000000001, 131,
      123.5,              132.44499999999999, 123.5,
      131.03,             131.30151484454402, 131,
      131.43000000000001, 8.5299999999999994, 132.04500000000002,
      7.7625000000000002, 132.95750000000001, 170.47500000000002,
      34.5,               30.800000000000001, 157.655,
      45.152499999999996, 45.447499999999998, 131,
      123.5,              131.0925,           12.685,
      131.94749999999999, 8.0525000000000002, 131,
      125.285,            131.78999999999999, 10.287712818167536};
  const std::vector<double> kGoldenOptimized = {
      100.92454913959995, 127.95750000000001, 99.079830511592945,
      98.050724545470899, 106.61912544454265, 12.01,
      131.03,             45.481629955163825, 97.959590167406233,
      103.97,             8.5299999999999994, 32.555000000000007,
      7.7625000000000002, 132.95750000000001, 170.47500000000002,
      12.011772045433752, 20.977787647527272, 147.798738315207,
      12.037499999999996, 27.818073302717764, 99.608213046011443,
      68.121135441261487, 44.972646094496966, 12.685,
      99.988806268613615, 8.0525000000000002, 98.78541372822886,
      101.51363252375937, 100.47900680198855, 10.287712818167536};

  for (int parallelism : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "parallelism=" << parallelism);
    IndexAdvisorOptions options;
    options.parallelism = parallelism;
    IndexAdvisor advisor(db.catalog(), *workload, options);
    auto advice = advisor.SuggestWithIlp();
    ASSERT_TRUE(advice.ok()) << advice.status().ToString();

    EXPECT_EQ(advice->base_cost, 2996.1292276627114);
    EXPECT_EQ(advice->optimized_cost, 2140.50088779719);
    EXPECT_EQ(advice->total_size_bytes, 1318912.0);
    EXPECT_TRUE(advice->proved_optimal);
    EXPECT_EQ(advice->optimizer_calls, 106);
    EXPECT_EQ(advice->inum_estimates, 1189);
    ExpectGoldenIndexes(*advice, kGolden);
    EXPECT_EQ(advice->per_query_base, kGoldenBase);
    EXPECT_EQ(advice->per_query_optimized, kGoldenOptimized);
  }
}

TEST(IlpGoldenTest, TpchMiniIlpAdviceBitIdenticalAcrossParallelism) {
  Database db;
  TpchMiniConfig config;
  auto dataset = BuildTpchMiniDatabase(&db, config);
  ASSERT_TRUE(dataset.ok());
  auto workload = MakeTpchMiniWorkload(db.catalog());
  ASSERT_TRUE(workload.ok());

  const std::vector<GoldenIndex> kGolden = {
      {"cand_t2_c6", 317.97633874999997, 966656.0, {6}, {1}},
      {"cand_t2_c7", 25.480000000000018, 876544.0, {7}, {11}},
      {"cand_t0_c0", 4.3574999999999875, 24576.0, {0}, {9}},
      {"cand_t1_c3", 36.155133333333424, 245760.0, {3}, {2}},
      {"cand_t1_c1", 116.57520288587179, 245760.0, {1}, {9}},
      {"cand_t1_c0", 152.73249999999999, 245760.0, {0}, {3}},
      {"cand_t2_c0", 693.21981291875363, 966656.0, {0}, {7}},
      {"cand_t3_c0", 19.732500000000002, 49152.0, {0}, {4}},
      {"cand_t1_c4_c3", 94.375682400000002, 360448.0, {4, 3}, {6}},
      {"cand_t3_c2", 0.76999999999998181, 49152.0, {2}, {8}}};
  const std::vector<double> kGoldenBase = {
      987.43127443751087, 867.58000000000004, 943.83500000000004,
      164.75,             31.75,              16.375,
      184.1225,           716.04999999999995, 856.21749999999997,
      181.22499999999999, 628.75030801014771, 1249.7550000000001};
  const std::vector<double> kGoldenOptimized = {
      987.43127443751087, 549.60366125000007, 907.67986666666661,
      12.0175,            12.0175,            16.375,
      89.7468176,         22.830187081246336, 855.44749999999999,
      60.29229711412821,  628.75030801014771, 1224.2750000000001};

  for (int parallelism : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "parallelism=" << parallelism);
    IndexAdvisorOptions options;
    options.parallelism = parallelism;
    IndexAdvisor advisor(db.catalog(), *workload, options);
    auto advice = advisor.SuggestWithIlp();
    ASSERT_TRUE(advice.ok()) << advice.status().ToString();

    EXPECT_EQ(advice->base_cost, 6827.8415824476588);
    EXPECT_EQ(advice->optimized_cost, 5366.4669121596999);
    EXPECT_EQ(advice->total_size_bytes, 4030464.0);
    EXPECT_TRUE(advice->proved_optimal);
    EXPECT_EQ(advice->optimizer_calls, 96);
    EXPECT_EQ(advice->inum_estimates, 322);
    ExpectGoldenIndexes(*advice, kGolden);
    EXPECT_EQ(advice->per_query_base, kGoldenBase);
    EXPECT_EQ(advice->per_query_optimized, kGoldenOptimized);
  }
}

}  // namespace
}  // namespace parinda
