// End-to-end correctness oracle: every query in the corpus is evaluated by a
// brute-force reference evaluator (cartesian product + semantic filtering,
// no optimizer, no indexes, no join algorithms) and compared against the
// full parse → bind → plan → execute pipeline under several planner
// configurations. Any bug in path selection, join execution, scan pruning or
// predicate pushdown shows up as a row-set mismatch.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "executor/executor.h"
#include "optimizer/planner.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace parinda {
namespace {

Database* OracleDb() {
  static Database* db = [] {
    auto* d = new Database();
    const TableId orders = testing_util::MakeOrdersTable(d, 4000);
    const TableId customers = testing_util::MakeCustomersTable(d, 400);
    // A spread of indexes so different plans become attractive.
    PARINDA_CHECK_OK(d->BuildIndex("o_id", orders, {0}));
    PARINDA_CHECK_OK(d->BuildIndex("o_cid", orders, {1}));
    PARINDA_CHECK_OK(d->BuildIndex("o_amount", orders, {2}));
    PARINDA_CHECK_OK(d->BuildIndex("o_region_amount", orders, {3, 2}));
    PARINDA_CHECK_OK(d->BuildIndex("c_cid", customers, {0}));
    return d;
  }();
  return db;
}

/// Brute-force evaluation: all FROM combinations, semantic WHERE, semantic
/// projection/aggregation — mirrors SQL semantics with no planning at all.
Result<std::vector<Row>> BruteForce(const Database& db,
                                    const SelectStatement& stmt) {
  const int num_ranges = static_cast<int>(stmt.from.size());
  std::vector<const HeapTable*> heaps;
  for (const TableRef& ref : stmt.from) {
    const HeapTable* heap = db.GetHeapTable(ref.bound_table);
    if (heap == nullptr) return Status::NotFound("heap missing");
    heaps.push_back(heap);
  }
  // Enumerate the cross product with an odometer.
  std::vector<CompositeRow> matches;
  std::vector<int64_t> pick(static_cast<size_t>(num_ranges), 0);
  while (true) {
    CompositeRow composite(static_cast<size_t>(num_ranges));
    for (int r = 0; r < num_ranges; ++r) {
      composite[r] = heaps[r]->row(pick[r]);
    }
    bool pass = true;
    if (stmt.where != nullptr) {
      PARINDA_ASSIGN_OR_RETURN(pass, EvalPredicate(*stmt.where, composite));
    }
    if (pass) matches.push_back(std::move(composite));
    int r = 0;
    while (r < num_ranges && ++pick[r] >= heaps[r]->num_rows()) {
      pick[r] = 0;
      ++r;
    }
    if (r == num_ranges) break;
  }

  std::vector<Row> out;
  const bool has_aggs = StatementHasAggregates(stmt);
  if (has_aggs) {
    // Group by evaluated keys.
    std::map<std::string, std::vector<const CompositeRow*>> groups;
    for (const CompositeRow& row : matches) {
      std::string key;
      for (const auto& g : stmt.group_by) {
        PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*g, row));
        key += v.ToString() + "|";
      }
      groups[key].push_back(&row);
    }
    if (groups.empty() && stmt.group_by.empty()) groups[""] = {};
    for (const auto& [key, group] : groups) {
      Row row;
      for (const SelectItem& item : stmt.select_list) {
        PARINDA_ASSIGN_OR_RETURN(Value v, EvalAggregate(*item.expr, group));
        row.push_back(std::move(v));
      }
      out.push_back(std::move(row));
    }
  } else {
    for (const CompositeRow& match : matches) {
      Row row;
      for (const SelectItem& item : stmt.select_list) {
        PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*item.expr, match));
        row.push_back(std::move(v));
      }
      out.push_back(std::move(row));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  return out;
}

struct OracleCase {
  const char* sql;
};

class OracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleTest, PipelineMatchesBruteForce) {
  Database* db = OracleDb();
  const std::string sql = GetParam().sql;
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db->catalog(), &*stmt).ok());
  auto expected = BruteForce(*db, *stmt);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  const struct {
    bool indexscan, nestloop, hashjoin, mergejoin;
  } configs[] = {
      {true, true, true, true},
      {false, true, true, true},
      {true, false, false, true},
      {true, true, false, false},
  };
  for (const auto& config : configs) {
    PlannerOptions options;
    options.params.enable_indexscan = config.indexscan;
    options.params.enable_nestloop = config.nestloop;
    options.params.enable_hashjoin = config.hashjoin;
    options.params.enable_mergejoin = config.mergejoin;
    auto plan = PlanQuery(db->catalog(), *stmt, options);
    ASSERT_TRUE(plan.ok());
    auto result = ExecutePlan(*db, *stmt, *plan);
    ASSERT_TRUE(result.ok()) << plan->ToString(db->catalog());
    std::vector<Row> actual = result->rows;
    std::sort(actual.begin(), actual.end(), [](const Row& a, const Row& b) {
      return CompareRows(a, b) < 0;
    });
    ASSERT_EQ(actual.size(), expected->size())
        << sql << "\n" << plan->ToString(db->catalog());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(CompareRows(actual[i], (*expected)[i]), 0)
          << sql << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, OracleTest,
    ::testing::Values(
        OracleCase{"SELECT id, amount FROM orders WHERE id = 1234"},
        OracleCase{"SELECT id FROM orders WHERE amount BETWEEN 250 AND 300"},
        OracleCase{"SELECT id FROM orders WHERE region = 'north' "
                   "AND amount < 100"},
        OracleCase{"SELECT id FROM orders WHERE id IN (3, 33, 333, 3333)"},
        OracleCase{"SELECT id FROM orders WHERE amount < 50 OR amount > 980"},
        OracleCase{"SELECT id FROM orders WHERE NOT (flag = true) "
                   "AND customer_id < 20"},
        OracleCase{"SELECT o.id, c.name FROM orders o, customers c "
                   "WHERE o.customer_id = c.cid AND c.cid = 42"},
        OracleCase{"SELECT o.id FROM orders o, customers c "
                   "WHERE o.customer_id = c.cid AND c.score > 90 "
                   "AND o.amount < 150"},
        OracleCase{"SELECT count(*) FROM orders o, customers c "
                   "WHERE o.customer_id = c.cid"},
        OracleCase{"SELECT region, count(*), avg(amount) FROM orders "
                   "WHERE amount > 500 GROUP BY region"},
        OracleCase{"SELECT c.name, count(*) FROM orders o, customers c "
                   "WHERE o.customer_id = c.cid AND c.cid < 10 "
                   "GROUP BY c.name"},
        OracleCase{"SELECT min(amount), max(amount), sum(amount) FROM orders "
                   "WHERE region = 'emea'"},
        OracleCase{"SELECT flag, count(*) FROM orders GROUP BY flag"},
        OracleCase{"SELECT id + 1, amount * 2 FROM orders WHERE id < 10"},
        OracleCase{"SELECT id FROM orders WHERE flag IS NULL "
                   "AND amount BETWEEN 100 AND 200"}));

}  // namespace
}  // namespace parinda
