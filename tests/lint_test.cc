#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace parinda {
namespace lint {
namespace {

std::vector<Diagnostic> RunOn(const std::string& path,
                              const std::string& content) {
  Linter linter;
  linter.AddSource(path, content);
  return linter.Run();
}

int CountCheck(const std::vector<Diagnostic>& diags, const std::string& check) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.check == check; }));
}

TEST(LintUncheckedStatus, FlagsDiscardedCallToDeclaredFallible) {
  auto diags = RunOn("src/foo/bar.cc",
                     "Status DoThing();\n"
                     "void caller() {\n"
                     "  DoThing();\n"
                     "}\n");
  ASSERT_EQ(CountCheck(diags, "unchecked-status"), 1);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("DoThing"), std::string::npos);
}

TEST(LintUncheckedStatus, FlagsDiscardedResultAndMemberCalls) {
  auto diags = RunOn("src/foo/bar.cc",
                     "Result<int> Compute(int x);\n"
                     "Status Widget::Refresh();\n"
                     "void caller(Widget* w) {\n"
                     "  Compute(4);\n"
                     "  w->Refresh();\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-status"), 2);
}

TEST(LintUncheckedStatus, RegistryIsSharedAcrossSources) {
  Linter linter;
  linter.AddSource("src/a/api.h",
                   "#ifndef G_\n#define G_\nStatus Flush();\n#endif\n");
  linter.AddSource("src/b/user.cc", "void f() { Flush(); }\n");
  auto diags = linter.Run();
  ASSERT_EQ(CountCheck(diags, "unchecked-status"), 1);
  EXPECT_EQ(diags[0].file, "src/b/user.cc");
}

TEST(LintUncheckedStatus, AllowsUsedAndExplicitlyDiscardedResults) {
  auto diags = RunOn("src/foo/bar.cc",
                     "Status DoThing();\n"
                     "Status propagate() { return DoThing(); }\n"
                     "void used() {\n"
                     "  Status st = DoThing();\n"
                     "  (void)DoThing();\n"
                     "  if (!DoThing().ok()) { }\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-status"), 0);
}

TEST(LintUncheckedStatus, SuppressionOnSameOrPreviousLine) {
  auto diags = RunOn("src/foo/bar.cc",
                     "Status DoThing();\n"
                     "void caller() {\n"
                     "  DoThing();  // parinda-lint: allow(unchecked-status)\n"
                     "  // parinda-lint: allow(unchecked-status)\n"
                     "  DoThing();\n"
                     "  DoThing();\n"
                     "}\n");
  ASSERT_EQ(CountCheck(diags, "unchecked-status"), 1);
  EXPECT_EQ(diags[0].line, 6);
}

TEST(LintRawNewDelete, FlagsOutsideStorageOnly) {
  const std::string code =
      "void f() {\n"
      "  int* p = new int(3);\n"
      "  delete p;\n"
      "}\n";
  EXPECT_EQ(CountCheck(RunOn("src/foo/bar.cc", code), "raw-new-delete"), 2);
  EXPECT_EQ(CountCheck(RunOn("src/storage/heap.cc", code), "raw-new-delete"),
            0);
  // Non-library code (tests, tools) is out of scope for this check.
  EXPECT_EQ(CountCheck(RunOn("tests/foo_test.cc", code), "raw-new-delete"), 0);
}

TEST(LintRawNewDelete, DeletedMembersAndOperatorDeclsExempt) {
  auto diags = RunOn("src/foo/bar.h",
                     "#ifndef G_\n#define G_\n"
                     "class Widget {\n"
                     " public:\n"
                     "  Widget(const Widget&) = delete;\n"
                     "  Widget& operator=(const Widget&) = delete;\n"
                     "};\n"
                     "#endif  // G_\n");
  EXPECT_EQ(CountCheck(diags, "raw-new-delete"), 0);
}

TEST(LintAssertInLib, FlagsAssertButNotStaticAssert) {
  auto diags = RunOn("src/foo/bar.cc",
                     "void f(int x) {\n"
                     "  assert(x > 0);\n"
                     "  static_assert(sizeof(int) == 4);\n"
                     "}\n");
  ASSERT_EQ(CountCheck(diags, "assert-in-lib"), 1);
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintAssertInLib, MacroDefinitionsAreInvisible) {
  // Preprocessor lines are not part of the token stream, so the DCHECK
  // macro's own definition does not trip the check.
  auto diags = RunOn("src/common/check2.h",
                     "#ifndef G_\n#define G_\n"
                     "#define MY_DCHECK(cond) assert(cond)\n"
                     "#endif  // G_\n");
  EXPECT_EQ(CountCheck(diags, "assert-in-lib"), 0);
}

TEST(LintIostreamInLib, FlagsCoutAndCerrInSrcOnly) {
  const std::string code = "void f() { std::cout << 1; std::cerr << 2; }\n";
  EXPECT_EQ(CountCheck(RunOn("src/foo/bar.cc", code), "iostream-in-lib"), 2);
  EXPECT_EQ(CountCheck(RunOn("examples/demo.cpp", code), "iostream-in-lib"),
            0);
}

TEST(LintIostreamInLib, SuppressionWorks) {
  auto diags = RunOn(
      "src/foo/bar.cc",
      "void f() { std::cerr << 1; }  // parinda-lint: allow(iostream-in-lib)\n");
  EXPECT_EQ(CountCheck(diags, "iostream-in-lib"), 0);
}

TEST(LintHeaderGuard, AcceptsIfndefPairAndPragmaOnce) {
  EXPECT_EQ(CountCheck(RunOn("src/a.h",
                             "#ifndef SRC_A_H_\n#define SRC_A_H_\n"
                             "int f();\n#endif\n"),
                       "header-guard"),
            0);
  EXPECT_EQ(
      CountCheck(RunOn("src/b.h", "#pragma once\nint f();\n"), "header-guard"),
      0);
}

TEST(LintHeaderGuard, FlagsMissingOrMisplacedGuard) {
  EXPECT_EQ(CountCheck(RunOn("src/a.h", "int f();\n"), "header-guard"), 1);
  // An #include before the guard leaves the header unprotected.
  EXPECT_EQ(CountCheck(RunOn("src/b.h",
                             "#include <string>\n#ifndef G_\n#define G_\n"
                             "#endif\n"),
                       "header-guard"),
            1);
  // Sources are not headers.
  EXPECT_EQ(CountCheck(RunOn("src/c.cc", "int f() { return 1; }\n"),
                       "header-guard"),
            0);
}

TEST(LintTodoOwner, FlagsOwnerlessTodoOnly) {
  auto diags = RunOn("src/foo/bar.cc",
                     "// TODO: fix\n"
                     "// TODO(alice): fine\n"
                     "/* TODO someday */\n"
                     "int x;\n");
  EXPECT_EQ(CountCheck(diags, "todo-no-owner"), 2);
}

TEST(LintSuppression, AllowAllAndAllowList) {
  auto diags = RunOn("src/foo/bar.cc",
                     "void f() {\n"
                     "  int* p = new int(1);  // parinda-lint: allow(all)\n"
                     "  delete p;  // parinda-lint: allow(foo,raw-new-delete)\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "raw-new-delete"), 0);
}

TEST(LintSuppression, WrongCheckNameDoesNotSuppress) {
  auto diags = RunOn("src/foo/bar.cc",
                     "void f() {\n"
                     "  int* p = new int(1);  // parinda-lint: allow(todo-no-owner)\n"
                     "  delete p;\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "raw-new-delete"), 2);
}

TEST(LintFormat, TextAndJsonShapes) {
  std::vector<Diagnostic> diags = {
      {"src/a.cc", 7, "assert-in-lib", "assert() in library code"}};
  EXPECT_EQ(FormatText(diags),
            "src/a.cc:7: [assert-in-lib] assert() in library code\n");
  std::string json = FormatJson(diags);
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"assert-in-lib\""), std::string::npos);
  EXPECT_EQ(FormatJson({}), "[]\n");
}

TEST(LintScanner, LiteralsAndCommentsDoNotProduceFalsePositives) {
  auto diags = RunOn("src/foo/bar.cc",
                     "const char* s = \"assert(new std::cout)\";\n"
                     "// assert(1) in a comment is not code: std::cerr\n"
                     "char c = '\\'';\n"
                     "int after = 1;\n");
  EXPECT_EQ(CountCheck(diags, "assert-in-lib"), 0);
  EXPECT_EQ(CountCheck(diags, "raw-new-delete"), 0);
  EXPECT_EQ(CountCheck(diags, "iostream-in-lib"), 0);
}

TEST(LintDetachedThread, FlagsRawThreadCreationInLib) {
  auto diags = RunOn("src/advisor/worker.cc",
                     "void f() {\n"
                     "  std::thread t([] {});\n"
                     "  auto fut = std::async([] {});\n"
                     "  t.join();\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "detached-thread"), 2);
}

TEST(LintDetachedThread, FlagsDetachEverywhereInLib) {
  auto diags = RunOn("src/common/thread_pool.cc",
                     "void ThreadPool::Bad() { workers_[0].detach(); }\n");
  EXPECT_EQ(CountCheck(diags, "detached-thread"), 1);
}

TEST(LintDetachedThread, ThreadPoolFilesMayCreateThreads) {
  auto diags = RunOn("src/common/thread_pool.h",
                     "#ifndef G_\n#define G_\n"
                     "#include <thread>\n"
                     "std::vector<std::thread> workers_;\n"
                     "#endif\n");
  EXPECT_EQ(CountCheck(diags, "detached-thread"), 0);
}

TEST(LintDetachedThread, NonLibraryPathsAreExempt) {
  auto diags = RunOn("tests/some_test.cc",
                     "void f() { std::thread t([] {}); t.detach(); }\n");
  EXPECT_EQ(CountCheck(diags, "detached-thread"), 0);
}

TEST(LintDetachedThread, SuppressionComments) {
  auto diags = RunOn("src/a.cc",
                     "// parinda-lint: allow(detached-thread)\n"
                     "std::thread t;\n"
                     "std::thread u;  // parinda-lint: allow(all)\n");
  EXPECT_EQ(CountCheck(diags, "detached-thread"), 0);
}

TEST(LintBareCounter, FlagsAtomicTallyOutsideCommon) {
  auto diags = RunOn("src/advisor/tally.cc",
                     "std::atomic<int64_t> g_calls{0};\n"
                     "void f() { g_calls.fetch_add(1); }\n");
  ASSERT_EQ(CountCheck(diags, "bare-counter"), 1);
  EXPECT_NE(diags[0].message.find("metrics"), std::string::npos);
}

TEST(LintBareCounter, CommonAndTestPathsAreExempt) {
  const std::string source = "std::atomic<bool> g_flag{false};\n";
  EXPECT_EQ(CountCheck(RunOn("src/common/failpoint.cc", source),
                       "bare-counter"),
            0);
  EXPECT_EQ(CountCheck(RunOn("tests/some_test.cc", source), "bare-counter"),
            0);
  EXPECT_EQ(CountCheck(RunOn("bench/bench_foo.cc", source), "bare-counter"),
            0);
}

TEST(LintBareCounter, SuppressionWithRationaleIsHonored) {
  auto diags = RunOn("src/autopart/autopart.h",
                     "#ifndef G_\n#define G_\n"
                     "// instance-local result statistic, not process-wide\n"
                     "// parinda-lint: allow(bare-counter)\n"
                     "std::atomic<int> evaluations_{0};\n"
                     "#endif\n");
  EXPECT_EQ(CountCheck(diags, "bare-counter"), 0);
}

TEST(LintOverlayInternals, FlagsHandWiredOverlayOutsideDesignLayer) {
  auto diags = RunOn("src/parinda/parinda.cc",
                     "void f(const CatalogReader& c) {\n"
                     "  WhatIfTableCatalog tables(c);\n"
                     "  WhatIfIndexSet indexes(tables);\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "overlay-internals"), 1);
}

TEST(LintOverlayInternals, SingleMechanismIsLegal) {
  EXPECT_EQ(CountCheck(RunOn("src/advisor/index_advisor.cc",
                             "WhatIfIndexSet candidates(catalog);\n"),
                       "overlay-internals"),
            0);
  EXPECT_EQ(CountCheck(RunOn("src/autopart/autopart.cc",
                             "WhatIfTableCatalog overlay(catalog);\n"),
                       "overlay-internals"),
            0);
}

TEST(LintOverlayInternals, FlagsComposedOverlayAndOverlayHeaderInclude) {
  auto diags = RunOn("src/advisor/index_advisor.cc",
                     "#include \"design/overlay.h\"\n"
                     "ComposedOverlay overlay(catalog);\n");
  EXPECT_EQ(CountCheck(diags, "overlay-internals"), 2);
}

TEST(LintOverlayInternals, FlagsPlanningAgainstHandWiredWhatIfCatalog) {
  // Costing a what-if design by feeding a WhatIfTableCatalog straight to the
  // planner bypasses the evaluation engine (and its cost cache).
  auto diags = RunOn("src/parinda/parinda.cc",
                     "void f(const CatalogReader& c, const SelectStatement& s) {\n"
                     "  WhatIfTableCatalog tables(c);\n"
                     "  auto plan = PlanQuery(tables, s, {});\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "overlay-internals"), 1);
  auto planner_diags = RunOn("src/autopart/autopart.cc",
                             "void f(const CatalogReader& c) {\n"
                             "  WhatIfTableCatalog tables(c);\n"
                             "  Planner planner(tables);\n"
                             "}\n");
  EXPECT_EQ(CountCheck(planner_diags, "overlay-internals"), 1);
}

TEST(LintOverlayInternals, PlannerWithoutWhatIfCatalogIsLegal) {
  // Base-catalog planning outside the engine stays fine...
  EXPECT_EQ(CountCheck(RunOn("src/parinda/parinda.cc",
                             "auto plan = PlanQuery(catalog, stmt, {});\n"),
                       "overlay-internals"),
            0);
  // ...and so is holding the catalog overlay without planning against it.
  EXPECT_EQ(CountCheck(RunOn("src/autopart/autopart.cc",
                             "WhatIfTableCatalog overlay(catalog);\n"),
                       "overlay-internals"),
            0);
}

TEST(LintOverlayInternals, DesignWhatifEngineLayersAndTestsAreExempt) {
  const char* code =
      "#include \"design/overlay.h\"\n"
      "void f(const CatalogReader& c, const SelectStatement& s) {\n"
      "  ComposedOverlay overlay(c);\n"
      "  WhatIfTableCatalog tables(c);\n"
      "  WhatIfIndexSet indexes(tables);\n"
      "  auto plan = PlanQuery(tables, s, {});\n"
      "}\n";
  EXPECT_EQ(CountCheck(RunOn("src/design/overlay.cc", code),
                       "overlay-internals"),
            0);
  EXPECT_EQ(CountCheck(RunOn("src/whatif/whatif_index.cc", code),
                       "overlay-internals"),
            0);
  EXPECT_EQ(CountCheck(RunOn("src/engine/workload_evaluator.cc", code),
                       "overlay-internals"),
            0);
  EXPECT_EQ(CountCheck(RunOn("tests/design_test.cc", code),
                       "overlay-internals"),
            0);
  EXPECT_EQ(CountCheck(RunOn("bench/bench_interactive.cc", code),
                       "overlay-internals"),
            0);
}

TEST(LintOverlayInternals, SuppressionWorks) {
  auto diags = RunOn("src/parinda/parinda.cc",
                     "// parinda-lint: allow(overlay-internals)\n"
                     "ComposedOverlay overlay(catalog);\n");
  EXPECT_EQ(CountCheck(diags, "overlay-internals"), 0);
}

TEST(LintUncheckedDeadline, FlagsFailpointLoopWithoutBudgetCheck) {
  auto diags = RunOn("src/solver/bnb.cc",
                     "Status Solve() {\n"
                     "  while (!stack.empty()) {\n"
                     "    PARINDA_FAILPOINT(\"solver.bnb_node\");\n"
                     "    Expand();\n"
                     "  }\n"
                     "  return Status::OK();\n"
                     "}\n");
  ASSERT_EQ(CountCheck(diags, "unchecked-deadline"), 1);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintUncheckedDeadline, BudgetConsultingLoopsPass) {
  auto diags = RunOn(
      "src/solver/bnb.cc",
      "Status Solve() {\n"
      "  while (!stack.empty()) {\n"
      "    PARINDA_FAILPOINT(\"solver.bnb_node\");\n"
      "    if (options.deadline.Expired()) break;\n"
      "  }\n"
      "  for (int q = 0; q < n; ++q) {\n"
      "    PARINDA_FAILPOINT(\"advisor.enumerate\");\n"
      "    PARINDA_RETURN_IF_ERROR(CheckBudget(\"advisor.enumerate\"));\n"
      "  }\n"
      "  do {\n"
      "    PARINDA_FAILPOINT(\"x\");\n"
      "  } while (!token.cancelled());\n"
      "  return Status::OK();\n"
      "}\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-deadline"), 0);
}

TEST(LintUncheckedDeadline, FailpointOutsideLoopsAndNonLibExempt) {
  // Function-entry failpoints are not loops; tests/tools are out of scope.
  EXPECT_EQ(CountCheck(RunOn("src/inum/inum.cc",
                             "Status BuildEntry() {\n"
                             "  PARINDA_FAILPOINT(\"inum.build_entry\");\n"
                             "  return Status::OK();\n"
                             "}\n"),
                       "unchecked-deadline"),
            0);
  EXPECT_EQ(CountCheck(RunOn("tests/failpoint_test.cc",
                             "void f() {\n"
                             "  for (;;) { PARINDA_FAILPOINT(\"x\"); }\n"
                             "}\n"),
                       "unchecked-deadline"),
            0);
}

TEST(LintUncheckedDeadline, SuppressionWorks) {
  auto diags = RunOn("src/a.cc",
                     "void f() {\n"
                     "  while (spin) {\n"
                     "    // parinda-lint: allow(unchecked-deadline)\n"
                     "    PARINDA_FAILPOINT(\"x\");\n"
                     "  }\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-deadline"), 0);
}

TEST(LintSuppression, AllowFileWithinWindowCoversWholeFile) {
  auto diags = RunOn("src/foo/bar.cc",
                     "// parinda-lint: allow-file(unchecked-status)\n"
                     "Status DoThing();\n"
                     "void caller() {\n"
                     "  DoThing();\n"
                     "  DoThing();\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-status"), 0);
}

TEST(LintSuppression, AllowFileOnlyCoversNamedChecks) {
  auto diags = RunOn("src/foo/bar.cc",
                     "// parinda-lint: allow-file(assert-in-lib)\n"
                     "Status DoThing();\n"
                     "void caller() {\n"
                     "  assert(1 == 1);\n"
                     "  DoThing();\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "assert-in-lib"), 0);
  EXPECT_EQ(CountCheck(diags, "unchecked-status"), 1);
}

TEST(LintSuppression, AllowFileBeyondWindowDoesNotCount) {
  std::string padding(12, '\n');  // pushes the comment past line 10
  auto diags = RunOn("src/foo/bar.cc",
                     padding +
                         "// parinda-lint: allow-file(unchecked-status)\n"
                         "Status DoThing();\n"
                         "void caller() { DoThing(); }\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-status"), 1);
}

TEST(LintSuppression, AnalyzeTagIsAcceptedAsAlias) {
  auto diags = RunOn("src/foo/bar.cc",
                     "Status DoThing();\n"
                     "void caller() {\n"
                     "  DoThing();  // parinda-analyze: allow(all)\n"
                     "}\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-status"), 0);
}

TEST(LintSuppression, AllowFileDoesNotSatisfyLineAllowLookups) {
  // `allow-file` on a line past the window must not act as a line-scoped
  // `allow` for findings on that line or the next.
  std::string padding(12, '\n');
  auto diags = RunOn("src/foo/bar.cc",
                     padding +
                         "Status DoThing();\n"
                         "// parinda-lint: allow-file(unchecked-status)\n"
                         "void caller() { DoThing(); }\n");
  EXPECT_EQ(CountCheck(diags, "unchecked-status"), 1);
}

TEST(LintRegistry, ExplicitRegistrationFlagsCallSites) {
  Linter linter;
  linter.RegisterFallibleFunction("ExternalFallible");
  linter.AddSource("src/a.cc", "void f() { ExternalFallible(); }\n");
  EXPECT_EQ(CountCheck(linter.Run(), "unchecked-status"), 1);
}

}  // namespace
}  // namespace lint
}  // namespace parinda
