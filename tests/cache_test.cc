// Resource-governed, crash-safe evaluation cache (DESIGN.md §14):
//  - CacheGovernor: LRU eviction across shards under a byte budget, MRU pin,
//    stats, and the no-wrong-answers guarantee (budgeted advice equals
//    unbudgeted advice bit-for-bit).
//  - CacheSpill: durable save/load with per-record CRCs; every corruption —
//    bit flips, truncation, version skew, scope mismatch — degrades to a
//    cache miss, never a crash or a wrong cost. Includes a seeded fuzz loop
//    over randomized corruptions.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "autopart/autopart.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/file_io.h"
#include "design/design_session.h"
#include "engine/cache_governor.h"
#include "engine/cache_spill.h"
#include "storage/database.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

// ---------------------------------------------------------------- governor

/// A shard that records which ids the governor evicted from it.
struct RecordingShard {
  std::vector<std::string> evicted;
  int handle = 0;

  void Register(CacheGovernor* governor, const std::string& name) {
    handle = governor->RegisterShard(
        name, [this](const std::string& id) { evicted.push_back(id); });
  }
};

TEST(CacheGovernorTest, EvictsLeastRecentlyTouchedFirst) {
  CacheGovernor governor(MemoryBudget{300});
  RecordingShard shard;
  shard.Register(&governor, "test");
  ASSERT_TRUE(governor.Touch(shard.handle, "a", 100).ok());
  ASSERT_TRUE(governor.Touch(shard.handle, "b", 100).ok());
  ASSERT_TRUE(governor.Touch(shard.handle, "c", 100).ok());
  EXPECT_TRUE(shard.evicted.empty());
  EXPECT_EQ(governor.stats().tracked_bytes, 300);

  // "a" is coldest; the fourth entry pushes it out.
  ASSERT_TRUE(governor.Touch(shard.handle, "d", 100).ok());
  ASSERT_EQ(shard.evicted.size(), 1u);
  EXPECT_EQ(shard.evicted[0], "a");
  EXPECT_EQ(governor.stats().tracked_bytes, 300);

  // Re-touching "b" promotes it, so "c" goes next.
  ASSERT_TRUE(governor.Touch(shard.handle, "b", 100).ok());
  ASSERT_TRUE(governor.Touch(shard.handle, "e", 100).ok());
  ASSERT_EQ(shard.evicted.size(), 2u);
  EXPECT_EQ(shard.evicted[1], "c");
}

TEST(CacheGovernorTest, JustTouchedEntryIsNeverTheVictim) {
  // A single entry larger than the whole budget must survive its own Touch
  // (the caller holds a pointer into it); everything else is fair game.
  CacheGovernor governor(MemoryBudget{100});
  RecordingShard shard;
  shard.Register(&governor, "test");
  ASSERT_TRUE(governor.Touch(shard.handle, "small", 50).ok());
  ASSERT_TRUE(governor.Touch(shard.handle, "huge", 500).ok());
  EXPECT_EQ(shard.evicted, std::vector<std::string>{"small"});
  // Over budget, but the pin keeps the last entry: no livelock, no
  // use-after-free.
  EXPECT_EQ(governor.stats().tracked_bytes, 500);

  // The next touch of another id can now evict "huge".
  ASSERT_TRUE(governor.Touch(shard.handle, "next", 50).ok());
  ASSERT_EQ(shard.evicted.size(), 2u);
  EXPECT_EQ(shard.evicted[1], "huge");
}

TEST(CacheGovernorTest, EvictionCrossesShards) {
  CacheGovernor governor(MemoryBudget{250});
  RecordingShard costs;
  RecordingShard models;
  costs.Register(&governor, "costs");
  models.Register(&governor, "models");
  ASSERT_TRUE(governor.Touch(costs.handle, "q0", 100).ok());
  ASSERT_TRUE(governor.Touch(models.handle, "0", 100).ok());
  ASSERT_TRUE(governor.Touch(costs.handle, "q1", 100).ok());
  // The victim is the globally coldest entry — costs."q0" — even though the
  // touch came from the costs shard itself.
  EXPECT_EQ(costs.evicted, std::vector<std::string>{"q0"});
  EXPECT_TRUE(models.evicted.empty());
}

TEST(CacheGovernorTest, ResizingATouchedEntryAdjustsTracking) {
  CacheGovernor governor(MemoryBudget{1000});
  RecordingShard shard;
  shard.Register(&governor, "test");
  ASSERT_TRUE(governor.Touch(shard.handle, "grows", 100).ok());
  ASSERT_TRUE(governor.Touch(shard.handle, "grows", 400).ok());
  EXPECT_EQ(governor.stats().tracked_bytes, 400);
  ASSERT_TRUE(governor.Touch(shard.handle, "grows", 50).ok());
  EXPECT_EQ(governor.stats().tracked_bytes, 50);
}

TEST(CacheGovernorTest, ForgetDropsTrackingWithoutCallback) {
  CacheGovernor governor(MemoryBudget{1000});
  RecordingShard shard;
  RecordingShard other;
  shard.Register(&governor, "test");
  other.Register(&governor, "other");
  ASSERT_TRUE(governor.Touch(shard.handle, "a", 100).ok());
  ASSERT_TRUE(governor.Touch(shard.handle, "b", 100).ok());
  ASSERT_TRUE(governor.Touch(other.handle, "c", 100).ok());
  governor.Forget(shard.handle, "a");
  governor.Forget(shard.handle, "not-tracked");  // no-op
  EXPECT_EQ(governor.stats().tracked_bytes, 200);
  governor.ForgetShard(shard.handle);
  EXPECT_EQ(governor.stats().tracked_bytes, 100);
  EXPECT_TRUE(shard.evicted.empty());
  EXPECT_EQ(governor.stats().evictions, 0);
}

TEST(CacheGovernorTest, StatsTrackPeakAfterSettleAndEvictedBytes) {
  CacheGovernor governor(MemoryBudget{250});
  RecordingShard shard;
  shard.Register(&governor, "test");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(governor.Touch(shard.handle, "e" + std::to_string(i), 100).ok());
  }
  const CacheGovernor::Stats stats = governor.stats();
  // Peak is measured after eviction settled, so it respects the budget.
  EXPECT_LE(stats.peak_bytes, 250);
  EXPECT_EQ(stats.tracked_bytes, 200);
  EXPECT_EQ(stats.evictions, 8);
  EXPECT_EQ(stats.evicted_bytes, 800);
  EXPECT_EQ(governor.budget_bytes(), 250);
}

// ------------------------------------------------------------------- spill

std::vector<CostCacheRecord> SampleRecords() {
  std::vector<CostCacheRecord> records;
  CostCacheRecord plain;
  plain.key = "q0|aa11|vp:1:[2,3]";
  plain.cost = 12345.6789012345;
  records.push_back(plain);
  CostCacheRecord with_sql;
  with_sql.key = "q1|aa11";
  with_sql.cost = 0.1;  // not exactly representable: bit-identity matters
  with_sql.has_sql = true;
  with_sql.rewritten_sql = "SELECT a FROM t_part0 WHERE b = 'x\ny'";
  records.push_back(with_sql);
  CostCacheRecord base;
  base.key = "base:2|aa11";
  base.cost = -0.0;
  records.push_back(base);
  return records;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CacheSpillTest, RoundTripIsBitIdentical) {
  const std::string path = TempPath("roundtrip.parinda");
  const SpillScope scope{"aa11", 0x1234abcd};
  const std::vector<CostCacheRecord> saved = SampleRecords();
  ASSERT_TRUE(SaveCacheSpill(path, scope, saved, Deadline::Infinite()).ok());

  std::vector<CostCacheRecord> loaded;
  auto report = LoadCacheSpill(path, scope, &loaded, Deadline::Infinite());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records_loaded, 3);
  EXPECT_EQ(report->records_rejected, 0);
  ASSERT_EQ(loaded.size(), saved.size());
  for (size_t i = 0; i < saved.size(); ++i) {
    EXPECT_EQ(loaded[i].key, saved[i].key);
    // Bit-identity, not numeric equality: -0.0 vs 0.0 must round-trip too.
    uint64_t saved_bits = 0;
    uint64_t loaded_bits = 0;
    std::memcpy(&saved_bits, &saved[i].cost, sizeof(saved_bits));
    std::memcpy(&loaded_bits, &loaded[i].cost, sizeof(loaded_bits));
    EXPECT_EQ(loaded_bits, saved_bits) << loaded[i].key;
    EXPECT_EQ(loaded[i].has_sql, saved[i].has_sql);
    EXPECT_EQ(loaded[i].rewritten_sql, saved[i].rewritten_sql);
  }
  std::remove(path.c_str());
}

TEST(CacheSpillTest, MissingFileIsNotFound) {
  std::vector<CostCacheRecord> loaded;
  auto report = LoadCacheSpill(TempPath("does_not_exist.parinda"), SpillScope{},
                               &loaded, Deadline::Infinite());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(CacheSpillTest, ZeroByteFileIsAWholeFileMiss) {
  const std::string path = TempPath("zero_byte.parinda");
  ASSERT_TRUE(WriteFileAtomic(path, "").ok());
  std::vector<CostCacheRecord> loaded;
  auto report =
      LoadCacheSpill(path, SpillScope{}, &loaded, Deadline::Infinite());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(CacheSpillTest, VersionSkewAndScopeMismatchAreWholeFileMisses) {
  const std::string path = TempPath("mismatch.parinda");
  const SpillScope scope{"aa11", 7};
  ASSERT_TRUE(
      SaveCacheSpill(path, scope, SampleRecords(), Deadline::Infinite()).ok());

  std::vector<CostCacheRecord> loaded;
  // Future version.
  ASSERT_TRUE(WriteFileAtomic(TempPath("v9.parinda"),
                              "PARINDA-SPILL v9\nparams aa11\n")
                  .ok());
  auto skew = LoadCacheSpill(TempPath("v9.parinda"), scope, &loaded,
                             Deadline::Infinite());
  ASSERT_FALSE(skew.ok());
  EXPECT_EQ(skew.status().code(), StatusCode::kParseError);
  EXPECT_NE(skew.status().message().find("v9"), std::string::npos);

  // Params mismatch (costs computed under other parameters).
  auto params = LoadCacheSpill(path, SpillScope{"bb22", 7}, &loaded,
                               Deadline::Infinite());
  ASSERT_FALSE(params.ok());
  EXPECT_EQ(params.status().code(), StatusCode::kFailedPrecondition);

  // Scope mismatch (different catalog/workload).
  auto scope_miss = LoadCacheSpill(path, SpillScope{"aa11", 8}, &loaded,
                                   Deadline::Infinite());
  ASSERT_FALSE(scope_miss.ok());
  EXPECT_EQ(scope_miss.status().code(), StatusCode::kFailedPrecondition);

  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
  std::remove(TempPath("v9.parinda").c_str());
}

TEST(CacheSpillTest, SingleFlippedPayloadByteRejectsOnlyThatRecord) {
  const std::string path = TempPath("flip.parinda");
  const SpillScope scope{"aa11", 7};
  const std::vector<CostCacheRecord> saved = SampleRecords();
  ASSERT_TRUE(SaveCacheSpill(path, scope, saved, Deadline::Infinite()).ok());
  auto content = ReadFile(path);
  ASSERT_TRUE(content.ok());

  // Flip one bit inside the *first record's payload* (the line after its
  // header).
  const size_t header = content->find("record ");
  ASSERT_NE(header, std::string::npos);
  const size_t payload = content->find('\n', header) + 1;
  (*content)[payload + 3] ^= 0x10;
  ASSERT_TRUE(WriteFileAtomic(path, *content).ok());

  std::vector<CostCacheRecord> loaded;
  auto report = LoadCacheSpill(path, scope, &loaded, Deadline::Infinite());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records_loaded, 2);
  EXPECT_EQ(report->records_rejected, 1);
  EXPECT_NE(report->diagnosis.find("CRC"), std::string::npos);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].key, saved[1].key);
  EXPECT_EQ(loaded[1].key, saved[2].key);
  std::remove(path.c_str());
}

TEST(CacheSpillTest, EofMidRecordLoadsThePrefix) {
  const std::string path = TempPath("eof_mid_record.parinda");
  const SpillScope scope{"aa11", 7};
  const std::vector<CostCacheRecord> saved = SampleRecords();
  ASSERT_TRUE(SaveCacheSpill(path, scope, saved, Deadline::Infinite()).ok());
  auto content = ReadFile(path);
  ASSERT_TRUE(content.ok());

  // Cut the file in the middle of the *second* record's payload — a torn
  // write. The first record still loads; the tear and the lost remainder
  // count as rejected.
  const size_t first = content->find("record ");
  const size_t second = content->find("record ", first + 1);
  ASSERT_NE(second, std::string::npos);
  const size_t second_payload = content->find('\n', second) + 1;
  ASSERT_TRUE(
      WriteFileAtomic(path, content->substr(0, second_payload + 4)).ok());

  std::vector<CostCacheRecord> loaded;
  auto report = LoadCacheSpill(path, scope, &loaded, Deadline::Infinite());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records_loaded, 1);
  EXPECT_GE(report->records_rejected, 1);
  EXPECT_NE(report->diagnosis.find("truncated"), std::string::npos);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].key, saved[0].key);
  std::remove(path.c_str());
}

TEST(CacheSpillTest, SeededFuzzNeverCrashesAndNeverServesWrongCosts) {
  // ≥ 200 randomized corruptions (bit flips, truncations, garbage splices)
  // of a valid spill file: every load must return cleanly, and every record
  // it does accept must be bit-identical to one the writer produced — CRC32
  // catches all 1-2 bit errors, and the length-delimited framing bounds the
  // blast radius of everything else.
  const std::string base_path = TempPath("fuzz_base.parinda");
  const SpillScope scope{"aa11", 7};
  std::vector<CostCacheRecord> saved = SampleRecords();
  for (int i = 0; i < 20; ++i) {
    CostCacheRecord r;
    r.key = "q" + std::to_string(i + 10) + "|aa11|vp:" + std::to_string(i);
    r.cost = 1e6 / (i + 1);
    r.has_sql = (i % 3) == 0;
    if (r.has_sql) r.rewritten_sql = "SELECT " + std::to_string(i);
    saved.push_back(std::move(r));
  }
  ASSERT_TRUE(SaveCacheSpill(base_path, scope, saved, Deadline::Infinite()).ok());
  auto pristine = ReadFile(base_path);
  ASSERT_TRUE(pristine.ok());

  auto cost_bits = [](double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  };
  std::mt19937 rng(20260808);  // fixed seed: failures reproduce
  const std::string path = TempPath("fuzz_mutated.parinda");
  int64_t total_loaded = 0;
  int64_t total_rejected = 0;
  for (int round = 0; round < 250; ++round) {
    std::string mutated = *pristine;
    const int kind = static_cast<int>(rng() % 3);
    if (kind == 0) {
      // Bit flip(s).
      const int flips = 1 + static_cast<int>(rng() % 4);
      for (int f = 0; f < flips; ++f) {
        mutated[rng() % mutated.size()] ^=
            static_cast<char>(1u << (rng() % 8));
      }
    } else if (kind == 1) {
      // Truncation (torn write / partial copy).
      mutated.resize(rng() % mutated.size());
    } else {
      // Garbage splice.
      const size_t at = rng() % mutated.size();
      std::string junk(1 + rng() % 64, '\0');
      for (char& c : junk) c = static_cast<char>(rng() % 256);
      mutated.insert(at, junk);
    }
    ASSERT_TRUE(WriteFileAtomic(path, mutated).ok());

    std::vector<CostCacheRecord> loaded;
    auto report = LoadCacheSpill(path, scope, &loaded, Deadline::Infinite());
    if (!report.ok()) continue;  // whole-file miss: a fine outcome
    total_loaded += report->records_loaded;
    total_rejected += report->records_rejected;
    for (const CostCacheRecord& got : loaded) {
      bool matched = false;
      for (const CostCacheRecord& want : saved) {
        if (got.key != want.key) continue;
        EXPECT_EQ(cost_bits(got.cost), cost_bits(want.cost)) << got.key;
        EXPECT_EQ(got.has_sql, want.has_sql) << got.key;
        EXPECT_EQ(got.rewritten_sql, want.rewritten_sql) << got.key;
        matched = true;
        break;
      }
      EXPECT_TRUE(matched) << "loader fabricated a record: " << got.key;
    }
  }
  // The fuzz actually exercised both paths: most rounds load something, and
  // plenty of records were rejected along the way.
  EXPECT_GT(total_loaded, 0);
  EXPECT_GT(total_rejected, 0);
  std::remove(base_path.c_str());
  std::remove(path.c_str());
}

// -------------------------------------------------- end-to-end equivalence

struct Stack {
  Database db;
  Workload workload;

  Stack() {
    SdssConfig config;
    config.photoobj_rows = 1000;
    PARINDA_CHECK_OK(BuildSdssDatabase(&db, config));
    auto wl = MakeSdssWorkload(db.catalog());
    PARINDA_CHECK_OK(wl);
    workload = std::move(*wl);
  }
};

Result<InteractiveReport> EvaluateWithDesign(DesignSession* session) {
  const TableInfo* photoobj =
      session->overlay().catalog().FindTable("photoobj");
  PARINDA_CHECK(photoobj != nullptr);
  WhatIfPartitionDef def;
  def.name = "cache_test_part";
  def.parent = photoobj->id;
  def.columns = {0, 1, 2};
  PARINDA_RETURN_IF_ERROR(session->AddPartition(std::move(def)).status());
  return session->Evaluate();
}

TEST(BudgetEquivalenceTest, BudgetedDesignSessionMatchesUnbudgeted) {
  Stack s;
  DesignSession plain(s.db.catalog(), &s.workload);
  auto want = EvaluateWithDesign(&plain);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_EQ(plain.governor(), nullptr);

  // A budget far below the session's working set: evictions must happen,
  // peak tracked bytes must respect the budget, and the advice must be
  // bit-identical — the governor degrades to re-planning, never to wrong
  // numbers.
  DesignSessionOptions options;
  options.memory_budget_bytes = 2 * 1024;
  DesignSession budgeted(s.db.catalog(), &s.workload, options);
  auto got = EvaluateWithDesign(&budgeted);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  ASSERT_NE(budgeted.governor(), nullptr);
  const CacheGovernor::Stats stats = budgeted.governor()->stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.peak_bytes, options.memory_budget_bytes);

  EXPECT_EQ(got->base_cost, want->base_cost);
  EXPECT_EQ(got->optimized_cost, want->optimized_cost);
  EXPECT_EQ(got->average_benefit_pct, want->average_benefit_pct);
  EXPECT_EQ(got->per_query_optimized, want->per_query_optimized);
  // Eviction is reported as degradation, not hidden.
  EXPECT_TRUE(got->degradation.degraded);
  ASSERT_FALSE(got->degradation.fallbacks.empty());
  bool noted = false;
  for (const std::string& f : got->degradation.fallbacks) {
    if (f == "engine:cache-evicted") noted = true;
  }
  EXPECT_TRUE(noted);
  EXPECT_FALSE(want->degradation.degraded);
}

TEST(BudgetEquivalenceTest, BudgetedAutoPartMatchesUnbudgeted) {
  Stack s;
  AutoPartOptions plain_options;
  plain_options.max_iterations = 2;
  AutoPartAdvisor plain(s.db.catalog(), s.workload, plain_options);
  auto want = plain.Suggest();
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  AutoPartOptions options;
  options.max_iterations = 2;
  options.memory_budget_bytes = 8 * 1024;
  AutoPartAdvisor budgeted(s.db.catalog(), s.workload, options);
  auto got = budgeted.Suggest();
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  ASSERT_NE(budgeted.governor(), nullptr);
  const CacheGovernor::Stats stats = budgeted.governor()->stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.peak_bytes, options.memory_budget_bytes);

  EXPECT_EQ(got->base_cost, want->base_cost);
  EXPECT_EQ(got->optimized_cost, want->optimized_cost);
  ASSERT_EQ(got->fragments.size(), want->fragments.size());
  for (size_t i = 0; i < want->fragments.size(); ++i) {
    EXPECT_EQ(got->fragments[i].table, want->fragments[i].table);
    EXPECT_EQ(got->fragments[i].columns, want->fragments[i].columns);
  }
  // More planner work, same advice.
  EXPECT_GE(budgeted.evaluator_stats().cache_misses,
            plain.evaluator_stats().cache_misses);
}

TEST(SpillSessionTest, SavedCacheWarmsAFreshSessionBitIdentically) {
  Stack s;
  const std::string path = TempPath("session_spill.parinda");

  DesignSession first(s.db.catalog(), &s.workload);
  auto want = first.Evaluate();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(first.SaveCache(path).ok());

  DesignSession second(s.db.catalog(), &s.workload);
  auto report = second.LoadCache(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->records_loaded, 0);
  EXPECT_EQ(report->records_rejected, 0);

  auto got = second.Evaluate();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Warm start: every cost came from the spill — zero planner calls, and the
  // report matches the saving session's bit-for-bit.
  EXPECT_EQ(second.last_eval_planner_calls(), 0);
  EXPECT_EQ(got->base_cost, want->base_cost);
  EXPECT_EQ(got->optimized_cost, want->optimized_cost);
  EXPECT_EQ(got->per_query_base, want->per_query_base);
  EXPECT_EQ(got->per_query_optimized, want->per_query_optimized);
  std::remove(path.c_str());
}

TEST(SpillSessionTest, MismatchedParamsRefuseTheSpill) {
  Stack s;
  const std::string path = TempPath("session_spill_params.parinda");
  DesignSession first(s.db.catalog(), &s.workload);
  ASSERT_TRUE(first.Evaluate().ok());
  ASSERT_TRUE(first.SaveCache(path).ok());

  DesignSessionOptions other;
  other.params.random_page_cost = 2.5;
  DesignSession second(s.db.catalog(), &s.workload, other);
  auto report = second.LoadCache(path);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  // The refused load left the session fully usable — just cold.
  EXPECT_TRUE(second.Evaluate().ok());
  std::remove(path.c_str());
}

TEST(Crc32Test, KnownVectorsAndIncrementalUpdate) {
  // The reflected IEEE polynomial's check value.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32Update(Crc32Update(0, "1234"), "56789"), 0xcbf43926u);
}

}  // namespace
}  // namespace parinda
