#include <gtest/gtest.h>

#include <cmath>

#include "catalog/size_model.h"
#include "executor/executor.h"
#include "storage/analyze.h"
#include "storage/btree_index.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace parinda {
namespace {

TableSchema SimpleSchema() {
  return TableSchema("t", {{"a", ValueType::kInt64, 8, false},
                           {"b", ValueType::kDouble, 8, true},
                           {"s", ValueType::kString, 16, true}});
}

TEST(HeapTableTest, AppendAndRead) {
  HeapTable heap(SimpleSchema());
  auto id = heap.Append({Value::Int64(1), Value::Double(2.0), Value::String("x")});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  EXPECT_EQ(heap.num_rows(), 1);
  EXPECT_EQ(heap.row(0)[0].AsInt64(), 1);
}

TEST(HeapTableTest, ArityMismatchRejected) {
  HeapTable heap(SimpleSchema());
  EXPECT_FALSE(heap.Append({Value::Int64(1)}).ok());
}

TEST(HeapTableTest, PageAccountingMatchesSizeModel) {
  HeapTable heap(SimpleSchema());
  const int64_t n = 10000;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(heap.Append({Value::Int64(i), Value::Double(i * 0.5),
                             Value::String("abcdefgh")})
                    .ok());
  }
  const double estimated = EstimateHeapPages(
      static_cast<double>(n), {{ValueType::kInt64, 8.0},
                               {ValueType::kDouble, 8.0},
                               {ValueType::kString, 12.0}});
  EXPECT_NEAR(static_cast<double>(heap.num_pages()), estimated,
              estimated * 0.1);
}

TEST(HeapTableTest, PageOfIsMonotonic) {
  HeapTable heap(SimpleSchema());
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(heap.Append({Value::Int64(i), Value::Double(0.0),
                             Value::String("pad-pad-pad")})
                    .ok());
  }
  EXPECT_EQ(heap.PageOf(0), 0);
  int64_t prev = 0;
  for (RowId id = 0; id < heap.num_rows(); id += 100) {
    const int64_t page = heap.PageOf(id);
    EXPECT_GE(page, prev);
    EXPECT_LT(page, heap.num_pages());
    prev = page;
  }
}

TEST(BTreeIndexTest, BuildAndEqualScan) {
  HeapTable heap(SimpleSchema());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(heap.Append({Value::Int64(i % 100), Value::Double(i),
                             Value::String("v")})
                    .ok());
  }
  auto built = BTreeIndex::Build(heap, {0});
  ASSERT_TRUE(built.ok());
  const BTreeIndex& index = *built;
  EXPECT_EQ(index.num_entries(), 1000);
  auto scan = index.EqualScan({Value::Int64(42)});
  EXPECT_EQ(scan.row_ids.size(), 10u);
  for (RowId id : scan.row_ids) {
    EXPECT_EQ(heap.row(id)[0].AsInt64(), 42);
  }
}

TEST(BTreeIndexTest, RangeScanBounds) {
  HeapTable heap(SimpleSchema());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(heap.Append({Value::Int64(i), Value::Double(i),
                             Value::String("v")})
                    .ok());
  }
  auto built = BTreeIndex::Build(heap, {0});
  ASSERT_TRUE(built.ok());
  auto scan = built->RangeScan(Value::Int64(100), true, Value::Int64(199), true);
  EXPECT_EQ(scan.row_ids.size(), 100u);
  EXPECT_GT(scan.leaf_pages_touched, 0);
  auto open = built->RangeScan(std::nullopt, true, Value::Int64(9), true);
  EXPECT_EQ(open.row_ids.size(), 10u);
  auto exclusive =
      built->RangeScan(Value::Int64(100), false, Value::Int64(199), false);
  EXPECT_EQ(exclusive.row_ids.size(), 98u);
}

TEST(BTreeIndexTest, MulticolumnPrefixScan) {
  HeapTable heap(SimpleSchema());
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(heap.Append({Value::Int64(i % 3), Value::Double(i % 5),
                             Value::String("v")})
                    .ok());
  }
  auto built = BTreeIndex::Build(heap, {0, 1});
  ASSERT_TRUE(built.ok());
  auto full = built->EqualScan({Value::Int64(1), Value::Double(2.0)});
  EXPECT_EQ(full.row_ids.size(), 20u);
  auto prefix = built->EqualScan({Value::Int64(1)});
  EXPECT_EQ(prefix.row_ids.size(), 100u);
}

TEST(BTreeIndexTest, LeafPagesNearEquation1) {
  HeapTable heap(SimpleSchema());
  const int64_t n = 50000;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(heap.Append({Value::Int64(i), Value::Double(i),
                             Value::String("v")})
                    .ok());
  }
  auto built = BTreeIndex::Build(heap, {0});
  ASSERT_TRUE(built.ok());
  const double eq1 =
      Equation1IndexPages(static_cast<double>(n), {{ValueType::kInt64, 8.0}});
  // The what-if estimate (Equation 1) should be within ~25% of a real build.
  EXPECT_NEAR(static_cast<double>(built->leaf_pages()), eq1, eq1 * 0.25);
}

TEST(AnalyzeTest, BasicStatistics) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 5000);
  const TableInfo* info = db.catalog().GetTable(id);
  ASSERT_TRUE(info->HasStats());
  // id column: unique, correlated with physical order.
  const ColumnStats& id_stats = *info->StatsFor(0);
  EXPECT_LT(id_stats.n_distinct, 0.0);  // scales with table
  EXPECT_NEAR(id_stats.correlation, 1.0, 1e-6);
  EXPECT_TRUE(id_stats.mcv_values.empty());  // all unique -> no MCVs
  EXPECT_GE(id_stats.histogram_bounds.size(), 2u);
  EXPECT_EQ(id_stats.min_value.AsInt64(), 0);
  EXPECT_EQ(id_stats.max_value.AsInt64(), 4999);
}

TEST(AnalyzeTest, NullFractionAndMcvs) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 5000);
  const TableInfo* info = db.catalog().GetTable(id);
  // flag column: ~5% NULLs.
  EXPECT_NEAR(info->StatsFor(4)->null_frac, 0.05, 0.02);
  // region column: 8 distinct zipf values -> MCVs present.
  const ColumnStats& region = *info->StatsFor(3);
  EXPECT_FALSE(region.mcv_values.empty());
  EXPECT_NEAR(region.DistinctCount(info->row_count), 8.0, 0.5);
  // MCV frequencies sorted descending.
  for (size_t i = 1; i < region.mcv_freqs.size(); ++i) {
    EXPECT_GE(region.mcv_freqs[i - 1], region.mcv_freqs[i]);
  }
}

TEST(AnalyzeTest, HistogramIsSortedEquiDepth) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 5000);
  const TableInfo* info = db.catalog().GetTable(id);
  const ColumnStats& amount = *info->StatsFor(2);
  ASSERT_GE(amount.histogram_bounds.size(), 2u);
  for (size_t i = 1; i < amount.histogram_bounds.size(); ++i) {
    EXPECT_LE(amount.histogram_bounds[i - 1].Compare(
                  amount.histogram_bounds[i]),
              0);
  }
}

TEST(AnalyzeTest, EmptyTable) {
  HeapTable heap(SimpleSchema());
  auto stats = AnalyzeTable(heap);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->size(), 3u);
  EXPECT_DOUBLE_EQ((*stats)[0].null_frac, 0.0);
}

TEST(DatabaseTest, BuildIndexUpdatesCatalog) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 2000);
  auto iid = db.BuildIndex("orders_cid", id, {1});
  ASSERT_TRUE(iid.ok());
  const IndexInfo* info = db.catalog().GetIndex(*iid);
  ASSERT_NE(info, nullptr);
  EXPECT_GT(info->leaf_pages, 0);
  EXPECT_DOUBLE_EQ(info->entries, 2000);
  EXPECT_NE(db.GetBTree(*iid), nullptr);
}

TEST(DatabaseTest, FailedIndexBuildLeavesNoCatalogEntry) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 10);
  auto bad = db.BuildIndex("bad", id, {99});
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(db.catalog().TableIndexes(id).empty());
}

TEST(DatabaseTest, MaterializeVerticalPartition) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 1000);
  auto frag = db.MaterializeVerticalPartition(id, "orders_frag", {2, 3});
  ASSERT_TRUE(frag.ok());
  const TableInfo* info = db.catalog().GetTable(*frag);
  ASSERT_NE(info, nullptr);
  // PK (id) + amount + region.
  EXPECT_EQ(info->schema.num_columns(), 3);
  EXPECT_EQ(info->parent_table, id);
  EXPECT_DOUBLE_EQ(info->row_count, 1000);
  // Fragment is narrower than the parent.
  EXPECT_LT(info->pages, db.catalog().GetTable(id)->pages);
  // Data copied correctly.
  const HeapTable* heap = db.GetHeapTable(*frag);
  const HeapTable* parent = db.GetHeapTable(id);
  EXPECT_EQ(heap->row(5)[0].AsInt64(), parent->row(5)[0].AsInt64());
  EXPECT_EQ(heap->row(5)[1].Compare(parent->row(5)[2]), 0);
}

TEST(DatabaseTest, PartitionDedupsPkColumns) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 100);
  // Requesting the PK column itself must not duplicate it.
  auto frag = db.MaterializeVerticalPartition(id, "f", {0, 1});
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(db.catalog().GetTable(*frag)->schema.num_columns(), 2);
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

TEST(AnalyzeSamplingTest, SampledStatsApproximateFullStats) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 20000);
  const HeapTable* heap = db.GetHeapTable(id);
  AnalyzeOptions full;
  AnalyzeOptions sampled;
  sampled.sample_rows = 3000;
  for (ColumnId col : {2, 3, 4}) {  // amount, region, flag
    const ColumnStats exact = AnalyzeColumn(*heap, col, full);
    const ColumnStats approx = AnalyzeColumn(*heap, col, sampled);
    EXPECT_NEAR(approx.null_frac, exact.null_frac, 0.02);
    EXPECT_NEAR(approx.avg_width, exact.avg_width, 1.0);
    EXPECT_NEAR(approx.DistinctCount(20000), exact.DistinctCount(20000),
                std::max(3.0, exact.DistinctCount(20000) * 0.3));
  }
  // Histogram quantiles of a uniform column track the full-scan ones.
  const ColumnStats exact = AnalyzeColumn(*heap, 2, full);
  const ColumnStats approx = AnalyzeColumn(*heap, 2, sampled);
  ASSERT_GE(approx.histogram_bounds.size(), 2u);
  const auto quantile = [](const ColumnStats& s, double q) {
    const size_t pos = static_cast<size_t>(
        q * static_cast<double>(s.histogram_bounds.size() - 1));
    return s.histogram_bounds[pos].ToNumeric();
  };
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(quantile(approx, q), quantile(exact, q), 60.0);
  }
}

TEST(AnalyzeSamplingTest, NearUniqueColumnExtrapolates) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 20000);
  const HeapTable* heap = db.GetHeapTable(id);
  AnalyzeOptions sampled;
  sampled.sample_rows = 2000;
  // id is unique: the Duj1 path must report table-scaled distinct counts,
  // not the sample's 2000.
  const ColumnStats stats = AnalyzeColumn(*heap, 0, sampled);
  EXPECT_GT(stats.DistinctCount(20000), 15000.0);
}

TEST(AnalyzeSamplingTest, DeterministicForSeed) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 5000);
  const HeapTable* heap = db.GetHeapTable(id);
  AnalyzeOptions sampled;
  sampled.sample_rows = 500;
  const ColumnStats a = AnalyzeColumn(*heap, 2, sampled);
  const ColumnStats b = AnalyzeColumn(*heap, 2, sampled);
  EXPECT_DOUBLE_EQ(a.n_distinct, b.n_distinct);
  EXPECT_DOUBLE_EQ(a.null_frac, b.null_frac);
  ASSERT_EQ(a.histogram_bounds.size(), b.histogram_bounds.size());
  sampled.sample_seed = 999;
  const ColumnStats c = AnalyzeColumn(*heap, 2, sampled);
  // A different seed samples different rows (min bound will differ with
  // overwhelming probability on a continuous column).
  EXPECT_NE(a.min_value.ToNumeric(), c.min_value.ToNumeric());
}

TEST(AnalyzeSamplingTest, PlannerStillPicksGoodPlansOnSampledStats) {
  Database db;
  const TableId id = testing_util::MakeOrdersTable(&db, 20000);
  AnalyzeOptions sampled;
  sampled.sample_rows = 2000;
  ASSERT_TRUE(db.Analyze(id, sampled).ok());
  ASSERT_TRUE(db.BuildIndex("oid_sampled", id, {0}).ok());
  auto result = ExecuteSql(db, "SELECT amount FROM orders WHERE id = 77");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  // Selective point query over sampled stats must still use the index.
  EXPECT_LT(result->stats.seq_pages_read + result->stats.random_pages_read,
            20);
}

}  // namespace
}  // namespace parinda
