#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.h"
#include "catalog/size_model.h"
#include "catalog/value.h"

namespace parinda {
namespace {

TEST(ValueTest, NullOrderingAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  // NULLS LAST.
  EXPECT_GT(Value::Null().Compare(Value::Int64(1)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(10.1).Compare(Value::Int64(10)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, StorageSizes) {
  EXPECT_EQ(Value::Int64(1).StorageSize(), 8);
  EXPECT_EQ(Value::Double(1.5).StorageSize(), 8);
  EXPECT_EQ(Value::Bool(true).StorageSize(), 1);
  // varlena header (4) + payload.
  EXPECT_EQ(Value::String("abcd").StorageSize(), 8);
  EXPECT_EQ(Value::Null().StorageSize(), 0);
}

TEST(ValueTest, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::String("sky").ToString(), "'sky'");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("a").Hash(), Value::String("a").Hash());
}

TEST(SizeModelTest, AlignUp) {
  EXPECT_DOUBLE_EQ(AlignUp(0, 8), 0);
  EXPECT_DOUBLE_EQ(AlignUp(1, 8), 8);
  EXPECT_DOUBLE_EQ(AlignUp(8, 8), 8);
  EXPECT_DOUBLE_EQ(AlignUp(9, 4), 12);
}

TEST(SizeModelTest, AlignedRowWidthPadsBetweenColumns) {
  // bool (1 byte) followed by int64 pads to 8 before the int.
  const double w = AlignedRowWidth({{ValueType::kBool, 1.0},
                                    {ValueType::kInt64, 8.0}});
  EXPECT_DOUBLE_EQ(w, 16.0);
}

TEST(SizeModelTest, Equation1MatchesPaperFormula) {
  // Pages = ceil((o + width) * R / B); one bigint column: o=24, width=8.
  const double pages = Equation1IndexPages(1000000, {{ValueType::kInt64, 8.0}});
  EXPECT_DOUBLE_EQ(pages, std::ceil((24.0 + 8.0) * 1000000 / 8192.0));
}

TEST(SizeModelTest, Equation1GrowsWithColumns) {
  const double one = Equation1IndexPages(100000, {{ValueType::kInt64, 8.0}});
  const double two = Equation1IndexPages(
      100000, {{ValueType::kInt64, 8.0}, {ValueType::kDouble, 8.0}});
  EXPECT_GT(two, one);
}

TEST(SizeModelTest, PackingEstimateCloseToEquation1) {
  const std::vector<SizedColumn> cols = {{ValueType::kInt64, 8.0}};
  const double eq1 = Equation1IndexPages(500000, cols);
  const double packed = EstimateIndexLeafPages(500000, cols);
  // Fill factor + page header push the packed estimate above Equation 1,
  // but within ~25%.
  EXPECT_GE(packed, eq1);
  EXPECT_LT(packed, eq1 * 1.25);
}

TEST(SizeModelTest, BTreeHeight) {
  EXPECT_EQ(EstimateBTreeHeight(1), 0);
  EXPECT_EQ(EstimateBTreeHeight(2), 1);
  EXPECT_EQ(EstimateBTreeHeight(256), 1);
  EXPECT_EQ(EstimateBTreeHeight(257), 2);
}

TEST(SizeModelTest, EmptyTableIndexStillOccupiesOnePage) {
  // A hypothetical index on an empty (or one-row) table must never cost 0
  // pages: the what-if layer would price its scans at ~0 and the advisor
  // would always recommend it. The heap estimator already clamps; the index
  // estimators must match.
  const std::vector<SizedColumn> cols = {{ValueType::kInt64, 8.0}};
  EXPECT_DOUBLE_EQ(Equation1IndexPages(0, cols), 1.0);
  EXPECT_DOUBLE_EQ(Equation1IndexPages(1, cols), 1.0);
  EXPECT_DOUBLE_EQ(EstimateIndexLeafPages(0, cols), 1.0);
  EXPECT_DOUBLE_EQ(EstimateIndexLeafPages(1, cols), 1.0);
  EXPECT_DOUBLE_EQ(EstimateHeapPages(0, cols), 1.0);
  EXPECT_DOUBLE_EQ(EstimateHeapPages(1, cols), 1.0);
}

TEST(SizeModelTest, BTreeHeightTerminatesForDegenerateFanout) {
  // fanout <= 1 would make ceil(pages / fanout) non-shrinking; the estimator
  // clamps to a binary tree instead of spinning forever.
  EXPECT_EQ(EstimateBTreeHeight(1024, 1.0), 10);
  EXPECT_EQ(EstimateBTreeHeight(1024, 0.5), 10);
  EXPECT_EQ(EstimateBTreeHeight(1024, 0.0), 10);
  EXPECT_EQ(EstimateBTreeHeight(1024, -3.0), 10);
  EXPECT_EQ(EstimateBTreeHeight(1, 1.0), 0);
  // A sane fanout is used verbatim.
  EXPECT_EQ(EstimateBTreeHeight(1024, 1024.0), 1);
}

TEST(SizeModelTest, OneColumnMaxWidthIndexPacksOneEntryPerPage) {
  // An entry wider than a page's usable space still packs one entry per
  // page (no entry splitting in the model): leaf pages == row count.
  const std::vector<SizedColumn> wide = {
      {ValueType::kString, static_cast<double>(kPageSize)}};
  EXPECT_DOUBLE_EQ(EstimateIndexLeafPages(100, wide), 100.0);
  // Equation 1 spreads bytes across pages instead, but stays >= the
  // byte-exact lower bound and >= 1.
  const double eq1 = Equation1IndexPages(100, wide);
  EXPECT_GE(eq1, std::ceil((kIndexRowOverhead + kPageSize) * 100.0 / kPageSize));
  EXPECT_DOUBLE_EQ(Equation1IndexPages(0, wide), 1.0);
}

TEST(CatalogTest, CreateAndFindTable) {
  Catalog catalog;
  TableSchema schema("T", {{"a", ValueType::kInt64, 8, false}});
  auto id = catalog.CreateTable(schema, {0});
  ASSERT_TRUE(id.ok());
  EXPECT_NE(catalog.FindTable("t"), nullptr);       // case-insensitive
  EXPECT_NE(catalog.FindTable("T"), nullptr);
  EXPECT_EQ(catalog.FindTable("missing"), nullptr);
  EXPECT_EQ(catalog.GetTable(*id)->primary_key.size(), 1u);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  TableSchema schema("t", {{"a", ValueType::kInt64, 8, false}});
  ASSERT_TRUE(catalog.CreateTable(schema).ok());
  auto dup = catalog.CreateTable(schema);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, CreateIndexValidatesColumns) {
  Catalog catalog;
  TableSchema schema("t", {{"a", ValueType::kInt64, 8, false}});
  auto tid = catalog.CreateTable(schema);
  ASSERT_TRUE(tid.ok());
  EXPECT_FALSE(catalog.CreateIndex("i1", *tid, {}).ok());
  EXPECT_FALSE(catalog.CreateIndex("i1", *tid, {5}).ok());
  auto iid = catalog.CreateIndex("i1", *tid, {0});
  ASSERT_TRUE(iid.ok());
  auto dup = catalog.CreateIndex("i1", *tid, {0});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DropTableDropsIndexes) {
  Catalog catalog;
  TableSchema schema("t", {{"a", ValueType::kInt64, 8, false}});
  auto tid = catalog.CreateTable(schema);
  auto iid = catalog.CreateIndex("i1", *tid, {0});
  ASSERT_TRUE(iid.ok());
  ASSERT_TRUE(catalog.DropTable(*tid).ok());
  EXPECT_EQ(catalog.GetIndex(*iid), nullptr);
  EXPECT_TRUE(catalog.TableIndexes(*tid).empty());
}

TEST(CatalogTest, UpdateStats) {
  Catalog catalog;
  TableSchema schema("t", {{"a", ValueType::kInt64, 8, false}});
  auto tid = catalog.CreateTable(schema);
  std::vector<ColumnStats> stats(1);
  stats[0].n_distinct = 10;
  ASSERT_TRUE(catalog.UpdateTableStats(*tid, 100, 5, stats).ok());
  const TableInfo* t = catalog.GetTable(*tid);
  EXPECT_DOUBLE_EQ(t->row_count, 100);
  EXPECT_DOUBLE_EQ(t->pages, 5);
  ASSERT_TRUE(t->HasStats());
  EXPECT_DOUBLE_EQ(t->StatsFor(0)->n_distinct, 10);
  EXPECT_EQ(t->StatsFor(3), nullptr);
}

TEST(CatalogTest, StatsArityMismatchRejected) {
  Catalog catalog;
  TableSchema schema("t", {{"a", ValueType::kInt64, 8, false},
                           {"b", ValueType::kDouble, 8, true}});
  auto tid = catalog.CreateTable(schema);
  std::vector<ColumnStats> stats(1);
  EXPECT_FALSE(catalog.UpdateTableStats(*tid, 1, 1, stats).ok());
}

TEST(ColumnStatsTest, DistinctCountConventions) {
  ColumnStats stats;
  stats.n_distinct = 50;
  EXPECT_DOUBLE_EQ(stats.DistinctCount(1000), 50);
  stats.n_distinct = -0.5;
  EXPECT_DOUBLE_EQ(stats.DistinctCount(1000), 500);
  stats.n_distinct = 0;
  EXPECT_DOUBLE_EQ(stats.DistinctCount(1000), 1000);
}

TEST(IndexInfoTest, SizeBytes) {
  IndexInfo info;
  info.leaf_pages = 10;
  EXPECT_DOUBLE_EQ(info.SizeBytes(), 10.0 * kPageSize);
}

}  // namespace
}  // namespace parinda
