#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "advisor/index_advisor.h"
#include "common/thread_pool.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace parinda {
namespace {

/// Every test arms its own buffer and tears it down, so tests compose in
/// one process regardless of order.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { trace::Clear(); }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  trace::Clear();
  ASSERT_FALSE(trace::Enabled());
  {
    PARINDA_TRACE_SPAN("test.disabled");
  }
  trace::RecordComplete("test.disabled_explicit", trace::Clock::now(),
                        trace::Clock::now());
  EXPECT_TRUE(trace::Snapshot().empty());
}

TEST_F(TraceTest, SpanRoundTrip) {
  trace::Start();
  {
    PARINDA_TRACE_SPAN("test.outer");
    {
      PARINDA_TRACE_SPAN("test.inner");
    }
  }
  trace::Stop();
  const std::vector<trace::TraceEvent> events = trace::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is in begin-timestamp order: outer opened first.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[1].name, "test.inner");
  // Nesting containment: inner begins after outer begins and ends before
  // outer ends (RAII scopes close inner first).
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
  EXPECT_LE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
  for (const trace::TraceEvent& e : events) {
    EXPECT_GE(e.ts_us, 0.0);
    EXPECT_GE(e.dur_us, 0.0);
  }
}

TEST_F(TraceTest, StopHaltsRecording) {
  trace::Start();
  {
    PARINDA_TRACE_SPAN("test.before_stop");
  }
  trace::Stop();
  {
    PARINDA_TRACE_SPAN("test.after_stop");
  }
  const std::vector<trace::TraceEvent> events = trace::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.before_stop");
}

TEST_F(TraceTest, RingOverflowCountsDropped) {
  trace::Start(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    PARINDA_TRACE_SPAN("test.overflow");
  }
  trace::Stop();
  EXPECT_EQ(trace::Snapshot().size(), 4u);
  EXPECT_EQ(trace::dropped(), 6);
  // The drop count must be visible in the export, not just the API.
  EXPECT_NE(trace::ExportChromeJson().find("\"dropped_events\": 6"),
            std::string::npos);
}

TEST_F(TraceTest, ExportChromeJsonStructure) {
  trace::Start();
  {
    PARINDA_TRACE_SPAN("test.export");
  }
  trace::Stop();
  const std::string json = trace::ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  // Balanced braces/brackets — a cheap structural validity check (CI runs a
  // real JSON parser over the bench export).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, ExportEmptyBufferIsValid) {
  trace::Start();
  trace::Stop();
  const std::string json = trace::ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\": []"), std::string::npos);
}

TEST_F(TraceTest, WriteChromeJsonFailsCleanly) {
  trace::Start();
  trace::Stop();
  EXPECT_FALSE(trace::WriteChromeJson("/nonexistent_dir/trace.json").ok());
}

TEST_F(TraceTest, SpansFromPoolWorkersCarryDistinctTids) {
  trace::Start();
  // Two separate pools: within one pool a single worker may drain every
  // task, but each pool spawns fresh threads, so spans from the two runs
  // are guaranteed to carry different thread ids.
  for (int run = 0; run < 2; ++run) {
    ASSERT_TRUE(ParallelFor(2, 4, [](int) {
                  PARINDA_TRACE_SPAN("test.worker");
                  return Status::OK();
                }).ok());
  }
  trace::Stop();
  std::set<int> tids;
  size_t worker_spans = 0;
  for (const trace::TraceEvent& e : trace::Snapshot()) {
    if (e.name == "test.worker") {
      ++worker_spans;
      tids.insert(e.tid);
    }
  }
  EXPECT_EQ(worker_spans, 8u);
  EXPECT_GE(tids.size(), 2u);
}

/// The acceptance gate for the observability layer: a seeded advisor run
/// with tracing armed must return bit-identical advice to the same run with
/// tracing off, and the trace must carry spans from every instrumented
/// layer it crossed (INUM, advisor, optimizer, thread pool).
class TraceAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::MakeOrdersTable(&db_, 3000);
    testing_util::MakeCustomersTable(&db_, 300);
  }
  void TearDown() override { trace::Clear(); }

  Result<IndexAdvice> RunAdvisor() {
    auto workload = MakeWorkload(
        db_.catalog(),
        {"SELECT amount FROM orders WHERE id = 5",
         "SELECT id FROM orders WHERE amount > 900",
         "SELECT name FROM customers WHERE cid = 7"});
    if (!workload.ok()) return workload.status();
    IndexAdvisorOptions options;
    options.parallelism = 2;
    IndexAdvisor advisor(db_.catalog(), *workload, options);
    return advisor.SuggestWithIlp();
  }

  Database db_;
};

TEST_F(TraceAdvisorTest, TracingDoesNotChangeAdvice) {
  trace::Clear();
  auto baseline = RunAdvisor();
  ASSERT_TRUE(baseline.ok());

  trace::Start();
  auto traced = RunAdvisor();
  trace::Stop();
  ASSERT_TRUE(traced.ok());

  // Bit-identical advice: same selection, same costs to the last bit.
  ASSERT_EQ(traced->indexes.size(), baseline->indexes.size());
  for (size_t i = 0; i < traced->indexes.size(); ++i) {
    EXPECT_EQ(traced->indexes[i].def.table, baseline->indexes[i].def.table);
    EXPECT_EQ(traced->indexes[i].def.columns,
              baseline->indexes[i].def.columns);
    EXPECT_EQ(traced->indexes[i].size_bytes, baseline->indexes[i].size_bytes);
    EXPECT_EQ(traced->indexes[i].benefit, baseline->indexes[i].benefit);
  }
  EXPECT_EQ(traced->base_cost, baseline->base_cost);
  EXPECT_EQ(traced->optimized_cost, baseline->optimized_cost);
  EXPECT_EQ(traced->per_query_base, baseline->per_query_base);
  EXPECT_EQ(traced->per_query_optimized, baseline->per_query_optimized);
  EXPECT_EQ(traced->total_size_bytes, baseline->total_size_bytes);

  // The traced run crossed at least four instrumented modules.
  std::set<std::string> modules;
  for (const trace::TraceEvent& e : trace::Snapshot()) {
    modules.insert(e.name.substr(0, e.name.find('.')));
  }
  EXPECT_TRUE(modules.count("inum")) << "missing inum spans";
  EXPECT_TRUE(modules.count("advisor")) << "missing advisor spans";
  EXPECT_TRUE(modules.count("optimizer")) << "missing optimizer spans";
  EXPECT_TRUE(modules.count("thread_pool")) << "missing thread_pool spans";
  EXPECT_GE(modules.size(), 4u);
}

}  // namespace
}  // namespace parinda
