#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace parinda {
namespace bench_util {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The bench flag layer keeps its state in function-local statics; each
/// test resets them so tests compose in one process.
void ResetBenchState() {
  internal::JsonEnabled() = false;
  internal::JsonPath().clear();
  internal::TraceEnabled() = false;
  internal::TracePath().clear();
  internal::Metrics().clear();
  trace::Clear();
}

class BenchUtilTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetBenchState(); }
  void TearDown() override { ResetBenchState(); }
};

TEST_F(BenchUtilTest, InitFlagsStripsJsonAndTrace) {
  const char* raw[] = {"bench", "--json=/tmp/x.json", "--benchmark_filter=a",
                       "--trace=/tmp/x.trace.json", "--v=1"};
  char* argv[5];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 5;
  InitFlags(&argc, argv);
  // Only the flags benchmark::Initialize understands survive.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--benchmark_filter=a");
  EXPECT_STREQ(argv[2], "--v=1");
  EXPECT_TRUE(internal::JsonEnabled());
  EXPECT_EQ(internal::JsonPath(), "/tmp/x.json");
  EXPECT_TRUE(internal::TraceEnabled());
  EXPECT_EQ(internal::TracePath(), "/tmp/x.trace.json");
  // --trace arms recording immediately so the whole run is captured.
  EXPECT_TRUE(trace::Enabled());
}

TEST_F(BenchUtilTest, InitFlagsWithoutFlagsIsInert) {
  const char* raw[] = {"bench", "--benchmark_filter=a"};
  char* argv[2];
  for (int i = 0; i < 2; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 2;
  InitFlags(&argc, argv);
  EXPECT_EQ(argc, 2);
  EXPECT_FALSE(internal::JsonEnabled());
  EXPECT_FALSE(internal::TraceEnabled());
  EXPECT_FALSE(trace::Enabled());
}

TEST_F(BenchUtilTest, WriteJsonEmitsNullForNonFinite) {
  internal::JsonEnabled() = true;
  internal::JsonPath() = "/tmp/parinda_bench_util_test.json";
  RecordMetric("fine", 1.5);
  RecordMetric("nan_metric", std::nan(""));
  RecordMetric("inf_metric", std::numeric_limits<double>::infinity());
  RecordMetric("neg_inf", -std::numeric_limits<double>::infinity());
  WriteJsonIfEnabled("bench_test");
  const std::string json = ReadFile(internal::JsonPath());
  EXPECT_NE(json.find("\"fine\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"nan_metric\": null"), std::string::npos);
  EXPECT_NE(json.find("\"inf_metric\": null"), std::string::npos);
  EXPECT_NE(json.find("\"neg_inf\": null"), std::string::npos);
  // No bare non-finite printf tokens — they are not valid JSON.
  EXPECT_EQ(json.find("nan,"), std::string::npos);
  EXPECT_EQ(json.find(": inf"), std::string::npos);
  std::remove(internal::JsonPath().c_str());
}

TEST_F(BenchUtilTest, WriteJsonEscapesMetricNames) {
  internal::JsonEnabled() = true;
  internal::JsonPath() = "/tmp/parinda_bench_util_escape.json";
  RecordMetric("weird \"name\"\nwith\\escapes", 2.0);
  WriteJsonIfEnabled("bench_test");
  const std::string json = ReadFile(internal::JsonPath());
  EXPECT_NE(json.find("weird \\\"name\\\"\\nwith\\\\escapes"),
            std::string::npos);
  // The raw quote/newline must not survive inside the key.
  EXPECT_EQ(json.find("\"name\"\n"), std::string::npos);
  std::remove(internal::JsonPath().c_str());
}

TEST_F(BenchUtilTest, WriteTraceIfEnabledWritesChromeJson) {
  const char* raw[] = {"bench", "--trace=/tmp/parinda_bench_util.trace.json"};
  char* argv[2];
  for (int i = 0; i < 2; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 2;
  InitFlags(&argc, argv);
  {
    PARINDA_TRACE_SPAN("test.bench_util");
  }
  WriteTraceIfEnabled("bench_test");
  const std::string json = ReadFile(internal::TracePath());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.bench_util"), std::string::npos);
  std::remove(internal::TracePath().c_str());
}

TEST_F(BenchUtilTest, RecordMetricOverwrites) {
  RecordMetric("m", 1.0);
  RecordMetric("m", 2.0);
  EXPECT_EQ(internal::Metrics().size(), 1u);
  EXPECT_EQ(internal::Metrics()["m"], 2.0);
}

}  // namespace
}  // namespace bench_util
}  // namespace parinda
