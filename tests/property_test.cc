// Property-style sweeps over the invariants the system's correctness rests
// on: selectivity calibration, INUM-vs-optimizer agreement, MIP exactness,
// rewrite equivalence, and plan-choice invariance of query results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "executor/executor.h"
#include "inum/inum.h"
#include "optimizer/planner.h"
#include "optimizer/selectivity.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "rewriter/rewriter.h"
#include "solver/bnb.h"
#include "tests/test_util.h"
#include "whatif/whatif_index.h"
#include "whatif/whatif_table.h"

namespace parinda {
namespace {

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    testing_util::MakeOrdersTable(d, 20000);
    testing_util::MakeCustomersTable(d, 2000);
    return d;
  }();
  return db;
}

SelectStatement BindSql(const Database& db, const std::string& sql) {
  auto stmt = ParseSelect(sql);
  PARINDA_CHECK_OK(stmt);
  PARINDA_CHECK_OK(BindStatement(db.catalog(), &*stmt));
  return std::move(*stmt);
}

// ---------------------------------------------------------------------------
// Property 1: estimated selectivity tracks actual row counts within a
// factor, across predicate shapes and constants.
// ---------------------------------------------------------------------------

class SelectivityCalibration : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectivityCalibration, EstimateWithinFactorOfActual) {
  Database* db = SharedDb();
  const std::string predicate = GetParam();
  const std::string sql = "SELECT count(*) FROM orders WHERE " + predicate;
  SelectStatement stmt = BindSql(*db, sql);
  const TableInfo* table = db->catalog().FindTable("orders");
  std::vector<const TableInfo*> tables = {table};
  const double sel = ClauseSelectivity(tables, *stmt.where);
  const double estimated = sel * table->row_count;
  auto result = ExecuteSql(*db, sql);
  ASSERT_TRUE(result.ok());
  const double actual = static_cast<double>(result->rows[0][0].AsInt64());
  // Within a factor of 2.5, with absolute slack for tiny counts
  // (PostgreSQL-grade accuracy on these stats).
  const double slack = 60.0;
  EXPECT_LE(estimated, actual * 2.5 + slack) << predicate;
  EXPECT_GE(estimated, actual / 2.5 - slack) << predicate;
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, SelectivityCalibration,
    ::testing::Values(
        "amount < 100", "amount < 500", "amount > 950",
        "amount BETWEEN 200 AND 300", "amount BETWEEN 499 AND 501",
        "id = 17", "id < 40", "id BETWEEN 10000 AND 12000",
        "region = 'north'", "region = 'latam'", "region <> 'north'",
        "customer_id = 55", "customer_id < 100",
        "flag = true", "flag IS NULL", "flag IS NOT NULL",
        "amount < 100 OR amount > 900",
        "region = 'north' AND amount < 500",
        "NOT amount < 100",
        "id IN (1, 2, 3, 4, 5)"));

// ---------------------------------------------------------------------------
// Property 2: INUM recomposition stays close to direct optimizer calls for
// every configuration of a candidate pool, across query shapes.
// ---------------------------------------------------------------------------

class InumAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(InumAgreement, WithinQuarterOfDirectCost) {
  Database* db = SharedDb();
  SelectStatement stmt = BindSql(*db, GetParam());
  WhatIfIndexSet whatif(db->catalog());
  const TableId orders = db->catalog().FindTable("orders")->id;
  const TableId customers = db->catalog().FindTable("customers")->id;
  std::vector<const IndexInfo*> pool;
  for (const WhatIfIndexDef& def :
       {WhatIfIndexDef{"p1", orders, {0}, false},
        WhatIfIndexDef{"p2", orders, {1}, false},
        WhatIfIndexDef{"p3", orders, {2}, false},
        WhatIfIndexDef{"p4", orders, {3, 2}, false},
        WhatIfIndexDef{"p5", customers, {0}, false}}) {
    auto id = whatif.AddIndex(def);
    ASSERT_TRUE(id.ok());
    pool.push_back(whatif.Get(*id));
  }
  InumCostModel inum(db->catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  for (unsigned mask = 0; mask < (1u << pool.size()); ++mask) {
    std::vector<const IndexInfo*> config;
    for (size_t i = 0; i < pool.size(); ++i) {
      if ((mask >> i) & 1) config.push_back(pool[i]);
    }
    auto estimated = inum.EstimateCost(config);
    auto direct = inum.DirectOptimizerCost(config);
    ASSERT_TRUE(estimated.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(*estimated, *direct, *direct * 0.25)
        << "config mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, InumAgreement,
    ::testing::Values(
        "SELECT amount FROM orders WHERE id = 99",
        "SELECT count(*) FROM orders WHERE amount BETWEEN 100 AND 150",
        "SELECT id FROM orders WHERE region = 'north' AND amount < 50",
        "SELECT o.amount FROM orders o, customers c "
        "WHERE o.customer_id = c.cid AND c.cid = 7",
        "SELECT o.id FROM orders o, customers c "
        "WHERE o.customer_id = c.cid AND c.score > 95",
        "SELECT region, count(*) FROM orders GROUP BY region"));

// ---------------------------------------------------------------------------
// Property 3: the branch-and-bound MIP solver is exact on random instances
// (verified by brute force).
// ---------------------------------------------------------------------------

class MipExactness : public ::testing::TestWithParam<int> {};

TEST_P(MipExactness, MatchesBruteForce) {
  Random rng(static_cast<uint64_t>(GetParam()));
  const int n = 4 + static_cast<int>(rng.Uniform(9));  // 4..12 vars
  BinaryMip mip;
  for (int i = 0; i < n; ++i) {
    mip.lp.objective.push_back(rng.UniformDouble(-5.0, 20.0));
  }
  // 1-3 knapsack rows.
  const int rows = 1 + static_cast<int>(rng.Uniform(3));
  std::vector<std::vector<double>> weights(rows);
  std::vector<double> caps(rows);
  for (int r = 0; r < rows; ++r) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      weights[r].push_back(rng.UniformDouble(1.0, 10.0));
      total += weights[r].back();
    }
    caps[r] = rng.UniformDouble(0.3, 0.8) * total;
    LinearProgram::Constraint row;
    for (int i = 0; i < n; ++i) row.terms.push_back({i, weights[r][i]});
    row.rhs = caps[r];
    mip.lp.AddConstraint(std::move(row));
  }
  // Optional exclusion pair.
  if (n >= 2 && rng.Bernoulli(0.5)) {
    mip.lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 1.0});
  }
  auto solution = SolveBinaryMip(mip);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution->feasible);
  // Brute force.
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (const auto& row : mip.lp.constraints) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : row.terms) {
        if ((mask >> var) & 1) lhs += coeff;
      }
      if (lhs > row.rhs + 1e-9) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double value = 0.0;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) value += mip.lp.objective[i];
    }
    best = std::max(best, value);
  }
  EXPECT_NEAR(solution->objective, best, 1e-6);
  EXPECT_TRUE(solution->proved_optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipExactness, ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// Property 4: rewriting a query onto any random fragmentation returns
// exactly the original answer.
// ---------------------------------------------------------------------------

struct RewriteCase {
  int seed;
  const char* sql;
};

class RewriteEquivalence : public ::testing::TestWithParam<RewriteCase> {};

TEST_P(RewriteEquivalence, SameRowsAfterRewrite) {
  Database db;
  const TableId orders = testing_util::MakeOrdersTable(&db, 3000);
  const TableInfo* info = db.catalog().GetTable(orders);

  // Random partition of the non-PK columns into 1-3 fragments.
  Random rng(static_cast<uint64_t>(GetParam().seed));
  const int num_fragments = 1 + static_cast<int>(rng.Uniform(3));
  std::vector<std::vector<ColumnId>> groups(
      static_cast<size_t>(num_fragments));
  for (ColumnId c = 0; c < info->schema.num_columns(); ++c) {
    if (c == 0) continue;  // PK rides along everywhere
    groups[rng.Uniform(static_cast<uint64_t>(num_fragments))].push_back(c);
  }
  std::vector<const TableInfo*> fragments;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].empty()) continue;
    auto id = db.MaterializeVerticalPartition(
        orders, "orders_rf" + std::to_string(g), groups[g]);
    ASSERT_TRUE(id.ok());
    fragments.push_back(db.catalog().GetTable(*id));
  }

  const std::string sql = GetParam().sql;
  auto base = ExecuteSql(db, sql);
  ASSERT_TRUE(base.ok());

  SelectStatement stmt = BindSql(db, sql);
  auto rewritten = RewriteForPartitions(db.catalog(), stmt, fragments);
  ASSERT_TRUE(rewritten.ok());
  auto plan = PlanQuery(db.catalog(), rewritten->stmt);
  ASSERT_TRUE(plan.ok());
  auto result = ExecutePlan(db, rewritten->stmt, *plan);
  ASSERT_TRUE(result.ok()) << rewritten->stmt.ToSql();

  // Order-insensitive comparison (sort both).
  auto sort_rows = [](std::vector<Row>* rows) {
    std::sort(rows->begin(), rows->end(),
              [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  };
  sort_rows(&base->rows);
  sort_rows(&result->rows);
  ASSERT_EQ(base->rows.size(), result->rows.size()) << rewritten->stmt.ToSql();
  for (size_t i = 0; i < base->rows.size(); ++i) {
    EXPECT_EQ(CompareRows(base->rows[i], result->rows[i]), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RewriteEquivalence,
    ::testing::Values(
        RewriteCase{1, "SELECT amount FROM orders WHERE amount > 900"},
        RewriteCase{2, "SELECT region, count(*) FROM orders GROUP BY region"},
        RewriteCase{3,
                    "SELECT id, amount, region FROM orders "
                    "WHERE flag = true AND amount < 250"},
        RewriteCase{4, "SELECT count(*) FROM orders"},
        RewriteCase{5,
                    "SELECT region, avg(amount) FROM orders "
                    "WHERE customer_id < 50 GROUP BY region ORDER BY region"},
        RewriteCase{6,
                    "SELECT id FROM orders WHERE amount BETWEEN 400 AND 500 "
                    "ORDER BY id DESC LIMIT 20"},
        RewriteCase{7, "SELECT max(amount), min(id) FROM orders"},
        RewriteCase{8,
                    "SELECT amount + 1 FROM orders WHERE region = 'north' "
                    "AND flag IS NOT NULL"}));

// ---------------------------------------------------------------------------
// Property 5: query answers are invariant under planner method flags (every
// plan the optimizer can pick computes the same result).
// ---------------------------------------------------------------------------

struct FlagCase {
  bool seqscan, indexscan, nestloop, mergejoin, hashjoin;
};

class PlanInvariance : public ::testing::TestWithParam<FlagCase> {};

TEST_P(PlanInvariance, JoinQueryResultStable) {
  Database* db = SharedDb();
  static const int64_t kExpected = [] {
    Database* d = SharedDb();
    auto r = ExecuteSql(
        *d,
        "SELECT count(*) FROM orders o, customers c "
        "WHERE o.customer_id = c.cid AND c.score > 80 AND o.amount < 600");
    PARINDA_CHECK_OK(r);
    return r->rows[0][0].AsInt64();
  }();
  const FlagCase flags = GetParam();
  SelectStatement stmt = BindSql(
      *db,
      "SELECT count(*) FROM orders o, customers c "
      "WHERE o.customer_id = c.cid AND c.score > 80 AND o.amount < 600");
  PlannerOptions options;
  options.params.enable_seqscan = flags.seqscan;
  options.params.enable_indexscan = flags.indexscan;
  options.params.enable_nestloop = flags.nestloop;
  options.params.enable_mergejoin = flags.mergejoin;
  options.params.enable_hashjoin = flags.hashjoin;
  auto plan = PlanQuery(db->catalog(), stmt, options);
  ASSERT_TRUE(plan.ok());
  auto result = ExecutePlan(*db, stmt, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt64(), kExpected) << plan->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Flags, PlanInvariance,
    ::testing::Values(FlagCase{true, true, true, true, true},
                      FlagCase{true, true, false, true, true},
                      FlagCase{true, true, true, false, true},
                      FlagCase{true, true, true, true, false},
                      FlagCase{true, true, true, false, false},
                      FlagCase{true, true, false, true, false},
                      FlagCase{true, true, false, false, true},
                      FlagCase{true, false, true, true, true},
                      FlagCase{false, true, true, true, true}));

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

// ---------------------------------------------------------------------------
// Property 6: the parser never crashes — random mutations of valid queries
// either parse or return a ParseError Status.
// ---------------------------------------------------------------------------

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, MutatedSqlNeverCrashes) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919);
  const char* kSeeds[] = {
      "SELECT a, b FROM t WHERE a = 1 AND b BETWEEN 2 AND 3 ORDER BY a",
      "SELECT count(*), avg(x + 1) FROM t1, t2 WHERE t1.k = t2.k GROUP BY y",
      "SELECT * FROM photoobj WHERE ra < 10 OR dec > 80 LIMIT 5",
      "SELECT sum(p * (1 - d)) FROM l WHERE s IN (1, 2, 3) AND f IS NOT NULL",
  };
  for (int round = 0; round < 200; ++round) {
    std::string sql = kSeeds[rng.Uniform(4)];
    const int mutations = 1 + static_cast<int>(rng.Uniform(6));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(sql.size());
      switch (rng.Uniform(4)) {
        case 0:  // flip a character
          sql[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:  // delete a character
          sql.erase(pos, 1);
          break;
        case 2:  // duplicate a slice
          sql.insert(pos, sql.substr(pos, rng.Uniform(8)));
          break;
        default:  // inject a random token
          static const char* kTokens[] = {" SELECT ", " WHERE ", "(", ")",
                                          "'", " AND ", ",", " 1e",
                                          " BETWEEN ", ";"};
          sql.insert(pos, kTokens[rng.Uniform(10)]);
          break;
      }
      if (sql.empty()) sql = "x";
    }
    // Must not crash; Status result either way.
    auto parsed = ParseSelect(sql);
    if (parsed.ok()) {
      // Whatever parsed must render and reparse.
      auto again = ParseSelect(parsed->ToSql());
      EXPECT_TRUE(again.ok()) << sql << "\n-> " << parsed->ToSql();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Property 7: for single-table queries INUM's recomposition is essentially
// exact (the internal cost above one scan is order-independent).
// ---------------------------------------------------------------------------

class InumSingleTableExactness
    : public ::testing::TestWithParam<const char*> {};

TEST_P(InumSingleTableExactness, WithinTwoPercentOfDirect) {
  Database* db = SharedDb();
  SelectStatement stmt = BindSql(*db, GetParam());
  WhatIfIndexSet whatif(db->catalog());
  const TableId orders = db->catalog().FindTable("orders")->id;
  std::vector<const IndexInfo*> pool;
  for (const WhatIfIndexDef& def :
       {WhatIfIndexDef{"s1", orders, {0}, false},
        WhatIfIndexDef{"s2", orders, {2}, false},
        WhatIfIndexDef{"s3", orders, {3, 2}, false}}) {
    auto id = whatif.AddIndex(def);
    ASSERT_TRUE(id.ok());
    pool.push_back(whatif.Get(*id));
  }
  InumCostModel inum(db->catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  for (unsigned mask = 0; mask < 8u; ++mask) {
    std::vector<const IndexInfo*> config;
    for (size_t i = 0; i < pool.size(); ++i) {
      if ((mask >> i) & 1) config.push_back(pool[i]);
    }
    auto estimated = inum.EstimateCost(config);
    auto direct = inum.DirectOptimizerCost(config);
    ASSERT_TRUE(estimated.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(*estimated, *direct, *direct * 0.02) << "mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, InumSingleTableExactness,
    ::testing::Values(
        "SELECT amount FROM orders WHERE id = 5",
        "SELECT id FROM orders WHERE amount BETWEEN 10 AND 30",
        "SELECT count(*) FROM orders WHERE region = 'emea' AND amount < 200",
        "SELECT id FROM orders WHERE amount > 995 ORDER BY id"));

}  // namespace
}  // namespace parinda
