#include <gtest/gtest.h>

#include "common/check.h"
#include "executor/executor.h"
#include "optimizer/cost_model.h"
#include "optimizer/index_match.h"
#include "optimizer/planner.h"
#include "optimizer/selectivity.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace parinda {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 20000);
    customers_ = testing_util::MakeCustomersTable(&db_, 2000);
  }

  SelectStatement Bind(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    PARINDA_CHECK_OK(stmt);
    PARINDA_CHECK_OK(BindStatement(db_.catalog(), &*stmt));
    return std::move(*stmt);
  }

  Plan MustPlan(const SelectStatement& stmt, PlannerOptions options = {}) {
    auto plan = PlanQuery(db_.catalog(), stmt, options);
    PARINDA_CHECK_OK(plan);
    return std::move(*plan);
  }

  Database db_;
  TableId orders_ = kInvalidTableId;
  TableId customers_ = kInvalidTableId;
};

TEST_F(OptimizerTest, EqSelectivityOnUniqueColumn) {
  const TableInfo* t = db_.catalog().GetTable(orders_);
  const double sel = EqSelectivity(*t, 0, Value::Int64(500));
  EXPECT_NEAR(sel, 1.0 / 20000.0, 1.0 / 20000.0);
}

TEST_F(OptimizerTest, EqSelectivityUsesMcvs) {
  const TableInfo* t = db_.catalog().GetTable(orders_);
  // "north" is the zipf head: frequency must be well above 1/8.
  const double sel = EqSelectivity(*t, 3, Value::String("north"));
  EXPECT_GT(sel, 0.2);
  EXPECT_LT(sel, 0.8);
}

TEST_F(OptimizerTest, EqSelectivityOutOfRangeIsZero) {
  const TableInfo* t = db_.catalog().GetTable(orders_);
  EXPECT_DOUBLE_EQ(EqSelectivity(*t, 0, Value::Int64(10000000)), 0.0);
}

TEST_F(OptimizerTest, RangeSelectivityInterpolates) {
  const TableInfo* t = db_.catalog().GetTable(orders_);
  // amount uniform in [0, 1000): P(amount < 250) ~ 0.25.
  const double sel =
      RangeSelectivity(*t, 2, BinaryOp::kLt, Value::Double(250.0));
  EXPECT_NEAR(sel, 0.25, 0.05);
  const double sel_hi =
      RangeSelectivity(*t, 2, BinaryOp::kGt, Value::Double(900.0));
  EXPECT_NEAR(sel_hi, 0.10, 0.05);
}

TEST_F(OptimizerTest, RangePairSelectivityNotSquared) {
  SelectStatement stmt =
      Bind("SELECT id FROM orders WHERE amount > 400 AND amount < 600");
  std::vector<const TableInfo*> tables = {db_.catalog().GetTable(orders_)};
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt.where.get(), &conjuncts);
  const double sel = ConjunctionSelectivity(tables, conjuncts);
  // Paired bounds: ~0.2, not 0.6 * 0.4 = 0.24 (still close) — but crucially
  // not the naive independent product of two one-sided estimates, which for
  // a narrow band would collapse. Check the window estimate.
  EXPECT_NEAR(sel, 0.2, 0.06);
}

TEST_F(OptimizerTest, BetweenSelectivity) {
  SelectStatement stmt =
      Bind("SELECT id FROM orders WHERE amount BETWEEN 100 AND 300");
  std::vector<const TableInfo*> tables = {db_.catalog().GetTable(orders_)};
  const double sel = ClauseSelectivity(tables, *stmt.where);
  EXPECT_NEAR(sel, 0.2, 0.06);
}

TEST_F(OptimizerTest, OrAndNotSelectivity) {
  std::vector<const TableInfo*> tables = {db_.catalog().GetTable(orders_)};
  SelectStatement stmt = Bind(
      "SELECT id FROM orders WHERE amount < 100 OR amount > 900");
  const double sel = ClauseSelectivity(tables, *stmt.where);
  EXPECT_NEAR(sel, 0.2, 0.08);
  SelectStatement neg = Bind("SELECT id FROM orders WHERE NOT amount < 100");
  EXPECT_NEAR(ClauseSelectivity(tables, *neg.where), 0.9, 0.05);
}

TEST_F(OptimizerTest, EquiJoinSelectivity) {
  const TableInfo* o = db_.catalog().GetTable(orders_);
  const TableInfo* c = db_.catalog().GetTable(customers_);
  const double sel = EquiJoinSelectivity(*o, 1, *c, 0);
  EXPECT_NEAR(sel, 1.0 / 2000.0, 1.0 / 4000.0);
}

TEST_F(OptimizerTest, MackertLohmanBounds) {
  // Fetching more tuples never touches more than all pages.
  EXPECT_LE(MackertLohmanPagesFetched(1e9, 1000, 10000), 1000.0);
  // Tiny fetches touch about one page per tuple.
  EXPECT_NEAR(MackertLohmanPagesFetched(10, 100000, 100000), 10.0, 1.0);
  EXPECT_DOUBLE_EQ(MackertLohmanPagesFetched(0, 1000, 1000), 0.0);
}

TEST_F(OptimizerTest, SeqScanForUnindexedTable) {
  SelectStatement stmt = Bind("SELECT id FROM orders WHERE amount < 10");
  Plan plan = MustPlan(stmt);
  ASSERT_NE(plan.root, nullptr);
  EXPECT_EQ(plan.root->type, PlanNodeType::kSeqScan);
  EXPECT_GT(plan.total_cost(), 0.0);
}

TEST_F(OptimizerTest, SelectiveEqUsesIndex) {
  ASSERT_TRUE(db_.BuildIndex("orders_id", orders_, {0}).ok());
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE id = 123");
  Plan plan = MustPlan(stmt);
  EXPECT_EQ(plan.root->type, PlanNodeType::kIndexScan);
}

TEST_F(OptimizerTest, UnselectiveRangeStaysSeqScan) {
  ASSERT_TRUE(db_.BuildIndex("orders_amt", orders_, {2}).ok());
  SelectStatement stmt = Bind("SELECT id FROM orders WHERE amount > 10");
  Plan plan = MustPlan(stmt);
  // ~99% of rows: random index I/O would be slower than one pass.
  EXPECT_EQ(plan.root->type, PlanNodeType::kSeqScan);
}

TEST_F(OptimizerTest, SelectiveRangeUsesIndex) {
  ASSERT_TRUE(db_.BuildIndex("orders_id2", orders_, {0}).ok());
  // id is perfectly correlated -> narrow range scans are nearly sequential.
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE id < 50");
  Plan plan = MustPlan(stmt);
  EXPECT_EQ(plan.root->type, PlanNodeType::kIndexScan);
}

TEST_F(OptimizerTest, DisablingIndexScanFallsBack) {
  ASSERT_TRUE(db_.BuildIndex("orders_id3", orders_, {0}).ok());
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE id = 5");
  PlannerOptions options;
  options.params.enable_indexscan = false;
  Plan plan = MustPlan(stmt, options);
  EXPECT_EQ(plan.root->type, PlanNodeType::kSeqScan);
}

TEST_F(OptimizerTest, JoinProducesJoinNode) {
  SelectStatement stmt = Bind(
      "SELECT o.id FROM orders o, customers c WHERE o.customer_id = c.cid");
  Plan plan = MustPlan(stmt);
  const PlanNodeType t = plan.root->type;
  EXPECT_TRUE(t == PlanNodeType::kHashJoin || t == PlanNodeType::kMergeJoin ||
              t == PlanNodeType::kNestLoopJoin);
  EXPECT_EQ(plan.CollectScans().size(), 2u);
}

TEST_F(OptimizerTest, SelectiveJoinPrefersParameterizedNestLoop) {
  ASSERT_TRUE(db_.BuildIndex("orders_cid", orders_, {1}).ok());
  // One customer -> few orders: index nested loop should win.
  SelectStatement stmt = Bind(
      "SELECT o.amount FROM customers c, orders o "
      "WHERE c.cid = o.customer_id AND c.cid = 42");
  Plan plan = MustPlan(stmt);
  // Find a nested loop with an inner index scan.
  bool found = false;
  std::vector<const PlanNode*> stack = {plan.root.get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (n->type == PlanNodeType::kNestLoopJoin &&
        n->children[1]->type == PlanNodeType::kIndexScan) {
      found = true;
    }
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  EXPECT_TRUE(found) << plan.ToString();
}

TEST_F(OptimizerTest, DisablingNestLoopSwitchesMethod) {
  ASSERT_TRUE(db_.BuildIndex("orders_cid2", orders_, {1}).ok());
  SelectStatement stmt = Bind(
      "SELECT o.amount FROM customers c, orders o "
      "WHERE c.cid = o.customer_id AND c.cid = 42");
  PlannerOptions options;
  options.params.enable_nestloop = false;
  Plan plan = MustPlan(stmt, options);
  std::vector<const PlanNode*> stack = {plan.root.get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    EXPECT_NE(n->type, PlanNodeType::kNestLoopJoin) << plan.ToString();
    for (const auto& c : n->children) stack.push_back(c.get());
  }
}

TEST_F(OptimizerTest, OrderByAddsSortUnlessIndexProvidesOrder) {
  SelectStatement stmt = Bind("SELECT id FROM orders ORDER BY id");
  Plan unsorted_plan = MustPlan(stmt);
  EXPECT_EQ(unsorted_plan.root->type, PlanNodeType::kSort);

  ASSERT_TRUE(db_.BuildIndex("orders_id4", orders_, {0}).ok());
  SelectStatement stmt2 = Bind("SELECT id FROM orders ORDER BY id LIMIT 10");
  Plan plan = MustPlan(stmt2);
  // LIMIT over an ordered index scan: no sort anywhere.
  std::vector<const PlanNode*> stack = {plan.root.get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    EXPECT_NE(n->type, PlanNodeType::kSort) << plan.ToString();
    for (const auto& c : n->children) stack.push_back(c.get());
  }
}

TEST_F(OptimizerTest, AggregatePlans) {
  SelectStatement stmt = Bind(
      "SELECT region, count(*), avg(amount) FROM orders GROUP BY region");
  Plan plan = MustPlan(stmt);
  EXPECT_EQ(plan.root->type, PlanNodeType::kAggregate);
  // ~8 regions.
  EXPECT_LT(plan.root->rows, 50.0);
  EXPECT_TRUE(StatementHasAggregates(stmt));
}

TEST_F(OptimizerTest, LimitScalesCost) {
  SelectStatement all = Bind("SELECT id FROM orders");
  SelectStatement limited = Bind("SELECT id FROM orders LIMIT 1");
  const double full_cost = MustPlan(all).total_cost();
  const double limited_cost = MustPlan(limited).total_cost();
  EXPECT_LT(limited_cost, full_cost / 100.0);
}

TEST_F(OptimizerTest, HookInjectsHypotheticalIndex) {
  // No real index: a hook-injected hypothetical index should change the plan.
  IndexInfo hypo;
  hypo.id = 9999;
  hypo.name = "hypo_orders_id";
  hypo.table_id = orders_;
  hypo.columns = {0};
  hypo.hypothetical = true;
  hypo.leaf_pages = 60;
  hypo.tree_height = 1;
  hypo.entries = 20000;
  HookRegistry hooks;
  hooks.set_relation_info_hook(
      [&](const CatalogReader&, RelOptInfo* rel) {
        if (rel->table->id == orders_) rel->indexes.push_back(&hypo);
      });
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE id = 7");
  PlannerOptions options;
  options.hooks = &hooks;
  Plan plan = MustPlan(stmt, options);
  ASSERT_EQ(plan.root->type, PlanNodeType::kIndexScan);
  EXPECT_EQ(plan.root->index_id, 9999);
}

TEST_F(OptimizerTest, ExplainMentionsNodesAndCosts) {
  SelectStatement stmt = Bind(
      "SELECT o.id FROM orders o, customers c WHERE o.customer_id = c.cid");
  Plan plan = MustPlan(stmt);
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("cost="), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
}

TEST_F(OptimizerTest, ThreeWayJoin) {
  // Self-join style 3-relation query exercises DP.
  SelectStatement stmt = Bind(
      "SELECT o.id FROM orders o, customers c, customers c2 "
      "WHERE o.customer_id = c.cid AND c.cid = c2.cid AND c2.score > 50");
  Plan plan = MustPlan(stmt);
  EXPECT_EQ(plan.CollectScans().size(), 3u);
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

class BitmapScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 20000);
    PARINDA_CHECK_OK(db_.BuildIndex("orders_amt_bm", orders_, {2}));
  }
  SelectStatement Bind(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    PARINDA_CHECK_OK(stmt);
    PARINDA_CHECK_OK(BindStatement(db_.catalog(), &*stmt));
    return std::move(*stmt);
  }
  Database db_;
  TableId orders_ = kInvalidTableId;
};

TEST_F(BitmapScanTest, MidSelectivityPrefersBitmap) {
  // ~4% of an uncorrelated column: plain index scans thrash on random heap
  // fetches, a full pass reads too much — the bitmap scan's window.
  SelectStatement stmt =
      Bind("SELECT id FROM orders WHERE amount BETWEEN 400 AND 440");
  auto plan = PlanQuery(db_.catalog(), stmt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kBitmapHeapScan)
      << plan->ToString();
}

TEST_F(BitmapScanTest, CorrelatedColumnStillPlainIndexScan) {
  // On a perfectly correlated column the plain index scan's heap reads are
  // already sequential, so the bitmap adds nothing (PostgreSQL behaves the
  // same; uncorrelated columns go to bitmap scans even for small fetches).
  ASSERT_TRUE(db_.BuildIndex("orders_id_bm", orders_, {0}).ok());
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE id < 200");
  auto plan = PlanQuery(db_.catalog(), stmt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kIndexScan) << plan->ToString();
}

TEST_F(BitmapScanTest, LowSelectivityStillSeqScan) {
  SelectStatement stmt = Bind("SELECT id FROM orders WHERE amount > 50");
  auto plan = PlanQuery(db_.catalog(), stmt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kSeqScan) << plan->ToString();
}

TEST_F(BitmapScanTest, BitmapCostBetweenIndexAndSeqAtMidSelectivity) {
  const TableInfo* table = db_.catalog().GetTable(orders_);
  const IndexInfo* index = db_.catalog().TableIndexes(orders_)[0];
  CostParams params;
  const double sel = 0.04;
  const double seq = CostSeqScan(params, *table, sel, 1).total;
  const double plain = CostIndexScan(params, *table, *index, sel, sel, 1, 0).total;
  const double bitmap =
      CostBitmapHeapScan(params, *table, *index, sel, sel, 1, 0).total;
  EXPECT_LT(bitmap, plain);
  EXPECT_LT(bitmap, seq);
}

TEST_F(BitmapScanTest, BitmapHasNoPathkeys) {
  SelectStatement stmt = Bind(
      "SELECT id FROM orders WHERE amount BETWEEN 400 AND 440 "
      "ORDER BY amount");
  auto plan = PlanQuery(db_.catalog(), stmt);
  ASSERT_TRUE(plan.ok());
  // Either a sorted bitmap scan (Sort on top) or a plain index scan that
  // provides the order — never a bare bitmap root.
  if (plan->root->type == PlanNodeType::kSort) {
    EXPECT_EQ(plan->root->children[0]->type, PlanNodeType::kBitmapHeapScan);
  } else {
    EXPECT_EQ(plan->root->type, PlanNodeType::kIndexScan);
  }
}

TEST_F(BitmapScanTest, DisableIndexScanDisablesBitmapToo) {
  SelectStatement stmt =
      Bind("SELECT id FROM orders WHERE amount BETWEEN 400 AND 440");
  PlannerOptions options;
  options.params.enable_indexscan = false;
  auto plan = PlanQuery(db_.catalog(), stmt, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kSeqScan);
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

TEST_F(BitmapScanTest, InListUsesBitmapMultiProbe) {
  ASSERT_TRUE(db_.BuildIndex("orders_id_in", orders_, {0}).ok());
  SelectStatement stmt =
      Bind("SELECT amount FROM orders WHERE id IN (5, 900, 15000)");
  auto plan = PlanQuery(db_.catalog(), stmt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kBitmapHeapScan)
      << plan->ToString();
  ASSERT_EQ(plan->root->index_conds.size(), 1u);
  EXPECT_EQ(plan->root->index_conds[0]->kind, ExprKind::kInList);
}

TEST_F(BitmapScanTest, InListExecutesCorrectly) {
  ASSERT_TRUE(db_.BuildIndex("orders_id_in2", orders_, {0}).ok());
  auto result =
      ExecuteSql(db_, "SELECT count(*) FROM orders WHERE id IN (5, 900, "
                      "15000, 999999)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt64(), 3);
  // Three probes touch a handful of pages, not the whole heap.
  EXPECT_LT(result->stats.seq_pages_read + result->stats.random_pages_read,
            20);
}

TEST_F(BitmapScanTest, PlainIndexScanNeverServesInList) {
  const TableInfo* table = db_.catalog().GetTable(orders_);
  SelectStatement stmt =
      Bind("SELECT amount FROM orders WHERE id IN (1, 2, 3)");
  std::vector<const Expr*> restrictions;
  FlattenConjuncts(stmt.where.get(), &restrictions);
  IndexInfo fake;
  fake.table_id = orders_;
  fake.columns = {0};
  const IndexMatch plain = MatchIndexConditions(
      {table}, restrictions, 0, fake, /*allow_in_list=*/false);
  EXPECT_FALSE(plain.HasConds());
  const IndexMatch bitmap = MatchIndexConditions(
      {table}, restrictions, 0, fake, /*allow_in_list=*/true);
  EXPECT_TRUE(bitmap.HasConds());
  EXPECT_TRUE(bitmap.has_in_list);
}

}  // namespace
}  // namespace parinda
