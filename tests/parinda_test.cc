#include <gtest/gtest.h>

#include "common/check.h"
#include "executor/executor.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "rewriter/rewriter.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

/// End-to-end tests of the three demo scenarios over a small SDSS instance.
class ParindaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SdssConfig config;
    config.photoobj_rows = 3000;
    auto dataset = BuildSdssDatabase(db_, config);
    PARINDA_CHECK_OK(dataset);
    dataset_ = new SdssDataset(*dataset);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete db_;
    db_ = nullptr;
    dataset_ = nullptr;
  }

  static Database* db_;
  static SdssDataset* dataset_;
};

Database* ParindaTest::db_ = nullptr;
SdssDataset* ParindaTest::dataset_ = nullptr;

TEST_F(ParindaTest, Scenario1InteractiveDesignEvaluation) {
  Parinda tool(db_);
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT objid, u, g, r, i, z FROM photoobj WHERE objid = 123",
       "SELECT avg(petrorad_r) FROM photoobj WHERE type = 3"});
  ASSERT_TRUE(workload.ok());
  InteractiveDesign design;
  design.indexes.push_back({"whatif_objid", dataset_->photoobj, {0}, true});
  design.partitions.push_back(
      {"photoobj_shape", dataset_->photoobj, {3, 17}});  // type, petrorad_r
  auto report = tool.EvaluateDesign(*workload, design);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_LT(report->optimized_cost, report->base_cost);
  EXPECT_GT(report->average_benefit_pct, 0.0);
  ASSERT_EQ(report->per_query_benefit_pct.size(), 2u);
  // Query 1 benefits from the index; query 2 from the partition.
  EXPECT_GT(report->per_query_benefit_pct[0], 50.0);
  EXPECT_GT(report->per_query_benefit_pct[1], 20.0);
  // The rewritten query for the partitioned table was produced.
  EXPECT_NE(report->rewritten_sql[1].find("photoobj_shape"),
            std::string::npos);
}

TEST_F(ParindaTest, EvaluateDesignHonorsDeadline) {
  Parinda tool(db_);
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT objid, u, g, r, i, z FROM photoobj WHERE objid = 123",
       "SELECT avg(petrorad_r) FROM photoobj WHERE type = 3"});
  ASSERT_TRUE(workload.ok());
  InteractiveDesign design;
  design.indexes.push_back({"whatif_objid", dataset_->photoobj, {0}, true});

  // Pre-expired budget: the evaluation still succeeds, flagged degraded,
  // with un-costed queries held at zero rather than garbage.
  auto degraded =
      tool.EvaluateDesign(*workload, design, {}, Deadline::After(0.0));
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degradation.degraded);
  for (double c : degraded->per_query_base) EXPECT_GE(c, 0.0);

  // An explicit infinite budget is bit-identical to not passing one.
  auto plain = tool.EvaluateDesign(*workload, design);
  auto budgeted =
      tool.EvaluateDesign(*workload, design, {}, Deadline::Infinite());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(budgeted.ok());
  EXPECT_FALSE(budgeted->degradation.degraded);
  EXPECT_EQ(budgeted->base_cost, plain->base_cost);
  EXPECT_EQ(budgeted->optimized_cost, plain->optimized_cost);
  EXPECT_EQ(budgeted->per_query_base, plain->per_query_base);
  EXPECT_EQ(budgeted->per_query_optimized, plain->per_query_optimized);
  EXPECT_EQ(budgeted->rewritten_sql, plain->rewritten_sql);
}

TEST_F(ParindaTest, Scenario1SimulationAccuracy) {
  Parinda tool(db_);
  auto report = tool.VerifyIndexSimulation(
      "SELECT u, g FROM photoobj WHERE objid BETWEEN 100 AND 140",
      {"verify_objid", dataset_->photoobj, {0}, false});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Equation 1 sizing within 25% of the real build.
  EXPECT_LT(report->size_error_fraction, 0.25)
      << report->whatif_pages << " vs " << report->materialized_pages;
  // Simulated plan cost within 30% of the materialized plan cost.
  EXPECT_LT(report->cost_error_fraction, 0.30)
      << report->whatif_plan << "\nvs\n"
      << report->materialized_plan;
  // Both plans chose an index scan.
  EXPECT_NE(report->whatif_plan.find("Index Scan"), std::string::npos);
  EXPECT_NE(report->materialized_plan.find("Index Scan"), std::string::npos);
  // The temporary real index was dropped again.
  EXPECT_TRUE(db_->catalog().TableIndexes(dataset_->photoobj).empty());
}

TEST_F(ParindaTest, Scenario2AutomaticPartitionSuggestion) {
  Parinda tool(db_);
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT ra, dec FROM photoobj WHERE dec > 75",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 2;
  auto advice = tool.SuggestPartitions(*workload, options);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  ASSERT_FALSE(advice->fragments.empty());
  EXPECT_LT(advice->optimized_cost, advice->base_cost);

  // "Physically create on disk the suggested partitions".
  auto created = tool.MaterializePartitions(*advice);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->size(), advice->fragments.size());
  for (TableId id : *created) {
    const TableInfo* info = db_->catalog().GetTable(id);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->parent_table, dataset_->photoobj);
    EXPECT_FALSE(info->hypothetical);
    // Clean up for other tests.
    ASSERT_TRUE(db_->DropTable(id).ok());
  }
}

TEST_F(ParindaTest, Scenario3AutomaticIndexSuggestion) {
  Parinda tool(db_);
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT u, g FROM photoobj WHERE objid = 55",
       "SELECT p.objid, s.z FROM photoobj p, specobj s "
       "WHERE p.objid = s.bestobjid AND s.z > 3.5"});
  ASSERT_TRUE(workload.ok());
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 1e9;
  auto advice = tool.SuggestIndexes(*workload, options);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  ASSERT_FALSE(advice->indexes.empty());
  EXPECT_LT(advice->optimized_cost, advice->base_cost);

  // "Physically create the suggested set of indexes on disk".
  auto created = tool.MaterializeIndexes(*advice);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->size(), advice->indexes.size());
  // The materialized indexes genuinely speed up execution.
  auto point = ExecuteSql(*db_, "SELECT u, g FROM photoobj WHERE objid = 55");
  ASSERT_TRUE(point.ok());
  const int64_t photoobj_pages =
      db_->GetHeapTable(dataset_->photoobj)->num_pages();
  EXPECT_LT(point->stats.seq_pages_read + point->stats.random_pages_read,
            photoobj_pages / 4);
  for (IndexId id : *created) {
    ASSERT_TRUE(db_->DropIndex(id).ok());
  }
}

TEST_F(ParindaTest, FullSdssWorkloadEndToEnd) {
  // The headline demo: 30 prototypical queries, automatic indexes, 2x+.
  Parinda tool(db_);
  auto workload = MakeSdssWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok());
  IndexAdvisorOptions options;
  options.candidates.max_candidates = 96;
  auto advice = tool.SuggestIndexes(*workload, options);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_FALSE(advice->indexes.empty());
  EXPECT_GT(advice->Speedup(), 1.2) << "speedup " << advice->Speedup();
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

TEST_F(ParindaTest, InteractiveDesignWithRangePartitions) {
  Parinda tool(db_);
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180 AND 195"});
  ASSERT_TRUE(workload.ok());
  InteractiveDesign design;
  // Range-partition photoobj on ra into quarters of the sky.
  RangePartitionDef ranges;
  ranges.parent = dataset_->photoobj;
  ranges.column = 1;  // ra
  ranges.bounds = {Value::Double(90), Value::Double(180), Value::Double(270)};
  design.range_partitions.push_back(ranges);
  auto report = tool.EvaluateDesign(*workload, design);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The 15-degree box falls in one quarter: ~4x fewer pages scanned.
  EXPECT_LT(report->optimized_cost, report->base_cost * 0.5);
}

}  // namespace
}  // namespace parinda

#include "parinda/report.h"

namespace parinda {
namespace {

TEST_F(ParindaTest, ReportFormattingResolvesNames) {
  Parinda tool(db_);
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT u, g FROM photoobj WHERE objid = 55",
       "SELECT count(*) FROM photoobj WHERE type = 3"});
  ASSERT_TRUE(workload.ok());
  IndexAdvisorOptions options;
  auto advice = tool.SuggestIndexes(*workload, options);
  ASSERT_TRUE(advice.ok());
  const std::string text = FormatIndexAdvice(db_->catalog(), *advice);
  EXPECT_NE(text.find("photoobj(objid)"), std::string::npos) << text;
  EXPECT_NE(text.find("used by: Q1"), std::string::npos) << text;
  EXPECT_NE(text.find("workload:"), std::string::npos);

  InteractiveDesign design;
  design.indexes.push_back({"r_idx", dataset_->photoobj, {0}, false});
  auto report = tool.EvaluateDesign(*workload, design);
  ASSERT_TRUE(report.ok());
  const std::string interactive =
      FormatInteractiveReport(db_->catalog(), *workload, *report);
  EXPECT_NE(interactive.find("average workload benefit"), std::string::npos);
}

TEST_F(ParindaTest, FragmentFormatting) {
  FragmentDef fragment;
  fragment.table = dataset_->photoobj;
  fragment.columns = {1, 2};
  EXPECT_EQ(FormatFragment(db_->catalog(), fragment),
            "photoobj { ra, dec } (+ primary key)");
}

TEST_F(ParindaTest, NamedExplainUsesCatalogNames) {
  auto stmt = ParseSelect("SELECT objid FROM photoobj WHERE type = 3");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_->catalog(), &*stmt).ok());
  auto plan = PlanQuery(db_->catalog(), *stmt);
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->ToString(db_->catalog());
  EXPECT_NE(text.find("on photoobj"), std::string::npos) << text;
  EXPECT_EQ(text.find("table #"), std::string::npos) << text;
}

TEST_F(ParindaTest, DatabaseDropTableClearsEverything) {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 500;
  auto dataset = BuildSdssDatabase(&db, config);
  ASSERT_TRUE(dataset.ok());
  auto idx = db.BuildIndex("tmp_idx", dataset->specobj, {0});
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(db.DropTable(dataset->specobj).ok());
  EXPECT_EQ(db.catalog().GetTable(dataset->specobj), nullptr);
  EXPECT_EQ(db.GetHeapTable(dataset->specobj), nullptr);
  EXPECT_EQ(db.GetBTree(*idx), nullptr);
  EXPECT_FALSE(db.DropTable(dataset->specobj).ok());
}

// Replicates the original stateless EvaluateDesign algorithm inline — the
// what-if mechanisms wired by hand, exactly as parinda.cc did before the
// DesignSession refactor — so the test can assert the refactored wrapper is
// bit-identical to the old behaviour. (Hand-wiring is what the
// overlay-internals lint check bans in src/; tests are exempt.)
InteractiveReport ReferenceEvaluate(const CatalogReader& catalog,
                                    const Workload& workload,
                                    const InteractiveDesign& design,
                                    const CostParams& params) {
  WhatIfTableCatalog tables(catalog);
  std::vector<const TableInfo*> fragments;
  for (const WhatIfPartitionDef& p : design.partitions) {
    auto id = tables.AddPartition(p);
    PARINDA_CHECK_OK(id);
    fragments.push_back(tables.GetTable(*id));
  }
  for (const RangePartitionDef& r : design.range_partitions) {
    PARINDA_CHECK_OK(tables.AddRangePartitioning(r));
  }
  WhatIfIndexSet indexes(tables);
  for (const WhatIfIndexDef& d : design.indexes) {
    PARINDA_CHECK_OK(indexes.AddIndex(d));
  }
  HookRegistry hooks;
  hooks.set_relation_info_hook(indexes.MakeHook());
  CostParams whatif_params = params;
  for (const WhatIfJoinDef& j : design.join_flags) {
    whatif_params = WhatIfJoin::Apply(whatif_params, j);
  }

  const int nq = workload.size();
  InteractiveReport report;
  report.per_query_base.assign(static_cast<size_t>(nq), 0.0);
  report.per_query_optimized.assign(static_cast<size_t>(nq), 0.0);
  report.per_query_benefit_pct.assign(static_cast<size_t>(nq), 0.0);
  report.rewritten_sql.assign(static_cast<size_t>(nq), "");
  PlannerOptions base_options;
  base_options.params = params;
  for (int q = 0; q < nq; ++q) {
    auto plan = PlanQuery(catalog, workload.queries[q].stmt, base_options);
    PARINDA_CHECK_OK(plan);
    report.per_query_base[static_cast<size_t>(q)] = plan->total_cost();
    report.base_cost += plan->total_cost() * workload.queries[q].weight;
  }
  PlannerOptions whatif_options;
  whatif_options.params = whatif_params;
  whatif_options.hooks = &hooks;
  for (int q = 0; q < nq; ++q) {
    auto rewritten =
        RewriteForPartitions(tables, workload.queries[q].stmt, fragments);
    PARINDA_CHECK_OK(rewritten);
    auto plan = PlanQuery(tables, rewritten->stmt, whatif_options);
    PARINDA_CHECK_OK(plan);
    report.per_query_optimized[static_cast<size_t>(q)] = plan->total_cost();
    report.optimized_cost += plan->total_cost() * workload.queries[q].weight;
    report.rewritten_sql[static_cast<size_t>(q)] =
        rewritten->changed ? rewritten->stmt.ToSql() : workload.queries[q].sql;
    if (report.per_query_base[static_cast<size_t>(q)] > 0.0) {
      report.per_query_benefit_pct[static_cast<size_t>(q)] =
          100.0 *
          (report.per_query_base[static_cast<size_t>(q)] -
           report.per_query_optimized[static_cast<size_t>(q)]) /
          report.per_query_base[static_cast<size_t>(q)];
    }
    report.average_benefit_pct +=
        report.per_query_benefit_pct[static_cast<size_t>(q)];
  }
  if (nq > 0) report.average_benefit_pct /= nq;
  return report;
}

TEST_F(ParindaTest, EvaluateDesignBitIdenticalToStatelessReference) {
  // The full 30-query SDSS workload under a design mixing all four what-if
  // feature kinds: the DesignSession-backed EvaluateDesign must reproduce
  // the original hand-wired evaluation bit for bit.
  Parinda tool(db_);
  auto workload = MakeSdssWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok());

  InteractiveDesign design;
  design.partitions.push_back({"bi_shape", dataset_->photoobj, {3, 17}});
  RangePartitionDef ranges;
  ranges.parent = dataset_->specobj;
  ranges.column = 2;  // z
  ranges.bounds = {Value::Double(1.0), Value::Double(3.0)};
  design.range_partitions.push_back(ranges);
  design.indexes.push_back({"bi_objid", dataset_->photoobj, {0}, false});
  design.indexes.push_back({"bi_quality", dataset_->field, {8}, false});
  WhatIfJoinDef flags;
  flags.enable_mergejoin = false;
  design.join_flags.push_back(flags);

  auto report = tool.EvaluateDesign(*workload, design);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const InteractiveReport reference =
      ReferenceEvaluate(db_->catalog(), *workload, design, CostParams{});

  EXPECT_EQ(report->base_cost, reference.base_cost);
  EXPECT_EQ(report->optimized_cost, reference.optimized_cost);
  EXPECT_EQ(report->average_benefit_pct, reference.average_benefit_pct);
  ASSERT_EQ(report->per_query_base.size(), reference.per_query_base.size());
  for (size_t q = 0; q < reference.per_query_base.size(); ++q) {
    EXPECT_EQ(report->per_query_base[q], reference.per_query_base[q])
        << "query " << q;
    EXPECT_EQ(report->per_query_optimized[q], reference.per_query_optimized[q])
        << "query " << q;
    EXPECT_EQ(report->per_query_benefit_pct[q],
              reference.per_query_benefit_pct[q])
        << "query " << q;
    EXPECT_EQ(report->rewritten_sql[q], reference.rewritten_sql[q])
        << "query " << q;
  }
}

TEST_F(ParindaTest, JoinFlagsExposedInInteractiveDesign) {
  Parinda tool(db_);
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT p.objid, s.z FROM photoobj p, specobj s "
       "WHERE p.objid = s.bestobjid AND s.z > 3.5"});
  ASSERT_TRUE(workload.ok());

  // Neutral flags leave the evaluation untouched.
  InteractiveDesign neutral;
  neutral.join_flags.push_back(WhatIfJoinDef{});
  auto neutral_report = tool.EvaluateDesign(*workload, neutral);
  ASSERT_TRUE(neutral_report.ok());
  EXPECT_EQ(neutral_report->optimized_cost, neutral_report->base_cost);

  // Disabling every join method penalizes any join plan (disable_cost).
  InteractiveDesign restricted;
  WhatIfJoinDef none;
  none.enable_nestloop = false;
  none.enable_mergejoin = false;
  none.enable_hashjoin = false;
  restricted.join_flags.push_back(none);
  auto restricted_report = tool.EvaluateDesign(*workload, restricted);
  ASSERT_TRUE(restricted_report.ok());
  EXPECT_GT(restricted_report->optimized_cost, restricted_report->base_cost);
}

TEST_F(ParindaTest, JoinAgainstRangePartitionedTable) {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 2000;
  auto dataset = BuildSdssDatabase(&db, config);
  ASSERT_TRUE(dataset.ok());
  const std::string sql =
      "SELECT count(*) FROM photoobj p, specobj s "
      "WHERE p.objid = s.bestobjid AND p.ra < 90";
  auto before = ExecuteSql(db, sql);
  ASSERT_TRUE(before.ok());
  auto children = db.MaterializeRangePartitions(
      dataset->photoobj, 1, {Value::Double(90), Value::Double(180),
                             Value::Double(270)});
  ASSERT_TRUE(children.ok());
  auto after = ExecuteSql(db, sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(before->rows[0][0].AsInt64(), after->rows[0][0].AsInt64());
}

}  // namespace
}  // namespace parinda
