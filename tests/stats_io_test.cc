#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "advisor/index_advisor.h"
#include "catalog/stats_io.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "optimizer/planner.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

TEST(StatsIoTest, RoundTripPreservesEverything) {
  Database db;
  const TableId orders = testing_util::MakeOrdersTable(&db, 3000);
  ASSERT_TRUE(db.BuildIndex("orders_id", orders, {0}, true).ok());
  const std::string dump = DumpCatalogStats(db.catalog());
  auto loaded = LoadCatalogStats(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Catalog& copy = **loaded;

  const TableInfo* original = db.catalog().GetTable(orders);
  const TableInfo* restored = copy.FindTable("orders");
  ASSERT_NE(restored, nullptr);
  EXPECT_DOUBLE_EQ(restored->row_count, original->row_count);
  EXPECT_DOUBLE_EQ(restored->pages, original->pages);
  EXPECT_EQ(restored->primary_key, original->primary_key);
  ASSERT_EQ(restored->schema.num_columns(), original->schema.num_columns());
  for (ColumnId c = 0; c < original->schema.num_columns(); ++c) {
    SCOPED_TRACE(original->schema.column(c).name);
    EXPECT_EQ(restored->schema.column(c).type, original->schema.column(c).type);
    const ColumnStats* a = original->StatsFor(c);
    const ColumnStats* b = restored->StatsFor(c);
    ASSERT_NE(b, nullptr);
    EXPECT_DOUBLE_EQ(b->null_frac, a->null_frac);
    EXPECT_DOUBLE_EQ(b->avg_width, a->avg_width);
    EXPECT_DOUBLE_EQ(b->n_distinct, a->n_distinct);
    EXPECT_DOUBLE_EQ(b->correlation, a->correlation);
    ASSERT_EQ(b->mcv_values.size(), a->mcv_values.size());
    for (size_t i = 0; i < a->mcv_values.size(); ++i) {
      EXPECT_EQ(b->mcv_values[i].Compare(a->mcv_values[i]), 0);
      EXPECT_DOUBLE_EQ(b->mcv_freqs[i], a->mcv_freqs[i]);
    }
    ASSERT_EQ(b->histogram_bounds.size(), a->histogram_bounds.size());
    for (size_t i = 0; i < a->histogram_bounds.size(); ++i) {
      EXPECT_EQ(b->histogram_bounds[i].Compare(a->histogram_bounds[i]), 0);
    }
    EXPECT_EQ(b->min_value.Compare(a->min_value), 0);
    EXPECT_EQ(b->max_value.Compare(a->max_value), 0);
  }
  // Index restored with sizes.
  auto indexes = copy.TableIndexes(restored->id);
  ASSERT_EQ(indexes.size(), 1u);
  EXPECT_EQ(indexes[0]->name, "orders_id");
  EXPECT_TRUE(indexes[0]->unique);
  EXPECT_GT(indexes[0]->leaf_pages, 0.0);
}

TEST(StatsIoTest, SecondRoundTripIsIdentical) {
  Database db;
  testing_util::MakeOrdersTable(&db, 2000);
  testing_util::MakeCustomersTable(&db, 200);
  const std::string dump1 = DumpCatalogStats(db.catalog());
  auto loaded = LoadCatalogStats(dump1);
  ASSERT_TRUE(loaded.ok());
  const std::string dump2 = DumpCatalogStats(**loaded);
  EXPECT_EQ(dump1, dump2);
}

TEST(StatsIoTest, MalformedInputRejectedWithLineNumbers) {
  EXPECT_FALSE(LoadCatalogStats("garbage stanza").ok());
  EXPECT_FALSE(LoadCatalogStats("column a bigint ...").ok());
  EXPECT_FALSE(LoadCatalogStats("mcv 1 0.5").ok());
  EXPECT_FALSE(LoadCatalogStats("table t rows x").ok());
  auto st = LoadCatalogStats("table t rows 1 pages 1 pk -\nwat 1");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("line 2"), std::string::npos);
  // Empty input loads an empty catalog.
  auto empty = LoadCatalogStats("# only a comment\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE((*empty)->AllTables().empty());
}

TEST(StatsIoTest, TruncatedDumpRejected) {
  Database db;
  testing_util::MakeOrdersTable(&db, 1000);
  ASSERT_TRUE(
      db.BuildIndex("oid", db.catalog().FindTable("orders")->id, {0}).ok());
  const std::string dump = DumpCatalogStats(db.catalog());
  // Every 10% cut below must land past the comment header, inside content.
  ASSERT_GT(dump.size(), 1000u);

  // Cutting the dump anywhere strictly before its footer must fail the
  // load: either mid-stanza (parse error) or between stanzas (missing /
  // wrong-count end marker). It must never load as a smaller catalog.
  for (size_t frac = 1; frac < 10; ++frac) {
    const size_t cut = dump.size() * frac / 10;
    SCOPED_TRACE(cut);
    auto loaded = LoadCatalogStats(dump.substr(0, cut));
    EXPECT_FALSE(loaded.ok());
  }
  // Dropping just the footer line fails with a descriptive message.
  const size_t footer = dump.rfind("end tables");
  ASSERT_NE(footer, std::string::npos);
  auto headless = LoadCatalogStats(dump.substr(0, footer));
  ASSERT_FALSE(headless.ok());
  EXPECT_NE(headless.status().message().find("truncated dump"),
            std::string::npos);
  // A footer with wrong counts (e.g. a dump spliced from two files) fails.
  auto wrong = LoadCatalogStats(dump.substr(0, footer) +
                                "end tables 7 indexes 0\n");
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().message().find("truncated dump"),
            std::string::npos);
  // Content after the footer is also corruption.
  EXPECT_FALSE(LoadCatalogStats(dump + "table t rows 1 pages 1 pk -\n").ok());
}

TEST(StatsIoTest, ZeroByteAndEofMidRecordFilesRejectCleanly) {
  // The DBA path is dump-to-file, copy, load-from-file; the two classic
  // filesystem failures are an empty file (created, never written) and a
  // copy cut mid-record (torn write / full disk). Through the real file
  // round-trip, a zero-byte dump loads as a well-defined *empty* catalog
  // (the documented contract: no content, no footer required) and a torn
  // dump fails with a clean ParseError — never a crash, never a silently
  // smaller catalog.
  Database db;
  testing_util::MakeOrdersTable(&db, 1000);
  const std::string dump = DumpCatalogStats(db.catalog());

  const std::string empty_path = ::testing::TempDir() + "/stats_zero.txt";
  ASSERT_TRUE(WriteFileAtomic(empty_path, "").ok());
  auto empty_text = ReadFile(empty_path);
  ASSERT_TRUE(empty_text.ok());
  auto empty_loaded = LoadCatalogStats(*empty_text);
  ASSERT_TRUE(empty_loaded.ok()) << empty_loaded.status().ToString();
  EXPECT_TRUE((*empty_loaded)->AllTables().empty());

  // Cut in the middle of a `column` stanza line (EOF mid-record).
  const size_t column = dump.find("column ");
  ASSERT_NE(column, std::string::npos);
  const std::string torn_path = ::testing::TempDir() + "/stats_torn.txt";
  ASSERT_TRUE(WriteFileAtomic(torn_path, dump.substr(0, column + 10)).ok());
  auto torn_text = ReadFile(torn_path);
  ASSERT_TRUE(torn_text.ok());
  auto torn_loaded = LoadCatalogStats(*torn_text);
  ASSERT_FALSE(torn_loaded.ok());
  EXPECT_EQ(torn_loaded.status().code(), StatusCode::kParseError);

  std::remove(empty_path.c_str());
  std::remove(torn_path.c_str());
}

TEST(StatsIoTest, CorruptedBytesRejected) {
  Database db;
  testing_util::MakeOrdersTable(&db, 1000);
  const std::string dump = DumpCatalogStats(db.catalog());

  // Flip a digit of "rows <n>" into a letter: strict numeric parsing fails.
  std::string bad = dump;
  const size_t rows_at = bad.find(" rows ") + 6;
  bad[rows_at] = 'x';
  auto r1 = LoadCatalogStats(bad);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kParseError);
  EXPECT_NE(r1.status().message().find("malformed number"), std::string::npos);

  // Unterminated string literal (line sheared mid-value).
  auto r2 = LoadCatalogStats(
      "table t rows 1 pages 1 pk -\n"
      "column s varchar null_frac 0 avg_width 4 n_distinct 1 correlation 0 "
      "min 'unclosed\n"
      "end tables 1 indexes 0\n");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("unterminated"), std::string::npos);

  // Corrupted mcv frequency.
  auto r3 = LoadCatalogStats(
      "table t rows 1 pages 1 pk -\n"
      "column a bigint null_frac 0 avg_width 8 n_distinct 1 correlation 0\n"
      "mcv 1 0.5garbage\n"
      "end tables 1 indexes 0\n");
  ASSERT_FALSE(r3.ok());

  // Corrupted primary-key column list.
  EXPECT_FALSE(LoadCatalogStats("table t rows 1 pages 1 pk 0,oops\n"
                                "end tables 1 indexes 0\n")
                   .ok());
}

TEST(StatsIoTest, StringLiteralsWithQuotesRoundTrip) {
  auto catalog = std::make_unique<Catalog>();
  TableSchema schema("t", {{"s", ValueType::kString, 10, true}});
  auto id = catalog->CreateTable(schema);
  ASSERT_TRUE(id.ok());
  std::vector<ColumnStats> stats(1);
  stats[0].mcv_values = {Value::String("it's"), Value::String("plain")};
  stats[0].mcv_freqs = {0.5, 0.25};
  stats[0].min_value = Value::String("a'b");
  stats[0].max_value = Value::String("z");
  ASSERT_TRUE(catalog->UpdateTableStats(*id, 10, 1, stats).ok());
  auto loaded = LoadCatalogStats(DumpCatalogStats(*catalog));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ColumnStats* restored = (*loaded)->FindTable("t")->StatsFor(0);
  ASSERT_EQ(restored->mcv_values.size(), 2u);
  EXPECT_EQ(restored->mcv_values[0].AsString(), "it's");
  EXPECT_EQ(restored->min_value.AsString(), "a'b");
}

TEST(StatsIoTest, AdviseFromStatsOnly) {
  // The headline use case: dump a "production" catalog, advise on the copy
  // without any data, get the same suggestions.
  Database db;
  SdssConfig config;
  config.photoobj_rows = 5000;
  ASSERT_TRUE(BuildSdssDatabase(&db, config).ok());
  auto loaded = LoadCatalogStats(DumpCatalogStats(db.catalog()));
  ASSERT_TRUE(loaded.ok());
  const Catalog& stats_only = **loaded;

  auto live_workload = MakeSdssWorkload(db.catalog());
  auto copy_workload = MakeSdssWorkload(stats_only);
  ASSERT_TRUE(live_workload.ok());
  ASSERT_TRUE(copy_workload.ok());

  IndexAdvisorOptions options;
  options.storage_budget_bytes = 4.0 * 1024 * 1024;
  IndexAdvisor live(db.catalog(), *live_workload, options);
  auto live_advice = live.SuggestWithIlp();
  ASSERT_TRUE(live_advice.ok());
  IndexAdvisor copy(stats_only, *copy_workload, options);
  auto copy_advice = copy.SuggestWithIlp();
  ASSERT_TRUE(copy_advice.ok());

  ASSERT_EQ(copy_advice->indexes.size(), live_advice->indexes.size());
  EXPECT_NEAR(copy_advice->optimized_cost, live_advice->optimized_cost,
              live_advice->optimized_cost * 1e-9);
  for (size_t i = 0; i < live_advice->indexes.size(); ++i) {
    EXPECT_EQ(copy_advice->indexes[i].def.columns,
              live_advice->indexes[i].def.columns);
  }
}

TEST(StatsIoTest, PlansAgreeOnLoadedCatalog) {
  Database db;
  testing_util::MakeOrdersTable(&db, 5000);
  ASSERT_TRUE(
      db.BuildIndex("oid", db.catalog().FindTable("orders")->id, {0}).ok());
  auto loaded = LoadCatalogStats(DumpCatalogStats(db.catalog()));
  ASSERT_TRUE(loaded.ok());
  const std::string sql = "SELECT amount FROM orders WHERE id = 99";
  auto live_stmt = ParseSelect(sql);
  ASSERT_TRUE(live_stmt.ok());
  ASSERT_TRUE(BindStatement(db.catalog(), &*live_stmt).ok());
  auto live_plan = PlanQuery(db.catalog(), *live_stmt);
  auto copy_stmt = ParseSelect(sql);
  ASSERT_TRUE(copy_stmt.ok());
  ASSERT_TRUE(BindStatement(**loaded, &*copy_stmt).ok());
  auto copy_plan = PlanQuery(**loaded, *copy_stmt);
  ASSERT_TRUE(live_plan.ok());
  ASSERT_TRUE(copy_plan.ok());
  EXPECT_EQ(copy_plan->root->type, live_plan->root->type);
  EXPECT_NEAR(copy_plan->total_cost(), live_plan->total_cost(),
              live_plan->total_cost() * 1e-9);
}

}  // namespace
}  // namespace parinda
