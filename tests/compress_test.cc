#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "advisor/index_advisor.h"
#include "autopart/autopart.h"
#include "common/check.h"
#include "common/memsize.h"
#include "workload/compress.h"
#include "workload/sdss.h"
#include "workload/sdss_scale.h"
#include "workload/tpch_mini.h"
#include "workload/workload.h"

namespace parinda {
namespace {

Database* MakeSdssDb(double rows) {
  auto* db = new Database();
  SdssConfig config;
  config.photoobj_rows = rows;
  PARINDA_CHECK_OK(BuildSdssDatabase(db, config));
  return db;
}

/// Bitwise advice identity (== on doubles, no tolerance): compression is
/// exact by construction, so every reported value must match exactly.
void ExpectSameIndexAdvice(const IndexAdvice& a, const IndexAdvice& b) {
  EXPECT_EQ(a.base_cost, b.base_cost);
  EXPECT_EQ(a.optimized_cost, b.optimized_cost);
  EXPECT_EQ(a.per_query_base, b.per_query_base);
  EXPECT_EQ(a.per_query_optimized, b.per_query_optimized);
  EXPECT_EQ(a.total_size_bytes, b.total_size_bytes);
  EXPECT_EQ(a.total_maintenance_cost, b.total_maintenance_cost);
  ASSERT_EQ(a.indexes.size(), b.indexes.size());
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    EXPECT_EQ(a.indexes[i].def.table, b.indexes[i].def.table);
    EXPECT_EQ(a.indexes[i].def.columns, b.indexes[i].def.columns);
    EXPECT_EQ(a.indexes[i].size_bytes, b.indexes[i].size_bytes);
    EXPECT_EQ(a.indexes[i].benefit, b.indexes[i].benefit);
    EXPECT_EQ(a.indexes[i].maintenance_cost, b.indexes[i].maintenance_cost);
    EXPECT_EQ(a.indexes[i].used_by, b.indexes[i].used_by);
  }
}

void ExpectSamePartitionAdvice(const PartitionAdvice& a,
                               const PartitionAdvice& b) {
  EXPECT_EQ(a.base_cost, b.base_cost);
  EXPECT_EQ(a.optimized_cost, b.optimized_cost);
  EXPECT_EQ(a.per_query_base, b.per_query_base);
  EXPECT_EQ(a.per_query_optimized, b.per_query_optimized);
  EXPECT_EQ(a.rewritten_sql, b.rewritten_sql);
  EXPECT_EQ(a.replicated_bytes, b.replicated_bytes);
  ASSERT_EQ(a.fragments.size(), b.fragments.size());
  for (size_t i = 0; i < a.fragments.size(); ++i) {
    EXPECT_EQ(a.fragments[i].table, b.fragments[i].table);
    EXPECT_EQ(a.fragments[i].columns, b.fragments[i].columns);
  }
}

TEST(CompressTest, FoldsIdenticalQueriesAndSumsWeights) {
  std::unique_ptr<Database> db(MakeSdssDb(500));
  const std::string a = "SELECT objid FROM photoobj WHERE ra > 100";
  const std::string b = "SELECT objid FROM photoobj WHERE dec < 5";
  auto workload = MakeWorkload(db->catalog(), {a, a, b, a});
  ASSERT_TRUE(workload.ok());
  workload->queries[1].weight = 3.0;

  const CompressedWorkload compressed =
      CompressWorkload(db->catalog(), *workload);
  EXPECT_EQ(compressed.original_size, 4);
  ASSERT_EQ(compressed.workload.size(), 2);
  EXPECT_EQ(compressed.folded(), 2);
  EXPECT_DOUBLE_EQ(compressed.ratio(), 2.0);
  // Representatives keep first-occurrence order.
  EXPECT_EQ(compressed.workload.queries[0].sql, a);
  EXPECT_EQ(compressed.workload.queries[1].sql, b);
  // Weights are summed into the representative (1 + 3 + 1 for `a`).
  EXPECT_DOUBLE_EQ(compressed.workload.queries[0].weight, 5.0);
  EXPECT_DOUBLE_EQ(compressed.workload.queries[1].weight, 1.0);
  // Expansion maps every original to its class, members ascending.
  EXPECT_EQ(compressed.expansion.representative,
            (std::vector<int>{0, 0, 1, 0}));
  ASSERT_EQ(compressed.expansion.members.size(), 2u);
  EXPECT_EQ(compressed.expansion.members[0], (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(compressed.expansion.members[1], (std::vector<int>{2}));
  EXPECT_EQ(compressed.expansion.weights,
            (std::vector<double>{1.0, 3.0, 1.0, 1.0}));
}

TEST(CompressTest, DifferentLiteralsDoNotFold) {
  std::unique_ptr<Database> db(MakeSdssDb(500));
  auto workload = MakeWorkload(
      db->catalog(), {"SELECT objid FROM photoobj WHERE ra > 100",
                      "SELECT objid FROM photoobj WHERE ra > 101"});
  ASSERT_TRUE(workload.ok());
  const CompressedWorkload compressed =
      CompressWorkload(db->catalog(), *workload);
  EXPECT_EQ(compressed.workload.size(), 2);
  EXPECT_EQ(compressed.folded(), 0);
}

TEST(CompressTest, StatsScopeIsPartOfTheFoldKey) {
  std::unique_ptr<Database> db(MakeSdssDb(500));
  auto workload = MakeWorkload(db->catalog(),
                               {"SELECT objid FROM photoobj WHERE ra > 100"});
  ASSERT_TRUE(workload.ok());
  const std::string before =
      QueryFoldSignature(db->catalog(), workload->queries[0]);
  // Deterministic for an unchanged catalog.
  EXPECT_EQ(before, QueryFoldSignature(db->catalog(), workload->queries[0]));
  // Changing the statistics of a touched table changes the key: the same
  // template over a different stats scope must never fold.
  TableInfo* table = db->catalog().GetMutableTable(
      db->catalog().FindTable("photoobj")->id);
  ASSERT_NE(table, nullptr);
  table->row_count *= 2.0;
  const std::string after =
      QueryFoldSignature(db->catalog(), workload->queries[0]);
  EXPECT_NE(before, after);
}

TEST(CompressTest, PerturbSqlLiteralsIsExactAndDeterministic) {
  EXPECT_EQ(PerturbSqlLiterals("SELECT a FROM t WHERE x > 100", 0),
            "SELECT a FROM t WHERE x > 100");
  EXPECT_EQ(PerturbSqlLiterals("SELECT a FROM t WHERE x > 100", 1),
            "SELECT a FROM t WHERE x > 101");
  // +0.125*variant is exact in binary, so the decimal round-trips.
  EXPECT_EQ(PerturbSqlLiterals("WHERE r < 19.5", 2), "WHERE r < 19.75");
  // Identifiers with digits are not literals.
  EXPECT_EQ(PerturbSqlLiterals("SELECT col2 FROM t1", 3),
            "SELECT col2 FROM t1");
}

TEST(CompressTest, ScaledWorkloadIsDeterministicAndFolds) {
  std::unique_ptr<Database> db(MakeSdssDb(2000));
  SdssScaleConfig config;
  config.num_queries = 300;
  auto first = MakeScaledSdssWorkload(db->catalog(), config);
  auto second = MakeScaledSdssWorkload(db->catalog(), config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), 300);
  ASSERT_EQ(second->size(), 300);
  for (int i = 0; i < first->size(); ++i) {
    EXPECT_EQ(first->queries[i].sql, second->queries[i].sql);
    EXPECT_EQ(first->queries[i].weight, second->queries[i].weight);
  }
  const CompressedWorkload compressed =
      CompressWorkload(db->catalog(), *first);
  // Fold classes are bounded by templates x literal variants.
  EXPECT_LE(compressed.workload.size(), 30 * config.literal_variants);
  EXPECT_GT(compressed.ratio(), 2.0);
}

TEST(CompressTest, SdssAdviceBitIdenticalUnderCompression) {
  std::unique_ptr<Database> db(MakeSdssDb(2000));
  SdssScaleConfig config;
  config.num_queries = 160;
  auto workload = MakeScaledSdssWorkload(db->catalog(), config);
  ASSERT_TRUE(workload.ok());
  for (const int parallelism : {1, 4}) {
    IndexAdvisorOptions off;
    off.compress = false;
    off.parallelism = parallelism;
    IndexAdvisorOptions on = off;
    on.compress = true;
    IndexAdvisor plain(db->catalog(), *workload, off);
    IndexAdvisor folded(db->catalog(), *workload, on);

    auto greedy_plain = plain.SuggestWithGreedy();
    auto greedy_folded = folded.SuggestWithGreedy();
    ASSERT_TRUE(greedy_plain.ok());
    ASSERT_TRUE(greedy_folded.ok());
    ExpectSameIndexAdvice(*greedy_plain, *greedy_folded);

    auto ilp_plain = plain.SuggestWithIlp();
    auto ilp_folded = folded.SuggestWithIlp();
    ASSERT_TRUE(ilp_plain.ok());
    ASSERT_TRUE(ilp_folded.ok());
    ExpectSameIndexAdvice(*ilp_plain, *ilp_folded);
  }
}

TEST(CompressTest, TpchMiniAdviceBitIdenticalUnderCompression) {
  Database db;
  TpchMiniConfig config;
  PARINDA_CHECK_OK(BuildTpchMiniDatabase(&db, config));
  // Duplicate the template set 3x so there is something to fold.
  std::vector<std::string> sqls;
  for (int round = 0; round < 3; ++round) {
    for (const std::string& sql : TpchMiniQueries()) sqls.push_back(sql);
  }
  auto workload = MakeWorkload(db.catalog(), sqls);
  ASSERT_TRUE(workload.ok());
  for (const int parallelism : {1, 4}) {
    IndexAdvisorOptions off;
    off.compress = false;
    off.parallelism = parallelism;
    IndexAdvisorOptions on = off;
    on.compress = true;
    IndexAdvisor plain(db.catalog(), *workload, off);
    IndexAdvisor folded(db.catalog(), *workload, on);
    auto greedy_plain = plain.SuggestWithGreedy();
    auto greedy_folded = folded.SuggestWithGreedy();
    ASSERT_TRUE(greedy_plain.ok());
    ASSERT_TRUE(greedy_folded.ok());
    ExpectSameIndexAdvice(*greedy_plain, *greedy_folded);
  }
}

TEST(CompressTest, AutoPartAdviceBitIdenticalUnderCompression) {
  std::unique_ptr<Database> db(MakeSdssDb(2000));
  SdssScaleConfig config;
  config.num_queries = 160;
  auto workload = MakeScaledSdssWorkload(db->catalog(), config);
  ASSERT_TRUE(workload.ok());
  AutoPartOptions off;
  off.compress = false;
  off.max_iterations = 2;
  off.max_candidates_per_iteration = 16;
  AutoPartOptions on = off;
  on.compress = true;
  AutoPartAdvisor plain(db->catalog(), *workload, off);
  AutoPartAdvisor folded(db->catalog(), *workload, on);
  auto advice_plain = plain.Suggest();
  auto advice_folded = folded.Suggest();
  ASSERT_TRUE(advice_plain.ok());
  ASSERT_TRUE(advice_folded.ok());
  ExpectSamePartitionAdvice(*advice_plain, *advice_folded);
}

TEST(CompressTest, PeakRssBytesReportsPeak) {
#ifdef __linux__
  EXPECT_GT(PeakRssBytes(), 0);
#else
  EXPECT_GE(PeakRssBytes(), 0);
#endif
}

}  // namespace
}  // namespace parinda
