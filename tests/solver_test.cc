#include <gtest/gtest.h>

#include <cstdint>

#include "common/metrics.h"
#include "solver/bnb.h"
#include "solver/lp.h"

namespace parinda {
namespace {

TEST(LpTest, SimpleTwoVarMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y in [0, 10].
  LinearProgram lp;
  lp.objective = {3.0, 2.0};
  lp.upper = {10.0, 10.0};
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 4.0});
  lp.AddConstraint({{{0, 1.0}, {1, 3.0}}, 6.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  // Optimum at x=4, y=0 -> 12? Check: x=3,y=1 -> 11; x=4,y=0 -> 12. OK.
  EXPECT_NEAR(sol->objective, 12.0, 1e-6);
  EXPECT_NEAR(sol->values[0], 4.0, 1e-6);
}

TEST(LpTest, UpperBoundsRespected) {
  // max x with x <= 0.5 via upper bound only.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.upper = {0.5};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 0.5, 1e-9);
}

TEST(LpTest, FractionalRelaxationOfKnapsack) {
  // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 7, vars in [0,1].
  LinearProgram lp;
  lp.objective = {10.0, 6.0, 4.0};
  lp.AddConstraint({{{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  // LP relaxation: a=1, then 2 left: b=0.5 -> 13.0 (or c=2/3 -> 12.67).
  EXPECT_NEAR(sol->objective, 13.0, 1e-6);
}

TEST(LpTest, NegativeRhsHandledViaBigM) {
  // max x + y s.t. -x <= -1 (x >= 1), x + y <= 3.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.upper = {5.0, 5.0};
  lp.AddConstraint({{{0, -1.0}}, -1.0});
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 3.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_NEAR(sol->objective, 3.0, 1e-6);
  EXPECT_GE(sol->values[0], 1.0 - 1e-6);
}

TEST(LpTest, InfeasibleDetected) {
  // x >= 2 but x <= 1.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.upper = {1.0};
  lp.AddConstraint({{{0, -1.0}}, -2.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->feasible);
}

TEST(LpTest, UnboundedDetected) {
  LinearProgram lp;
  lp.objective = {1.0};
  lp.upper = {1e30};
  auto sol = SolveLp(lp);
  // Effectively unbounded: either SolverError or a huge value.
  if (sol.ok()) {
    EXPECT_GT(sol->objective, 1e20);
  } else {
    EXPECT_EQ(sol.status().code(), StatusCode::kSolverError);
  }
}

TEST(BnbTest, SolvesKnapsackExactly) {
  // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 7; binary. Optimum: b + c = 10.
  BinaryMip mip;
  mip.lp.objective = {10.0, 6.0, 4.0};
  mip.lp.AddConstraint({{{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_TRUE(sol->proved_optimal);
  EXPECT_NEAR(sol->objective, 10.0, 1e-6);
  // Both {a} and {b,c} reach 10; either is accepted.
  const int picked = sol->values[0] * 10 + sol->values[1] * 6 + sol->values[2] * 4;
  EXPECT_EQ(picked, 10);
}

TEST(BnbTest, BeatsGreedyOnClassicInstance) {
  // Greedy by density picks a (density 3) then nothing fits; optimal is b+c.
  // max 9a + 8b + 8c s.t. 3a + 2b + 2c <= 4.
  BinaryMip mip;
  mip.lp.objective = {9.0, 8.0, 8.0};
  mip.lp.AddConstraint({{{0, 3.0}, {1, 2.0}, {2, 2.0}}, 4.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 16.0, 1e-6);
  EXPECT_EQ(sol->values[0], 0);
  EXPECT_EQ(sol->values[1], 1);
  EXPECT_EQ(sol->values[2], 1);
}

TEST(BnbTest, LinkingConstraints) {
  // y1, y2 usable only when x is built; x costs 5 of budget 5.
  // max 3y1 + 2y2 - 0x ; y_i <= x ; 5x <= 5.
  BinaryMip mip;
  mip.lp.objective = {0.0, 3.0, 2.0};  // x, y1, y2
  mip.lp.AddConstraint({{{1, 1.0}, {0, -1.0}}, 0.0});
  mip.lp.AddConstraint({{{2, 1.0}, {0, -1.0}}, 0.0});
  mip.lp.AddConstraint({{{0, 5.0}}, 5.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 5.0, 1e-6);
  EXPECT_EQ(sol->values[0], 1);
}

TEST(BnbTest, OneAccessPathConstraint) {
  // Two mutually exclusive options for the same slot.
  // max 4y1 + 3y2, y1 + y2 <= 1.
  BinaryMip mip;
  mip.lp.objective = {4.0, 3.0};
  mip.lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 1.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 4.0, 1e-6);
  EXPECT_EQ(sol->values[0], 1);
  EXPECT_EQ(sol->values[1], 0);
}

TEST(BnbTest, ZeroBudgetSelectsNothing) {
  BinaryMip mip;
  mip.lp.objective = {5.0, 7.0};
  mip.lp.AddConstraint({{{0, 2.0}, {1, 3.0}}, 0.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_NEAR(sol->objective, 0.0, 1e-9);
}

TEST(BnbTest, ExpiredDeadlineReturnsIncumbentDegraded) {
  BinaryMip mip;
  mip.lp.objective = {10.0, 6.0, 4.0};
  mip.lp.AddConstraint({{{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0});
  MipOptions options;
  options.deadline = Deadline::After(0.0);
  auto sol = SolveBinaryMip(mip, options);
  ASSERT_TRUE(sol.ok());
  // Anytime contract: still feasible (the all-zero incumbent), flagged.
  EXPECT_TRUE(sol->feasible);
  EXPECT_TRUE(sol->degraded);
  EXPECT_FALSE(sol->proved_optimal);
  EXPECT_EQ(sol->nodes_explored, 0);

  // The infinite default is bit-identical to never having had the knob.
  auto plain = SolveBinaryMip(mip);
  MipOptions infinite;
  auto budgeted = SolveBinaryMip(mip, infinite);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(budgeted.ok());
  EXPECT_EQ(budgeted->values, plain->values);
  EXPECT_EQ(budgeted->objective, plain->objective);
  EXPECT_FALSE(budgeted->degraded);
  EXPECT_TRUE(budgeted->proved_optimal);
}

TEST(BnbTest, LargerRandomInstanceStaysExact) {
  // 12-item knapsack with known optimum via brute force.
  const double values[] = {12, 7, 9, 14, 5, 6, 11, 3, 8, 10, 4, 13};
  const double weights[] = {8, 5, 6, 9, 3, 4, 7, 2, 5, 6, 3, 8};
  const double cap = 20.0;
  BinaryMip mip;
  mip.lp.objective.assign(values, values + 12);
  LinearProgram::Constraint row;
  for (int i = 0; i < 12; ++i) row.terms.push_back({i, weights[i]});
  row.rhs = cap;
  mip.lp.AddConstraint(std::move(row));
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  // Brute force.
  double best = 0.0;
  for (int mask = 0; mask < (1 << 12); ++mask) {
    double v = 0.0;
    double w = 0.0;
    for (int i = 0; i < 12; ++i) {
      if ((mask >> i) & 1) {
        v += values[i];
        w += weights[i];
      }
    }
    if (w <= cap) best = std::max(best, v);
  }
  EXPECT_NEAR(sol->objective, best, 1e-6);
  EXPECT_TRUE(sol->proved_optimal);
}

TEST(LpTest, LowerBoundsRespected) {
  // max -x + 2y s.t. x + y <= 1.2, x in [0.5, 1], y in [0, 1].
  // Optimum: x at its lower bound 0.5, y = 0.7 -> 0.9.
  LinearProgram lp;
  lp.objective = {-1.0, 2.0};
  lp.lower = {0.5, 0.0};
  lp.upper = {1.0, 1.0};
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 1.2});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_NEAR(sol->objective, 0.9, 1e-6);
  // The substitution x = lower + z must be undone in `values`.
  EXPECT_NEAR(sol->values[0], 0.5, 1e-6);
  EXPECT_NEAR(sol->values[1], 0.7, 1e-6);
}

TEST(LpTest, FixToOneViaLowerBound) {
  // Fixing a binary variable with lower = upper = 1 (how the incremental
  // branch-and-bound pins the up-branch) must not need a Big-M row.
  LinearProgram lp;
  lp.objective = {1.0, 10.0};
  lp.lower = {0.0, 1.0};
  lp.upper = {1.0, 1.0};
  lp.AddConstraint({{{0, 2.0}, {1, 2.0}}, 3.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_NEAR(sol->values[1], 1.0, 1e-9);
  EXPECT_NEAR(sol->values[0], 0.5, 1e-6);
  EXPECT_NEAR(sol->objective, 10.5, 1e-6);
}

TEST(LpTest, LowerBoundsCanBeInfeasible) {
  // lower sums past the constraint: x >= 0.8, y >= 0.8, x + y <= 1.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.lower = {0.8, 0.8};
  lp.upper = {1.0, 1.0};
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 1.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->feasible);
}

TEST(LpTest, BlandLatchTerminatesOnBealeCycle) {
  // Beale's classic cycling instance: Dantzig's largest-coefficient rule
  // loops forever through degenerate bases. The solver must fall back to
  // Bland's rule (after the degeneracy streak or past half the iteration
  // cap) and still reach the true optimum 1/20 at x = (1/25, 0, 1, 0).
  LinearProgram lp;
  lp.objective = {0.75, -150.0, 0.02, -6.0};
  lp.upper = {1e6, 1e6, 1.0, 1e6};
  lp.AddConstraint({{{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, 0.0});
  lp.AddConstraint({{{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, 0.0});
  auto sol = SolveLp(lp, 2000);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_FALSE(sol->iteration_limited);
  EXPECT_NEAR(sol->objective, 0.05, 1e-6);
  EXPECT_NEAR(sol->values[2], 1.0, 1e-6);
}

/// A deterministic multi-constraint knapsack whose relaxation stays
/// fractional deep into the tree (the advisor's own ILPs usually solve at
/// the root, which would make the copy-count assertions vacuous).
BinaryMip HardKnapsack(int n) {
  BinaryMip mip;
  mip.lp.objective.resize(static_cast<size_t>(n));
  LinearProgram::Constraint budget;
  double total_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    const double value = 7.0 + static_cast<double>((i * 37) % 23);
    const double weight = 5.0 + static_cast<double>((i * 53) % 29);
    mip.lp.objective[static_cast<size_t>(i)] = value;
    budget.terms.push_back({i, weight});
    total_weight += weight;
  }
  budget.rhs = total_weight / 3.0;
  mip.lp.AddConstraint(std::move(budget));
  for (int i = 0; i + 7 <= n; i += 4) {
    LinearProgram::Constraint window;
    for (int j = i; j < i + 7; ++j) window.terms.push_back({j, 1.0});
    window.rhs = 3.0;
    mip.lp.AddConstraint(std::move(window));
  }
  return mip;
}

TEST(BnbTest, IncrementalSolverCopiesTheLpExactlyOnce) {
  const BinaryMip mip = HardKnapsack(32);
  metrics::Counter& copies =
      metrics::Registry::Global().counter("solver.lp_copies");

  MipOptions incremental;
  incremental.incremental = true;
  const int64_t before_incremental = copies.value();
  auto sol = SolveBinaryMip(mip, incremental);
  const int64_t incremental_copies = copies.value() - before_incremental;
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->proved_optimal);
  EXPECT_GT(sol->nodes_explored, 1);
  // One working copy for the whole search, regardless of tree size: per-node
  // state is re-derived by bound writes, never by copying the LP.
  EXPECT_EQ(incremental_copies, 1);

  MipOptions legacy;
  legacy.incremental = false;
  const int64_t before_legacy = copies.value();
  auto legacy_sol = SolveBinaryMip(mip, legacy);
  const int64_t legacy_copies = copies.value() - before_legacy;
  ASSERT_TRUE(legacy_sol.ok());
  EXPECT_TRUE(legacy_sol->proved_optimal);
  // The copy-per-node arm pays at least one LP copy per explored node.
  EXPECT_GE(legacy_copies, legacy_sol->nodes_explored);
  EXPECT_GT(legacy_copies, incremental_copies);
}

TEST(BnbTest, IncrementalAndLegacyAgreeOnTheOptimum) {
  for (const int n : {16, 24, 40}) {
    const BinaryMip mip = HardKnapsack(n);
    MipOptions incremental;
    incremental.incremental = true;
    MipOptions legacy;
    legacy.incremental = false;
    auto a = SolveBinaryMip(mip, incremental);
    auto b = SolveBinaryMip(mip, legacy);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a->proved_optimal);
    EXPECT_TRUE(b->proved_optimal);
    // Both are exact; node orders differ, so only the optimum must match.
    EXPECT_EQ(a->objective, b->objective) << "n=" << n;
    // The incumbent satisfies every constraint.
    for (const auto& row : mip.lp.constraints) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : row.terms) {
        lhs += coeff * a->values[static_cast<size_t>(var)];
      }
      EXPECT_LE(lhs, row.rhs + 1e-6);
    }
  }
}

TEST(BnbTest, IncrementalExpiredDeadlineReturnsIncumbentDegraded) {
  const BinaryMip mip = HardKnapsack(24);
  MipOptions options;
  options.incremental = true;
  options.deadline = Deadline::After(0.0);
  auto sol = SolveBinaryMip(mip, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->feasible);
  EXPECT_TRUE(sol->degraded);
  EXPECT_FALSE(sol->proved_optimal);
  EXPECT_EQ(sol->nodes_explored, 0);
}

}  // namespace
}  // namespace parinda
