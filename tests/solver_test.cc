#include <gtest/gtest.h>

#include "solver/bnb.h"
#include "solver/lp.h"

namespace parinda {
namespace {

TEST(LpTest, SimpleTwoVarMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y in [0, 10].
  LinearProgram lp;
  lp.objective = {3.0, 2.0};
  lp.upper = {10.0, 10.0};
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 4.0});
  lp.AddConstraint({{{0, 1.0}, {1, 3.0}}, 6.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  // Optimum at x=4, y=0 -> 12? Check: x=3,y=1 -> 11; x=4,y=0 -> 12. OK.
  EXPECT_NEAR(sol->objective, 12.0, 1e-6);
  EXPECT_NEAR(sol->values[0], 4.0, 1e-6);
}

TEST(LpTest, UpperBoundsRespected) {
  // max x with x <= 0.5 via upper bound only.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.upper = {0.5};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 0.5, 1e-9);
}

TEST(LpTest, FractionalRelaxationOfKnapsack) {
  // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 7, vars in [0,1].
  LinearProgram lp;
  lp.objective = {10.0, 6.0, 4.0};
  lp.AddConstraint({{{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  // LP relaxation: a=1, then 2 left: b=0.5 -> 13.0 (or c=2/3 -> 12.67).
  EXPECT_NEAR(sol->objective, 13.0, 1e-6);
}

TEST(LpTest, NegativeRhsHandledViaBigM) {
  // max x + y s.t. -x <= -1 (x >= 1), x + y <= 3.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.upper = {5.0, 5.0};
  lp.AddConstraint({{{0, -1.0}}, -1.0});
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 3.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_NEAR(sol->objective, 3.0, 1e-6);
  EXPECT_GE(sol->values[0], 1.0 - 1e-6);
}

TEST(LpTest, InfeasibleDetected) {
  // x >= 2 but x <= 1.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.upper = {1.0};
  lp.AddConstraint({{{0, -1.0}}, -2.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->feasible);
}

TEST(LpTest, UnboundedDetected) {
  LinearProgram lp;
  lp.objective = {1.0};
  lp.upper = {1e30};
  auto sol = SolveLp(lp);
  // Effectively unbounded: either SolverError or a huge value.
  if (sol.ok()) {
    EXPECT_GT(sol->objective, 1e20);
  } else {
    EXPECT_EQ(sol.status().code(), StatusCode::kSolverError);
  }
}

TEST(BnbTest, SolvesKnapsackExactly) {
  // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 7; binary. Optimum: b + c = 10.
  BinaryMip mip;
  mip.lp.objective = {10.0, 6.0, 4.0};
  mip.lp.AddConstraint({{{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_TRUE(sol->proved_optimal);
  EXPECT_NEAR(sol->objective, 10.0, 1e-6);
  // Both {a} and {b,c} reach 10; either is accepted.
  const int picked = sol->values[0] * 10 + sol->values[1] * 6 + sol->values[2] * 4;
  EXPECT_EQ(picked, 10);
}

TEST(BnbTest, BeatsGreedyOnClassicInstance) {
  // Greedy by density picks a (density 3) then nothing fits; optimal is b+c.
  // max 9a + 8b + 8c s.t. 3a + 2b + 2c <= 4.
  BinaryMip mip;
  mip.lp.objective = {9.0, 8.0, 8.0};
  mip.lp.AddConstraint({{{0, 3.0}, {1, 2.0}, {2, 2.0}}, 4.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 16.0, 1e-6);
  EXPECT_EQ(sol->values[0], 0);
  EXPECT_EQ(sol->values[1], 1);
  EXPECT_EQ(sol->values[2], 1);
}

TEST(BnbTest, LinkingConstraints) {
  // y1, y2 usable only when x is built; x costs 5 of budget 5.
  // max 3y1 + 2y2 - 0x ; y_i <= x ; 5x <= 5.
  BinaryMip mip;
  mip.lp.objective = {0.0, 3.0, 2.0};  // x, y1, y2
  mip.lp.AddConstraint({{{1, 1.0}, {0, -1.0}}, 0.0});
  mip.lp.AddConstraint({{{2, 1.0}, {0, -1.0}}, 0.0});
  mip.lp.AddConstraint({{{0, 5.0}}, 5.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 5.0, 1e-6);
  EXPECT_EQ(sol->values[0], 1);
}

TEST(BnbTest, OneAccessPathConstraint) {
  // Two mutually exclusive options for the same slot.
  // max 4y1 + 3y2, y1 + y2 <= 1.
  BinaryMip mip;
  mip.lp.objective = {4.0, 3.0};
  mip.lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, 1.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 4.0, 1e-6);
  EXPECT_EQ(sol->values[0], 1);
  EXPECT_EQ(sol->values[1], 0);
}

TEST(BnbTest, ZeroBudgetSelectsNothing) {
  BinaryMip mip;
  mip.lp.objective = {5.0, 7.0};
  mip.lp.AddConstraint({{{0, 2.0}, {1, 3.0}}, 0.0});
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_NEAR(sol->objective, 0.0, 1e-9);
}

TEST(BnbTest, ExpiredDeadlineReturnsIncumbentDegraded) {
  BinaryMip mip;
  mip.lp.objective = {10.0, 6.0, 4.0};
  mip.lp.AddConstraint({{{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0});
  MipOptions options;
  options.deadline = Deadline::After(0.0);
  auto sol = SolveBinaryMip(mip, options);
  ASSERT_TRUE(sol.ok());
  // Anytime contract: still feasible (the all-zero incumbent), flagged.
  EXPECT_TRUE(sol->feasible);
  EXPECT_TRUE(sol->degraded);
  EXPECT_FALSE(sol->proved_optimal);
  EXPECT_EQ(sol->nodes_explored, 0);

  // The infinite default is bit-identical to never having had the knob.
  auto plain = SolveBinaryMip(mip);
  MipOptions infinite;
  auto budgeted = SolveBinaryMip(mip, infinite);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(budgeted.ok());
  EXPECT_EQ(budgeted->values, plain->values);
  EXPECT_EQ(budgeted->objective, plain->objective);
  EXPECT_FALSE(budgeted->degraded);
  EXPECT_TRUE(budgeted->proved_optimal);
}

TEST(BnbTest, LargerRandomInstanceStaysExact) {
  // 12-item knapsack with known optimum via brute force.
  const double values[] = {12, 7, 9, 14, 5, 6, 11, 3, 8, 10, 4, 13};
  const double weights[] = {8, 5, 6, 9, 3, 4, 7, 2, 5, 6, 3, 8};
  const double cap = 20.0;
  BinaryMip mip;
  mip.lp.objective.assign(values, values + 12);
  LinearProgram::Constraint row;
  for (int i = 0; i < 12; ++i) row.terms.push_back({i, weights[i]});
  row.rhs = cap;
  mip.lp.AddConstraint(std::move(row));
  auto sol = SolveBinaryMip(mip);
  ASSERT_TRUE(sol.ok());
  // Brute force.
  double best = 0.0;
  for (int mask = 0; mask < (1 << 12); ++mask) {
    double v = 0.0;
    double w = 0.0;
    for (int i = 0; i < 12; ++i) {
      if ((mask >> i) & 1) {
        v += values[i];
        w += weights[i];
      }
    }
    if (w <= cap) best = std::max(best, v);
  }
  EXPECT_NEAR(sol->objective, best, 1e-6);
  EXPECT_TRUE(sol->proved_optimal);
}

}  // namespace
}  // namespace parinda
