#include <gtest/gtest.h>

#include "parser/binder.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace parinda {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 42 FROM t WHERE b >= 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[3].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("SELECT -- comment\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("a <> b <= c >= d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<=");
  EXPECT_EQ((*tokens)[5].text, ">=");
  EXPECT_EQ((*tokens)[7].text, "<>");  // != normalizes
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("1e+").ok());
}

TEST(LexerTest, ScientificNotation) {
  auto tokens = Tokenize("1.5e-3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kDoubleLiteral);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT a, b FROM t WHERE a = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select_list.size(), 2u);
  EXPECT_EQ(stmt->from.size(), 1u);
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kComparison);
}

TEST(ParserTest, StarAndAliases) {
  auto stmt = ParseSelect("SELECT * FROM t x");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select_list[0].star);
  EXPECT_EQ(stmt->from[0].alias, "x");
  auto stmt2 = ParseSelect("SELECT a AS alpha FROM t AS tee");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2->select_list[0].alias, "alpha");
  EXPECT_EQ(stmt2->from[0].alias, "tee");
}

TEST(ParserTest, JoinOnDesugarsToWhere) {
  auto stmt = ParseSelect(
      "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y WHERE t1.z > 0");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->from.size(), 2u);
  // where = (join cond) AND (z > 0)
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kAnd);
}

TEST(ParserTest, GroupOrderLimit) {
  auto stmt = ParseSelect(
      "SELECT region, count(*) FROM t GROUP BY region "
      "ORDER BY region DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, BetweenAndInList) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok());
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt->where.get(), &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->kind, ExprKind::kBetween);
  EXPECT_EQ(conjuncts[1]->kind, ExprKind::kInList);
  EXPECT_EQ(conjuncts[1]->children.size(), 4u);
}

TEST(ParserTest, NotInAndIsNull) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE a NOT IN (1) AND b IS NOT NULL AND c IS NULL");
  ASSERT_TRUE(stmt.ok());
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt->where.get(), &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->kind, ExprKind::kNot);
  EXPECT_EQ(conjuncts[1]->kind, ExprKind::kIsNull);
  EXPECT_TRUE(conjuncts[1]->negated);
  EXPECT_FALSE(conjuncts[2]->negated);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseSelect("SELECT a + b * 2 FROM t");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select_list[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kArith);
  EXPECT_EQ(e.op, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->op, BinaryOp::kMul);
}

TEST(ParserTest, NegativeNumbersFold) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a > -5");
  ASSERT_TRUE(stmt.ok());
  const Expr& cmp = *stmt->where;
  EXPECT_EQ(cmp.children[1]->kind, ExprKind::kLiteral);
  EXPECT_EQ(cmp.children[1]->literal.AsInt64(), -5);
}

TEST(ParserTest, FunctionCalls) {
  auto stmt = ParseSelect("SELECT count(*), sum(a), avg(b + 1) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select_list[0].expr->star);
  EXPECT_EQ(stmt->select_list[1].expr->func_name, "sum");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t HAVING a > 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t; SELECT b FROM t").ok());
}

TEST(ParserTest, WorkloadSplitsStatements) {
  auto stmts = ParseWorkload(
      "SELECT a FROM t;\n-- second query\nSELECT b FROM t WHERE b > 1;");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 2u);
}

TEST(ParserTest, ToSqlRoundTrip) {
  const std::string sql =
      "SELECT a, count(*) FROM t WHERE a BETWEEN 1 AND 5 AND s = 'x' "
      "GROUP BY a ORDER BY a LIMIT 3";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  // Round-trip: rendering must reparse to an equivalent statement.
  auto again = ParseSelect(stmt->ToSql());
  ASSERT_TRUE(again.ok()) << stmt->ToSql();
  EXPECT_EQ(again->ToSql(), stmt->ToSql());
}

TEST(ParserTest, CloneIsDeep) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a = 1 ORDER BY a");
  ASSERT_TRUE(stmt.ok());
  SelectStatement copy = stmt->Clone();
  EXPECT_EQ(copy.ToSql(), stmt->ToSql());
  EXPECT_NE(copy.where.get(), stmt->where.get());
}

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 100);
    customers_ = testing_util::MakeCustomersTable(&db_, 10);
  }
  Database db_;
  TableId orders_ = kInvalidTableId;
  TableId customers_ = kInvalidTableId;
};

TEST_F(BinderTest, BindsQualifiedAndUnqualified) {
  auto stmt = ParseSelect(
      "SELECT orders.amount, cid FROM orders, customers "
      "WHERE orders.customer_id = customers.cid");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  EXPECT_EQ(stmt->from[0].bound_table, orders_);
  EXPECT_EQ(stmt->from[1].bound_table, customers_);
  const Expr& amount = *stmt->select_list[0].expr;
  EXPECT_EQ(amount.bound_range, 0);
  EXPECT_EQ(amount.bound_column, 2);
  const Expr& cid = *stmt->select_list[1].expr;
  EXPECT_EQ(cid.bound_range, 1);
}

TEST_F(BinderTest, AliasResolution) {
  auto stmt = ParseSelect("SELECT o.amount FROM orders o");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
}

TEST_F(BinderTest, UnknownTable) {
  auto stmt = ParseSelect("SELECT a FROM nope");
  ASSERT_TRUE(stmt.ok());
  auto st = BindStatement(db_.catalog(), &*stmt);
  EXPECT_EQ(st.code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownColumn) {
  auto stmt = ParseSelect("SELECT wat FROM orders");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(BindStatement(db_.catalog(), &*stmt).code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, AmbiguousColumnNotPresentHere) {
  // "amount" exists only in orders: unqualified use across two tables binds.
  auto stmt = ParseSelect("SELECT amount FROM orders, customers");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
}

TEST_F(BinderTest, InferTypes) {
  auto stmt = ParseSelect(
      "SELECT amount + 1, count(*), region, flag FROM orders WHERE flag");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  auto t0 = InferExprType(db_.catalog(), *stmt, *stmt->select_list[0].expr);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(*t0, ValueType::kDouble);
  auto t1 = InferExprType(db_.catalog(), *stmt, *stmt->select_list[1].expr);
  EXPECT_EQ(*t1, ValueType::kInt64);
  auto t2 = InferExprType(db_.catalog(), *stmt, *stmt->select_list[2].expr);
  EXPECT_EQ(*t2, ValueType::kString);
  auto t3 = InferExprType(db_.catalog(), *stmt, *stmt->select_list[3].expr);
  EXPECT_EQ(*t3, ValueType::kBool);
}

TEST_F(BinderTest, UnknownFunctionRejected) {
  auto stmt = ParseSelect("SELECT frobnicate(amount) FROM orders");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(BindStatement(db_.catalog(), &*stmt).code(),
            StatusCode::kBindError);
}

}  // namespace
}  // namespace parinda
