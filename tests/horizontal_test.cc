#include <gtest/gtest.h>

#include "common/check.h"
#include "executor/executor.h"
#include "optimizer/planner.h"
#include "optimizer/selectivity.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "whatif/whatif_horizontal.h"
#include "whatif/whatif_table.h"

namespace parinda {
namespace {

class HorizontalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 10000);
  }
  SelectStatement Bind(const CatalogReader& catalog, const std::string& sql) {
    auto stmt = ParseSelect(sql);
    PARINDA_CHECK_OK(stmt);
    PARINDA_CHECK_OK(BindStatement(catalog, &*stmt));
    return std::move(*stmt);
  }
  Database db_;
  TableId orders_ = kInvalidTableId;
};

TEST_F(HorizontalTest, RangeMayMatchPrunes) {
  SelectStatement stmt =
      Bind(db_.catalog(), "SELECT id FROM orders WHERE amount < 100");
  std::vector<const Expr*> restrictions;
  FlattenConjuncts(stmt.where.get(), &restrictions);
  // amount column is ordinal 2.
  EXPECT_TRUE(RangeMayMatch(Value::Null(), Value::Double(250), restrictions,
                            0, 2));
  EXPECT_FALSE(RangeMayMatch(Value::Double(250), Value::Double(500),
                             restrictions, 0, 2));
  EXPECT_FALSE(RangeMayMatch(Value::Double(100), Value::Null(), restrictions,
                             0, 2));
  // Unrelated column never prunes.
  EXPECT_TRUE(RangeMayMatch(Value::Double(250), Value::Double(500),
                            restrictions, 0, 0));
}

TEST_F(HorizontalTest, RangeMayMatchEqualityAndBetween) {
  SelectStatement eq =
      Bind(db_.catalog(), "SELECT id FROM orders WHERE amount = 300");
  std::vector<const Expr*> eq_restrictions;
  FlattenConjuncts(eq.where.get(), &eq_restrictions);
  EXPECT_TRUE(RangeMayMatch(Value::Double(250), Value::Double(500),
                            eq_restrictions, 0, 2));
  EXPECT_FALSE(RangeMayMatch(Value::Double(500), Value::Double(750),
                             eq_restrictions, 0, 2));
  SelectStatement between = Bind(
      db_.catalog(), "SELECT id FROM orders WHERE amount BETWEEN 600 AND 700");
  std::vector<const Expr*> bt_restrictions;
  FlattenConjuncts(between.where.get(), &bt_restrictions);
  EXPECT_FALSE(RangeMayMatch(Value::Double(0), Value::Double(250),
                             bt_restrictions, 0, 2));
  EXPECT_TRUE(RangeMayMatch(Value::Double(500), Value::Double(750),
                            bt_restrictions, 0, 2));
}

TEST_F(HorizontalTest, SliceStatsScaleWithRange) {
  const TableInfo* parent = db_.catalog().GetTable(orders_);
  TableInfo child = SliceTableForRange(*parent, 2, Value::Double(0),
                                       Value::Double(250), "child", 777);
  // ~25% of a uniform [0, 1000) column.
  EXPECT_NEAR(child.row_count, parent->row_count * 0.25,
              parent->row_count * 0.05);
  EXPECT_LT(child.pages, parent->pages);
  ASSERT_TRUE(child.HasStats());
  // Partition column's max clipped to the range.
  EXPECT_LE(child.StatsFor(2)->max_value.ToNumeric(), 250.0);
}

TEST_F(HorizontalTest, SuggestEqualMassBounds) {
  auto bounds = SuggestEqualMassBounds(db_.catalog(), orders_, 2, 4);
  ASSERT_TRUE(bounds.ok());
  ASSERT_EQ(bounds->size(), 3u);
  // Roughly the quartiles of uniform [0, 1000).
  EXPECT_NEAR((*bounds)[0].ToNumeric(), 250.0, 60.0);
  EXPECT_NEAR((*bounds)[1].ToNumeric(), 500.0, 60.0);
  EXPECT_NEAR((*bounds)[2].ToNumeric(), 750.0, 60.0);
  EXPECT_FALSE(SuggestEqualMassBounds(db_.catalog(), orders_, 2, 1).ok());
}

TEST_F(HorizontalTest, WhatIfRangePartitioningPlansAppendWithPruning) {
  WhatIfTableCatalog overlay(db_.catalog());
  RangePartitionDef def;
  def.parent = orders_;
  def.column = 2;  // amount
  def.bounds = {Value::Double(250), Value::Double(500), Value::Double(750)};
  auto children = overlay.AddRangePartitioning(def);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 4u);
  // The shadowed parent carries the metadata.
  const TableInfo* parent = overlay.GetTable(orders_);
  ASSERT_TRUE(parent->IsHorizontallyPartitioned());

  // A query confined to one range scans one child.
  SelectStatement stmt =
      Bind(overlay, "SELECT id FROM orders WHERE amount BETWEEN 300 AND 400");
  auto plan = PlanQuery(overlay, stmt);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->type, PlanNodeType::kAppend) << plan->ToString();
  EXPECT_EQ(plan->root->children.size(), 1u) << plan->ToString();

  // An unconstrained query scans all four children but stays cheaper than
  // nothing... (equal cost modulo Append overhead); a constrained one wins.
  SelectStatement all = Bind(overlay, "SELECT count(*) FROM orders");
  auto all_plan = PlanQuery(overlay, all);
  ASSERT_TRUE(all_plan.ok());
  auto base_plan = PlanQuery(db_.catalog(), Bind(db_.catalog(),
      "SELECT id FROM orders WHERE amount BETWEEN 300 AND 400"));
  ASSERT_TRUE(base_plan.ok());
  EXPECT_LT(plan->total_cost(), base_plan->total_cost() * 0.6)
      << "pruned scan should read ~1/4 of the pages";
}

TEST_F(HorizontalTest, MaterializedPartitionsExecuteCorrectly) {
  std::vector<Value> bounds = {Value::Double(250), Value::Double(500),
                               Value::Double(750)};
  auto children = db_.MaterializeRangePartitions(orders_, 2, bounds);
  ASSERT_TRUE(children.ok()) << children.status().ToString();
  ASSERT_EQ(children->size(), 4u);
  // Children partition the rows exactly.
  int64_t total = 0;
  for (TableId child : *children) {
    total += db_.GetHeapTable(child)->num_rows();
  }
  EXPECT_EQ(total, 10000);

  // Execute a pruned query through the Append plan and compare to ground
  // truth computed via the (still present) parent heap.
  const std::string sql =
      "SELECT count(*), min(amount), max(amount) FROM orders "
      "WHERE amount BETWEEN 300 AND 400";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  auto plan = PlanQuery(db_.catalog(), *stmt);
  ASSERT_TRUE(plan.ok());
  auto scans = plan->CollectScans();
  // Pruning must confine the scan to child table(s), not the parent.
  for (const PlanNode* scan : scans) {
    EXPECT_NE(scan->table_id, orders_) << plan->ToString();
  }
  auto result = ExecutePlan(db_, *stmt, *plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Ground truth from a straight count over the parent data.
  int64_t expected = 0;
  const HeapTable* heap = db_.GetHeapTable(orders_);
  for (RowId id = 0; id < heap->num_rows(); ++id) {
    const double v = heap->row(id)[2].ToNumeric();
    if (v >= 300.0 && v <= 400.0) ++expected;
  }
  EXPECT_EQ(result->rows[0][0].AsInt64(), expected);
  EXPECT_GE(result->rows[0][1].AsDouble(), 300.0);
  EXPECT_LE(result->rows[0][2].AsDouble(), 400.0);
}

TEST_F(HorizontalTest, WhatIfMatchesMaterializedCosts) {
  // Simulate first, materialize second: the Append plan costs should agree.
  std::vector<Value> bounds = {Value::Double(500)};
  WhatIfTableCatalog overlay(db_.catalog());
  RangePartitionDef def;
  def.parent = orders_;
  def.column = 2;
  def.bounds = bounds;
  ASSERT_TRUE(overlay.AddRangePartitioning(def).ok());
  const std::string sql = "SELECT id FROM orders WHERE amount < 100";
  SelectStatement whatif_stmt = Bind(overlay, sql);
  auto whatif_plan = PlanQuery(overlay, whatif_stmt);
  ASSERT_TRUE(whatif_plan.ok());

  auto children = db_.MaterializeRangePartitions(orders_, 2, bounds);
  ASSERT_TRUE(children.ok());
  SelectStatement real_stmt = Bind(db_.catalog(), sql);
  auto real_plan = PlanQuery(db_.catalog(), real_stmt);
  ASSERT_TRUE(real_plan.ok());
  EXPECT_EQ(whatif_plan->root->type, PlanNodeType::kAppend);
  EXPECT_EQ(real_plan->root->type, PlanNodeType::kAppend);
  EXPECT_NEAR(whatif_plan->total_cost(), real_plan->total_cost(),
              real_plan->total_cost() * 0.2);
}

TEST_F(HorizontalTest, InvalidDefinitionsRejected) {
  WhatIfTableCatalog overlay(db_.catalog());
  RangePartitionDef def;
  def.parent = orders_;
  def.column = 2;
  EXPECT_FALSE(overlay.AddRangePartitioning(def).ok());  // no bounds
  def.bounds = {Value::Double(500), Value::Double(100)};  // descending
  EXPECT_FALSE(overlay.AddRangePartitioning(def).ok());
  def.bounds = {Value::Double(100)};
  def.column = 99;
  EXPECT_FALSE(overlay.AddRangePartitioning(def).ok());
  EXPECT_FALSE(
      db_.MaterializeRangePartitions(orders_, 2, {}).ok());
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

TEST_F(HorizontalTest, StringPartitionColumn) {
  // Range-partition on the zipf-distributed region column.
  WhatIfTableCatalog overlay(db_.catalog());
  RangePartitionDef def;
  def.parent = orders_;
  def.column = 3;  // region (varchar)
  def.bounds = {Value::String("m")};
  auto children = overlay.AddRangePartitioning(def);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  const TableInfo* low = overlay.GetTable((*children)[0]);
  const TableInfo* high = overlay.GetTable((*children)[1]);
  // Rows split between the children, roughly summing to the parent.
  const double parent_rows = db_.catalog().GetTable(orders_)->row_count;
  EXPECT_GT(low->row_count, 0.0);
  EXPECT_GT(high->row_count, 0.0);
  EXPECT_NEAR(low->row_count + high->row_count, parent_rows,
              parent_rows * 0.15);
  // MCVs sliced: 'east' stays below the bound, 'north' above.
  bool low_has_east = false;
  bool high_has_north = false;
  for (const Value& v : low->StatsFor(3)->mcv_values) {
    if (v.AsString() == "east") low_has_east = true;
    EXPECT_LT(v.AsString(), "m");
  }
  for (const Value& v : high->StatsFor(3)->mcv_values) {
    if (v.AsString() == "north") high_has_north = true;
    EXPECT_GE(v.AsString(), "m");
  }
  EXPECT_TRUE(low_has_east);
  EXPECT_TRUE(high_has_north);
  // Child MCV frequencies were renormalized to the child population, so
  // the head value's share grows.
  const ColumnStats* parent_stats = db_.catalog().GetTable(orders_)->StatsFor(3);
  double parent_north = 0.0;
  for (size_t i = 0; i < parent_stats->mcv_values.size(); ++i) {
    if (parent_stats->mcv_values[i].AsString() == "north") {
      parent_north = parent_stats->mcv_freqs[i];
    }
  }
  for (size_t i = 0; i < high->StatsFor(3)->mcv_values.size(); ++i) {
    if (high->StatsFor(3)->mcv_values[i].AsString() == "north") {
      EXPECT_GT(high->StatsFor(3)->mcv_freqs[i], parent_north);
    }
  }
}

TEST_F(HorizontalTest, EmptyRangeChildHasNearZeroRows) {
  const TableInfo* parent = db_.catalog().GetTable(orders_);
  // amount lives in [0, 1000): a slice far above it is empty.
  TableInfo child = SliceTableForRange(*parent, 2, Value::Double(5000),
                                       Value::Double(6000), "empty", 901);
  EXPECT_LT(child.row_count, parent->row_count * 0.01);
}

TEST_F(HorizontalTest, AppendSurvivesDominatedPruning) {
  // When the whole table is needed the Append must still produce correct
  // plans (all children, no pruning).
  std::vector<Value> bounds = {Value::Double(500)};
  auto children = db_.MaterializeRangePartitions(orders_, 2, bounds);
  ASSERT_TRUE(children.ok());
  auto result = ExecuteSql(db_, "SELECT count(*) FROM orders");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt64(), 10000);
}

}  // namespace
}  // namespace parinda
