#include <gtest/gtest.h>

#include "common/check.h"
#include "inum/inum.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "whatif/whatif_index.h"

namespace parinda {
namespace {

class InumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 10000);
    customers_ = testing_util::MakeCustomersTable(&db_, 1000);
    whatif_ = std::make_unique<WhatIfIndexSet>(db_.catalog());
    idx_orders_id_ = Add({"w_oid", orders_, {0}, false});
    idx_orders_cid_ = Add({"w_ocid", orders_, {1}, false});
    idx_orders_amount_ = Add({"w_oamt", orders_, {2}, false});
    idx_customers_cid_ = Add({"w_ccid", customers_, {0}, false});
  }

  const IndexInfo* Add(const WhatIfIndexDef& def) {
    auto id = whatif_->AddIndex(def);
    PARINDA_CHECK_OK(id);
    return whatif_->Get(*id);
  }

  SelectStatement Bind(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    PARINDA_CHECK_OK(stmt);
    PARINDA_CHECK_OK(BindStatement(db_.catalog(), &*stmt));
    return std::move(*stmt);
  }

  Database db_;
  TableId orders_ = kInvalidTableId;
  TableId customers_ = kInvalidTableId;
  std::unique_ptr<WhatIfIndexSet> whatif_;
  const IndexInfo* idx_orders_id_ = nullptr;
  const IndexInfo* idx_orders_cid_ = nullptr;
  const IndexInfo* idx_orders_amount_ = nullptr;
  const IndexInfo* idx_customers_cid_ = nullptr;
};

TEST_F(InumTest, BaseCostMatchesOptimizer) {
  SelectStatement stmt = Bind("SELECT count(*) FROM orders WHERE amount > 900");
  InumCostModel inum(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  auto inum_cost = inum.EstimateCost({});
  auto direct = inum.DirectOptimizerCost({});
  ASSERT_TRUE(inum_cost.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(*inum_cost, *direct, *direct * 0.05);
}

TEST_F(InumTest, IndexConfigurationReducesCost) {
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE id = 42");
  InumCostModel inum(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  auto base = inum.EstimateCost({});
  auto with_index = inum.EstimateCost({idx_orders_id_});
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(with_index.ok());
  EXPECT_LT(*with_index, *base * 0.2);
}

TEST_F(InumTest, TracksDirectOptimizerAcrossConfigs) {
  SelectStatement stmt = Bind(
      "SELECT o.amount FROM orders o, customers c "
      "WHERE o.customer_id = c.cid AND c.cid = 7");
  InumCostModel inum(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  const std::vector<std::vector<const IndexInfo*>> configs = {
      {},
      {idx_orders_cid_},
      {idx_customers_cid_},
      {idx_orders_cid_, idx_customers_cid_},
      {idx_orders_id_, idx_orders_amount_},
  };
  for (const auto& config : configs) {
    auto estimated = inum.EstimateCost(config);
    auto direct = inum.DirectOptimizerCost(config);
    ASSERT_TRUE(estimated.ok());
    ASSERT_TRUE(direct.ok());
    // INUM's recomposition should stay close to the real optimizer — the
    // VLDB'07 paper reports single-digit percent errors.
    EXPECT_NEAR(*estimated, *direct, *direct * 0.25)
        << "config size " << config.size();
    // And it must never be better than the best possible plan.
    EXPECT_GE(*estimated, *direct * 0.8);
  }
}

TEST_F(InumTest, CacheIsReused) {
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE id = 42");
  InumCostModel inum(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  ASSERT_TRUE(inum.EstimateCost({idx_orders_id_}).ok());
  const int calls_after_first = inum.optimizer_calls();
  EXPECT_GT(calls_after_first, 0);
  // Re-estimating many configurations over the same orders: no new calls.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(inum.EstimateCost({idx_orders_id_}).ok());
  }
  EXPECT_EQ(inum.optimizer_calls(), calls_after_first);
  EXPECT_EQ(inum.estimates_served(), 51);
}

TEST_F(InumTest, CachesNestLoopPair) {
  SelectStatement stmt = Bind(
      "SELECT o.amount FROM orders o, customers c "
      "WHERE o.customer_id = c.cid");
  InumCostModel inum(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  ASSERT_TRUE(inum.EstimateCost({}).ok());
  // Two plans (NL on/off) per order key: entry count must be even and >= 2.
  EXPECT_GE(inum.cache_entries(), 2);
  EXPECT_EQ(inum.cache_entries() % 2, 0);
}

TEST_F(InumTest, AblationWithoutNlPairUsesFewerCalls) {
  SelectStatement stmt = Bind(
      "SELECT o.amount FROM orders o, customers c "
      "WHERE o.customer_id = c.cid");
  InumCostModel with_pair(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(with_pair.Init().ok());
  ASSERT_TRUE(with_pair.EstimateCost({idx_orders_cid_}).ok());

  InumCostModel without_pair(db_.catalog(), stmt, CostParams{});
  without_pair.set_cache_nestloop_pair(false);
  ASSERT_TRUE(without_pair.Init().ok());
  ASSERT_TRUE(without_pair.EstimateCost({idx_orders_cid_}).ok());
  EXPECT_LT(without_pair.optimizer_calls(), with_pair.optimizer_calls());
}

TEST_F(InumTest, MonotoneInConfigurations) {
  // Adding indexes can only reduce (or keep) the estimated cost.
  SelectStatement stmt = Bind(
      "SELECT o.amount FROM orders o, customers c "
      "WHERE o.customer_id = c.cid AND o.amount < 50");
  InumCostModel inum(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  auto none = inum.EstimateCost({});
  auto one = inum.EstimateCost({idx_orders_cid_});
  auto two = inum.EstimateCost({idx_orders_cid_, idx_customers_cid_});
  ASSERT_TRUE(none.ok());
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_LE(*one, *none + 1e-6);
  EXPECT_LE(*two, *one + 1e-6);
}

TEST_F(InumTest, IrrelevantIndexHasNoEffect) {
  SelectStatement stmt = Bind("SELECT count(*) FROM customers WHERE score > 99");
  InumCostModel inum(db_.catalog(), stmt, CostParams{});
  ASSERT_TRUE(inum.Init().ok());
  auto base = inum.EstimateCost({});
  auto with_orders_index = inum.EstimateCost({idx_orders_id_});
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(with_orders_index.ok());
  EXPECT_DOUBLE_EQ(*base, *with_orders_index);
}

}  // namespace
}  // namespace parinda
