#include <gtest/gtest.h>

#include "common/check.h"
#include "executor/executor.h"
#include "optimizer/query_analysis.h"
#include "optimizer/planner.h"
#include "workload/sdss.h"
#include "workload/workload.h"

namespace parinda {
namespace {

TEST(WorkloadTest, MakeWorkloadBindsQueries) {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 500;
  ASSERT_TRUE(BuildSdssDatabase(&db, config).ok());
  auto workload = MakeWorkload(
      db.catalog(), {"SELECT objid FROM photoobj WHERE type = 3"});
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->size(), 1);
  EXPECT_EQ(workload->queries[0].stmt.from[0].bound_table,
            db.catalog().FindTable("photoobj")->id);
}

TEST(WorkloadTest, LoadWorkloadTextParsesFile) {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 500;
  ASSERT_TRUE(BuildSdssDatabase(&db, config).ok());
  auto workload = LoadWorkloadText(db.catalog(),
                                   "-- comment\n"
                                   "SELECT objid FROM photoobj;\n"
                                   "SELECT count(*) FROM specobj;\n");
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->size(), 2);
}

TEST(WorkloadTest, PrefixDeepCopies) {
  Database db;
  SdssConfig config;
  config.photoobj_rows = 500;
  ASSERT_TRUE(BuildSdssDatabase(&db, config).ok());
  auto workload = MakeSdssWorkload(db.catalog());
  ASSERT_TRUE(workload.ok());
  Workload prefix = workload->Prefix(5);
  EXPECT_EQ(prefix.size(), 5);
  EXPECT_EQ(prefix.queries[0].sql, workload->queries[0].sql);
  EXPECT_NE(prefix.queries[0].stmt.where.get(),
            workload->queries[0].stmt.where.get());
}

class SdssTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SdssConfig config;
    config.photoobj_rows = 4000;
    auto dataset = BuildSdssDatabase(db_, config);
    PARINDA_CHECK_OK(dataset);
    dataset_ = new SdssDataset(*dataset);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete db_;
    db_ = nullptr;
    dataset_ = nullptr;
  }

  static Database* db_;
  static SdssDataset* dataset_;
};

Database* SdssTest::db_ = nullptr;
SdssDataset* SdssTest::dataset_ = nullptr;

TEST_F(SdssTest, TablesScaleAsDocumented) {
  const Catalog& catalog = db_->catalog();
  EXPECT_DOUBLE_EQ(catalog.GetTable(dataset_->photoobj)->row_count, 4000);
  EXPECT_DOUBLE_EQ(catalog.GetTable(dataset_->specobj)->row_count, 400);
  EXPECT_DOUBLE_EQ(catalog.GetTable(dataset_->field)->row_count, 40);
  EXPECT_DOUBLE_EQ(catalog.GetTable(dataset_->neighbors)->row_count, 2000);
  EXPECT_DOUBLE_EQ(catalog.GetTable(dataset_->photoprofile)->row_count, 3000);
}

TEST_F(SdssTest, PhotoObjIsWide) {
  EXPECT_EQ(db_->catalog().GetTable(dataset_->photoobj)->schema.num_columns(),
            25);
}

TEST_F(SdssTest, DeterministicForSeed) {
  Database other;
  SdssConfig config;
  config.photoobj_rows = 4000;
  ASSERT_TRUE(BuildSdssDatabase(&other, config).ok());
  const HeapTable* a = db_->GetHeapTable(dataset_->photoobj);
  const HeapTable* b =
      other.GetHeapTable(other.catalog().FindTable("photoobj")->id);
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (RowId id = 0; id < 50; ++id) {
    EXPECT_EQ(CompareRows(a->row(id), b->row(id)), 0);
  }
}

TEST_F(SdssTest, ExactlyThirtyPrototypicalQueries) {
  EXPECT_EQ(SdssPrototypicalQueries().size(), 30u);
}

TEST_F(SdssTest, AllThirtyQueriesBindAndPlan) {
  auto workload = MakeSdssWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->size(), 30);
  for (const WorkloadQuery& query : workload->queries) {
    auto plan = PlanQuery(db_->catalog(), query.stmt);
    ASSERT_TRUE(plan.ok()) << query.sql;
    EXPECT_GT(plan->total_cost(), 0.0) << query.sql;
  }
}

TEST_F(SdssTest, AllThirtyQueriesExecute) {
  auto workload = MakeSdssWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok());
  for (const WorkloadQuery& query : workload->queries) {
    auto result = ExecuteSql(*db_, query.sql);
    ASSERT_TRUE(result.ok()) << query.sql << " -> "
                             << result.status().ToString();
  }
}

TEST_F(SdssTest, SelectivePredicatesAreSelective) {
  // The workload mixes selective point/range queries (index-friendly) with
  // scans; verify a few shapes so the experiments stay meaningful.
  auto point = ExecuteSql(*db_, "SELECT objid FROM photoobj WHERE objid = 7");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->rows.size(), 1u);
  auto galaxies =
      ExecuteSql(*db_, "SELECT count(*) FROM photoobj WHERE type = 3");
  ASSERT_TRUE(galaxies.ok());
  const double frac = static_cast<double>(galaxies->rows[0][0].AsInt64()) / 4000.0;
  EXPECT_NEAR(frac, 0.6, 0.05);
}

TEST_F(SdssTest, QsoRedshiftsReachHighValues) {
  auto result = ExecuteSql(
      *db_, "SELECT max(z) FROM specobj WHERE class = 3");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rows[0][0].AsDouble(), 2.0);
  auto galaxy = ExecuteSql(
      *db_, "SELECT max(z) FROM specobj WHERE class = 2");
  ASSERT_TRUE(galaxy.ok());
  EXPECT_LT(galaxy->rows[0][0].AsDouble(), 1.5);
}

TEST_F(SdssTest, QueriesTouchColumnSubsets) {
  // AutoPart's premise: queries use few of photoobj's 25 columns.
  auto workload = MakeSdssWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok());
  int narrow = 0;
  for (const WorkloadQuery& query : workload->queries) {
    auto analyzed = AnalyzeQuery(db_->catalog(), query.stmt);
    ASSERT_TRUE(analyzed.ok());
    for (size_t r = 0; r < analyzed->tables.size(); ++r) {
      if (analyzed->tables[r]->id == dataset_->photoobj &&
          analyzed->referenced_columns[r].size() <= 6) {
        ++narrow;
        break;
      }
    }
  }
  EXPECT_GE(narrow, 12);
}

}  // namespace
}  // namespace parinda
