#include <gtest/gtest.h>

#include "catalog/size_model.h"
#include "optimizer/planner.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "whatif/whatif_index.h"
#include "whatif/whatif_join.h"
#include "whatif/whatif_table.h"

namespace parinda {
namespace {

class WhatIfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 10000);
  }
  Database db_;
  TableId orders_ = kInvalidTableId;
};

TEST_F(WhatIfTest, IndexSizeMatchesEquation1) {
  WhatIfIndexSet whatif(db_.catalog());
  auto id = whatif.AddIndex({"w1", orders_, {0}, false});
  ASSERT_TRUE(id.ok());
  const IndexInfo* info = whatif.Get(*id);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->hypothetical);
  const double expected =
      Equation1IndexPages(10000, {{ValueType::kInt64, 8.0}});
  EXPECT_DOUBLE_EQ(info->leaf_pages, expected);
  EXPECT_DOUBLE_EQ(info->entries, 10000);
  EXPECT_GE(info->id, kWhatIfIndexIdBase);
}

TEST_F(WhatIfTest, IndexSizeUsesMeasuredStringWidths) {
  WhatIfIndexSet whatif(db_.catalog());
  auto narrow = whatif.AddIndex({"wn", orders_, {0}, false});
  auto wide = whatif.AddIndex({"ww", orders_, {0, 3}, false});  // + region
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_GT(whatif.Get(*wide)->leaf_pages, whatif.Get(*narrow)->leaf_pages);
}

TEST_F(WhatIfTest, InvalidDefinitionsRejected) {
  WhatIfIndexSet whatif(db_.catalog());
  EXPECT_FALSE(whatif.AddIndex({"bad", orders_, {}, false}).ok());
  EXPECT_FALSE(whatif.AddIndex({"bad", orders_, {99}, false}).ok());
  EXPECT_FALSE(whatif.AddIndex({"bad", 424242, {0}, false}).ok());
}

TEST_F(WhatIfTest, RemoveAndClear) {
  WhatIfIndexSet whatif(db_.catalog());
  auto id = whatif.AddIndex({"w1", orders_, {0}, false});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(whatif.size(), 1);
  EXPECT_TRUE(whatif.RemoveIndex(*id).ok());
  EXPECT_FALSE(whatif.RemoveIndex(*id).ok());
  auto id2 = whatif.AddIndex({"w2", orders_, {1}, false});
  ASSERT_TRUE(id2.ok());
  whatif.Clear();
  EXPECT_EQ(whatif.size(), 0);
}

TEST_F(WhatIfTest, HookMakesPlannerUseHypotheticalIndex) {
  // Without any index the plan is a seq scan; with the hook installed the
  // optimizer cannot tell the what-if index from a real one.
  auto stmt = ParseSelect("SELECT amount FROM orders WHERE id = 77");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());

  auto base_plan = PlanQuery(db_.catalog(), *stmt);
  ASSERT_TRUE(base_plan.ok());
  EXPECT_EQ(base_plan->root->type, PlanNodeType::kSeqScan);

  WhatIfIndexSet whatif(db_.catalog());
  auto id = whatif.AddIndex({"w_id", orders_, {0}, false});
  ASSERT_TRUE(id.ok());
  HookRegistry hooks;
  hooks.set_relation_info_hook(whatif.MakeHook());
  PlannerOptions options;
  options.hooks = &hooks;
  auto whatif_plan = PlanQuery(db_.catalog(), *stmt, options);
  ASSERT_TRUE(whatif_plan.ok());
  EXPECT_EQ(whatif_plan->root->type, PlanNodeType::kIndexScan);
  EXPECT_EQ(whatif_plan->root->index_id, *id);
  EXPECT_LT(whatif_plan->total_cost(), base_plan->total_cost());
}

TEST_F(WhatIfTest, ExclusiveHookHidesRealIndexes) {
  ASSERT_TRUE(db_.BuildIndex("real_id", orders_, {0}).ok());
  auto stmt = ParseSelect("SELECT amount FROM orders WHERE id = 77");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  WhatIfIndexSet empty(db_.catalog());
  HookRegistry hooks;
  hooks.set_relation_info_hook(empty.MakeExclusiveHook());
  PlannerOptions options;
  options.hooks = &hooks;
  auto plan = PlanQuery(db_.catalog(), *stmt, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kSeqScan);
}

TEST_F(WhatIfTest, WhatIfSizeMatchesMaterializedBuild) {
  // The property demo scenario 1 verifies: Equation 1 vs a real build.
  WhatIfIndexSet whatif(db_.catalog());
  auto id = whatif.AddIndex({"w_cid", orders_, {1}, false});
  ASSERT_TRUE(id.ok());
  auto real = db_.BuildIndex("real_cid", orders_, {1});
  ASSERT_TRUE(real.ok());
  const double estimated = whatif.Get(*id)->leaf_pages;
  const double actual = db_.catalog().GetIndex(*real)->leaf_pages;
  EXPECT_NEAR(estimated, actual, actual * 0.25);
}

TEST_F(WhatIfTest, PartitionOverlayVisibleToBinder) {
  WhatIfTableCatalog overlay(db_.catalog());
  auto frag = overlay.AddPartition({"orders_narrow", orders_, {2}});
  ASSERT_TRUE(frag.ok());
  // The binder resolves the hypothetical table like a real one — the "empty
  // what-if tables so the parser recognizes the new tables" behaviour.
  auto stmt = ParseSelect("SELECT amount FROM orders_narrow WHERE amount > 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BindStatement(overlay, &*stmt).ok());
}

TEST_F(WhatIfTest, PartitionStatsDeriveFromParent) {
  WhatIfTableCatalog overlay(db_.catalog());
  auto frag = overlay.AddPartition({"orders_narrow", orders_, {2}});
  ASSERT_TRUE(frag.ok());
  const TableInfo* info = overlay.GetTable(*frag);
  const TableInfo* parent = db_.catalog().GetTable(orders_);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->hypothetical);
  EXPECT_DOUBLE_EQ(info->row_count, parent->row_count);
  EXPECT_LT(info->pages, parent->pages);  // narrower -> fewer pages
  // PK (id) + amount.
  EXPECT_EQ(info->schema.num_columns(), 2);
  // Column stats copied from the parent.
  EXPECT_DOUBLE_EQ(info->StatsFor(1)->null_frac,
                   parent->StatsFor(2)->null_frac);
}

TEST_F(WhatIfTest, PartitionSimulationMatchesMaterialization) {
  WhatIfTableCatalog overlay(db_.catalog());
  auto frag = overlay.AddPartition({"orders_sim", orders_, {2, 3}});
  ASSERT_TRUE(frag.ok());
  auto real = db_.MaterializeVerticalPartition(orders_, "orders_real", {2, 3});
  ASSERT_TRUE(real.ok());
  const TableInfo* sim = overlay.GetTable(*frag);
  const TableInfo* mat = db_.catalog().GetTable(*real);
  EXPECT_NEAR(sim->pages, mat->pages, mat->pages * 0.15);
  EXPECT_DOUBLE_EQ(sim->row_count, mat->row_count);
}

TEST_F(WhatIfTest, PartitionDuplicateNameRejected) {
  WhatIfTableCatalog overlay(db_.catalog());
  ASSERT_TRUE(overlay.AddPartition({"f1", orders_, {2}}).ok());
  EXPECT_FALSE(overlay.AddPartition({"f1", orders_, {3}}).ok());
  EXPECT_FALSE(overlay.AddPartition({"orders", orders_, {3}}).ok());
}

TEST_F(WhatIfTest, PlannerCostsFragmentScanCheaper) {
  // Scanning a 1-column fragment must cost less than the 5-column parent.
  // (Per-tuple CPU is identical, so the win is bounded by the I/O share;
  // the 25-column SDSS table in the integration tests shows the large wins.)
  WhatIfTableCatalog overlay(db_.catalog());
  auto frag = overlay.AddPartition({"orders_amt", orders_, {2}});
  ASSERT_TRUE(frag.ok());
  auto parent_stmt = ParseSelect("SELECT avg(amount) FROM orders");
  auto frag_stmt = ParseSelect("SELECT avg(amount) FROM orders_amt");
  ASSERT_TRUE(parent_stmt.ok());
  ASSERT_TRUE(frag_stmt.ok());
  ASSERT_TRUE(BindStatement(overlay, &*parent_stmt).ok());
  ASSERT_TRUE(BindStatement(overlay, &*frag_stmt).ok());
  auto parent_plan = PlanQuery(overlay, *parent_stmt);
  auto frag_plan = PlanQuery(overlay, *frag_stmt);
  ASSERT_TRUE(parent_plan.ok());
  ASSERT_TRUE(frag_plan.ok());
  EXPECT_LT(frag_plan->total_cost(), parent_plan->total_cost() * 0.95);
}

TEST(WhatIfJoinTest, TogglesFlags) {
  CostParams params;
  EXPECT_FALSE(WhatIfJoin::WithNestLoop(params, false).enable_nestloop);
  EXPECT_TRUE(WhatIfJoin::WithNestLoop(params, true).enable_nestloop);
  const CostParams hash_only =
      WhatIfJoin::OnlyMethod(params, WhatIfJoin::Method::kHashJoin);
  EXPECT_TRUE(hash_only.enable_hashjoin);
  EXPECT_FALSE(hash_only.enable_nestloop);
  EXPECT_FALSE(hash_only.enable_mergejoin);
}

}  // namespace
}  // namespace parinda
