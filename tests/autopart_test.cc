#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "autopart/autopart.h"
#include "tests/test_util.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

class AutoPartTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SdssConfig config;
    config.photoobj_rows = 3000;
    auto dataset = BuildSdssDatabase(db_, config);
    PARINDA_CHECK_OK(dataset);
    photoobj_ = dataset->photoobj;
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static TableId photoobj_;
};

Database* AutoPartTest::db_ = nullptr;
TableId AutoPartTest::photoobj_ = kInvalidTableId;

TEST_F(AutoPartTest, AtomicFragmentsPartitionColumns) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT ra, dec FROM photoobj WHERE type = 3",
       "SELECT u, g FROM photoobj WHERE r < 16"});
  ASSERT_TRUE(workload.ok());
  AutoPartAdvisor advisor(db_->catalog(), *workload);
  auto atomics = advisor.AtomicFragments(photoobj_);
  ASSERT_TRUE(atomics.ok());
  // Each non-PK column appears in exactly one fragment.
  std::set<ColumnId> seen;
  for (const FragmentDef& frag : *atomics) {
    for (ColumnId col : frag.columns) {
      EXPECT_TRUE(seen.insert(col).second) << "column duplicated";
    }
  }
  // 24 non-PK columns in total.
  EXPECT_EQ(seen.size(), 24u);
  // {ra, dec} share a usage signature (query 1 only) -> same fragment.
  const TableInfo* info = db_->catalog().GetTable(photoobj_);
  const ColumnId ra = info->schema.FindColumn("ra");
  const ColumnId dec = info->schema.FindColumn("dec");
  const ColumnId type = info->schema.FindColumn("type");
  bool ra_dec_together = false;
  bool type_with_ra = false;
  for (const FragmentDef& frag : *atomics) {
    const bool has_ra =
        std::find(frag.columns.begin(), frag.columns.end(), ra) !=
        frag.columns.end();
    const bool has_dec =
        std::find(frag.columns.begin(), frag.columns.end(), dec) !=
        frag.columns.end();
    const bool has_type =
        std::find(frag.columns.begin(), frag.columns.end(), type) !=
        frag.columns.end();
    if (has_ra && has_dec) ra_dec_together = true;
    if (has_ra && has_type) type_with_ra = true;
  }
  EXPECT_TRUE(ra_dec_together);
  // type is also used by query 1 -> same signature as ra/dec actually!
  // (both appear only in query 0). So type rides with ra/dec.
  EXPECT_TRUE(type_with_ra);
}

TEST_F(AutoPartTest, ColdColumnsGroupTogether) {
  auto workload = MakeWorkload(db_->catalog(),
                               {"SELECT ra FROM photoobj WHERE type = 3"});
  ASSERT_TRUE(workload.ok());
  AutoPartAdvisor advisor(db_->catalog(), *workload);
  auto atomics = advisor.AtomicFragments(photoobj_);
  ASSERT_TRUE(atomics.ok());
  // Two fragments: {ra, type} (used) and the 22 cold columns.
  ASSERT_EQ(atomics->size(), 2u);
  const size_t sizes[2] = {(*atomics)[0].columns.size(),
                           (*atomics)[1].columns.size()};
  EXPECT_EQ(std::min(sizes[0], sizes[1]), 2u);
  EXPECT_EQ(std::max(sizes[0], sizes[1]), 22u);
}

TEST_F(AutoPartTest, SuggestImprovesNarrowWorkload) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16",
       "SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 3;
  AutoPartAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_FALSE(advice->fragments.empty());
  // Narrow column-subset queries over a 25-column table: partitioning must
  // win big (the 2x-10x claim comes from exactly this shape).
  EXPECT_LT(advice->optimized_cost, advice->base_cost * 0.6)
      << "speedup " << advice->Speedup();
  EXPECT_GT(advice->evaluations, 0);
  ASSERT_EQ(advice->per_query_base.size(), 3u);
  for (size_t q = 0; q < 3; ++q) {
    EXPECT_GT(advice->per_query_base[q], 0.0);
    EXPECT_GT(advice->per_query_optimized[q], 0.0);
  }
  // Rewritten queries reference fragments.
  EXPECT_NE(advice->rewritten_sql[0].find("_part"), std::string::npos)
      << advice->rewritten_sql[0];
}

TEST_F(AutoPartTest, ReplicationConstraintLimitsDesign) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions tight;
  tight.replication_limit_bytes = 0.0;  // no replication allowed at all
  tight.max_iterations = 2;
  AutoPartAdvisor advisor(db_->catalog(), *workload, tight);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok());
  // With zero replication budget, fragments may not even replicate the PK
  // beyond one fragment... the initial atomic state itself replicates the
  // PK; the advisor reports the replicated bytes it used.
  EXPECT_GE(advice->replicated_bytes, 0.0);
}

TEST_F(AutoPartTest, DesignIsBitIdenticalAcrossParallelism) {
  // The composite-fragment candidates of each iteration are enumerated
  // serially, evaluated in parallel into pre-sized slots, and selected by a
  // serial scan in enumeration order — so the search trajectory (and hence
  // the final design and every reported cost) must be exactly the same at
  // parallelism 1 and 4.
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16",
       "SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());
  auto run = [&](int parallelism) {
    AutoPartOptions options;
    options.max_iterations = 3;
    options.parallelism = parallelism;
    AutoPartAdvisor advisor(db_->catalog(), *workload, options);
    auto advice = advisor.Suggest();
    PARINDA_CHECK_OK(advice);
    return std::move(*advice);
  };
  const PartitionAdvice serial = run(1);
  const PartitionAdvice parallel = run(4);

  ASSERT_EQ(parallel.fragments.size(), serial.fragments.size());
  for (size_t f = 0; f < serial.fragments.size(); ++f) {
    EXPECT_EQ(parallel.fragments[f].table, serial.fragments[f].table);
    EXPECT_EQ(parallel.fragments[f].columns, serial.fragments[f].columns);
  }
  EXPECT_EQ(parallel.base_cost, serial.base_cost);
  EXPECT_EQ(parallel.optimized_cost, serial.optimized_cost);
  EXPECT_EQ(parallel.per_query_base, serial.per_query_base);
  EXPECT_EQ(parallel.per_query_optimized, serial.per_query_optimized);
  EXPECT_EQ(parallel.rewritten_sql, serial.rewritten_sql);
  EXPECT_EQ(parallel.replicated_bytes, serial.replicated_bytes);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
  EXPECT_EQ(parallel.iterations_run, serial.iterations_run);
}

TEST_F(AutoPartTest, ExpiredDeadlineFallsBackToBaseDesign) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 3;
  options.deadline = Deadline::After(0.0);
  AutoPartAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  // Anytime contract: the advisor hands back the un-partitioned base design
  // (no fragments, queries untouched), flagged degraded — never an error.
  EXPECT_TRUE(advice->degradation.degraded);
  EXPECT_FALSE(advice->degradation.fallbacks.empty());
  EXPECT_TRUE(advice->fragments.empty());
  ASSERT_EQ(advice->rewritten_sql.size(), 2u);
  EXPECT_EQ(advice->rewritten_sql[0], workload->queries[0].sql);
}

TEST_F(AutoPartTest, InfiniteBudgetBitIdenticalToUnbudgeted) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  auto run = [&](Deadline deadline, int parallelism) {
    AutoPartOptions options;
    options.max_iterations = 3;
    options.parallelism = parallelism;
    options.deadline = deadline;
    AutoPartAdvisor advisor(db_->catalog(), *workload, options);
    auto advice = advisor.Suggest();
    PARINDA_CHECK_OK(advice);
    return std::move(*advice);
  };
  const PartitionAdvice plain = run(Deadline(), 1);
  for (int parallelism : {1, 4}) {
    SCOPED_TRACE(parallelism);
    const PartitionAdvice budgeted = run(Deadline::Infinite(), parallelism);
    EXPECT_FALSE(budgeted.degradation.degraded);
    ASSERT_EQ(budgeted.fragments.size(), plain.fragments.size());
    for (size_t f = 0; f < plain.fragments.size(); ++f) {
      EXPECT_EQ(budgeted.fragments[f].columns, plain.fragments[f].columns);
    }
    EXPECT_EQ(budgeted.base_cost, plain.base_cost);
    EXPECT_EQ(budgeted.optimized_cost, plain.optimized_cost);
    EXPECT_EQ(budgeted.per_query_optimized, plain.per_query_optimized);
    EXPECT_EQ(budgeted.evaluations, plain.evaluations);
    EXPECT_EQ(budgeted.iterations_run, plain.iterations_run);
  }
}

TEST_F(AutoPartTest, PerQueryCostsConsistent) {
  auto workload = MakeWorkload(
      db_->catalog(), {"SELECT g, r FROM photoobj WHERE g < 15"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 2;
  AutoPartAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok());
  double total = 0.0;
  for (double c : advice->per_query_optimized) total += c;
  EXPECT_NEAR(total, advice->optimized_cost, advice->optimized_cost * 1e-6);
}

}  // namespace
}  // namespace parinda
