#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>

#include "common/check.h"
#include "autopart/autopart.h"
#include "optimizer/planner.h"
#include "tests/test_util.h"
#include "workload/sdss.h"
#include "workload/tpch_mini.h"

namespace parinda {
namespace {

class AutoPartTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SdssConfig config;
    config.photoobj_rows = 3000;
    auto dataset = BuildSdssDatabase(db_, config);
    PARINDA_CHECK_OK(dataset);
    photoobj_ = dataset->photoobj;
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static TableId photoobj_;
};

Database* AutoPartTest::db_ = nullptr;
TableId AutoPartTest::photoobj_ = kInvalidTableId;

TEST_F(AutoPartTest, AtomicFragmentsPartitionColumns) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT ra, dec FROM photoobj WHERE type = 3",
       "SELECT u, g FROM photoobj WHERE r < 16"});
  ASSERT_TRUE(workload.ok());
  AutoPartAdvisor advisor(db_->catalog(), *workload);
  auto atomics = advisor.AtomicFragments(photoobj_);
  ASSERT_TRUE(atomics.ok());
  // Each non-PK column appears in exactly one fragment.
  std::set<ColumnId> seen;
  for (const FragmentDef& frag : *atomics) {
    for (ColumnId col : frag.columns) {
      EXPECT_TRUE(seen.insert(col).second) << "column duplicated";
    }
  }
  // 24 non-PK columns in total.
  EXPECT_EQ(seen.size(), 24u);
  // {ra, dec} share a usage signature (query 1 only) -> same fragment.
  const TableInfo* info = db_->catalog().GetTable(photoobj_);
  const ColumnId ra = info->schema.FindColumn("ra");
  const ColumnId dec = info->schema.FindColumn("dec");
  const ColumnId type = info->schema.FindColumn("type");
  bool ra_dec_together = false;
  bool type_with_ra = false;
  for (const FragmentDef& frag : *atomics) {
    const bool has_ra =
        std::find(frag.columns.begin(), frag.columns.end(), ra) !=
        frag.columns.end();
    const bool has_dec =
        std::find(frag.columns.begin(), frag.columns.end(), dec) !=
        frag.columns.end();
    const bool has_type =
        std::find(frag.columns.begin(), frag.columns.end(), type) !=
        frag.columns.end();
    if (has_ra && has_dec) ra_dec_together = true;
    if (has_ra && has_type) type_with_ra = true;
  }
  EXPECT_TRUE(ra_dec_together);
  // type is also used by query 1 -> same signature as ra/dec actually!
  // (both appear only in query 0). So type rides with ra/dec.
  EXPECT_TRUE(type_with_ra);
}

TEST_F(AutoPartTest, ColdColumnsGroupTogether) {
  auto workload = MakeWorkload(db_->catalog(),
                               {"SELECT ra FROM photoobj WHERE type = 3"});
  ASSERT_TRUE(workload.ok());
  AutoPartAdvisor advisor(db_->catalog(), *workload);
  auto atomics = advisor.AtomicFragments(photoobj_);
  ASSERT_TRUE(atomics.ok());
  // Two fragments: {ra, type} (used) and the 22 cold columns.
  ASSERT_EQ(atomics->size(), 2u);
  const size_t sizes[2] = {(*atomics)[0].columns.size(),
                           (*atomics)[1].columns.size()};
  EXPECT_EQ(std::min(sizes[0], sizes[1]), 2u);
  EXPECT_EQ(std::max(sizes[0], sizes[1]), 22u);
}

TEST_F(AutoPartTest, SuggestImprovesNarrowWorkload) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16",
       "SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 3;
  AutoPartAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_FALSE(advice->fragments.empty());
  // Narrow column-subset queries over a 25-column table: partitioning must
  // win big (the 2x-10x claim comes from exactly this shape).
  EXPECT_LT(advice->optimized_cost, advice->base_cost * 0.6)
      << "speedup " << advice->Speedup();
  EXPECT_GT(advice->evaluations, 0);
  ASSERT_EQ(advice->per_query_base.size(), 3u);
  for (size_t q = 0; q < 3; ++q) {
    EXPECT_GT(advice->per_query_base[q], 0.0);
    EXPECT_GT(advice->per_query_optimized[q], 0.0);
  }
  // Rewritten queries reference fragments.
  EXPECT_NE(advice->rewritten_sql[0].find("_part"), std::string::npos)
      << advice->rewritten_sql[0];
}

TEST_F(AutoPartTest, ReplicationConstraintLimitsDesign) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions tight;
  tight.replication_limit_bytes = 0.0;  // no replication allowed at all
  tight.max_iterations = 2;
  AutoPartAdvisor advisor(db_->catalog(), *workload, tight);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok());
  // With zero replication budget, fragments may not even replicate the PK
  // beyond one fragment... the initial atomic state itself replicates the
  // PK; the advisor reports the replicated bytes it used.
  EXPECT_GE(advice->replicated_bytes, 0.0);
}

TEST_F(AutoPartTest, DesignIsBitIdenticalAcrossParallelism) {
  // The composite-fragment candidates of each iteration are enumerated
  // serially, evaluated in parallel into pre-sized slots, and selected by a
  // serial scan in enumeration order — so the search trajectory (and hence
  // the final design and every reported cost) must be exactly the same at
  // parallelism 1 and 4.
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16",
       "SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());
  auto run = [&](int parallelism) {
    AutoPartOptions options;
    options.max_iterations = 3;
    options.parallelism = parallelism;
    AutoPartAdvisor advisor(db_->catalog(), *workload, options);
    auto advice = advisor.Suggest();
    PARINDA_CHECK_OK(advice);
    return std::move(*advice);
  };
  const PartitionAdvice serial = run(1);
  const PartitionAdvice parallel = run(4);

  ASSERT_EQ(parallel.fragments.size(), serial.fragments.size());
  for (size_t f = 0; f < serial.fragments.size(); ++f) {
    EXPECT_EQ(parallel.fragments[f].table, serial.fragments[f].table);
    EXPECT_EQ(parallel.fragments[f].columns, serial.fragments[f].columns);
  }
  EXPECT_EQ(parallel.base_cost, serial.base_cost);
  EXPECT_EQ(parallel.optimized_cost, serial.optimized_cost);
  EXPECT_EQ(parallel.per_query_base, serial.per_query_base);
  EXPECT_EQ(parallel.per_query_optimized, serial.per_query_optimized);
  EXPECT_EQ(parallel.rewritten_sql, serial.rewritten_sql);
  EXPECT_EQ(parallel.replicated_bytes, serial.replicated_bytes);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
  EXPECT_EQ(parallel.iterations_run, serial.iterations_run);
}

TEST_F(AutoPartTest, ExpiredDeadlineFallsBackToBaseDesign) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 3;
  options.deadline = Deadline::After(0.0);
  AutoPartAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  // Anytime contract: the advisor hands back the un-partitioned base design
  // (no fragments, queries untouched), flagged degraded — never an error.
  EXPECT_TRUE(advice->degradation.degraded);
  EXPECT_FALSE(advice->degradation.fallbacks.empty());
  EXPECT_TRUE(advice->fragments.empty());
  ASSERT_EQ(advice->rewritten_sql.size(), 2u);
  EXPECT_EQ(advice->rewritten_sql[0], workload->queries[0].sql);
}

TEST_F(AutoPartTest, InfiniteBudgetBitIdenticalToUnbudgeted) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  auto run = [&](Deadline deadline, int parallelism) {
    AutoPartOptions options;
    options.max_iterations = 3;
    options.parallelism = parallelism;
    options.deadline = deadline;
    AutoPartAdvisor advisor(db_->catalog(), *workload, options);
    auto advice = advisor.Suggest();
    PARINDA_CHECK_OK(advice);
    return std::move(*advice);
  };
  const PartitionAdvice plain = run(Deadline(), 1);
  for (int parallelism : {1, 4}) {
    SCOPED_TRACE(parallelism);
    const PartitionAdvice budgeted = run(Deadline::Infinite(), parallelism);
    EXPECT_FALSE(budgeted.degradation.degraded);
    ASSERT_EQ(budgeted.fragments.size(), plain.fragments.size());
    for (size_t f = 0; f < plain.fragments.size(); ++f) {
      EXPECT_EQ(budgeted.fragments[f].columns, plain.fragments[f].columns);
    }
    EXPECT_EQ(budgeted.base_cost, plain.base_cost);
    EXPECT_EQ(budgeted.optimized_cost, plain.optimized_cost);
    EXPECT_EQ(budgeted.per_query_optimized, plain.per_query_optimized);
    EXPECT_EQ(budgeted.evaluations, plain.evaluations);
    EXPECT_EQ(budgeted.iterations_run, plain.iterations_run);
  }
}

TEST_F(AutoPartTest, PerQueryCostsConsistent) {
  auto workload = MakeWorkload(
      db_->catalog(), {"SELECT g, r FROM photoobj WHERE g < 15"});
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 2;
  AutoPartAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok());
  double total = 0.0;
  for (double c : advice->per_query_optimized) total += c;
  EXPECT_NEAR(total, advice->optimized_cost, advice->optimized_cost * 1e-6);
}

// ---------------------------------------------------------------------------
// Golden bit-identity tests. The literals below were captured from the
// pre-engine advisor (full re-plan per candidate, no caching) with %.17g, so
// they round-trip doubles exactly: EXPECT_EQ on a double against one of
// these literals is a bit-for-bit test. The engine's cost cache must
// reproduce them exactly at any parallelism, cached or not — caching may
// change how often the planner runs, never what it returns.
// ---------------------------------------------------------------------------

TEST_F(AutoPartTest, GoldenSdssAdviceBitIdenticalAcrossParallelismAndCache) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16",
       "SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());

  const std::vector<std::vector<ColumnId>> kGoldenFragments = {
      {4, 5, 6, 7, 8, 10, 11, 12, 13, 14, 15, 16, 18, 19, 20, 21, 22, 23, 24},
      {3, 17},
      {9},
      {1, 2}};
  const std::vector<double> kGoldenBase = {127.95750000000001,
                                           123.80250000000001, 123.5};
  const std::vector<double> kGoldenOptimized = {61.957499999999996,
                                                54.802499999999995, 57.5};
  const std::vector<std::string> kGoldenSql = {
      "SELECT avg(photoobj_p0.petrorad_r) FROM photoobj_part1 photoobj_p0 "
      "WHERE (photoobj_p0.type = 3)",
      "SELECT count(*) FROM photoobj_part2 photoobj_p0 "
      "WHERE (photoobj_p0.r BETWEEN 15 AND 16)",
      "SELECT photoobj_p0.ra, photoobj_p0.dec FROM photoobj_part3 photoobj_p0 "
      "WHERE (photoobj_p0.dec > 80)"};

  for (int parallelism : {1, 4}) {
    for (bool cache : {true, false}) {
      SCOPED_TRACE(testing::Message() << "parallelism=" << parallelism
                                      << " engine_cache=" << cache);
      AutoPartOptions options;
      options.max_iterations = 3;
      options.parallelism = parallelism;
      options.engine_cache = cache;
      AutoPartAdvisor advisor(db_->catalog(), *workload, options);
      auto advice = advisor.Suggest();
      ASSERT_TRUE(advice.ok()) << advice.status().ToString();

      EXPECT_EQ(advice->base_cost, 375.25999999999999);
      EXPECT_EQ(advice->optimized_cost, 174.25999999999999);
      EXPECT_EQ(advice->replicated_bytes, 72000.0);
      EXPECT_EQ(advice->evaluations, 14);
      EXPECT_EQ(advice->iterations_run, 1);
      ASSERT_EQ(advice->fragments.size(), kGoldenFragments.size());
      for (size_t f = 0; f < kGoldenFragments.size(); ++f) {
        EXPECT_EQ(advice->fragments[f].table, photoobj_);
        EXPECT_EQ(advice->fragments[f].columns, kGoldenFragments[f]);
      }
      EXPECT_EQ(advice->per_query_base, kGoldenBase);
      EXPECT_EQ(advice->per_query_optimized, kGoldenOptimized);
      EXPECT_EQ(advice->rewritten_sql, kGoldenSql);
    }
  }
}

TEST_F(AutoPartTest, GoldenTpchMiniAdviceBitIdenticalAcrossParallelismAndCache) {
  // Second schema family (joins, date ranges) so the golden coverage is not
  // SDSS-specific. Local database: the suite fixture holds only SDSS.
  Database db;
  TpchMiniConfig config;
  auto dataset = BuildTpchMiniDatabase(&db, config);
  ASSERT_TRUE(dataset.ok());
  auto workload = MakeTpchMiniWorkload(db.catalog());
  ASSERT_TRUE(workload.ok());

  // (table, columns) per fragment, in advice order.
  const std::vector<std::pair<TableId, std::vector<ColumnId>>> kGoldenFragments =
      {{dataset->customer, {1}},
       {dataset->customer, {3}},
       {dataset->customer, {2}},
       {dataset->orders, {3}},
       {dataset->orders, {1}},
       {dataset->orders, {2}},
       {dataset->orders, {4}},
       {dataset->orders, {1, 2, 3}},
       {dataset->lineitem, {5, 6}},
       {dataset->lineitem, {4}},
       {dataset->lineitem, {7}},
       {dataset->lineitem, {3}},
       {dataset->lineitem, {2}},
       {dataset->lineitem, {3, 4, 5, 6, 7}},
       {dataset->lineitem, {2, 3, 4}},
       {dataset->part, {3}},
       {dataset->part, {1}},
       {dataset->part, {2}}};
  const std::vector<double> kGoldenBase = {
      987.43127443751087, 867.58000000000004, 943.83500000000004,
      164.75,             31.75,              16.375,
      184.1225,           716.04999999999995, 856.21749999999997,
      181.22499999999999, 628.75030801014771, 1249.7550000000001};
  const std::vector<double> kGoldenOptimized = {
      956.43127443751087, 836.58000000000004, 777.83500000000004,
      149.75,             56.509999999999998, 14.375,
      298.75999999999999, 625.04999999999995, 796.69500000000005,
      164.22499999999999, 598.75030801014771, 1068.7550000000001};

  for (int parallelism : {1, 4}) {
    for (bool cache : {true, false}) {
      SCOPED_TRACE(testing::Message() << "parallelism=" << parallelism
                                      << " engine_cache=" << cache);
      AutoPartOptions options;
      options.max_iterations = 3;
      options.parallelism = parallelism;
      options.engine_cache = cache;
      AutoPartAdvisor advisor(db.catalog(), *workload, options);
      auto advice = advisor.Suggest();
      ASSERT_TRUE(advice.ok()) << advice.status().ToString();

      EXPECT_EQ(advice->base_cost, 6827.8415824476588);
      EXPECT_EQ(advice->optimized_cost, 6343.7165824476597);
      EXPECT_EQ(advice->replicated_bytes, 5166000.0);
      EXPECT_EQ(advice->evaluations, 218);
      EXPECT_EQ(advice->iterations_run, 3);
      ASSERT_EQ(advice->fragments.size(), kGoldenFragments.size());
      for (size_t f = 0; f < kGoldenFragments.size(); ++f) {
        EXPECT_EQ(advice->fragments[f].table, kGoldenFragments[f].first);
        EXPECT_EQ(advice->fragments[f].columns, kGoldenFragments[f].second);
      }
      EXPECT_EQ(advice->per_query_base, kGoldenBase);
      EXPECT_EQ(advice->per_query_optimized, kGoldenOptimized);
    }
  }
}

TEST_F(AutoPartTest, EngineCacheStrictlyReducesPlannerCalls) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16",
       "SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());

  auto run = [&](bool cache, int64_t* plans_built, EvaluatorStats* stats) {
    AutoPartOptions options;
    options.max_iterations = 3;
    options.parallelism = 1;
    options.engine_cache = cache;
    AutoPartAdvisor advisor(db_->catalog(), *workload, options);
    const int64_t before = Planner::stats().plans_built;
    auto advice = advisor.Suggest();
    PARINDA_CHECK_OK(advice);
    *plans_built = Planner::stats().plans_built - before;
    *stats = advisor.evaluator_stats();
    return std::move(*advice);
  };

  int64_t cached_plans = 0;
  int64_t uncached_plans = 0;
  EvaluatorStats cached_stats;
  EvaluatorStats uncached_stats;
  const PartitionAdvice cached = run(true, &cached_plans, &cached_stats);
  const PartitionAdvice uncached = run(false, &uncached_plans, &uncached_stats);

  // Same advice either way...
  EXPECT_EQ(cached.optimized_cost, uncached.optimized_cost);
  EXPECT_EQ(cached.evaluations, uncached.evaluations);
  // ...but the cache must pay for itself: strictly fewer planner calls than
  // the full re-plan, and far fewer than the naive queries x evaluations
  // upper bound (most candidate states only move one table's fragments, so
  // the other queries' costs are served from cache).
  EXPECT_GT(cached_stats.cache_hits, 0);
  EXPECT_EQ(uncached_stats.cache_hits, 0);
  EXPECT_LT(cached_plans, uncached_plans);
  const int64_t naive_bound =
      static_cast<int64_t>(workload->queries.size()) * cached.evaluations;
  EXPECT_LT(cached_plans, naive_bound);
}

}  // namespace
}  // namespace parinda
