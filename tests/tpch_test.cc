#include <gtest/gtest.h>

#include "advisor/index_advisor.h"
#include "autopart/autopart.h"
#include "common/check.h"
#include "executor/executor.h"
#include "optimizer/planner.h"
#include "workload/tpch_mini.h"

namespace parinda {
namespace {

/// Generality check: the designer tuned for SDSS also handles a TPC-H-style
/// decision-support schema end to end.
class TpchMiniTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchMiniConfig config;
    config.lineitem_rows = 12000;
    auto dataset = BuildTpchMiniDatabase(db_, config);
    PARINDA_CHECK_OK(dataset);
    dataset_ = new TpchMiniDataset(*dataset);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete db_;
    db_ = nullptr;
    dataset_ = nullptr;
  }
  static Database* db_;
  static TpchMiniDataset* dataset_;
};

Database* TpchMiniTest::db_ = nullptr;
TpchMiniDataset* TpchMiniTest::dataset_ = nullptr;

TEST_F(TpchMiniTest, TablesScale) {
  EXPECT_DOUBLE_EQ(db_->catalog().GetTable(dataset_->lineitem)->row_count,
                   12000);
  EXPECT_DOUBLE_EQ(db_->catalog().GetTable(dataset_->orders)->row_count, 3000);
  EXPECT_DOUBLE_EQ(db_->catalog().GetTable(dataset_->customer)->row_count,
                   300);
  EXPECT_DOUBLE_EQ(db_->catalog().GetTable(dataset_->part)->row_count, 600);
}

TEST_F(TpchMiniTest, AllQueriesPlanAndExecute) {
  auto workload = MakeTpchMiniWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->size(), 12);
  for (const WorkloadQuery& query : workload->queries) {
    auto plan = PlanQuery(db_->catalog(), query.stmt);
    ASSERT_TRUE(plan.ok()) << query.sql;
    auto result = ExecuteSql(*db_, query.sql);
    ASSERT_TRUE(result.ok()) << query.sql << " -> "
                             << result.status().ToString();
  }
}

TEST_F(TpchMiniTest, Q6StyleAggregateIsPlausible) {
  auto result = ExecuteSql(
      *db_,
      "SELECT sum(l_extendedprice * l_discount) FROM lineitem "
      "WHERE l_shipdate BETWEEN 9131 AND 9496 "
      "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  // A revenue number, not NULL/zero (the predicates match some rows).
  ASSERT_FALSE(result->rows[0][0].is_null());
  EXPECT_GT(result->rows[0][0].AsDouble(), 0.0);
}

TEST_F(TpchMiniTest, IndexAdvisorImprovesWorkload) {
  auto workload = MakeTpchMiniWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok());
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 8.0 * 1024 * 1024;
  IndexAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_FALSE(advice->indexes.empty());
  EXPECT_LT(advice->optimized_cost, advice->base_cost);
  // The join columns are obvious winners: expect an index on one of them.
  bool join_index = false;
  for (const SuggestedIndex& s : advice->indexes) {
    if ((s.def.table == dataset_->lineitem && s.def.columns[0] == 0) ||
        (s.def.table == dataset_->orders && s.def.columns[0] == 1)) {
      join_index = true;
    }
  }
  EXPECT_TRUE(join_index);
}

TEST_F(TpchMiniTest, AutoPartHandlesNarrowTables) {
  // lineitem is only 8 columns: vertical partitioning should win little or
  // nothing, and the advisor must not force a bad design.
  auto workload = MakeTpchMiniWorkload(db_->catalog());
  ASSERT_TRUE(workload.ok());
  AutoPartOptions options;
  options.max_iterations = 2;
  AutoPartAdvisor advisor(db_->catalog(), *workload, options);
  auto advice = advisor.Suggest();
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_LE(advice->optimized_cost, advice->base_cost * 1.0 + 1e-6);
}

}  // namespace
}  // namespace parinda
