#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace parinda {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::SolverError("x").code(), StatusCode::kSolverError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  PARINDA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto good = DoubleIt(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = DoubleIt(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
  EXPECT_TRUE(EqualsIgnoreCase("PhotoObj", "photoobj"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, UniformIntInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, ZipfIsSkewed) {
  Random rng(3);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(100, 0.99) == 0) ++head;
  }
  // Rank 0 of a 100-element zipf(0.99) should carry far more than 1/100.
  EXPECT_GT(head, n / 50);
}

TEST(RandomTest, BernoulliRate) {
  Random rng(4);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&sum, i] {
      sum.fetch_add(i);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.WaitAll().ok());
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, WaitAllReturnsEarliestSubmittedError) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) {
    pool.Submit([i]() -> Status {
      if (i == 7) return Status::Internal("task 7");
      if (i == 23) return Status::InvalidArgument("task 23");
      return Status::OK();
    });
  }
  Status status = pool.WaitAll();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "task 7");
  // The batch error resets: the pool is reusable.
  pool.Submit([] { return Status::OK(); });
  EXPECT_TRUE(pool.WaitAll().ok());
}

TEST(ThreadPoolTest, WaitAllOnIdlePoolIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.WaitAll().ok());
}

TEST(ThreadPoolTest, WorkerCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
  EXPECT_EQ(ResolveParallelism(0), ThreadPool::DefaultParallelism());
  EXPECT_EQ(ResolveParallelism(3), 3);
}

TEST(ParallelForTest, FillsDisjointSlotsIdenticallyAtAnyParallelism) {
  auto run = [](int parallelism) {
    std::vector<int> out(64, 0);
    Status status = ParallelFor(parallelism, 64,
                                [&out](int i) -> Status {
                                  out[i] = i * i;
                                  return Status::OK();
                                });
    EXPECT_TRUE(status.ok());
    return out;
  };
  const std::vector<int> serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ParallelForTest, ReturnsLowestIndexError) {
  for (int parallelism : {1, 4}) {
    Status status = ParallelFor(parallelism, 20, [](int i) -> Status {
      if (i == 3) return Status::Internal("first");
      if (i == 15) return Status::Internal("later");
      return Status::OK();
    });
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(status.message(), "first") << "parallelism " << parallelism;
  }
}

TEST(ParallelForTest, SerialModeStopsAtFirstError) {
  // parallelism <= 1 runs inline in index order and must not touch later
  // indexes after a failure.
  std::vector<int> touched(10, 0);
  Status status = ParallelFor(1, 10, [&touched](int i) -> Status {
    touched[i] = 1;
    if (i == 4) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(touched[4], 1);
  EXPECT_EQ(touched[5], 0);
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  EXPECT_TRUE(
      ParallelFor(4, 0, [](int) { return Status::Internal("never"); }).ok());
}

}  // namespace
}  // namespace parinda
