#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace parinda {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::SolverError("x").code(), StatusCode::kSolverError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(Status::Cancelled("x").ToString(), "Cancelled: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
}

TEST(DeadlineTest, DefaultIsInfiniteAndNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.CheckOk("test").ok());
  EXPECT_TRUE(Deadline::Infinite().infinite());
  EXPECT_GT(d.RemainingSeconds(), 1e12);
}

TEST(DeadlineTest, ZeroBudgetIsAlreadyExpired) {
  Deadline d = Deadline::After(0.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  Status st = d.CheckOk("phase-x");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("phase-x"), std::string::npos);
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetNotExpiredAndCopiesShareIt) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.CheckOk("test").ok());
  Deadline copy = d;  // copies share the same absolute instant
  EXPECT_FALSE(copy.infinite());
  EXPECT_NEAR(copy.RemainingSeconds(), d.RemainingSeconds(), 1.0);
}

TEST(DeadlineTest, HugeBudgetSaturatesToInfinite) {
  // Regression: budgets too large for steady_clock::duration used to
  // overflow the duration_cast and wrap an effectively-unbounded budget
  // into an *already expired* deadline.
  for (double seconds : {1e18, 1e15, 4e9}) {
    Deadline d = Deadline::After(seconds);
    EXPECT_FALSE(d.Expired()) << "After(" << seconds << ")";
    EXPECT_GT(d.RemainingSeconds(), 1e8) << "After(" << seconds << ")";
  }
  EXPECT_TRUE(Deadline::After(1e18).infinite());
  EXPECT_FALSE(Deadline::AfterMillis(int64_t{1} << 62).Expired());
}

TEST(DeadlineTest, NonFiniteBudgetSaturatesToInfinite) {
  EXPECT_TRUE(Deadline::After(std::numeric_limits<double>::infinity())
                  .infinite());
  // NaN compares false against everything; the only safe reading of an
  // unordered budget is "unbounded", never "expired".
  EXPECT_TRUE(Deadline::After(std::nan("")).infinite());
}

TEST(DeadlineTest, NegativeBudgetIsAlreadyExpired) {
  Deadline d = Deadline::After(-5.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
}

TEST(CancellationTokenTest, CancelIsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.CheckOk("test").ok());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  Status st = token.CheckOk("worker");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("worker"), std::string::npos);
}

TEST(DegradationReportTest, FallbacksSetDegradedAndRenderInSummary) {
  DegradationReport report;
  EXPECT_FALSE(report.degraded);
  report.AddFallback("ilp:incumbent");
  report.AddFallback("finish:matrix-estimate");
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.fallbacks.size(), 2u);
  report.phase_seconds.emplace_back("solve", 0.005);
  const std::string s = report.ToString();
  EXPECT_NE(s.find("ilp:incumbent"), std::string::npos);
  EXPECT_NE(s.find("solve"), std::string::npos);
}

TEST(PhaseTimerTest, StopRecordsOnce) {
  DegradationReport report;
  {
    PhaseTimer timer(&report, "phase");
    timer.Stop();
    timer.Stop();  // idempotent; destructor is also a no-op after this
  }
  ASSERT_EQ(report.phase_seconds.size(), 1u);
  EXPECT_EQ(report.phase_seconds[0].first, "phase");
  EXPECT_GE(report.phase_seconds[0].second, 0.0);
}

TEST(PhaseTimerTest, FlushRecordsMidPhaseWithoutDuplicates) {
  // Regression: a report read while a phase was still open used to carry
  // nothing for that phase — a deadline firing mid-phase silently
  // under-reported phase_seconds. Flush() records elapsed-so-far in place.
  DegradationReport report;
  PhaseTimer timer(&report, "open_phase");
  timer.Flush();
  ASSERT_EQ(report.phase_seconds.size(), 1u);
  EXPECT_EQ(report.phase_seconds[0].first, "open_phase");
  const double first = report.phase_seconds[0].second;
  EXPECT_GE(first, 0.0);
  timer.Flush();  // updates the same entry, never appends a duplicate
  ASSERT_EQ(report.phase_seconds.size(), 1u);
  EXPECT_GE(report.phase_seconds[0].second, first);
  timer.Stop();  // final refinement, still one entry
  ASSERT_EQ(report.phase_seconds.size(), 1u);
  EXPECT_GE(report.phase_seconds[0].second, first);
}

TEST(PhaseTimerTest, RepeatedPhaseNamesStayDistinct) {
  // Two sequential timers with the same phase name produce two entries;
  // Flush only updates *this* timer's (the most recent) entry.
  DegradationReport report;
  {
    PhaseTimer first(&report, "retry");
  }
  PhaseTimer second(&report, "retry");
  second.Flush();
  ASSERT_EQ(report.phase_seconds.size(), 2u);
  EXPECT_EQ(report.phase_seconds[0].first, "retry");
  EXPECT_EQ(report.phase_seconds[1].first, "retry");
  second.Stop();
  EXPECT_EQ(report.phase_seconds.size(), 2u);
}

TEST(PhaseTimerTest, NullReportIsSafe) {
  PhaseTimer timer(nullptr, "phase");
  timer.Flush();
  timer.Stop();
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  PARINDA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto good = DoubleIt(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = DoubleIt(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
  EXPECT_TRUE(EqualsIgnoreCase("PhotoObj", "photoobj"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, UniformIntInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, ZipfIsSkewed) {
  Random rng(3);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(100, 0.99) == 0) ++head;
  }
  // Rank 0 of a 100-element zipf(0.99) should carry far more than 1/100.
  EXPECT_GT(head, n / 50);
}

TEST(RandomTest, BernoulliRate) {
  Random rng(4);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&sum, i] {
      sum.fetch_add(i);
      return Status::OK();
    }).ok());
  }
  ASSERT_TRUE(pool.WaitAll().ok());
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, WaitAllReturnsEarliestSubmittedError) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool.Submit([i]() -> Status {
      if (i == 7) return Status::Internal("task 7");
      if (i == 23) return Status::InvalidArgument("task 23");
      return Status::OK();
    }).ok());
  }
  Status status = pool.WaitAll();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "task 7");
  // The batch error resets: the pool is reusable.
  ASSERT_TRUE(pool.Submit([] { return Status::OK(); }).ok());
  EXPECT_TRUE(pool.WaitAll().ok());
}

TEST(ThreadPoolTest, WaitAllOnIdlePoolIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.WaitAll().ok());
}

TEST(ThreadPoolTest, WorkerCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
  EXPECT_EQ(ResolveParallelism(0), ThreadPool::DefaultParallelism());
  EXPECT_EQ(ResolveParallelism(3), 3);
}

TEST(ParallelForTest, FillsDisjointSlotsIdenticallyAtAnyParallelism) {
  auto run = [](int parallelism) {
    std::vector<int> out(64, 0);
    Status status = ParallelFor(parallelism, 64,
                                [&out](int i) -> Status {
                                  out[i] = i * i;
                                  return Status::OK();
                                });
    EXPECT_TRUE(status.ok());
    return out;
  };
  const std::vector<int> serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ParallelForTest, ReturnsLowestIndexError) {
  for (int parallelism : {1, 4}) {
    Status status = ParallelFor(parallelism, 20, [](int i) -> Status {
      if (i == 3) return Status::Internal("first");
      if (i == 15) return Status::Internal("later");
      return Status::OK();
    });
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(status.message(), "first") << "parallelism " << parallelism;
  }
}

TEST(ParallelForTest, SerialModeStopsAtFirstError) {
  // parallelism <= 1 runs inline in index order and must not touch later
  // indexes after a failure.
  std::vector<int> touched(10, 0);
  Status status = ParallelFor(1, 10, [&touched](int i) -> Status {
    touched[i] = 1;
    if (i == 4) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(touched[4], 1);
  EXPECT_EQ(touched[5], 0);
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  EXPECT_TRUE(
      ParallelFor(4, 0, [](int) { return Status::Internal("never"); }).ok());
}

TEST(ThreadPoolTest, SubmitAndWaitAfterShutdownFailCleanly) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.Submit([] { return Status::OK(); }).ok());
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  Status submit = pool.Submit([] { return Status::OK(); });
  EXPECT_EQ(submit.code(), StatusCode::kFailedPrecondition);
  Status wait = pool.WaitAll();
  EXPECT_EQ(wait.code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, CancelPendingDropsQueuedTasks) {
  // One worker, blocked on the first task: everything behind it stays
  // queued until CancelPending drops it.
  ThreadPool pool(1);
  std::mutex gate;
  gate.lock();
  ASSERT_TRUE(pool.Submit([&gate] {
    gate.lock();  // released by the test thread below
    gate.unlock();
    return Status::OK();
  }).ok());
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] {
      ran.fetch_add(1);
      return Status::OK();
    }).ok());
  }
  pool.CancelPending();
  gate.unlock();
  Status status = pool.WaitAll();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0);
  // The pool is reusable after a cancelled batch.
  ASSERT_TRUE(pool.Submit([] { return Status::OK(); }).ok());
  EXPECT_TRUE(pool.WaitAll().ok());
}

TEST(ThreadPoolTest, CancellationTokenSkipsQueuedTasks) {
  ThreadPool pool(1);
  CancellationToken token;
  pool.set_cancellation(&token);
  std::mutex gate;
  gate.lock();
  ASSERT_TRUE(pool.Submit([&gate] {
    gate.lock();
    gate.unlock();
    return Status::OK();
  }).ok());
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] {
      ran.fetch_add(1);
      return Status::OK();
    }).ok());
  }
  token.Cancel();
  gate.unlock();
  Status status = pool.WaitAll();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0);
  pool.set_cancellation(nullptr);
}

TEST(ThreadPoolTest, CancelOnErrorStillReportsEarliestError) {
  // With cancel-on-error, a failure drops the queue, but FIFO dequeue means
  // every earlier-submitted task already ran — so the earliest-error
  // contract holds at any worker count.
  for (int workers : {1, 4}) {
    ThreadPool pool(workers);
    pool.set_cancel_on_error(true);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(pool.Submit([i]() -> Status {
        if (i == 5) return Status::Internal("earliest");
        if (i == 40) return Status::InvalidArgument("later");
        return Status::OK();
      }).ok());
    }
    Status status = pool.WaitAll();
    EXPECT_EQ(status.code(), StatusCode::kInternal) << "workers " << workers;
    EXPECT_EQ(status.message(), "earliest");
  }
}

}  // namespace
}  // namespace parinda
