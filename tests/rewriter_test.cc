#include <gtest/gtest.h>

#include "common/check.h"
#include "executor/executor.h"
#include "optimizer/planner.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "rewriter/rewriter.h"
#include "tests/test_util.h"
#include "whatif/whatif_table.h"

namespace parinda {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 2000);
    customers_ = testing_util::MakeCustomersTable(&db_, 200);
    overlay_ = std::make_unique<WhatIfTableCatalog>(db_.catalog());
    // Two fragments of orders: (id, customer_id, amount) and (id, region,
    // flag).
    auto f1 = overlay_->AddPartition({"orders_f1", orders_, {1, 2}});
    auto f2 = overlay_->AddPartition({"orders_f2", orders_, {3, 4}});
    PARINDA_CHECK_OK(f1);
    PARINDA_CHECK_OK(f2);
    fragments_ = {overlay_->GetTable(*f1), overlay_->GetTable(*f2)};
  }

  SelectStatement Bind(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    PARINDA_CHECK_OK(stmt);
    PARINDA_CHECK_OK(BindStatement(db_.catalog(), &*stmt));
    return std::move(*stmt);
  }

  Database db_;
  TableId orders_ = kInvalidTableId;
  TableId customers_ = kInvalidTableId;
  std::unique_ptr<WhatIfTableCatalog> overlay_;
  std::vector<const TableInfo*> fragments_;
};

TEST_F(RewriterTest, SingleFragmentCover) {
  SelectStatement stmt = Bind("SELECT amount FROM orders WHERE amount > 500");
  auto result = RewriteForPartitions(*overlay_, stmt, fragments_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
  ASSERT_EQ(result->stmt.from.size(), 1u);
  EXPECT_EQ(result->stmt.from[0].table_name, "orders_f1");
}

TEST_F(RewriterTest, TwoFragmentsJoinOnPk) {
  SelectStatement stmt =
      Bind("SELECT amount, region FROM orders WHERE flag = true");
  auto result = RewriteForPartitions(*overlay_, stmt, fragments_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
  ASSERT_EQ(result->stmt.from.size(), 2u);
  // The PK join condition appears in WHERE.
  const std::string sql = result->stmt.ToSql();
  EXPECT_NE(sql.find("orders_f1"), std::string::npos);
  EXPECT_NE(sql.find("orders_f2"), std::string::npos);
  EXPECT_NE(sql.find(".id = "), std::string::npos) << sql;
}

TEST_F(RewriterTest, UntouchedTableStaysPut) {
  SelectStatement stmt = Bind("SELECT name FROM customers WHERE cid = 3");
  auto result = RewriteForPartitions(*overlay_, stmt, fragments_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->changed);
  EXPECT_EQ(result->stmt.from[0].table_name, "customers");
}

TEST_F(RewriterTest, JoinQueryOnlyRewritesPartitionedSide) {
  SelectStatement stmt = Bind(
      "SELECT c.name, o.amount FROM orders o, customers c "
      "WHERE o.customer_id = c.cid AND o.amount > 900");
  auto result = RewriteForPartitions(*overlay_, stmt, fragments_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
  ASSERT_EQ(result->stmt.from.size(), 2u);
  EXPECT_EQ(result->stmt.from[0].table_name, "orders_f1");
  EXPECT_EQ(result->stmt.from[1].table_name, "customers");
}

TEST_F(RewriterTest, PkOnlyQueryUsesNarrowestFragment) {
  SelectStatement stmt = Bind("SELECT count(*) FROM orders");
  auto result = RewriteForPartitions(*overlay_, stmt, fragments_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
  ASSERT_EQ(result->stmt.from.size(), 1u);
}

TEST_F(RewriterTest, RewrittenSqlReparsesAndBinds) {
  SelectStatement stmt = Bind(
      "SELECT region, count(*), avg(amount) FROM orders "
      "WHERE amount BETWEEN 100 AND 500 GROUP BY region ORDER BY region");
  auto result = RewriteForPartitions(*overlay_, stmt, fragments_);
  ASSERT_TRUE(result.ok());
  auto reparsed = ParseSelect(result->stmt.ToSql());
  ASSERT_TRUE(reparsed.ok()) << result->stmt.ToSql();
  EXPECT_TRUE(BindStatement(*overlay_, &*reparsed).ok());
}

TEST_F(RewriterTest, RewrittenPlanIsCheaperForNarrowQueries) {
  SelectStatement stmt = Bind("SELECT avg(amount) FROM orders");
  auto result = RewriteForPartitions(*overlay_, stmt, fragments_);
  ASSERT_TRUE(result.ok());
  auto base_plan = PlanQuery(db_.catalog(), stmt);
  auto frag_plan = PlanQuery(*overlay_, result->stmt);
  ASSERT_TRUE(base_plan.ok());
  ASSERT_TRUE(frag_plan.ok());
  EXPECT_LT(frag_plan->total_cost(), base_plan->total_cost());
}

TEST_F(RewriterTest, MaterializedRewriteGivesSameAnswers) {
  // Materialize the same fragments for real, rewrite, execute both, compare.
  auto real1 = db_.MaterializeVerticalPartition(orders_, "orders_f1", {1, 2});
  auto real2 = db_.MaterializeVerticalPartition(orders_, "orders_f2", {3, 4});
  ASSERT_TRUE(real1.ok());
  ASSERT_TRUE(real2.ok());
  std::vector<const TableInfo*> real_frags = {
      db_.catalog().GetTable(*real1), db_.catalog().GetTable(*real2)};

  const std::string sql =
      "SELECT region, count(*) FROM orders WHERE amount > 250 "
      "GROUP BY region ORDER BY region";
  SelectStatement stmt = Bind(sql);
  auto rewritten = RewriteForPartitions(db_.catalog(), stmt, real_frags);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_TRUE(rewritten->changed);

  auto base_result = ExecuteSql(db_, sql);
  ASSERT_TRUE(base_result.ok());
  auto plan = PlanQuery(db_.catalog(), rewritten->stmt);
  ASSERT_TRUE(plan.ok());
  auto frag_result = ExecutePlan(db_, rewritten->stmt, *plan);
  ASSERT_TRUE(frag_result.ok()) << frag_result.status().ToString();
  ASSERT_EQ(base_result->rows.size(), frag_result->rows.size());
  for (size_t i = 0; i < base_result->rows.size(); ++i) {
    EXPECT_EQ(CompareRows(base_result->rows[i], frag_result->rows[i]), 0);
  }
}

}  // namespace
}  // namespace parinda
