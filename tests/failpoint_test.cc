#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "advisor/index_advisor.h"
#include "autopart/autopart.h"
#include "catalog/stats_io.h"
#include "common/check.h"
#include "design/design_session.h"
#include "engine/cache_spill.h"
#include "storage/database.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

// A small SDSS instance shared by the pipeline-level tests.
struct Stack {
  Database db;
  Workload workload;

  Stack() {
    SdssConfig config;
    config.photoobj_rows = 1000;
    PARINDA_CHECK_OK(BuildSdssDatabase(&db, config));
    auto wl = MakeSdssWorkload(db.catalog());
    PARINDA_CHECK_OK(wl);
    workload = std::move(*wl);
  }
};

Status RunStatsLoad(Stack& s) {
  return LoadCatalogStats(DumpCatalogStats(s.db.catalog())).status();
}

Status RunDesignSession(Stack& s) {
  DesignSession session(s.db.catalog(), &s.workload);
  return session.Evaluate().status();
}

Status RunAutoPart(Stack& s) {
  AutoPartOptions options;
  options.max_iterations = 2;
  AutoPartAdvisor advisor(s.db.catalog(), s.workload, options);
  return advisor.Suggest().status();
}

Status RunIndexAdvisor(Stack& s) {
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 4.0 * 1024 * 1024;
  IndexAdvisor advisor(s.db.catalog(), s.workload, options);
  return advisor.SuggestWithIlp().status();
}

/// A budget far below the session's working set, so eviction (and with it the
/// engine.evict failpoint) fires during a plain Evaluate().
Status RunBudgetedDesignSession(Stack& s) {
  DesignSessionOptions options;
  options.memory_budget_bytes = 2 * 1024;
  DesignSession session(s.db.catalog(), &s.workload, options);
  return session.Evaluate().status();
}

Status RunCacheSave(Stack& s) {
  DesignSession session(s.db.catalog(), &s.workload);
  PARINDA_RETURN_IF_ERROR(session.Evaluate().status());
  const std::string path =
      ::testing::TempDir() + "/failpoint_spill_save.parinda";
  const Status saved = session.SaveCache(path);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return saved;
}

Status RunCacheLoad(Stack& s) {
  DesignSession session(s.db.catalog(), &s.workload);
  PARINDA_RETURN_IF_ERROR(session.Evaluate().status());
  const std::string path =
      ::testing::TempDir() + "/failpoint_spill_load.parinda";
  // The save must succeed even with the read point armed, so the load below
  // actually reaches engine.spill_read.
  PARINDA_RETURN_IF_ERROR(session.SaveCache(path));
  const Status loaded = session.LoadCache(path).status();
  std::remove(path.c_str());
  return loaded;
}

// Every failpoint registered in src/, paired with the pipeline that crosses
// it. tools/ci.sh sweeps the same names (listed by `--list-failpoints` on
// this binary) in error mode under the sanitizer build;
// ErrorModeSurfacesAsStatus below fails when this table goes stale (a renamed
// point would record zero hits).
struct PointCase {
  const char* name;
  Status (*run)(Stack&);
};
const PointCase kAllFailpoints[] = {
    {"advisor.enumerate", RunIndexAdvisor},
    {"advisor.matrix", RunIndexAdvisor},
    {"advisor.solve", RunIndexAdvisor},
    {"autopart.evaluate", RunAutoPart},
    {"design.evaluate", RunDesignSession},
    {"engine.evict", RunBudgetedDesignSession},
    {"engine.spill_read", RunCacheLoad},
    {"engine.spill_write", RunCacheSave},
    {"inum.build_entry", RunIndexAdvisor},
    {"inum.estimate", RunIndexAdvisor},
    {"solver.bnb_node", RunIndexAdvisor},
    {"stats.load", RunStatsLoad},
};

class FailpointTest : public ::testing::Test {
 protected:
  // Arming is process-global state: never leak it into the next test.
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, ErrorModeSurfacesAsStatus) {
  Stack s;
  for (const PointCase& pc : kAllFailpoints) {
    SCOPED_TRACE(pc.name);
    failpoint::ClearAll();
    failpoint::Configure(pc.name, failpoint::Mode::kError);
    const Status st = pc.run(s);
    EXPECT_GT(failpoint::HitCount(pc.name), 0)
        << "failpoint never hit: stale name or pipeline no longer crosses it";
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("failpoint"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.message().find(pc.name), std::string::npos) << st.ToString();
  }
}

TEST_F(FailpointTest, DelayModeLeavesResultsIdentical) {
  Stack s;
  failpoint::ClearAll();
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 4.0 * 1024 * 1024;
  auto baseline = IndexAdvisor(s.db.catalog(), s.workload, options)
                      .SuggestWithIlp();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Arm every point in delay mode (0 ms: exercises the injection path
  // without slowing hot loops like solver.bnb_node by a sleep per node).
  for (const PointCase& pc : kAllFailpoints) {
    failpoint::Configure(pc.name, failpoint::Mode::kDelay, 0);
  }
  auto delayed = IndexAdvisor(s.db.catalog(), s.workload, options)
                     .SuggestWithIlp();
  ASSERT_TRUE(delayed.ok()) << delayed.status().ToString();
  EXPECT_FALSE(delayed->degradation.degraded);
  EXPECT_FALSE(delayed->degradation.failpoint_hits.empty());
  ASSERT_EQ(delayed->indexes.size(), baseline->indexes.size());
  EXPECT_EQ(delayed->optimized_cost, baseline->optimized_cost);
  EXPECT_EQ(delayed->base_cost, baseline->base_cost);
  for (size_t i = 0; i < baseline->indexes.size(); ++i) {
    EXPECT_EQ(delayed->indexes[i].def.columns, baseline->indexes[i].def.columns);
  }

  // Every other pipeline stays clean under injected delays too.
  EXPECT_TRUE(RunStatsLoad(s).ok());
  EXPECT_TRUE(RunDesignSession(s).ok());
  EXPECT_TRUE(RunAutoPart(s).ok());
}

TEST_F(FailpointTest, ConfigureFromSpecParsesEnvSyntax) {
  failpoint::ClearAll();
  ASSERT_TRUE(
      failpoint::ConfigureFromSpec("test.a=error, test.b=delay:5,test.c=off")
          .ok());
  EXPECT_TRUE(failpoint::AnyActive());
  const Status a = failpoint::Hit("test.a");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.message().find("failpoint test.a"), std::string::npos);
  EXPECT_TRUE(failpoint::Hit("test.b").ok());
  EXPECT_TRUE(failpoint::Hit("test.c").ok());
  EXPECT_TRUE(failpoint::Hit("test.never_configured").ok());

  EXPECT_FALSE(failpoint::ConfigureFromSpec("test.a").ok());
  EXPECT_FALSE(failpoint::ConfigureFromSpec("test.a=bogus").ok());
  EXPECT_FALSE(failpoint::ConfigureFromSpec("test.a=delay:xyz").ok());
  EXPECT_FALSE(failpoint::ConfigureFromSpec("=error").ok());
}

TEST_F(FailpointTest, HitCountersAndSnapshots) {
  failpoint::ClearAll();
  EXPECT_FALSE(failpoint::AnyActive());
  // Inactive points neither fire nor count.
  EXPECT_TRUE(failpoint::Hit("test.idle").ok());
  EXPECT_EQ(failpoint::HitCount("test.idle"), 0);

  failpoint::Configure("test.count", failpoint::Mode::kDelay, 0);
  const auto before = failpoint::AllHits();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(failpoint::Hit("test.count").ok());
  }
  EXPECT_EQ(failpoint::HitCount("test.count"), 3);
  const auto since = failpoint::HitsSince(before);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].first, "test.count");
  EXPECT_EQ(since[0].second, 3);

  // Clear disarms but keeps the counter; ClearAll zeroes it.
  failpoint::Clear("test.count");
  EXPECT_FALSE(failpoint::AnyActive());
  EXPECT_EQ(failpoint::HitCount("test.count"), 3);
  failpoint::ClearAll();
  EXPECT_EQ(failpoint::HitCount("test.count"), 0);
}

TEST_F(FailpointTest, ListRegisteredCoversTheSweepTable) {
  // The registry is populated by PARINDA_REGISTER_FAILPOINT at static
  // initialization, so every point the sweep table exercises must appear —
  // this is what lets tools/ci.sh enumerate points via --list-failpoints
  // instead of grepping the sources.
  const std::vector<std::string> registered = failpoint::ListRegistered();
  EXPECT_TRUE(std::is_sorted(registered.begin(), registered.end()));
  for (const PointCase& pc : kAllFailpoints) {
    SCOPED_TRACE(pc.name);
    EXPECT_TRUE(std::find(registered.begin(), registered.end(),
                          std::string(pc.name)) != registered.end())
        << "failpoint not registered: add PARINDA_REGISTER_FAILPOINT next to "
           "its PARINDA_FAILPOINT site";
  }
  // And the other direction: a registered point missing from the table means
  // the sweep no longer proves its pipeline degrades cleanly.
  EXPECT_EQ(registered.size(),
            sizeof(kAllFailpoints) / sizeof(kAllFailpoints[0]))
      << "registered and swept point sets diverge";
}

}  // namespace
}  // namespace parinda

// Custom main so the binary can double as the sweep's source of truth:
// `failpoint_test --list-failpoints` prints one registered point per line and
// exits — no test run, no gtest flags needed.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--list-failpoints") {
      for (const std::string& name : parinda::failpoint::ListRegistered()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
