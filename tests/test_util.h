#ifndef PARINDA_TESTS_TEST_UTIL_H_
#define PARINDA_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "storage/database.h"

namespace parinda {
namespace testing_util {

/// Builds `orders(id bigint PK, customer_id bigint, amount double,
/// region varchar, flag bool)` with `rows` rows of deterministic data:
///  - id: 0..rows-1 in physical order (correlation 1.0)
///  - customer_id: uniform in [0, rows/10)
///  - amount: uniform double [0, 1000)
///  - region: zipf over 8 region names
///  - flag: bernoulli(0.3), 5% NULL
inline TableId MakeOrdersTable(Database* db, int64_t rows,
                               uint64_t seed = 42) {
  TableSchema schema("orders", {
                                   {"id", ValueType::kInt64, 8, false},
                                   {"customer_id", ValueType::kInt64, 8, true},
                                   {"amount", ValueType::kDouble, 8, true},
                                   {"region", ValueType::kString, 10, true},
                                   {"flag", ValueType::kBool, 1, true},
                               });
  auto created = db->CreateTable(std::move(schema), {0});
  PARINDA_CHECK_OK(created);
  const TableId id = created.value();
  Random rng(seed);
  const char* kRegions[] = {"north", "south", "east",      "west",
                            "center", "apac", "emea", "latam"};
  std::vector<Row> batch;
  batch.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value::Int64(i));
    row.push_back(Value::Int64(static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(std::max<int64_t>(1, rows / 10))))));
    row.push_back(Value::Double(rng.UniformDouble(0.0, 1000.0)));
    row.push_back(Value::String(kRegions[rng.NextZipf(8, 0.9)]));
    if (rng.Bernoulli(0.05)) {
      row.push_back(Value::Null());
    } else {
      row.push_back(Value::Bool(rng.Bernoulli(0.3)));
    }
    batch.push_back(std::move(row));
  }
  PARINDA_CHECK_OK(db->InsertMany(id, std::move(batch)));
  PARINDA_CHECK_OK(db->Analyze(id));
  return id;
}

/// Builds `customers(cid bigint PK, name varchar, score double)` with one row
/// per distinct orders.customer_id.
inline TableId MakeCustomersTable(Database* db, int64_t rows,
                                  uint64_t seed = 7) {
  TableSchema schema("customers", {
                                      {"cid", ValueType::kInt64, 8, false},
                                      {"name", ValueType::kString, 12, true},
                                      {"score", ValueType::kDouble, 8, true},
                                  });
  auto created = db->CreateTable(std::move(schema), {0});
  PARINDA_CHECK_OK(created);
  const TableId id = created.value();
  Random rng(seed);
  std::vector<Row> batch;
  for (int64_t i = 0; i < rows; ++i) {
    batch.push_back(Row{Value::Int64(i),
                        Value::String("cust_" + std::to_string(i)),
                        Value::Double(rng.UniformDouble(0.0, 100.0))});
  }
  PARINDA_CHECK_OK(db->InsertMany(id, std::move(batch)));
  PARINDA_CHECK_OK(db->Analyze(id));
  return id;
}

}  // namespace testing_util
}  // namespace parinda

#endif  // PARINDA_TESTS_TEST_UTIL_H_
