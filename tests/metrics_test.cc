#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace parinda {
namespace metrics {
namespace {

/// Instruments live forever in the global registry, so tests that assert on
/// absolute values use uniquely-named instruments plus Reset().
Counter& TestCounter(const std::string& name) {
  Counter& c = Registry::Global().counter("test." + name);
  c.Reset();
  return c;
}

Histogram& TestHistogram(const std::string& name) {
  Histogram& h = Registry::Global().histogram("test." + name);
  h.Reset();
  return h;
}

TEST(CounterTest, AddAndIncrement) {
  Counter& c = TestCounter("counter_basic");
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge& g = Registry::Global().gauge("test.gauge_basic");
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
  g.Set(0);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  Counter& a = Registry::Global().counter("test.same_name");
  Counter& b = Registry::Global().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  Histogram& ha = Registry::Global().histogram("test.same_hist");
  Histogram& hb = Registry::Global().histogram("test.same_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(RegistryTest, ResetAllPreservesReferences) {
  Counter& c = TestCounter("reset_all");
  c.Add(5);
  Registry::Global().ResetAll();
  // The instrument survives (references stay valid); only the value clears.
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  EXPECT_EQ(Registry::Global().counter("test.reset_all").value(), 1);
}

TEST(RegistryTest, ConcurrentIncrementsSumExactly) {
  // Hammer one counter from many pool workers; run under TSan in CI. The
  // relaxed-atomic fast path must lose no increments.
  Counter& c = TestCounter("concurrent");
  constexpr int kTasks = 16;
  constexpr int kPerTask = 10000;
  ASSERT_TRUE(ParallelFor(4, kTasks, [&](int) {
                c.Add(kPerTask);
                for (int i = 0; i < kPerTask; ++i) c.Increment();
                return Status::OK();
              }).ok());
  EXPECT_EQ(c.value(), int64_t{2} * kTasks * kPerTask);
}

TEST(RegistryTest, ConcurrentGetOrCreateIsSafe) {
  // Many workers race to create the same instruments; every call must land
  // on the same object and no increment may be lost.
  ASSERT_TRUE(ParallelFor(4, 16, [&](int i) {
                Registry::Global()
                    .counter("test.race." + std::to_string(i % 4))
                    .Increment();
                return Status::OK();
              }).ok());
  int64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    total += Registry::Global().counter("test.race." + std::to_string(i)).value();
  }
  EXPECT_EQ(total, 16);
}

TEST(HistogramTest, CountAndSum) {
  Histogram& h = TestHistogram("count_sum");
  h.Record(0.001);
  h.Record(0.002);
  h.Record(0.003);
  EXPECT_EQ(h.count(), 3);
  EXPECT_NEAR(h.sum(), 0.006, 1e-12);
}

TEST(HistogramTest, QuantilesWithinBucketResolution) {
  Histogram& h = TestHistogram("quantiles");
  // 100 observations at 1ms, 10ms, ..., uniformly: p50 near the middle.
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i) / 1000.0);  // 1ms .. 100ms
  }
  // Buckets are a factor of 10^(1/4) ≈ 1.78 wide; quantiles must be exact
  // to within one bucket on either side.
  constexpr double kBucketRatio = 1.7782794100389228;  // 10^(1/4)
  const double p50 = h.p50();
  EXPECT_GE(p50, 0.050 / kBucketRatio);
  EXPECT_LE(p50, 0.050 * kBucketRatio);
  const double p95 = h.p95();
  EXPECT_GE(p95, 0.095 / kBucketRatio);
  EXPECT_LE(p95, 0.095 * kBucketRatio);
  const double p99 = h.p99();
  EXPECT_GE(p99, 0.099 / kBucketRatio);
  EXPECT_LE(p99, 0.099 * kBucketRatio);
}

TEST(HistogramTest, QuantilesAreMonotonic) {
  Histogram& h = TestHistogram("monotonic");
  for (int i = 0; i < 1000; ++i) {
    h.Record(1e-6 * (1 + i % 997));
  }
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram& h = TestHistogram("empty");
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0);
}

TEST(HistogramTest, NegativeClampsAndNanIgnored) {
  Histogram& h = TestHistogram("edge");
  h.Record(-1.0);  // clamps to the underflow bucket
  EXPECT_EQ(h.count(), 1);
  h.Record(std::nan(""));  // ignored entirely
  EXPECT_EQ(h.count(), 1);
  h.Record(1e9);  // overflow bucket
  EXPECT_EQ(h.count(), 2);
}

TEST(HistogramTest, BucketBoundsAreMonotonic) {
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    EXPECT_GT(Histogram::BucketUpperBound(b), Histogram::BucketUpperBound(b - 1))
        << "bucket " << b;
  }
  // Every value lands in a bucket whose bound brackets it.
  for (double v : {1e-9, 1e-7, 3.14e-4, 0.5, 999.0, 1e6}) {
    const int b = Histogram::BucketFor(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kNumBuckets);
    EXPECT_LE(v, Histogram::BucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(b - 1));
    }
  }
}

TEST(SnapshotTest, ContainsRegisteredInstrumentsSorted) {
  TestCounter("snap_b").Add(2);
  TestCounter("snap_a").Add(1);
  TestHistogram("snap_h").Record(0.25);
  const MetricsSnapshot snap = Registry::Global().Snapshot();
  int a_at = -1;
  int b_at = -1;
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (snap.counters[i].name == "test.snap_a") {
      a_at = static_cast<int>(i);
      EXPECT_EQ(snap.counters[i].value, 1);
    }
    if (snap.counters[i].name == "test.snap_b") {
      b_at = static_cast<int>(i);
      EXPECT_EQ(snap.counters[i].value, 2);
    }
  }
  ASSERT_GE(a_at, 0);
  ASSERT_GE(b_at, 0);
  EXPECT_LT(a_at, b_at);  // sorted by name
  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snap_h") {
      found_hist = true;
      EXPECT_EQ(h.count, 1);
      EXPECT_NEAR(h.sum, 0.25, 1e-12);
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST(SnapshotTest, TextAndJsonRender) {
  TestCounter("render").Add(3);
  const MetricsSnapshot snap = Registry::Global().Snapshot();
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("test.render"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.render\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ScopedLatencyTest, RecordsOneObservation) {
  Histogram& h = TestHistogram("scoped");
  {
    ScopedLatency timer(&h);
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.sum(), 0.0);
  {
    ScopedLatency disarmed(nullptr);  // must be a clean no-op
  }
  EXPECT_EQ(h.count(), 1);
}

}  // namespace
}  // namespace metrics
}  // namespace parinda
