#include "common/check.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace parinda {
namespace {

Status FailingStatus() { return Status::Internal("disk on fire"); }

Result<int> FailingResult() { return Status::NotFound("no such row"); }

TEST(CheckTest, PassingCheckIsSilent) {
  PARINDA_CHECK(1 + 1 == 2);
  PARINDA_CHECK_OK(Status::OK());
  Result<int> r(42);
  PARINDA_CHECK_OK(r);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAbortsWithExpression) {
  EXPECT_DEATH(PARINDA_CHECK(2 + 2 == 5), "Check failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, CheckOkOnErrorStatusLogsMessage) {
  EXPECT_DEATH(PARINDA_CHECK_OK(FailingStatus()),
               "Check failed:.*Internal: disk on fire");
}

TEST(CheckDeathTest, CheckOkOnErrorResultLogsCarriedStatus) {
  EXPECT_DEATH(PARINDA_CHECK_OK(FailingResult()),
               "Check failed:.*NotFound: no such row");
}

TEST(CheckDeathTest, DcheckActiveOnlyInDebugBuilds) {
#ifdef NDEBUG
  PARINDA_DCHECK(false);  // compiled away in release builds
  SUCCEED();
#else
  EXPECT_DEATH(PARINDA_DCHECK(false), "");
#endif
}

TEST(CheckTest, CheckOkEvaluatesExpressionExactlyOnce) {
  int calls = 0;
  auto counted = [&calls]() {
    calls++;
    return Status::OK();
  };
  PARINDA_CHECK_OK(counted());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace parinda
