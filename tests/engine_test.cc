#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "engine/eval_context.h"
#include "engine/inum_bank.h"
#include "engine/workload_evaluator.h"
#include "optimizer/planner.h"
#include "tests/test_util.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SdssConfig config;
    config.photoobj_rows = 3000;
    auto dataset = BuildSdssDatabase(db_, config);
    PARINDA_CHECK_OK(dataset);
    photoobj_ = dataset->photoobj;
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static TableId photoobj_;
};

Database* EngineTest::db_ = nullptr;
TableId EngineTest::photoobj_ = kInvalidTableId;

TEST_F(EngineTest, ParamsSignatureIsBitExact) {
  CostParams a;
  CostParams b;
  EXPECT_EQ(ParamsSignature(a), ParamsSignature(b));
  // One ULP apart must produce a different signature: the signature is the
  // cache's equality test, and caching may never change a cost.
  b.random_page_cost = std::nextafter(b.random_page_cost, 5.0);
  EXPECT_NE(ParamsSignature(a), ParamsSignature(b));
  CostParams c;
  c.enable_nestloop = false;
  EXPECT_NE(ParamsSignature(a), ParamsSignature(c));
}

TEST_F(EngineTest, TouchesImplementsTableDependency) {
  const std::vector<TableId> query_tables = {1, 3};
  EXPECT_TRUE(WorkloadEvaluator::Touches(query_tables, {}));  // global
  EXPECT_TRUE(WorkloadEvaluator::Touches(query_tables, {3}));
  EXPECT_FALSE(WorkloadEvaluator::Touches(query_tables, {2}));
  EXPECT_TRUE(WorkloadEvaluator::Touches(query_tables, {2, 3, 7}));
}

TEST_F(EngineTest, KeyForIgnoresUnitsOnForeignTables) {
  auto workload = MakeWorkload(
      db_->catalog(), {"SELECT ra, dec FROM photoobj WHERE type = 3"});
  ASSERT_TRUE(workload.ok());
  WorkloadEvaluator evaluator(db_->catalog(), *workload);
  CostParams params;

  const std::string bare = evaluator.KeyFor(0, {}, params);
  OverlayUnit foreign{{photoobj_ + 1000}, "index:elsewhere"};
  OverlayUnit touching{{photoobj_}, "index:here"};
  OverlayUnit global{{}, "join:nmh"};

  // A unit on a table the query never reads leaves its key intact — the
  // table-dependency invalidation rule.
  EXPECT_EQ(evaluator.KeyFor(0, {foreign}, params), bare);
  EXPECT_NE(evaluator.KeyFor(0, {touching}, params), bare);
  EXPECT_NE(evaluator.KeyFor(0, {global}, params), bare);
  // Unit order is part of the key; params are too.
  CostParams other;
  other.enable_hashjoin = false;
  EXPECT_NE(evaluator.KeyFor(0, {touching}, other),
            evaluator.KeyFor(0, {touching}, params));
}

TEST_F(EngineTest, BaseCostIsCachedAndBitIdentical) {
  auto workload = MakeWorkload(
      db_->catalog(), {"SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  WorkloadEvaluator evaluator(db_->catalog(), *workload);
  const EvalContext ctx{};

  EXPECT_FALSE(evaluator.CachedBaseCost(0, ctx.params).has_value());
  const int64_t before = Planner::stats().plans_built;
  auto first = evaluator.BaseCost(0, ctx);
  ASSERT_TRUE(first.ok());
  const int64_t after_first = Planner::stats().plans_built;
  EXPECT_GT(after_first, before);
  auto second = evaluator.BaseCost(0, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Planner::stats().plans_built, after_first);  // served from cache
  EXPECT_EQ(*first, *second);
  ASSERT_TRUE(evaluator.CachedBaseCost(0, ctx.params).has_value());
  EXPECT_EQ(*evaluator.CachedBaseCost(0, ctx.params), *first);
}

TEST_F(EngineTest, PartitioningCacheHitsAreBitIdentical) {
  auto workload = MakeWorkload(
      db_->catalog(),
      {"SELECT avg(petrorad_r) FROM photoobj WHERE type = 3",
       "SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());

  PartitionedTable design;
  design.table = photoobj_;
  const TableInfo* info = db_->catalog().GetTable(photoobj_);
  std::vector<ColumnId> rest;
  for (ColumnId c = 1; c < info->schema.num_columns(); ++c) {
    rest.push_back(c);
  }
  design.fragments = {{rest}};

  WorkloadEvaluator cached(db_->catalog(), *workload);
  const EvalContext ctx{};
  PartitionEvalOptions opts;
  std::vector<double> per_query(2, 0.0);
  auto first = cached.EvaluatePartitioning({design}, ctx, opts, &per_query,
                                           nullptr);
  ASSERT_TRUE(first.ok());
  const std::vector<double> first_per_query = per_query;
  EXPECT_EQ(cached.stats().cache_hits, 0);

  const int64_t plans_before = Planner::stats().plans_built;
  auto second = cached.EvaluatePartitioning({design}, ctx, opts, &per_query,
                                            nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Planner::stats().plans_built, plans_before);  // all hits
  EXPECT_EQ(cached.stats().cache_hits, 2);
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(first_per_query, per_query);

  // The uncached evaluator re-plans but produces the bit-identical total.
  WorkloadEvaluator uncached(db_->catalog(), *workload);
  PartitionEvalOptions no_cache;
  no_cache.use_cache = false;
  auto replanned =
      uncached.EvaluatePartitioning({design}, ctx, no_cache, nullptr, nullptr);
  ASSERT_TRUE(replanned.ok());
  EXPECT_EQ(uncached.stats().cache_hits, 0);
  EXPECT_EQ(*first, *replanned);
}

TEST_F(EngineTest, EvaluateQueryCachesUnderKeyAndBypassesOnEmptyKey) {
  auto workload = MakeWorkload(
      db_->catalog(), {"SELECT ra, dec FROM photoobj WHERE dec > 80"});
  ASSERT_TRUE(workload.ok());
  WorkloadEvaluator evaluator(db_->catalog(), *workload);

  WorkloadEvaluator::OverlayView view;
  view.catalog = &db_->catalog();
  static const std::vector<const TableInfo*> kNoFragments;
  view.fragments = &kNoFragments;

  const std::string key = evaluator.KeyFor(0, {}, view.params);
  auto first = evaluator.EvaluateQuery(0, view, key);
  ASSERT_TRUE(first.ok());
  const int64_t plans_after_first = Planner::stats().plans_built;
  auto hit = evaluator.EvaluateQuery(0, view, key);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(Planner::stats().plans_built, plans_after_first);
  EXPECT_EQ(first->cost, hit->cost);
  EXPECT_EQ(first->rewritten_sql, hit->rewritten_sql);

  // An empty key bypasses the cache: the planner runs again.
  auto bypass = evaluator.EvaluateQuery(0, view, "");
  ASSERT_TRUE(bypass.ok());
  EXPECT_GT(Planner::stats().plans_built, plans_after_first);
  EXPECT_EQ(first->cost, bypass->cost);
}

TEST_F(EngineTest, InumBankReusesModelsUntilParamsChange) {
  auto workload = MakeWorkload(
      db_->catalog(), {"SELECT count(*) FROM photoobj WHERE r BETWEEN 15 AND 16"});
  ASSERT_TRUE(workload.ok());
  InumBank bank(db_->catalog(), *workload);
  EXPECT_EQ(bank.Get(0), nullptr);

  CostParams params;
  auto model = bank.Model(0, params, nullptr);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(bank.Get(0), *model);
  auto base = (*model)->EstimateCost({});
  ASSERT_TRUE(base.ok());
  const int64_t served = bank.TotalEstimatesServed();
  EXPECT_GT(served, 0);

  // Same params: the model (and its estimate cache) is reused.
  auto again = bank.Model(0, params, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *model);
  EXPECT_EQ(bank.TotalEstimatesServed(), served);

  // Changed params: the bank rebuilds from scratch, dropping the old
  // model's served-estimate tally with it.
  CostParams flipped;
  flipped.enable_nestloop = false;
  auto rebuilt = bank.Model(0, flipped, nullptr);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(bank.TotalEstimatesServed(), 0);
}

}  // namespace
}  // namespace parinda
