#include <gtest/gtest.h>

#include "common/check.h"
#include "advisor/index_advisor.h"
#include "executor/executor.h"
#include "optimizer/planner.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace parinda {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = testing_util::MakeOrdersTable(&db_, 5000);
    customers_ = testing_util::MakeCustomersTable(&db_, 500);
  }

  ExecResult MustExec(const std::string& sql) {
    auto result = ExecuteSql(db_, sql);
    PARINDA_CHECK_OK(result);
    return std::move(*result);
  }

  Database db_;
  TableId orders_ = kInvalidTableId;
  TableId customers_ = kInvalidTableId;
};

TEST_F(ExecutorTest, PointQuery) {
  ExecResult r = MustExec("SELECT id, amount FROM orders WHERE id = 17");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 17);
}

TEST_F(ExecutorTest, RangeCount) {
  ExecResult r = MustExec("SELECT count(*) FROM orders WHERE id < 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 100);
}

TEST_F(ExecutorTest, BetweenFilter) {
  ExecResult r =
      MustExec("SELECT count(*) FROM orders WHERE id BETWEEN 10 AND 19");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 10);
}

TEST_F(ExecutorTest, IndexAndSeqScanAgree) {
  const std::string sql =
      "SELECT count(*), min(id), max(id) FROM orders WHERE id BETWEEN "
      "1000 AND 1999";
  ExecResult seq = MustExec(sql);
  ASSERT_TRUE(db_.BuildIndex("orders_id", orders_, {0}).ok());
  ExecResult idx = MustExec(sql);
  ASSERT_EQ(seq.rows.size(), 1u);
  ASSERT_EQ(idx.rows.size(), 1u);
  EXPECT_EQ(seq.rows[0][0].AsInt64(), idx.rows[0][0].AsInt64());
  EXPECT_EQ(seq.rows[0][1].AsInt64(), idx.rows[0][1].AsInt64());
  EXPECT_EQ(seq.rows[0][2].AsInt64(), idx.rows[0][2].AsInt64());
  // The index scan should touch far fewer pages.
  EXPECT_LT(idx.stats.seq_pages_read + idx.stats.random_pages_read,
            seq.stats.seq_pages_read);
}

TEST_F(ExecutorTest, JoinMethodsAgree) {
  const std::string sql =
      "SELECT count(*) FROM orders o, customers c "
      "WHERE o.customer_id = c.cid AND c.score > 50";
  // Parse/bind once per run; execute under different method flags.
  auto run = [&](bool hash, bool merge, bool nl) {
    auto stmt = ParseSelect(sql);
    PARINDA_CHECK_OK(stmt);
    PARINDA_CHECK_OK(BindStatement(db_.catalog(), &*stmt));
    PlannerOptions options;
    options.params.enable_hashjoin = hash;
    options.params.enable_mergejoin = merge;
    options.params.enable_nestloop = nl;
    auto plan = PlanQuery(db_.catalog(), *stmt, options);
    PARINDA_CHECK_OK(plan);
    auto result = ExecutePlan(db_, *stmt, *plan);
    PARINDA_CHECK_OK(result);
    return result->rows[0][0].AsInt64();
  };
  const int64_t hash_count = run(true, false, false);
  const int64_t merge_count = run(false, true, false);
  const int64_t nl_count = run(false, false, true);
  EXPECT_EQ(hash_count, merge_count);
  EXPECT_EQ(hash_count, nl_count);
  EXPECT_GT(hash_count, 0);
}

TEST_F(ExecutorTest, ParameterizedNestLoopAgreesWithHash) {
  ASSERT_TRUE(db_.BuildIndex("orders_cid", orders_, {1}).ok());
  const std::string sql =
      "SELECT count(*) FROM customers c, orders o "
      "WHERE c.cid = o.customer_id AND c.cid IN (1, 2, 3)";
  ExecResult r = MustExec(sql);
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  PlannerOptions options;
  options.params.enable_nestloop = false;
  options.params.enable_indexscan = false;
  auto plan = PlanQuery(db_.catalog(), *stmt, options);
  ASSERT_TRUE(plan.ok());
  auto hash_result = ExecutePlan(db_, *stmt, *plan);
  ASSERT_TRUE(hash_result.ok());
  EXPECT_EQ(r.rows[0][0].AsInt64(), hash_result->rows[0][0].AsInt64());
}

TEST_F(ExecutorTest, GroupByAggregates) {
  ExecResult r = MustExec(
      "SELECT region, count(*), avg(amount) FROM orders "
      "GROUP BY region ORDER BY region");
  EXPECT_EQ(r.rows.size(), 8u);
  int64_t total = 0;
  std::string prev;
  for (const Row& row : r.rows) {
    EXPECT_GE(row[0].AsString(), prev);
    prev = row[0].AsString();
    total += row[1].AsInt64();
    EXPECT_GT(row[2].AsDouble(), 0.0);
    EXPECT_LT(row[2].AsDouble(), 1000.0);
  }
  EXPECT_EQ(total, 5000);
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyResult) {
  ExecResult r = MustExec("SELECT count(*) FROM orders WHERE id = -1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 0);
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  ExecResult r = MustExec("SELECT id FROM orders ORDER BY id DESC LIMIT 5");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 4999);
  EXPECT_EQ(r.rows[4][0].AsInt64(), 4995);
}

TEST_F(ExecutorTest, OrderByAggregate) {
  ExecResult r = MustExec(
      "SELECT region, count(*) AS n FROM orders GROUP BY region "
      "ORDER BY count(*) DESC LIMIT 3");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_GE(r.rows[0][1].AsInt64(), r.rows[1][1].AsInt64());
  EXPECT_GE(r.rows[1][1].AsInt64(), r.rows[2][1].AsInt64());
}

TEST_F(ExecutorTest, ArithmeticAndScalarFunctions) {
  ExecResult r = MustExec(
      "SELECT id * 2 + 1, abs(0 - id), sqrt(id) FROM orders WHERE id = 9");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 19);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 9);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 3.0);
}

TEST_F(ExecutorTest, IsNullSemantics) {
  ExecResult withnull = MustExec("SELECT count(*) FROM orders WHERE flag IS NULL");
  ExecResult notnull =
      MustExec("SELECT count(*) FROM orders WHERE flag IS NOT NULL");
  EXPECT_EQ(withnull.rows[0][0].AsInt64() + notnull.rows[0][0].AsInt64(), 5000);
  EXPECT_GT(withnull.rows[0][0].AsInt64(), 100);  // ~5%
}

TEST_F(ExecutorTest, NullComparisonsAreFalse) {
  // flag = true excludes NULL flags.
  ExecResult t = MustExec("SELECT count(*) FROM orders WHERE flag = true");
  ExecResult f = MustExec("SELECT count(*) FROM orders WHERE flag = false");
  ExecResult n = MustExec("SELECT count(*) FROM orders WHERE flag IS NULL");
  EXPECT_EQ(t.rows[0][0].AsInt64() + f.rows[0][0].AsInt64() +
                n.rows[0][0].AsInt64(),
            5000);
}

TEST_F(ExecutorTest, InListFilter) {
  ExecResult r =
      MustExec("SELECT count(*) FROM orders WHERE id IN (1, 2, 3, 9999999)");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 3);
}

TEST_F(ExecutorTest, SelectStar) {
  ExecResult r = MustExec("SELECT * FROM customers WHERE cid = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 3u);
}

TEST_F(ExecutorTest, StatsAccumulate) {
  ExecResult r = MustExec("SELECT count(*) FROM orders");
  EXPECT_GT(r.stats.seq_pages_read, 0);
  EXPECT_GE(r.stats.tuples_processed, 5000);
  CostParams params;
  EXPECT_GT(r.stats.MeasuredCost(params), 0.0);
}

TEST_F(ExecutorTest, MeasuredCostTracksEstimateDirection) {
  // A selective indexed query must be measured cheaper than a full scan.
  ASSERT_TRUE(db_.BuildIndex("orders_id2", orders_, {0}).ok());
  ExecResult cheap = MustExec("SELECT amount FROM orders WHERE id = 3");
  ExecResult expensive = MustExec("SELECT count(*) FROM orders");
  CostParams params;
  EXPECT_LT(cheap.stats.MeasuredCost(params),
            expensive.stats.MeasuredCost(params));
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

TEST_F(ExecutorTest, BitmapScanAgreesWithSeqScan) {
  const std::string sql =
      "SELECT count(*), min(amount), max(amount) FROM orders "
      "WHERE amount BETWEEN 300 AND 340";
  ExecResult seq = MustExec(sql);
  ASSERT_TRUE(db_.BuildIndex("orders_amt_exec", orders_, {2}).ok());
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  auto plan = PlanQuery(db_.catalog(), *stmt);
  ASSERT_TRUE(plan.ok());
  auto scans = plan->CollectScans();
  ASSERT_EQ(scans.size(), 1u);
  ASSERT_EQ(scans[0]->type, PlanNodeType::kBitmapHeapScan)
      << plan->ToString();
  auto bitmap = ExecutePlan(db_, *stmt, *plan);
  ASSERT_TRUE(bitmap.ok());
  ASSERT_EQ(bitmap->rows.size(), 1u);
  EXPECT_EQ(seq.rows[0][0].AsInt64(), bitmap->rows[0][0].AsInt64());
  EXPECT_EQ(seq.rows[0][1].Compare(bitmap->rows[0][1]), 0);
  EXPECT_EQ(seq.rows[0][2].Compare(bitmap->rows[0][2]), 0);
  // Bitmap reads the heap sequentially (each page at most once), so its
  // page touches are bounded by the full scan plus the index leaf pages,
  // and almost none of them are random.
  EXPECT_GT(bitmap->stats.seq_pages_read, 0);
  EXPECT_LE(bitmap->stats.seq_pages_read, seq.stats.seq_pages_read);
  EXPECT_LE(bitmap->stats.random_pages_read, 8);  // leaf pages only
  // And it processes far fewer tuples than the full scan.
  EXPECT_LT(bitmap->stats.tuples_processed,
            seq.stats.tuples_processed / 4);
}

}  // namespace
}  // namespace parinda

namespace parinda {
namespace {

TEST_F(ExecutorTest, ExplainAnalyzeShowsActualRows) {
  const std::string sql =
      "SELECT count(*) FROM orders o, customers c "
      "WHERE o.customer_id = c.cid AND c.score > 50";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  auto plan = PlanQuery(db_.catalog(), *stmt);
  ASSERT_TRUE(plan.ok());
  auto result = ExecutePlan(db_, *stmt, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->node_output_rows.empty());
  const std::string text =
      FormatExplainAnalyze(*plan, *result, db_.catalog());
  EXPECT_NE(text.find("actual rows="), std::string::npos) << text;
  EXPECT_NE(text.find("on orders"), std::string::npos) << text;
  // Scan cardinality estimates are within 2x of actuals on this data.
  for (const PlanNode* scan : plan->CollectScans()) {
    auto it = result->node_output_rows.find(scan);
    ASSERT_NE(it, result->node_output_rows.end());
    const double actual = static_cast<double>(std::max<int64_t>(1, it->second));
    EXPECT_LT(scan->rows, actual * 2.5 + 50) << text;
    EXPECT_GT(scan->rows, actual / 2.5 - 50) << text;
  }
}

TEST_F(ExecutorTest, GreedyJoinOrderForManyRelations) {
  // Thirteen-way self-join exceeds the DP budget (max_dp_rels = 10) and
  // exercises the greedy left-deep fallback; results must stay correct.
  std::string sql = "SELECT count(*) FROM customers c0";
  for (int i = 1; i < 13; ++i) {
    sql += ", customers c" + std::to_string(i);
  }
  sql += " WHERE c0.cid = 7";
  for (int i = 1; i < 13; ++i) {
    sql += " AND c" + std::to_string(i - 1) + ".cid = c" +
           std::to_string(i) + ".cid";
  }
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(BindStatement(db_.catalog(), &*stmt).ok());
  auto plan = PlanQuery(db_.catalog(), *stmt);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->CollectScans().size(), 13u);
  auto result = ExecutePlan(db_, *stmt, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt64(), 1);
}

TEST_F(ExecutorTest, WeightedWorkloadScalesCosts) {
  auto workload = MakeWorkload(
      db_.catalog(), {"SELECT count(*) FROM orders WHERE amount < 10"});
  ASSERT_TRUE(workload.ok());
  workload->queries[0].weight = 3.0;
  IndexAdvisor advisor(db_.catalog(), *workload);
  auto advice = advisor.SuggestWithIlp();
  ASSERT_TRUE(advice.ok());
  // Weighted base cost is 3x the per-query cost.
  EXPECT_NEAR(advice->base_cost, advice->per_query_base[0] * 3.0,
              advice->per_query_base[0] * 1e-6);
}

}  // namespace
}  // namespace parinda
