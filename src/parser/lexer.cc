#include "parser/lexer.h"

#include <array>
#include <cctype>

#include "common/strings.h"

namespace parinda {

namespace {

constexpr std::array<const char*, 26> kKeywords = {
    "SELECT", "FROM",  "WHERE",   "GROUP", "BY",   "ORDER", "LIMIT",
    "AND",    "OR",    "NOT",     "AS",    "JOIN", "INNER", "ON",
    "BETWEEN", "IN",   "IS",      "NULL",  "ASC",  "DESC",  "TRUE",
    "FALSE",  "LIKE",  "DISTINCT", "HAVING", "CROSS",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(const std::string& upper_word) {
  for (const char* kw : kKeywords) {
    if (upper_word == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tokens.push_back(Token{TokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back(Token{TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(sql[i]))) {
          return Status::ParseError("malformed exponent at offset " +
                                    std::to_string(start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tokens.push_back(Token{
          is_double ? TokenType::kDoubleLiteral : TokenType::kIntLiteral,
          std::string(sql.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      ++i;  // closing quote
      tokens.push_back(Token{TokenType::kStringLiteral, std::move(text), start});
      continue;
    }
    if (c == '"') {
      ++i;
      const size_t id_start = i;
      while (i < n && sql[i] != '"') ++i;
      if (i >= n) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(start));
      }
      tokens.push_back(Token{TokenType::kIdentifier,
                             std::string(sql.substr(id_start, i - id_start)),
                             start});
      ++i;
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < n) {
      const std::string two(sql.substr(i, 2));
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back(
            Token{TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '.':
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case ';':
        tokens.push_back(Token{TokenType::kSymbol, std::string(1, c), start});
        ++i;
        break;
      default:
        return Status::ParseError(StringPrintf(
            "unexpected character '%c' at offset %zu", c, start));
    }
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace parinda
