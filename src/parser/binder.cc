#include "parser/binder.h"

#include "common/strings.h"

namespace parinda {

namespace {

Status BindExpr(const CatalogReader& catalog, SelectStatement* stmt,
                Expr* expr) {
  if (expr->kind == ExprKind::kColumnRef) {
    if (!expr->table_name.empty()) {
      // Qualified: find the FROM entry whose alias or name matches.
      for (size_t i = 0; i < stmt->from.size(); ++i) {
        const TableRef& ref = stmt->from[i];
        if (!EqualsIgnoreCase(ref.EffectiveName(), expr->table_name) &&
            !EqualsIgnoreCase(ref.table_name, expr->table_name)) {
          continue;
        }
        const TableInfo* table = catalog.GetTable(ref.bound_table);
        const ColumnId col = table->schema.FindColumn(expr->column_name);
        if (col == kInvalidColumnId) {
          return Status::BindError("column '" + expr->column_name +
                                   "' not found in table '" + ref.table_name +
                                   "'");
        }
        expr->bound_range = static_cast<int>(i);
        expr->bound_column = col;
        return Status::OK();
      }
      return Status::BindError("unknown table or alias '" + expr->table_name +
                               "'");
    }
    // Unqualified: search all FROM entries.
    int found_range = -1;
    ColumnId found_col = kInvalidColumnId;
    for (size_t i = 0; i < stmt->from.size(); ++i) {
      const TableInfo* table = catalog.GetTable(stmt->from[i].bound_table);
      const ColumnId col = table->schema.FindColumn(expr->column_name);
      if (col == kInvalidColumnId) continue;
      if (found_range >= 0) {
        return Status::BindError("ambiguous column '" + expr->column_name +
                                 "'");
      }
      found_range = static_cast<int>(i);
      found_col = col;
    }
    if (found_range < 0) {
      return Status::BindError("unknown column '" + expr->column_name + "'");
    }
    expr->bound_range = found_range;
    expr->bound_column = found_col;
    return Status::OK();
  }
  if (expr->kind == ExprKind::kFuncCall && !expr->star) {
    const std::string& f = expr->func_name;
    if (f != "count" && f != "sum" && f != "avg" && f != "min" && f != "max" &&
        f != "abs" && f != "sqrt" && f != "floor" && f != "ceil") {
      return Status::BindError("unknown function '" + f + "'");
    }
  }
  for (auto& child : expr->children) {
    PARINDA_RETURN_IF_ERROR(BindExpr(catalog, stmt, child.get()));
  }
  return Status::OK();
}

}  // namespace

Status BindStatement(const CatalogReader& catalog, SelectStatement* stmt) {
  if (stmt->from.empty()) {
    return Status::BindError("statement has no FROM clause");
  }
  // Resolve tables first (column binding depends on them).
  for (TableRef& ref : stmt->from) {
    const TableInfo* table = catalog.FindTable(ref.table_name);
    if (table == nullptr) {
      return Status::BindError("unknown table '" + ref.table_name + "'");
    }
    ref.bound_table = table->id;
  }
  for (SelectItem& item : stmt->select_list) {
    if (item.star) continue;
    PARINDA_RETURN_IF_ERROR(BindExpr(catalog, stmt, item.expr.get()));
  }
  if (stmt->where != nullptr) {
    PARINDA_RETURN_IF_ERROR(BindExpr(catalog, stmt, stmt->where.get()));
  }
  for (auto& key : stmt->group_by) {
    PARINDA_RETURN_IF_ERROR(BindExpr(catalog, stmt, key.get()));
  }
  for (OrderItem& item : stmt->order_by) {
    PARINDA_RETURN_IF_ERROR(BindExpr(catalog, stmt, item.expr.get()));
  }
  return Status::OK();
}

Result<ValueType> InferExprType(const CatalogReader& catalog,
                                const SelectStatement& stmt,
                                const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      if (expr.bound_range < 0) {
        return Status::BindError("expression is not bound");
      }
      const TableInfo* table =
          catalog.GetTable(stmt.from[expr.bound_range].bound_table);
      return table->schema.column(expr.bound_column).type;
    }
    case ExprKind::kLiteral:
      if (expr.literal.is_null()) return ValueType::kInt64;  // typeless NULL
      return expr.literal.type();
    case ExprKind::kComparison:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      return ValueType::kBool;
    case ExprKind::kArith: {
      PARINDA_ASSIGN_OR_RETURN(
          ValueType lhs, InferExprType(catalog, stmt, *expr.children[0]));
      PARINDA_ASSIGN_OR_RETURN(
          ValueType rhs, InferExprType(catalog, stmt, *expr.children[1]));
      if (lhs == ValueType::kDouble || rhs == ValueType::kDouble ||
          expr.op == BinaryOp::kDiv) {
        return ValueType::kDouble;
      }
      return ValueType::kInt64;
    }
    case ExprKind::kFuncCall: {
      const std::string& f = expr.func_name;
      if (f == "count") return ValueType::kInt64;
      if (f == "avg" || f == "sqrt") return ValueType::kDouble;
      if (expr.children.empty()) {
        return Status::BindError("function '" + f + "' needs an argument");
      }
      return InferExprType(catalog, stmt, *expr.children[0]);
    }
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace parinda
