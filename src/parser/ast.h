#ifndef PARINDA_PARSER_AST_H_
#define PARINDA_PARSER_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "catalog/value.h"

namespace parinda {

/// Expression node kinds for the SQL subset PARINDA understands.
enum class ExprKind : uint8_t {
  kColumnRef,   // [table.]column
  kLiteral,     // constant
  kComparison,  // = <> < <= > >=
  kAnd,
  kOr,
  kNot,
  kArith,       // + - * /
  kFuncCall,    // count/sum/avg/min/max(expr) or count(*)
  kBetween,     // child0 BETWEEN child1 AND child2
  kInList,      // child0 IN (child1, ..., childN)
  kIsNull,      // child0 IS [NOT] NULL (negated flag)
};

/// Binary operators (comparison and arithmetic share the enum).
enum class BinaryOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpSymbol(BinaryOp op);
/// True for =, <>, <, <=, >, >=.
bool IsComparisonOp(BinaryOp op);

/// One expression tree node. A single tagged struct (rather than a class
/// hierarchy) keeps clone/print/walk logic in one place for this small
/// grammar.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef: source text names...
  std::string table_name;   // optional qualifier (may be an alias)
  std::string column_name;
  // ...and binder results: index into the statement's FROM list + ordinal.
  int bound_range = -1;
  ColumnId bound_column = kInvalidColumnId;

  // kLiteral.
  Value literal;

  // kComparison / kArith.
  BinaryOp op = BinaryOp::kEq;

  // kFuncCall.
  std::string func_name;
  bool star = false;  // count(*)

  // kIsNull.
  bool negated = false;  // IS NOT NULL

  std::vector<std::unique_ptr<Expr>> children;

  Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// SQL rendering (parenthesized where needed).
  std::string ToSql() const;

  /// True when the tree references no column (constant-foldable).
  bool IsConstant() const;

  /// Collects the bound (range, column) pairs referenced in this subtree.
  void CollectColumnRefs(
      std::vector<std::pair<int, ColumnId>>* refs) const;

  // Factory helpers.
  static std::unique_ptr<Expr> MakeColumnRef(std::string table,
                                             std::string column);
  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeBinary(ExprKind kind, BinaryOp op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> MakeAnd(std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs);
};

/// One entry in the FROM list.
struct TableRef {
  std::string table_name;
  std::string alias;  // empty when none
  /// Binder result.
  TableId bound_table = kInvalidTableId;

  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

/// One entry in the SELECT list.
struct SelectItem {
  std::unique_ptr<Expr> expr;  // null when star
  std::string alias;
  bool star = false;  // SELECT *
};

/// One ORDER BY key.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

/// A parsed (and optionally bound) SELECT statement.
struct SelectStatement {
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;  // null when absent
  std::vector<std::unique_ptr<Expr>> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  SelectStatement() = default;
  SelectStatement(const SelectStatement&) = delete;
  SelectStatement& operator=(const SelectStatement&) = delete;
  SelectStatement(SelectStatement&&) = default;
  SelectStatement& operator=(SelectStatement&&) = default;

  /// Deep copy (used by the rewriter, which edits a clone).
  SelectStatement Clone() const;

  /// SQL rendering usable as parser input again.
  std::string ToSql() const;
};

/// Splits a predicate tree into top-level AND conjuncts (does not take
/// ownership; returned pointers alias into `expr`).
void FlattenConjuncts(const Expr* expr, std::vector<const Expr*>* out);

}  // namespace parinda

#endif  // PARINDA_PARSER_AST_H_
