#ifndef PARINDA_PARSER_BINDER_H_
#define PARINDA_PARSER_BINDER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"

namespace parinda {

/// Resolves names in a parsed statement against a catalog, in place:
/// - each TableRef gets `bound_table`
/// - each column reference gets `bound_range` (index into stmt->from) and
///   `bound_column` (table ordinal)
///
/// Unqualified column names are searched across all FROM entries; ambiguous
/// or unknown names fail with BindError.
[[nodiscard]] Status BindStatement(const CatalogReader& catalog, SelectStatement* stmt);

/// Result type of an expression after binding; used for sanity checks and by
/// the executor.
[[nodiscard]] Result<ValueType> InferExprType(const CatalogReader& catalog,
                                const SelectStatement& stmt, const Expr& expr);

}  // namespace parinda

#endif  // PARINDA_PARSER_BINDER_H_
