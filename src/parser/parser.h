#ifndef PARINDA_PARSER_PARSER_H_
#define PARINDA_PARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "parser/lexer.h"

namespace parinda {

/// Parses one SELECT statement of our SQL dialect.
[[nodiscard]] Result<SelectStatement> ParseSelect(std::string_view sql);

/// Parses a workload file: one or more SELECT statements separated by
/// semicolons; `--` comments and blank lines are ignored.
[[nodiscard]] Result<std::vector<SelectStatement>> ParseWorkload(std::string_view text);

namespace internal_parser {

/// Recursive-descent parser over a token stream. Exposed for tests.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] Result<SelectStatement> ParseSelectStatement();

  /// True when all that remains is kEnd (after optional ';').
  bool AtEnd();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type, std::string_view text) const;
  bool Match(TokenType type, std::string_view text);
  [[nodiscard]] Status Expect(TokenType type, std::string_view text);

  [[nodiscard]] Result<std::unique_ptr<Expr>> ParseOr();
  [[nodiscard]] Result<std::unique_ptr<Expr>> ParseAnd();
  [[nodiscard]] Result<std::unique_ptr<Expr>> ParseNot();
  [[nodiscard]] Result<std::unique_ptr<Expr>> ParsePredicate();
  [[nodiscard]] Result<std::unique_ptr<Expr>> ParseAdditive();
  [[nodiscard]] Result<std::unique_ptr<Expr>> ParseMultiplicative();
  [[nodiscard]] Result<std::unique_ptr<Expr>> ParsePrimary();

  [[nodiscard]] Status ParseFromClause(SelectStatement* stmt);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace internal_parser
}  // namespace parinda

#endif  // PARINDA_PARSER_PARSER_H_
