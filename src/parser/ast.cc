#include "parser/ast.h"

#include "common/logging.h"
#include "common/strings.h"

namespace parinda {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->table_name = table_name;
  out->column_name = column_name;
  out->bound_range = bound_range;
  out->bound_column = bound_column;
  out->literal = literal;
  out->op = op;
  out->func_name = func_name;
  out->star = star;
  out->negated = negated;
  out->children.reserve(children.size());
  for (const auto& child : children) out->children.push_back(child->Clone());
  return out;
}

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return table_name.empty() ? column_name : table_name + "." + column_name;
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kComparison:
    case ExprKind::kArith:
      return "(" + children[0]->ToSql() + " " + BinaryOpSymbol(op) + " " +
             children[1]->ToSql() + ")";
    case ExprKind::kAnd:
      return "(" + children[0]->ToSql() + " AND " + children[1]->ToSql() + ")";
    case ExprKind::kOr:
      return "(" + children[0]->ToSql() + " OR " + children[1]->ToSql() + ")";
    case ExprKind::kNot:
      return "(NOT " + children[0]->ToSql() + ")";
    case ExprKind::kFuncCall: {
      if (star) return func_name + "(*)";
      std::vector<std::string> args;
      for (const auto& child : children) args.push_back(child->ToSql());
      return func_name + "(" + Join(args, ", ") + ")";
    }
    case ExprKind::kBetween:
      return "(" + children[0]->ToSql() + " BETWEEN " + children[1]->ToSql() +
             " AND " + children[2]->ToSql() + ")";
    case ExprKind::kInList: {
      std::vector<std::string> items;
      for (size_t i = 1; i < children.size(); ++i) {
        items.push_back(children[i]->ToSql());
      }
      return "(" + children[0]->ToSql() + " IN (" + Join(items, ", ") + "))";
    }
    case ExprKind::kIsNull:
      return "(" + children[0]->ToSql() + (negated ? " IS NOT NULL" : " IS NULL") +
             ")";
  }
  return "?";
}

bool Expr::IsConstant() const {
  if (kind == ExprKind::kColumnRef) return false;
  for (const auto& child : children) {
    if (!child->IsConstant()) return false;
  }
  return true;
}

void Expr::CollectColumnRefs(
    std::vector<std::pair<int, ColumnId>>* refs) const {
  if (kind == ExprKind::kColumnRef) {
    refs->emplace_back(bound_range, bound_column);
  }
  for (const auto& child : children) child->CollectColumnRefs(refs);
}

std::unique_ptr<Expr> Expr::MakeColumnRef(std::string table,
                                          std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_name = std::move(table);
  e->column_name = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(ExprKind kind, BinaryOp op,
                                       std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::MakeAnd(std::unique_ptr<Expr> lhs,
                                    std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAnd;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

SelectStatement SelectStatement::Clone() const {
  SelectStatement out;
  out.select_list.reserve(select_list.size());
  for (const SelectItem& item : select_list) {
    SelectItem copy;
    copy.star = item.star;
    copy.alias = item.alias;
    if (item.expr != nullptr) copy.expr = item.expr->Clone();
    out.select_list.push_back(std::move(copy));
  }
  out.from = from;
  if (where != nullptr) out.where = where->Clone();
  out.group_by.reserve(group_by.size());
  for (const auto& g : group_by) out.group_by.push_back(g->Clone());
  out.order_by.reserve(order_by.size());
  for (const OrderItem& o : order_by) {
    OrderItem copy;
    copy.descending = o.descending;
    copy.expr = o.expr->Clone();
    out.order_by.push_back(std::move(copy));
  }
  out.limit = limit;
  return out;
}

std::string SelectStatement::ToSql() const {
  std::string sql = "SELECT ";
  std::vector<std::string> items;
  for (const SelectItem& item : select_list) {
    if (item.star) {
      items.push_back("*");
    } else {
      std::string s = item.expr->ToSql();
      if (!item.alias.empty()) s += " AS " + item.alias;
      items.push_back(std::move(s));
    }
  }
  sql += Join(items, ", ");
  sql += " FROM ";
  std::vector<std::string> tables;
  for (const TableRef& ref : from) {
    std::string s = ref.table_name;
    if (!ref.alias.empty()) s += " " + ref.alias;
    tables.push_back(std::move(s));
  }
  sql += Join(tables, ", ");
  if (where != nullptr) sql += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    std::vector<std::string> keys;
    for (const auto& g : group_by) keys.push_back(g->ToSql());
    sql += " GROUP BY " + Join(keys, ", ");
  }
  if (!order_by.empty()) {
    std::vector<std::string> keys;
    for (const OrderItem& o : order_by) {
      keys.push_back(o.expr->ToSql() + (o.descending ? " DESC" : ""));
    }
    sql += " ORDER BY " + Join(keys, ", ");
  }
  if (limit >= 0) sql += " LIMIT " + std::to_string(limit);
  return sql;
}

void FlattenConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kAnd) {
    FlattenConjuncts(expr->children[0].get(), out);
    FlattenConjuncts(expr->children[1].get(), out);
  } else {
    out->push_back(expr);
  }
}

}  // namespace parinda
