#include "parser/parser.h"

#include <cstdlib>

#include "common/strings.h"

namespace parinda {

namespace internal_parser {

bool Parser::Check(TokenType type, std::string_view text) const {
  const Token& t = Peek();
  return t.type == type && (text.empty() || t.text == text);
}

bool Parser::Match(TokenType type, std::string_view text) {
  if (Check(type, text)) {
    ++pos_;
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, std::string_view text) {
  if (Match(type, text)) return Status::OK();
  return Status::ParseError(StringPrintf(
      "expected '%.*s' at offset %zu, got '%s'", static_cast<int>(text.size()),
      text.data(), Peek().offset, Peek().text.c_str()));
}

bool Parser::AtEnd() {
  while (Match(TokenType::kSymbol, ";")) {
  }
  return Peek().type == TokenType::kEnd;
}

Result<SelectStatement> Parser::ParseSelectStatement() {
  PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "SELECT"));
  SelectStatement stmt;
  Match(TokenType::kKeyword, "DISTINCT");  // accepted, treated as no-op
  // Select list.
  do {
    SelectItem item;
    if (Match(TokenType::kSymbol, "*")) {
      item.star = true;
    } else {
      PARINDA_ASSIGN_OR_RETURN(item.expr, ParseOr());
      if (Match(TokenType::kKeyword, "AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::ParseError("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
    }
    stmt.select_list.push_back(std::move(item));
  } while (Match(TokenType::kSymbol, ","));

  PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "FROM"));
  PARINDA_RETURN_IF_ERROR(ParseFromClause(&stmt));

  if (Match(TokenType::kKeyword, "WHERE")) {
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> where, ParseOr());
    if (stmt.where == nullptr) {
      stmt.where = std::move(where);
    } else {
      // JOIN ... ON conditions were already collected into stmt.where.
      stmt.where = Expr::MakeAnd(std::move(stmt.where), std::move(where));
    }
  }
  if (Match(TokenType::kKeyword, "GROUP")) {
    PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "BY"));
    do {
      PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> key, ParseOr());
      stmt.group_by.push_back(std::move(key));
    } while (Match(TokenType::kSymbol, ","));
  }
  if (Match(TokenType::kKeyword, "HAVING")) {
    // Parsed and discarded from planning predicates is unsound; reject
    // instead so callers know the dialect boundary.
    return Status::Unsupported("HAVING is not supported");
  }
  if (Match(TokenType::kKeyword, "ORDER")) {
    PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "BY"));
    do {
      OrderItem item;
      PARINDA_ASSIGN_OR_RETURN(item.expr, ParseOr());
      if (Match(TokenType::kKeyword, "DESC")) {
        item.descending = true;
      } else {
        Match(TokenType::kKeyword, "ASC");
      }
      stmt.order_by.push_back(std::move(item));
    } while (Match(TokenType::kSymbol, ","));
  }
  if (Match(TokenType::kKeyword, "LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return Status::ParseError("expected integer after LIMIT");
    }
    stmt.limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
  }
  Match(TokenType::kSymbol, ";");
  return stmt;
}

Status Parser::ParseFromClause(SelectStatement* stmt) {
  auto parse_table_ref = [&]() -> Status {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError(StringPrintf(
          "expected table name at offset %zu", Peek().offset));
    }
    TableRef ref;
    ref.table_name = Advance().text;
    if (Match(TokenType::kKeyword, "AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::ParseError("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  };
  PARINDA_RETURN_IF_ERROR(parse_table_ref());
  while (true) {
    if (Match(TokenType::kSymbol, ",")) {
      PARINDA_RETURN_IF_ERROR(parse_table_ref());
      continue;
    }
    const bool cross = Check(TokenType::kKeyword, "CROSS");
    if (Match(TokenType::kKeyword, "CROSS") ||
        Match(TokenType::kKeyword, "INNER")) {
      PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "JOIN"));
    } else if (!Match(TokenType::kKeyword, "JOIN")) {
      break;
    }
    PARINDA_RETURN_IF_ERROR(parse_table_ref());
    if (!cross) {
      PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "ON"));
      PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> cond, ParseOr());
      // Desugar JOIN ... ON into a WHERE conjunct.
      if (stmt->where == nullptr) {
        stmt->where = std::move(cond);
      } else {
        stmt->where = Expr::MakeAnd(std::move(stmt->where), std::move(cond));
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Expr>> Parser::ParseOr() {
  PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
  while (Match(TokenType::kKeyword, "OR")) {
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kOr;
    node->children.push_back(std::move(lhs));
    node->children.push_back(std::move(rhs));
    lhs = std::move(node);
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
  while (Match(TokenType::kKeyword, "AND")) {
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
    lhs = Expr::MakeAnd(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (Match(TokenType::kKeyword, "NOT")) {
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseNot());
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kNot;
    node->children.push_back(std::move(child));
    return node;
  }
  return ParsePredicate();
}

Result<std::unique_ptr<Expr>> Parser::ParsePredicate() {
  PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
  // Comparison?
  static constexpr struct {
    const char* sym;
    BinaryOp op;
  } kCmps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
               {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
               {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
  for (const auto& cmp : kCmps) {
    if (Match(TokenType::kSymbol, cmp.sym)) {
      PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
      return Expr::MakeBinary(ExprKind::kComparison, cmp.op, std::move(lhs),
                              std::move(rhs));
    }
  }
  const bool negated_in = Check(TokenType::kKeyword, "NOT");
  if (negated_in) {
    // Lookahead: NOT IN / NOT BETWEEN.
    if (pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].type == TokenType::kKeyword &&
        (tokens_[pos_ + 1].text == "IN" || tokens_[pos_ + 1].text == "BETWEEN")) {
      Advance();  // consume NOT; wrap result below
    } else {
      return lhs;
    }
  }
  if (Match(TokenType::kKeyword, "BETWEEN")) {
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lo, ParseAdditive());
    PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "AND"));
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> hi, ParseAdditive());
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kBetween;
    node->children.push_back(std::move(lhs));
    node->children.push_back(std::move(lo));
    node->children.push_back(std::move(hi));
    if (!negated_in) return node;
    auto neg = std::make_unique<Expr>();
    neg->kind = ExprKind::kNot;
    neg->children.push_back(std::move(node));
    return neg;
  }
  if (Match(TokenType::kKeyword, "IN")) {
    PARINDA_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kInList;
    node->children.push_back(std::move(lhs));
    do {
      PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> item, ParseAdditive());
      node->children.push_back(std::move(item));
    } while (Match(TokenType::kSymbol, ","));
    PARINDA_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
    if (!negated_in) return node;
    auto neg = std::make_unique<Expr>();
    neg->kind = ExprKind::kNot;
    neg->children.push_back(std::move(node));
    return neg;
  }
  if (Match(TokenType::kKeyword, "IS")) {
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kIsNull;
    node->negated = Match(TokenType::kKeyword, "NOT");
    PARINDA_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "NULL"));
    node->children.push_back(std::move(lhs));
    return node;
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Match(TokenType::kSymbol, "+")) {
      op = BinaryOp::kAdd;
    } else if (Match(TokenType::kSymbol, "-")) {
      op = BinaryOp::kSub;
    } else {
      break;
    }
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMultiplicative());
    lhs = Expr::MakeBinary(ExprKind::kArith, op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePrimary());
  while (true) {
    BinaryOp op;
    if (Match(TokenType::kSymbol, "*")) {
      op = BinaryOp::kMul;
    } else if (Match(TokenType::kSymbol, "/")) {
      op = BinaryOp::kDiv;
    } else {
      break;
    }
    PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePrimary());
    lhs = Expr::MakeBinary(ExprKind::kArith, op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      Advance();
      return Expr::MakeLiteral(
          Value::Int64(std::strtoll(t.text.c_str(), nullptr, 10)));
    }
    case TokenType::kDoubleLiteral: {
      Advance();
      return Expr::MakeLiteral(Value::Double(std::strtod(t.text.c_str(), nullptr)));
    }
    case TokenType::kStringLiteral: {
      Advance();
      return Expr::MakeLiteral(Value::String(t.text));
    }
    case TokenType::kKeyword: {
      if (Match(TokenType::kKeyword, "TRUE")) {
        return Expr::MakeLiteral(Value::Bool(true));
      }
      if (Match(TokenType::kKeyword, "FALSE")) {
        return Expr::MakeLiteral(Value::Bool(false));
      }
      if (Match(TokenType::kKeyword, "NULL")) {
        return Expr::MakeLiteral(Value::Null());
      }
      return Status::ParseError(StringPrintf(
          "unexpected keyword '%s' at offset %zu", t.text.c_str(), t.offset));
    }
    case TokenType::kSymbol: {
      if (Match(TokenType::kSymbol, "(")) {
        PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
        PARINDA_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
        return inner;
      }
      if (Match(TokenType::kSymbol, "-")) {
        PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParsePrimary());
        // Fold negation into numeric literals; otherwise 0 - expr.
        if (inner->kind == ExprKind::kLiteral && !inner->literal.is_null() &&
            TypeIsNumeric(inner->literal.type())) {
          const Value v = inner->literal;
          inner->literal = v.type() == ValueType::kInt64
                               ? Value::Int64(-v.AsInt64())
                               : Value::Double(-v.AsDouble());
          return inner;
        }
        return Expr::MakeBinary(ExprKind::kArith, BinaryOp::kSub,
                                Expr::MakeLiteral(Value::Int64(0)),
                                std::move(inner));
      }
      return Status::ParseError(StringPrintf(
          "unexpected symbol '%s' at offset %zu", t.text.c_str(), t.offset));
    }
    case TokenType::kIdentifier: {
      Advance();
      // Function call?
      if (Match(TokenType::kSymbol, "(")) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kFuncCall;
        node->func_name = ToLower(t.text);
        if (Match(TokenType::kSymbol, "*")) {
          node->star = true;
        } else if (!Check(TokenType::kSymbol, ")")) {
          Match(TokenType::kKeyword, "DISTINCT");  // count(distinct x)
          do {
            PARINDA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseOr());
            node->children.push_back(std::move(arg));
          } while (Match(TokenType::kSymbol, ","));
        }
        PARINDA_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
        return node;
      }
      // Qualified column?
      if (Match(TokenType::kSymbol, ".")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::ParseError("expected column name after '.'");
        }
        const std::string column = Advance().text;
        return Expr::MakeColumnRef(t.text, column);
      }
      return Expr::MakeColumnRef("", t.text);
    }
    case TokenType::kEnd:
      return Status::ParseError("unexpected end of input");
  }
  return Status::ParseError("unreachable");
}

}  // namespace internal_parser

Result<SelectStatement> ParseSelect(std::string_view sql) {
  PARINDA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  internal_parser::Parser parser(std::move(tokens));
  PARINDA_ASSIGN_OR_RETURN(SelectStatement stmt, parser.ParseSelectStatement());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after statement");
  }
  return stmt;
}

Result<std::vector<SelectStatement>> ParseWorkload(std::string_view text) {
  PARINDA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  internal_parser::Parser parser(std::move(tokens));
  std::vector<SelectStatement> out;
  while (!parser.AtEnd()) {
    PARINDA_ASSIGN_OR_RETURN(SelectStatement stmt,
                             parser.ParseSelectStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace parinda
