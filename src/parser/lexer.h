#ifndef PARINDA_PARSER_LEXER_H_
#define PARINDA_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace parinda {

enum class TokenType : uint8_t {
  kIdentifier,   // foo, "Foo"
  kKeyword,      // SELECT, FROM, ... (upper-cased in `text`)
  kIntLiteral,   // 42
  kDoubleLiteral,  // 3.14, 1e-3
  kStringLiteral,  // 'abc' (unquoted in `text`)
  kSymbol,       // ( ) , . = <> < <= > >= + - * /
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  /// Keyword/symbol spelling, identifier name, or literal payload.
  std::string text;
  /// Byte offset in the source, for error messages.
  size_t offset = 0;
};

/// Tokenizes SQL text. Keywords are recognized case-insensitively and
/// returned upper-cased; identifiers keep their spelling.
[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view sql);

/// True when `word` (upper-case) is a reserved keyword of our dialect.
bool IsKeyword(const std::string& upper_word);

}  // namespace parinda

#endif  // PARINDA_PARSER_LEXER_H_
