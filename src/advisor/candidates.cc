#include "advisor/candidates.h"

#include <algorithm>
#include <set>

#include "common/failpoint.h"
#include "optimizer/query_analysis.h"
#include "optimizer/selectivity.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("advisor.enumerate");

namespace {

/// Indexable columns of one query range, split by the clause kind that
/// makes them indexable.
struct RangeColumns {
  std::vector<ColumnId> equality;
  std::vector<ColumnId> range;
  std::vector<ColumnId> order;  // join / ORDER BY / GROUP BY columns
};

void AddUnique(std::vector<ColumnId>* list, ColumnId col) {
  if (std::find(list->begin(), list->end(), col) == list->end()) {
    list->push_back(col);
  }
}

RangeColumns ClassifyRange(const AnalyzedQuery& analyzed, int range) {
  RangeColumns out;
  for (const Expr* clause : analyzed.restrictions[range]) {
    auto simple = ExtractSimpleClause(*clause);
    if (simple) {
      if (simple->op == BinaryOp::kEq) {
        AddUnique(&out.equality, simple->column);
      } else if (simple->op != BinaryOp::kNe) {
        AddUnique(&out.range, simple->column);
      }
      continue;
    }
    if (clause->kind == ExprKind::kBetween &&
        clause->children[0]->kind == ExprKind::kColumnRef) {
      AddUnique(&out.range, clause->children[0]->bound_column);
    }
    if (clause->kind == ExprKind::kInList &&
        clause->children[0]->kind == ExprKind::kColumnRef) {
      AddUnique(&out.equality, clause->children[0]->bound_column);
    }
  }
  for (ColumnId col : analyzed.interesting_orders[range]) {
    AddUnique(&out.order, col);
  }
  return out;
}

}  // namespace

Result<std::vector<WhatIfIndexDef>> GenerateCandidateIndexes(
    const CatalogReader& catalog, const Workload& workload,
    const CandidateOptions& options) {
  std::set<std::pair<TableId, std::vector<ColumnId>>> seen;
  std::vector<WhatIfIndexDef> out;
  auto add = [&](TableId table, std::vector<ColumnId> columns) {
    if (columns.empty() ||
        static_cast<int>(columns.size()) > options.max_width) {
      return;
    }
    if (static_cast<int>(out.size()) >= options.max_candidates) return;
    if (!seen.insert({table, columns}).second) return;
    WhatIfIndexDef def;
    def.table = table;
    def.columns = std::move(columns);
    def.name = "cand_t" + std::to_string(table);
    for (ColumnId col : def.columns) {
      def.name += "_c" + std::to_string(col);
    }
    out.push_back(std::move(def));
  };

  for (const WorkloadQuery& query : workload.queries) {
    PARINDA_FAILPOINT("advisor.enumerate");
    // Anytime truncation: a smaller candidate pool is still a valid pool.
    if (options.deadline.Expired()) break;
    PARINDA_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                             AnalyzeQuery(catalog, query.stmt));
    for (size_t r = 0; r < analyzed.tables.size(); ++r) {
      const TableId table = analyzed.tables[r]->id;
      const RangeColumns cols = ClassifyRange(analyzed, static_cast<int>(r));
      // Singles: every indexable column.
      for (ColumnId col : cols.equality) add(table, {col});
      for (ColumnId col : cols.range) add(table, {col});
      for (ColumnId col : cols.order) add(table, {col});
      if (options.max_width < 2) continue;
      // Pairs: an equality or join column first (it pins a key prefix),
      // followed by any other indexable column of the same query.
      std::vector<ColumnId> leads = cols.equality;
      for (ColumnId col : cols.order) AddUnique(&leads, col);
      std::vector<ColumnId> follows = cols.equality;
      for (ColumnId col : cols.range) AddUnique(&follows, col);
      for (ColumnId col : cols.order) AddUnique(&follows, col);
      for (ColumnId lead : leads) {
        for (ColumnId follow : follows) {
          if (lead != follow) add(table, {lead, follow});
        }
      }
    }
  }
  return out;
}

}  // namespace parinda
