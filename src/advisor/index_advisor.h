#ifndef PARINDA_ADVISOR_INDEX_ADVISOR_H_
#define PARINDA_ADVISOR_INDEX_ADVISOR_H_

#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "advisor/benefit_matrix.h"
#include "advisor/candidates.h"
#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "engine/advice.h"
#include "engine/eval_context.h"
#include "engine/inum_bank.h"
#include "inum/inum.h"
#include "optimizer/cost_params.h"
#include "solver/bnb.h"
#include "whatif/whatif_index.h"
#include "workload/compress.h"
#include "workload/workload.h"

namespace parinda {

struct IndexAdvisorOptions {
  /// "Total extra space that the generated indexes can occupy on the disk"
  /// (paper §4, automatic index suggestion scenario).
  double storage_budget_bytes = std::numeric_limits<double>::infinity();
  CandidateOptions candidates;
  CostParams params;
  MipOptions mip;
  /// Expected rows updated/inserted per table over one workload execution.
  /// Every index on an updated table pays a maintenance cost (paper §3.4:
  /// the ILP carries "other user-supplied constraints, such as constraints
  /// on the total size of the design features, and their update costs").
  std::map<TableId, double> update_rows;
  /// Ablation switch: pretend every what-if index occupies zero pages — the
  /// Monteiro et al. flaw the paper calls out ("they do not compute the size
  /// of the indexes accurately, and assume it to be zero. This severely
  /// affects the accuracy"). Benchmark E2 uses this to show budget blowups.
  bool simulate_zero_size_indexes = false;
  /// Worker threads for the benefit-matrix computation (per-query INUM
  /// model construction plus the query x candidate fill). 1 = serial on the
  /// calling thread; 0 = one worker per hardware thread. The advice is
  /// bit-identical at any setting: each worker owns one query's cost model
  /// and writes only that query's pre-sized matrix row.
  int parallelism = 0;
  /// Time budget for the whole suggestion pipeline (enumeration, benefit
  /// matrix, solve, report). On expiry the advisor degrades instead of
  /// failing: full ILP -> ILP incumbent -> greedy selection over whatever
  /// part of the benefit matrix was filled, with per-phase checks made at
  /// serial decision points so the ladder fires identically at any
  /// `parallelism`. The default infinite deadline reproduces the un-budgeted
  /// advice bit-identically. See DESIGN.md §10.
  Deadline deadline;
  /// Workload compression (DESIGN.md §15): queries with identical normalized
  /// text and stats scope fold into one representative with summed weight
  /// before any model is built. Exact by construction — the advice (every
  /// reported double included) is bit-identical to the uncompressed run.
  /// Off = the ablation arm for bench_scale.
  bool compress = true;
  /// Sparse (CSR-style) benefit rows instead of the dense nq x nc grid.
  /// Same entries either way; off = the dense ablation arm.
  bool sparse_benefit = true;
};

/// One suggested index with its report fields (Figure 3's per-index view).
struct SuggestedIndex {
  WhatIfIndexDef def;
  double size_bytes = 0.0;
  /// Decomposed workload benefit this index contributed in the model.
  double benefit = 0.0;
  /// Ongoing maintenance cost charged for this index (update_rows model).
  double maintenance_cost = 0.0;
  /// Query indices whose final configuration uses this index ("for each
  /// query the list of the used suggested indexes is mentioned").
  std::vector<int> used_by;
};

/// Output of the automatic index suggestion scenario. The cost summary
/// (base/optimized totals, per-query breakdown, degradation ladder) is the
/// shared AdviceSummary.
struct IndexAdvice : AdviceSummary {
  std::vector<SuggestedIndex> indexes;
  double total_size_bytes = 0.0;
  /// Sum of maintenance costs of the selected indexes.
  double total_maintenance_cost = 0.0;
  /// True when the ILP solver proved optimality of its model.
  bool proved_optimal = false;
  int optimizer_calls = 0;
  int inum_estimates = 0;
};

/// The automatic index suggestion component (paper §3.4): candidate
/// generation, INUM-based benefit computation, and either the ILP technique
/// of Papadomanolakis & Ailamaki (SMDB'07) solved by the branch-and-bound
/// solver, or a greedy benefit-per-byte baseline (the strategy of the
/// commercial tools the paper contrasts with).
class IndexAdvisor {
 public:
  /// The workload must be bound against `catalog`; both must outlive this.
  IndexAdvisor(const CatalogReader& catalog, const Workload& workload,
               IndexAdvisorOptions options = {});
  ~IndexAdvisor();

  IndexAdvisor(const IndexAdvisor&) = delete;
  IndexAdvisor& operator=(const IndexAdvisor&) = delete;

  /// ILP selection: one access path per table per query, storage budget,
  /// exact branch-and-bound solve.
  [[nodiscard]] Result<IndexAdvice> SuggestWithIlp();

  /// Greedy baseline: repeatedly add the candidate with the best
  /// benefit-per-byte under the current configuration (interaction-aware,
  /// DTA-style — the strongest greedy).
  [[nodiscard]] Result<IndexAdvice> SuggestWithGreedy();

  /// Classic static greedy: ranks candidates once by their precomputed
  /// stand-alone benefit per byte and packs the budget, never re-evaluating
  /// interactions. This is the heuristic family the ILP technique is shown
  /// to beat ("ILP outperforms the greedy algorithms", paper §3.4): it
  /// double-counts overlapping indexes on the same table.
  [[nodiscard]] Result<IndexAdvice> SuggestWithStaticGreedy();

  /// The candidate pool (after Prepare; exposed for tests/benches).
  [[nodiscard]] Result<std::vector<const IndexInfo*>> Candidates();

 private:
  [[nodiscard]] Status Prepare();
  /// Prepare() that converts budget expiry into degradation instead of an
  /// error: on kDeadlineExceeded/kCancelled the advisor keeps whatever part
  /// of the benefit matrix was filled (`row_complete_` per query) and marks
  /// `report` degraded. Real errors still propagate.
  [[nodiscard]] Status PrepareBestEffort(DegradationReport* report);
  /// Maintenance cost of building candidate j under options_.update_rows.
  double MaintenanceCost(int j) const;
  /// INUM estimate of query q's cost under `config`.
  [[nodiscard]] Result<double> QueryCost(int q, const std::vector<const IndexInfo*>& config);
  /// Fills report fields given the selected set. When the budget has
  /// expired (or expires while finishing), per-query optimized costs are
  /// estimated from the benefit matrix instead of fresh INUM calls
  /// ("finish:matrix-estimate" fallback recorded in `report`).
  [[nodiscard]] Result<IndexAdvice> FinishAdvice(
      const std::vector<const IndexInfo*>& selected,
      const std::vector<double>& model_benefit, bool proved_optimal,
      DegradationReport report);
  /// The matrix-only finish used when no further model calls fit the budget.
  IndexAdvice FinishAdviceFromMatrix(
      const std::vector<const IndexInfo*>& selected,
      const std::vector<double>& model_benefit, bool proved_optimal,
      DegradationReport report);
  /// Static-greedy selection over the (possibly partial) benefit matrix;
  /// shared by SuggestWithStaticGreedy and the degradation ladder.
  void SelectStaticGreedy(std::vector<const IndexInfo*>* selected,
                          std::vector<double>* selected_benefit) const;

  /// Eval-workload index of original query `orig` (identity without
  /// compression).
  int RepOf(int orig) const {
    return expansion_ != nullptr ? expansion_->representative[orig] : orig;
  }
  /// Weight of original query `orig`.
  double WeightOf(int orig) const {
    return expansion_ != nullptr
               ? expansion_->weights[static_cast<size_t>(orig)]
               : workload_.queries[static_cast<size_t>(orig)].weight;
  }
  int OriginalSize() const {
    return expansion_ != nullptr ? expansion_->original_size()
                                 : workload_.size();
  }

  const CatalogReader& catalog_;
  const Workload& workload_;
  IndexAdvisorOptions options_;
  /// Derived from options_; threaded through the engine's INUM bank.
  EvalContext ctx_;

  bool prepared_ = false;
  /// False when the budget truncated candidate enumeration or the matrix
  /// fill; `row_complete_` says which query rows are trustworthy.
  bool prep_complete_ = true;
  /// The folded workload view (set when options_.compress folded at least
  /// one query; the advisor then models `compressed_->workload` and expands
  /// reports back over `workload_` via `expansion_`).
  std::unique_ptr<CompressedWorkload> compressed_;
  /// The workload the models/matrix are built over: `workload_`, or the
  /// compressed view when folding happened.
  const Workload* eval_workload_ = nullptr;
  const WorkloadExpansion* expansion_ = nullptr;
  std::unique_ptr<WhatIfIndexSet> candidate_set_;
  std::vector<const IndexInfo*> candidates_;
  /// Engine-owned per-query INUM models (slot-disjoint for ParallelFor);
  /// built in Prepare() once the eval workload is decided.
  std::unique_ptr<InumBank> bank_;
  std::vector<double> base_cost_;  // per eval-workload query
  /// benefit_.Get(q, j): unweighted stand-alone gain of candidate j for
  /// eval-workload query q (consumers multiply by query weight at use).
  BenefitMatrix benefit_;
  /// row_complete_[q]: query q's model, base cost and benefit row were
  /// fully computed before the budget ran out (char, not bool: each worker
  /// writes only its own slot).
  std::vector<char> row_complete_;
  /// Failpoint hit counts at pipeline start; Finish* reports the delta.
  std::vector<std::pair<std::string, int64_t>> fp_snapshot_;
};

}  // namespace parinda

#endif  // PARINDA_ADVISOR_INDEX_ADVISOR_H_
