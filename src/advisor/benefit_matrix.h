#ifndef PARINDA_ADVISOR_BENEFIT_MATRIX_H_
#define PARINDA_ADVISOR_BENEFIT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parinda {

/// The query x candidate stand-alone benefit structure of the index advisor.
///
/// Entries hold the UNWEIGHTED per-execution gain of one candidate for one
/// query (`base - cost` when positive); consumers multiply by the query
/// weight at use, so the same matrix serves both the original and the
/// compressed workload view. Most candidates are irrelevant to most queries
/// (their table sets do not intersect), so the default layout is CSR-style:
/// per-query rows of (candidate, gain) pairs sorted by candidate, holding
/// only the positive entries — memory is O(nnz) instead of O(nq * nc).
///
/// The dense layout is kept behind `Reset(..., sparse=false)` purely as the
/// A/B ablation arm for bench_scale; it stores the full nq x nc grid.
///
/// Fill contract (both layouts): row q is written only by the worker that
/// owns query q, with candidates visited in ascending order — rows stay
/// sorted without a sort pass and the matrix is bit-identical under any
/// parallelism.
class BenefitMatrix {
 public:
  struct Entry {
    int cand = 0;
    double gain = 0.0;
  };

  /// Clears and re-shapes the matrix. Dense mode allocates the full grid up
  /// front; sparse mode allocates empty rows that grow with Set().
  void Reset(int num_queries, int num_candidates, bool sparse);

  /// Records a positive stand-alone gain. Sparse rows require ascending
  /// candidate order per row (the fill loop's natural order).
  void Set(int q, int j, double gain);

  /// The stored gain, or 0.0 when the entry is absent/zero.
  double Get(int q, int j) const;

  /// Calls fn(candidate, gain) for every positive entry of row q in
  /// ascending candidate order. Skipping the zero entries is bitwise-neutral
  /// for the advisor's accumulations (all of them sum non-negative terms
  /// into non-negative totals, and x + 0.0 == x for x >= +0.0), so both
  /// layouts drive consumers through this one iteration shape.
  template <typename Fn>
  void ForEachInRow(int q, Fn&& fn) const {
    if (sparse_) {
      for (const Entry& e : rows_[static_cast<size_t>(q)]) fn(e.cand, e.gain);
      return;
    }
    const std::vector<double>& row = dense_[static_cast<size_t>(q)];
    for (int j = 0; j < num_candidates_; ++j) {
      if (row[static_cast<size_t>(j)] > 0.0) fn(j, row[static_cast<size_t>(j)]);
    }
  }

  /// Number of stored positive entries across all rows.
  int64_t NonZeros() const;

  /// Approximate heap footprint of the benefit structure.
  size_t ApproxBytes() const;

  bool sparse() const { return sparse_; }
  int num_queries() const { return static_cast<int>(sparse_ ? rows_.size() : dense_.size()); }
  int num_candidates() const { return num_candidates_; }

 private:
  bool sparse_ = true;
  int num_candidates_ = 0;
  std::vector<std::vector<Entry>> rows_;
  /// Dense ablation arm (the pre-scaling representation).
  std::vector<std::vector<double>> dense_;  // parinda-lint: allow(dense-benefit)
};

}  // namespace parinda

#endif  // PARINDA_ADVISOR_BENEFIT_MATRIX_H_
