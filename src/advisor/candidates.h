#ifndef PARINDA_ADVISOR_CANDIDATES_H_
#define PARINDA_ADVISOR_CANDIDATES_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "whatif/whatif_index.h"
#include "workload/workload.h"

namespace parinda {

/// Candidate generation knobs.
struct CandidateOptions {
  /// Maximum key columns per candidate (PARINDA "can suggest multicolumn
  /// indexes" — the capability the paper contrasts with COLT).
  int max_width = 2;
  /// Hard cap on the candidate set size.
  int max_candidates = 256;
  /// Anytime budget: enumeration checks this once per workload query and,
  /// when it expires, returns the candidates gathered so far (a valid,
  /// smaller pool) instead of an error. Callers that care whether the pool
  /// was truncated check `deadline.Expired()` afterwards. Infinite by
  /// default.
  Deadline deadline;
};

/// Determines "a large set of candidate indexes by analyzing the workload"
/// (paper §3.4): single-column candidates for every equality, range, join,
/// ORDER BY and GROUP BY column, plus multicolumn candidates pairing
/// equality/join columns with further indexable columns. Candidates are
/// deduplicated by (table, key columns).
[[nodiscard]] Result<std::vector<WhatIfIndexDef>> GenerateCandidateIndexes(
    const CatalogReader& catalog, const Workload& workload,
    const CandidateOptions& options = {});

}  // namespace parinda

#endif  // PARINDA_ADVISOR_CANDIDATES_H_
