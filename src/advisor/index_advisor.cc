#include "advisor/index_advisor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "solver/lp.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("advisor.matrix");
PARINDA_REGISTER_FAILPOINT("advisor.solve");

namespace {

constexpr double kBenefitEps = 1e-6;

}  // namespace

IndexAdvisor::IndexAdvisor(const CatalogReader& catalog,
                           const Workload& workload,
                           IndexAdvisorOptions options)
    : catalog_(catalog),
      workload_(workload),
      options_(options),
      ctx_{options_.params, options_.parallelism, options_.deadline,
           nullptr} {}

IndexAdvisor::~IndexAdvisor() = default;

Status IndexAdvisor::Prepare() {
  if (prepared_) return Status::OK();
  // Fold duplicate (text, stats-scope) queries before building any model:
  // engine costs are pure functions of the fold key, so one representative
  // with the summed weight covers every member exactly (DESIGN.md §15). A
  // workload with nothing to fold keeps the original object — the
  // compression machinery adds no work and no report difference.
  eval_workload_ = &workload_;
  expansion_ = nullptr;
  double compression_ratio = 1.0;
  if (options_.compress) {
    PARINDA_TRACE_SPAN("advisor.compress");
    auto compressed =
        std::make_unique<CompressedWorkload>(
            CompressWorkload(catalog_, workload_));
    if (compressed->folded() > 0) {
      compression_ratio = compressed->ratio();
      compressed_ = std::move(compressed);
      eval_workload_ = &compressed_->workload;
      expansion_ = &compressed_->expansion;
      ctx_.expansion = expansion_;
    }
  }
  // Gauges are integral; the ratio is stored in centi-units (100 = 1.0x).
  metrics::Registry::Global()
      .gauge("advisor.compression_ratio")
      .Set(static_cast<int64_t>(compression_ratio * 100.0));
  CandidateOptions cand_options = options_.candidates;
  cand_options.deadline = options_.deadline;
  PARINDA_ASSIGN_OR_RETURN(
      std::vector<WhatIfIndexDef> defs,
      GenerateCandidateIndexes(catalog_, *eval_workload_, cand_options));
  // Enumeration truncates (returns a smaller pool) rather than erroring.
  if (options_.deadline.Expired()) prep_complete_ = false;
  candidate_set_ = std::make_unique<WhatIfIndexSet>(catalog_);
  for (const WhatIfIndexDef& def : defs) {
    PARINDA_ASSIGN_OR_RETURN(IndexId id, candidate_set_->AddIndex(def));
    if (options_.simulate_zero_size_indexes) {
      IndexInfo* info = candidate_set_->GetMutable(id);
      info->leaf_pages = 0.0;
      info->tree_height = 0;
    }
    candidates_.push_back(candidate_set_->Get(id));
  }

  const int nq = eval_workload_->size();
  const int nc = static_cast<int>(candidates_.size());
  bank_ = std::make_unique<InumBank>(catalog_, *eval_workload_);
  // Pre-sized per-query slots: each worker builds and owns query q's cost
  // model (the bank's slot-disjoint contract) and writes only base_cost_[q]
  // / benefit_ row q, so the matrix is bit-identical under any parallelism
  // (the catalog and the candidate IndexInfo records are shared read-only).
  // No mutex and no PARINDA_GUARDED_BY: the slots are disjoint by
  // construction, and WaitAll()'s pool mutex is the one happens-before edge
  // the readers need before the serial selection scan.
  base_cost_.assign(static_cast<size_t>(nq), 0.0);
  benefit_.Reset(nq, nc, options_.sparse_benefit);
  row_complete_.assign(static_cast<size_t>(nq), 0);
  Status fill = ParallelFor(
      ResolveParallelism(ctx_.parallelism), nq, [&](int q) -> Status {
        PARINDA_FAILPOINT("advisor.matrix");
        // Workers observe the shared budget; an expired deadline fails the
        // row, and ParallelFor's cancel-on-error drains the rest promptly.
        PARINDA_ASSIGN_OR_RETURN(
            InumCostModel * model,
            bank_->Model(q, ctx_.params, &options_.deadline));
        PARINDA_ASSIGN_OR_RETURN(base_cost_[q], model->EstimateCost({}));
        // Tables of this query, to skip irrelevant candidates fast.
        std::set<TableId> tables;
        for (const TableRef& ref : eval_workload_->queries[q].stmt.from) {
          tables.insert(ref.bound_table);
        }
        for (int j = 0; j < nc; ++j) {
          if (tables.count(candidates_[j]->table_id) == 0) continue;
          PARINDA_ASSIGN_OR_RETURN(double cost,
                                   model->EstimateCost({candidates_[j]}));
          const double gain = base_cost_[q] - cost;
          if (gain > kBenefitEps) benefit_.Set(q, j, gain);
        }
        row_complete_[q] = 1;
        return Status::OK();
      });
  metrics::Registry::Global()
      .gauge("advisor.sparse_nnz")
      .Set(static_cast<double>(benefit_.NonZeros()));
  if (!fill.ok()) {
    if (!IsBudgetError(fill)) return fill;
    // Out of budget mid-matrix: keep the complete rows, degrade the rest.
    prep_complete_ = false;
  }
  prepared_ = true;
  return fill;
}

Status IndexAdvisor::PrepareBestEffort(DegradationReport* report) {
  fp_snapshot_ = failpoint::AllHits();
  PhaseTimer timer(report, "prepare", "advisor.prepare");
  Status status = Prepare();
  if (status.ok()) {
    if (!prep_complete_) report->AddFallback("enumerate:truncated");
    return Status::OK();
  }
  if (IsBudgetError(status)) {
    report->AddFallback("matrix:truncated");
    return Status::OK();
  }
  return status;
}

double IndexAdvisor::MaintenanceCost(int j) const {
  auto it = options_.update_rows.find(candidates_[j]->table_id);
  if (it == options_.update_rows.end() || it->second <= 0.0) return 0.0;
  const double rows = it->second;
  // Each updated row inserts/moves one index entry (CPU) and dirties leaf
  // pages — at most one page write per update, capped by the index size.
  return rows * options_.params.cpu_index_tuple_cost +
         std::min(rows, candidates_[j]->leaf_pages) *
             options_.params.random_page_cost;
}

Result<std::vector<const IndexInfo*>> IndexAdvisor::Candidates() {
  PARINDA_RETURN_IF_ERROR(Prepare());
  return candidates_;
}

Result<double> IndexAdvisor::QueryCost(
    int q, const std::vector<const IndexInfo*>& config) {
  return bank_->Get(q)->EstimateCost(config);
}

IndexAdvice IndexAdvisor::FinishAdviceFromMatrix(
    const std::vector<const IndexInfo*>& selected,
    const std::vector<double>& model_benefit, bool proved_optimal,
    DegradationReport report) {
  IndexAdvice advice;
  advice.proved_optimal = proved_optimal;
  const int nq = OriginalSize();
  advice.per_query_base.assign(static_cast<size_t>(nq), 0.0);
  advice.per_query_optimized.assign(static_cast<size_t>(nq), 0.0);
  std::map<const IndexInfo*, int> candidate_index;
  for (size_t j = 0; j < candidates_.size(); ++j) {
    candidate_index[candidates_[j]] = static_cast<int>(j);
  }
  std::map<const IndexInfo*, std::vector<int>> used_by;
  // Per ORIGINAL query, using its representative's matrix row: the weighted
  // benefit is recomputed from the same operands (gain, weight) the
  // uncompressed run stores, so the estimate — division included — carries
  // the exact same bits.
  for (int q = 0; q < nq; ++q) {
    const int rep = RepOf(q);
    const double w_q = WeightOf(q);
    const double weight = std::max(kBenefitEps, w_q);
    // Estimate from the stand-alone benefit matrix: per table, the best
    // selected candidate serves the query (one access path per table); no
    // fresh model calls. Incomplete rows carry zero benefit, so their
    // estimate stays at the (possibly unfilled) base cost.
    std::map<TableId, std::pair<double, const IndexInfo*>> best_per_table;
    for (const IndexInfo* index : selected) {
      const double weighted = benefit_.Get(rep, candidate_index[index]) * w_q;
      const double gain = weighted / weight;
      if (gain <= kBenefitEps) continue;
      auto [it, inserted] =
          best_per_table.try_emplace(index->table_id, gain, index);
      if (!inserted && gain > it->second.first) it->second = {gain, index};
    }
    double optimized = base_cost_[rep];
    for (const auto& [table, best] : best_per_table) {
      optimized -= best.first;
      used_by[best.second].push_back(q);
    }
    optimized = std::max(0.0, optimized);
    advice.per_query_base[q] = base_cost_[rep];
    advice.per_query_optimized[q] = optimized;
    advice.base_cost += base_cost_[rep] * w_q;
    advice.optimized_cost += optimized * w_q;
  }
  for (size_t s = 0; s < selected.size(); ++s) {
    SuggestedIndex suggestion;
    suggestion.def.name = selected[s]->name;
    suggestion.def.table = selected[s]->table_id;
    suggestion.def.columns = selected[s]->columns;
    suggestion.def.unique = selected[s]->unique;
    suggestion.size_bytes = selected[s]->SizeBytes();
    suggestion.benefit = s < model_benefit.size() ? model_benefit[s] : 0.0;
    suggestion.used_by = used_by[selected[s]];
    suggestion.maintenance_cost = MaintenanceCost(candidate_index[selected[s]]);
    advice.total_size_bytes += suggestion.size_bytes;
    advice.total_maintenance_cost += suggestion.maintenance_cost;
    advice.indexes.push_back(std::move(suggestion));
  }
  // Bank totals skip rows whose model never started within the budget.
  advice.optimizer_calls = bank_->TotalOptimizerCalls();
  advice.inum_estimates = bank_->TotalEstimatesServed();
  report.degraded = true;
  report.failpoint_hits = failpoint::HitsSince(fp_snapshot_);
  advice.degradation = std::move(report);
  return advice;
}

Result<IndexAdvice> IndexAdvisor::FinishAdvice(
    const std::vector<const IndexInfo*>& selected,
    const std::vector<double>& model_benefit, bool proved_optimal,
    DegradationReport report) {
  // The exact finish re-costs every query against the selected set (plus a
  // leave-one-out pass for used_by) — too expensive once the budget is
  // spent, and impossible when the matrix fill was truncated (missing
  // per-query models). Fall back to the matrix-only estimate then.
  if (!prep_complete_ || options_.deadline.Expired()) {
    report.AddFallback("finish:matrix-estimate");
    return FinishAdviceFromMatrix(selected, model_benefit, proved_optimal,
                                  std::move(report));
  }
  PhaseTimer timer(&report, "finish", "advisor.finish");
  IndexAdvice advice;
  advice.proved_optimal = proved_optimal;
  const int n_eval = eval_workload_->size();
  const int nq = OriginalSize();
  // Pass 1 over the eval workload: one model call per fold class (plus the
  // leave-one-out pass for used_by) — this is where compression pays.
  std::vector<double> eval_cost(static_cast<size_t>(n_eval), 0.0);
  std::vector<std::vector<char>> eval_uses(
      selected.size(), std::vector<char>(static_cast<size_t>(n_eval), 0));
  Status status = [&]() -> Status {
    for (int q = 0; q < n_eval; ++q) {
      PARINDA_ASSIGN_OR_RETURN(double cost, QueryCost(q, selected));
      eval_cost[q] = cost;
      // An index is "used by q" when dropping it makes q more expensive.
      for (size_t s = 0; s < selected.size(); ++s) {
        std::vector<const IndexInfo*> without;
        for (const IndexInfo* other : selected) {
          if (other != selected[s]) without.push_back(other);
        }
        PARINDA_ASSIGN_OR_RETURN(double cost_without, QueryCost(q, without));
        if (cost_without > cost + kBenefitEps) {
          eval_uses[s][static_cast<size_t>(q)] = 1;
        }
      }
    }
    return Status::OK();
  }();
  if (!status.ok()) {
    if (!IsBudgetError(status)) return status;
    timer.Stop();
    report.AddFallback("finish:matrix-estimate");
    return FinishAdviceFromMatrix(selected, model_benefit, proved_optimal,
                                  std::move(report));
  }
  // Pass 2 over the ORIGINAL queries in ascending order: totals accumulate
  // the representative costs with the original weights — the exact addition
  // sequence of the uncompressed run.
  advice.per_query_base.assign(static_cast<size_t>(nq), 0.0);
  advice.per_query_optimized.assign(static_cast<size_t>(nq), 0.0);
  std::map<const IndexInfo*, std::vector<int>> used_by;
  for (int q = 0; q < nq; ++q) {
    const int rep = RepOf(q);
    const double w_q = WeightOf(q);
    advice.per_query_base[q] = base_cost_[rep];
    advice.per_query_optimized[q] = eval_cost[rep];
    advice.base_cost += base_cost_[rep] * w_q;
    advice.optimized_cost += eval_cost[rep] * w_q;
    for (size_t s = 0; s < selected.size(); ++s) {
      if (eval_uses[s][static_cast<size_t>(rep)] != 0) {
        used_by[selected[s]].push_back(q);
      }
    }
  }
  for (size_t s = 0; s < selected.size(); ++s) {
    SuggestedIndex suggestion;
    suggestion.def.name = selected[s]->name;
    suggestion.def.table = selected[s]->table_id;
    suggestion.def.columns = selected[s]->columns;
    suggestion.def.unique = selected[s]->unique;
    suggestion.size_bytes = selected[s]->SizeBytes();
    suggestion.benefit = s < model_benefit.size() ? model_benefit[s] : 0.0;
    suggestion.used_by = used_by[selected[s]];
    for (size_t j = 0; j < candidates_.size(); ++j) {
      if (candidates_[j] == selected[s]) {
        suggestion.maintenance_cost = MaintenanceCost(static_cast<int>(j));
        break;
      }
    }
    advice.total_size_bytes += suggestion.size_bytes;
    advice.total_maintenance_cost += suggestion.maintenance_cost;
    advice.indexes.push_back(std::move(suggestion));
  }
  advice.optimizer_calls = bank_->TotalOptimizerCalls();
  advice.inum_estimates = bank_->TotalEstimatesServed();
  timer.Stop();
  report.failpoint_hits = failpoint::HitsSince(fp_snapshot_);
  advice.degradation = std::move(report);
  return advice;
}

void IndexAdvisor::SelectStaticGreedy(
    std::vector<const IndexInfo*>* selected,
    std::vector<double>* selected_benefit) const {
  const int nq = OriginalSize();
  const int nc = static_cast<int>(candidates_.size());
  // Stand-alone benefit of each candidate, accumulated over the ORIGINAL
  // queries in ascending order (each adding its representative's gain times
  // its own weight) — the same addition sequence as the uncompressed dense
  // scan, minus the bitwise-neutral zero terms.
  std::vector<double> score(static_cast<size_t>(nc), 0.0);
  for (int q = 0; q < nq; ++q) {
    const int rep = RepOf(q);
    const double w_q = WeightOf(q);
    benefit_.ForEachInRow(
        rep, [&](int j, double gain) { score[j] += gain * w_q; });
  }
  for (int j = 0; j < nc; ++j) score[j] -= MaintenanceCost(j);
  std::vector<int> order;
  for (int j = 0; j < nc; ++j) {
    if (score[j] > kBenefitEps) order.push_back(j);
  }
  const bool budgeted = std::isfinite(options_.storage_budget_bytes);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double da =
        budgeted ? score[a] / std::max(1.0, candidates_[a]->SizeBytes())
                 : score[a];
    const double db =
        budgeted ? score[b] / std::max(1.0, candidates_[b]->SizeBytes())
                 : score[b];
    return da > db;
  });
  double used_bytes = 0.0;
  for (int j : order) {
    const double size = candidates_[j]->SizeBytes();
    if (budgeted && used_bytes + size > options_.storage_budget_bytes) {
      continue;
    }
    selected->push_back(candidates_[j]);
    selected_benefit->push_back(score[j]);
    used_bytes += size;
  }
}

Result<IndexAdvice> IndexAdvisor::SuggestWithIlp() {
  DegradationReport report;
  PARINDA_RETURN_IF_ERROR(PrepareBestEffort(&report));
  PARINDA_FAILPOINT("advisor.solve");
  // Degradation ladder, rung 3 (no budget left for the ILP at all): greedy
  // selection over whatever part of the benefit matrix was filled.
  if (!prep_complete_ || options_.deadline.Expired()) {
    report.AddFallback("ilp:greedy-fallback");
    std::vector<const IndexInfo*> selected;
    std::vector<double> selected_benefit;
    SelectStaticGreedy(&selected, &selected_benefit);
    return FinishAdviceFromMatrix(selected, selected_benefit,
                                  /*proved_optimal=*/false, std::move(report));
  }
  const int nq = eval_workload_->size();
  const int nc = static_cast<int>(candidates_.size());

  // Variables: x_j (build index j) for j in [0, nc); then y_{q,j} for every
  // positive-benefit pair of the EVAL workload — under compression one
  // variable covers a whole fold class (its coefficient carries the summed
  // weight), which is what shrinks the ILP.
  LinearProgram lp;
  lp.objective.assign(static_cast<size_t>(nc), 0.0);
  // Building an index costs maintenance whether or not a query uses it.
  for (int j = 0; j < nc; ++j) lp.objective[j] = -MaintenanceCost(j);
  struct PairVar {
    int q;
    int j;
    int var;
  };
  std::vector<PairVar> pairs;
  std::map<std::pair<int, int>, int> pair_var;  // (eval q, j) -> var
  for (int q = 0; q < nq; ++q) {
    const double w_q = eval_workload_->queries[static_cast<size_t>(q)].weight;
    benefit_.ForEachInRow(q, [&](int j, double gain) {
      const double weighted = gain * w_q;
      if (weighted <= kBenefitEps) return;
      const int var = static_cast<int>(lp.objective.size());
      lp.objective.push_back(weighted);
      pairs.push_back({q, j, var});
      pair_var[{q, j}] = var;
    });
  }
  // y_{q,j} <= x_j.
  for (const PairVar& pair : pairs) {
    lp.AddConstraint({{{pair.var, 1.0}, {pair.j, -1.0}}, 0.0});
  }
  // Accuracy constraints: one access path per table per query (paper §3.4).
  std::map<std::pair<int, TableId>, std::vector<int>> per_table;
  for (const PairVar& pair : pairs) {
    per_table[{pair.q, candidates_[pair.j]->table_id}].push_back(pair.var);
  }
  for (const auto& [key, vars] : per_table) {
    if (vars.size() < 2) continue;
    LinearProgram::Constraint row;
    for (int var : vars) row.terms.push_back({var, 1.0});
    row.rhs = 1.0;
    lp.AddConstraint(std::move(row));
  }
  // Storage budget over the x_j.
  if (std::isfinite(options_.storage_budget_bytes)) {
    LinearProgram::Constraint row;
    for (int j = 0; j < nc; ++j) {
      row.terms.push_back({j, candidates_[j]->SizeBytes()});
    }
    row.rhs = options_.storage_budget_bytes;
    lp.AddConstraint(std::move(row));
  }

  BinaryMip mip;
  mip.lp = std::move(lp);
  MipOptions mip_options = options_.mip;
  mip_options.deadline = options_.deadline;
  MipSolution solution;
  {
    PhaseTimer timer(&report, "solve", "advisor.solve");
    PARINDA_ASSIGN_OR_RETURN(solution, SolveBinaryMip(mip, mip_options));
  }
  if (solution.degraded) {
    if (!solution.feasible) {
      // Rung 3 again: the budget expired before any incumbent was found.
      report.AddFallback("ilp:greedy-fallback");
      std::vector<const IndexInfo*> selected;
      std::vector<double> selected_benefit;
      SelectStaticGreedy(&selected, &selected_benefit);
      return FinishAdviceFromMatrix(selected, selected_benefit,
                                    /*proved_optimal=*/false,
                                    std::move(report));
    }
    // Rung 2: the truncated search still holds a feasible incumbent.
    report.AddFallback("ilp:incumbent");
  } else if (!solution.feasible) {
    return Status::SolverError("index-selection ILP is infeasible");
  }
  std::vector<const IndexInfo*> selected;
  std::vector<double> model_benefit;
  const int n_orig = OriginalSize();
  for (int j = 0; j < nc; ++j) {
    if (solution.values[j] == 1) {
      selected.push_back(candidates_[j]);
      // Decomposed benefit, expanded back over the ORIGINAL queries in
      // ascending order so the reported per-index benefit matches the
      // uncompressed pair-order accumulation bit for bit.
      double b = 0.0;
      for (int q = 0; q < n_orig; ++q) {
        auto it = pair_var.find({RepOf(q), j});
        if (it != pair_var.end() && solution.values[it->second] == 1) {
          b += benefit_.Get(RepOf(q), j) * WeightOf(q);
        }
      }
      model_benefit.push_back(b);
    }
  }
  // Drop zero-contribution indexes the solver may have set freely.
  std::vector<const IndexInfo*> pruned;
  std::vector<double> pruned_benefit;
  for (size_t s = 0; s < selected.size(); ++s) {
    if (model_benefit[s] > kBenefitEps) {
      pruned.push_back(selected[s]);
      pruned_benefit.push_back(model_benefit[s]);
    }
  }
  return FinishAdvice(pruned, pruned_benefit, solution.proved_optimal,
                      std::move(report));
}

Result<IndexAdvice> IndexAdvisor::SuggestWithStaticGreedy() {
  DegradationReport report;
  PARINDA_RETURN_IF_ERROR(PrepareBestEffort(&report));
  std::vector<const IndexInfo*> selected;
  std::vector<double> selected_benefit;
  SelectStaticGreedy(&selected, &selected_benefit);
  return FinishAdvice(selected, selected_benefit, /*proved_optimal=*/false,
                      std::move(report));
}

Result<IndexAdvice> IndexAdvisor::SuggestWithGreedy() {
  DegradationReport report;
  PARINDA_RETURN_IF_ERROR(PrepareBestEffort(&report));
  // Without a complete matrix the interaction-aware search has no per-query
  // models to consult; degrade to the static ranking.
  if (!prep_complete_ || options_.deadline.Expired()) {
    report.AddFallback("greedy:static-fallback");
    std::vector<const IndexInfo*> selected;
    std::vector<double> selected_benefit;
    SelectStaticGreedy(&selected, &selected_benefit);
    return FinishAdviceFromMatrix(selected, selected_benefit,
                                  /*proved_optimal=*/false, std::move(report));
  }
  const int n_eval = eval_workload_->size();
  const int nq = OriginalSize();
  const int nc = static_cast<int>(candidates_.size());
  std::vector<const IndexInfo*> selected;
  std::vector<double> selected_benefit;
  std::vector<bool> in_set(static_cast<size_t>(nc), false);
  std::vector<double> current_cost = base_cost_;  // per eval query
  double used_bytes = 0.0;
  const bool budgeted = std::isfinite(options_.storage_budget_bytes);

  bool truncated = false;
  while (!truncated) {
    // Anytime cut: keep the selection built so far.
    if (options_.deadline.Expired()) {
      report.AddFallback("greedy:truncated");
      break;
    }
    int best = -1;
    double best_score = 0.0;
    double best_gain = 0.0;
    std::vector<double> best_costs;
    for (int j = 0; j < nc && !truncated; ++j) {
      if (in_set[j]) continue;
      const double size = candidates_[j]->SizeBytes();
      if (budgeted && used_bytes + size > options_.storage_budget_bytes) {
        continue;
      }
      std::vector<const IndexInfo*> trial = selected;
      trial.push_back(candidates_[j]);
      // Model calls once per fold class; the gain then accumulates over the
      // ORIGINAL queries in ascending order (the uncompressed run's exact
      // addition sequence), so the greedy's tie-free decisions match it.
      std::vector<double> costs(static_cast<size_t>(n_eval), 0.0);
      for (int q = 0; q < n_eval; ++q) {
        auto cost = QueryCost(q, trial);
        if (!cost.ok()) {
          if (!IsBudgetError(cost.status())) return cost.status();
          report.AddFallback("greedy:truncated");
          truncated = true;
          break;
        }
        costs[q] = *cost;
      }
      if (truncated) break;
      double gain = -MaintenanceCost(j);
      for (int q = 0; q < nq; ++q) {
        const int rep = RepOf(q);
        gain += (current_cost[rep] - costs[rep]) * WeightOf(q);
      }
      if (gain <= kBenefitEps) continue;
      const double score = budgeted ? gain / std::max(1.0, size) : gain;
      if (score > best_score) {
        best = j;
        best_score = score;
        best_gain = gain;
        best_costs = std::move(costs);
      }
    }
    if (truncated || best < 0) break;
    in_set[best] = true;
    selected.push_back(candidates_[best]);
    selected_benefit.push_back(best_gain);
    used_bytes += candidates_[best]->SizeBytes();
    current_cost = std::move(best_costs);
  }
  return FinishAdvice(selected, selected_benefit, /*proved_optimal=*/false,
                      std::move(report));
}

}  // namespace parinda
