#include "advisor/index_advisor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "solver/lp.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("advisor.matrix");
PARINDA_REGISTER_FAILPOINT("advisor.solve");

namespace {

constexpr double kBenefitEps = 1e-6;

}  // namespace

IndexAdvisor::IndexAdvisor(const CatalogReader& catalog,
                           const Workload& workload,
                           IndexAdvisorOptions options)
    : catalog_(catalog),
      workload_(workload),
      options_(options),
      ctx_{options_.params, options_.parallelism, options_.deadline, nullptr},
      bank_(catalog_, workload_) {}

IndexAdvisor::~IndexAdvisor() = default;

Status IndexAdvisor::Prepare() {
  if (prepared_) return Status::OK();
  CandidateOptions cand_options = options_.candidates;
  cand_options.deadline = options_.deadline;
  PARINDA_ASSIGN_OR_RETURN(
      std::vector<WhatIfIndexDef> defs,
      GenerateCandidateIndexes(catalog_, workload_, cand_options));
  // Enumeration truncates (returns a smaller pool) rather than erroring.
  if (options_.deadline.Expired()) prep_complete_ = false;
  candidate_set_ = std::make_unique<WhatIfIndexSet>(catalog_);
  for (const WhatIfIndexDef& def : defs) {
    PARINDA_ASSIGN_OR_RETURN(IndexId id, candidate_set_->AddIndex(def));
    if (options_.simulate_zero_size_indexes) {
      IndexInfo* info = candidate_set_->GetMutable(id);
      info->leaf_pages = 0.0;
      info->tree_height = 0;
    }
    candidates_.push_back(candidate_set_->Get(id));
  }

  const int nq = workload_.size();
  const int nc = static_cast<int>(candidates_.size());
  // Pre-sized per-query slots: each worker builds and owns query q's cost
  // model (the bank's slot-disjoint contract) and writes only base_cost_[q]
  // / benefit_[q], so the matrix is bit-identical under any parallelism (the
  // catalog and the candidate IndexInfo records are shared read-only). No
  // mutex and no PARINDA_GUARDED_BY: the slots are disjoint by construction,
  // and WaitAll()'s pool mutex is the one happens-before edge the readers
  // need before the serial selection scan.
  base_cost_.assign(static_cast<size_t>(nq), 0.0);
  benefit_.assign(static_cast<size_t>(nq),
                  std::vector<double>(static_cast<size_t>(nc), 0.0));
  row_complete_.assign(static_cast<size_t>(nq), 0);
  Status fill = ParallelFor(
      ResolveParallelism(ctx_.parallelism), nq, [&](int q) -> Status {
        PARINDA_FAILPOINT("advisor.matrix");
        // Workers observe the shared budget; an expired deadline fails the
        // row, and ParallelFor's cancel-on-error drains the rest promptly.
        PARINDA_ASSIGN_OR_RETURN(
            InumCostModel * model,
            bank_.Model(q, ctx_.params, &options_.deadline));
        PARINDA_ASSIGN_OR_RETURN(base_cost_[q], model->EstimateCost({}));
        // Tables of this query, to skip irrelevant candidates fast.
        std::set<TableId> tables;
        for (const TableRef& ref : workload_.queries[q].stmt.from) {
          tables.insert(ref.bound_table);
        }
        for (int j = 0; j < nc; ++j) {
          if (tables.count(candidates_[j]->table_id) == 0) continue;
          PARINDA_ASSIGN_OR_RETURN(double cost,
                                   model->EstimateCost({candidates_[j]}));
          const double gain = base_cost_[q] - cost;
          if (gain > kBenefitEps) {
            benefit_[q][j] = gain * workload_.queries[q].weight;
          }
        }
        row_complete_[q] = 1;
        return Status::OK();
      });
  if (!fill.ok()) {
    if (!IsBudgetError(fill)) return fill;
    // Out of budget mid-matrix: keep the complete rows, degrade the rest.
    prep_complete_ = false;
  }
  prepared_ = true;
  return fill;
}

Status IndexAdvisor::PrepareBestEffort(DegradationReport* report) {
  fp_snapshot_ = failpoint::AllHits();
  PhaseTimer timer(report, "prepare", "advisor.prepare");
  Status status = Prepare();
  if (status.ok()) {
    if (!prep_complete_) report->AddFallback("enumerate:truncated");
    return Status::OK();
  }
  if (IsBudgetError(status)) {
    report->AddFallback("matrix:truncated");
    return Status::OK();
  }
  return status;
}

double IndexAdvisor::MaintenanceCost(int j) const {
  auto it = options_.update_rows.find(candidates_[j]->table_id);
  if (it == options_.update_rows.end() || it->second <= 0.0) return 0.0;
  const double rows = it->second;
  // Each updated row inserts/moves one index entry (CPU) and dirties leaf
  // pages — at most one page write per update, capped by the index size.
  return rows * options_.params.cpu_index_tuple_cost +
         std::min(rows, candidates_[j]->leaf_pages) *
             options_.params.random_page_cost;
}

Result<std::vector<const IndexInfo*>> IndexAdvisor::Candidates() {
  PARINDA_RETURN_IF_ERROR(Prepare());
  return candidates_;
}

Result<double> IndexAdvisor::QueryCost(
    int q, const std::vector<const IndexInfo*>& config) {
  return bank_.Get(q)->EstimateCost(config);
}

IndexAdvice IndexAdvisor::FinishAdviceFromMatrix(
    const std::vector<const IndexInfo*>& selected,
    const std::vector<double>& model_benefit, bool proved_optimal,
    DegradationReport report) {
  IndexAdvice advice;
  advice.proved_optimal = proved_optimal;
  const int nq = workload_.size();
  advice.per_query_base = base_cost_;
  advice.per_query_optimized.assign(static_cast<size_t>(nq), 0.0);
  std::map<const IndexInfo*, int> candidate_index;
  for (size_t j = 0; j < candidates_.size(); ++j) {
    candidate_index[candidates_[j]] = static_cast<int>(j);
  }
  std::map<const IndexInfo*, std::vector<int>> used_by;
  for (int q = 0; q < nq; ++q) {
    const double weight = std::max(kBenefitEps, workload_.queries[q].weight);
    // Estimate from the stand-alone benefit matrix: per table, the best
    // selected candidate serves the query (one access path per table); no
    // fresh model calls. Incomplete rows carry zero benefit, so their
    // estimate stays at the (possibly unfilled) base cost.
    std::map<TableId, std::pair<double, const IndexInfo*>> best_per_table;
    for (const IndexInfo* index : selected) {
      const double gain = benefit_[q][candidate_index[index]] / weight;
      if (gain <= kBenefitEps) continue;
      auto [it, inserted] =
          best_per_table.try_emplace(index->table_id, gain, index);
      if (!inserted && gain > it->second.first) it->second = {gain, index};
    }
    double optimized = base_cost_[q];
    for (const auto& [table, best] : best_per_table) {
      optimized -= best.first;
      used_by[best.second].push_back(q);
    }
    optimized = std::max(0.0, optimized);
    advice.per_query_optimized[q] = optimized;
    advice.base_cost += base_cost_[q] * workload_.queries[q].weight;
    advice.optimized_cost += optimized * workload_.queries[q].weight;
  }
  for (size_t s = 0; s < selected.size(); ++s) {
    SuggestedIndex suggestion;
    suggestion.def.name = selected[s]->name;
    suggestion.def.table = selected[s]->table_id;
    suggestion.def.columns = selected[s]->columns;
    suggestion.def.unique = selected[s]->unique;
    suggestion.size_bytes = selected[s]->SizeBytes();
    suggestion.benefit = s < model_benefit.size() ? model_benefit[s] : 0.0;
    suggestion.used_by = used_by[selected[s]];
    suggestion.maintenance_cost = MaintenanceCost(candidate_index[selected[s]]);
    advice.total_size_bytes += suggestion.size_bytes;
    advice.total_maintenance_cost += suggestion.maintenance_cost;
    advice.indexes.push_back(std::move(suggestion));
  }
  // Bank totals skip rows whose model never started within the budget.
  advice.optimizer_calls = bank_.TotalOptimizerCalls();
  advice.inum_estimates = bank_.TotalEstimatesServed();
  report.degraded = true;
  report.failpoint_hits = failpoint::HitsSince(fp_snapshot_);
  advice.degradation = std::move(report);
  return advice;
}

Result<IndexAdvice> IndexAdvisor::FinishAdvice(
    const std::vector<const IndexInfo*>& selected,
    const std::vector<double>& model_benefit, bool proved_optimal,
    DegradationReport report) {
  // The exact finish re-costs every query against the selected set (plus a
  // leave-one-out pass for used_by) — too expensive once the budget is
  // spent, and impossible when the matrix fill was truncated (missing
  // per-query models). Fall back to the matrix-only estimate then.
  if (!prep_complete_ || options_.deadline.Expired()) {
    report.AddFallback("finish:matrix-estimate");
    return FinishAdviceFromMatrix(selected, model_benefit, proved_optimal,
                                  std::move(report));
  }
  PhaseTimer timer(&report, "finish", "advisor.finish");
  IndexAdvice advice;
  advice.proved_optimal = proved_optimal;
  const int nq = workload_.size();
  advice.per_query_base = base_cost_;
  advice.per_query_optimized.assign(static_cast<size_t>(nq), 0.0);
  std::map<const IndexInfo*, std::vector<int>> used_by;
  Status status = [&]() -> Status {
    for (int q = 0; q < nq; ++q) {
      PARINDA_ASSIGN_OR_RETURN(double cost, QueryCost(q, selected));
      advice.per_query_optimized[q] = cost;
      advice.base_cost += base_cost_[q] * workload_.queries[q].weight;
      advice.optimized_cost += cost * workload_.queries[q].weight;
      // An index is "used by q" when dropping it makes q more expensive.
      for (const IndexInfo* index : selected) {
        std::vector<const IndexInfo*> without;
        for (const IndexInfo* other : selected) {
          if (other != index) without.push_back(other);
        }
        PARINDA_ASSIGN_OR_RETURN(double cost_without, QueryCost(q, without));
        if (cost_without > cost + kBenefitEps) {
          used_by[index].push_back(q);
        }
      }
    }
    return Status::OK();
  }();
  if (!status.ok()) {
    if (!IsBudgetError(status)) return status;
    timer.Stop();
    report.AddFallback("finish:matrix-estimate");
    return FinishAdviceFromMatrix(selected, model_benefit, proved_optimal,
                                  std::move(report));
  }
  for (size_t s = 0; s < selected.size(); ++s) {
    SuggestedIndex suggestion;
    suggestion.def.name = selected[s]->name;
    suggestion.def.table = selected[s]->table_id;
    suggestion.def.columns = selected[s]->columns;
    suggestion.def.unique = selected[s]->unique;
    suggestion.size_bytes = selected[s]->SizeBytes();
    suggestion.benefit = s < model_benefit.size() ? model_benefit[s] : 0.0;
    suggestion.used_by = used_by[selected[s]];
    for (size_t j = 0; j < candidates_.size(); ++j) {
      if (candidates_[j] == selected[s]) {
        suggestion.maintenance_cost = MaintenanceCost(static_cast<int>(j));
        break;
      }
    }
    advice.total_size_bytes += suggestion.size_bytes;
    advice.total_maintenance_cost += suggestion.maintenance_cost;
    advice.indexes.push_back(std::move(suggestion));
  }
  advice.optimizer_calls = bank_.TotalOptimizerCalls();
  advice.inum_estimates = bank_.TotalEstimatesServed();
  timer.Stop();
  report.failpoint_hits = failpoint::HitsSince(fp_snapshot_);
  advice.degradation = std::move(report);
  return advice;
}

void IndexAdvisor::SelectStaticGreedy(
    std::vector<const IndexInfo*>* selected,
    std::vector<double>* selected_benefit) const {
  const int nq = workload_.size();
  const int nc = static_cast<int>(candidates_.size());
  // Stand-alone benefit of each candidate, computed once.
  std::vector<double> score(static_cast<size_t>(nc), 0.0);
  for (int q = 0; q < nq; ++q) {
    for (int j = 0; j < nc; ++j) score[j] += benefit_[q][j];
  }
  for (int j = 0; j < nc; ++j) score[j] -= MaintenanceCost(j);
  std::vector<int> order;
  for (int j = 0; j < nc; ++j) {
    if (score[j] > kBenefitEps) order.push_back(j);
  }
  const bool budgeted = std::isfinite(options_.storage_budget_bytes);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double da =
        budgeted ? score[a] / std::max(1.0, candidates_[a]->SizeBytes())
                 : score[a];
    const double db =
        budgeted ? score[b] / std::max(1.0, candidates_[b]->SizeBytes())
                 : score[b];
    return da > db;
  });
  double used_bytes = 0.0;
  for (int j : order) {
    const double size = candidates_[j]->SizeBytes();
    if (budgeted && used_bytes + size > options_.storage_budget_bytes) {
      continue;
    }
    selected->push_back(candidates_[j]);
    selected_benefit->push_back(score[j]);
    used_bytes += size;
  }
}

Result<IndexAdvice> IndexAdvisor::SuggestWithIlp() {
  DegradationReport report;
  PARINDA_RETURN_IF_ERROR(PrepareBestEffort(&report));
  PARINDA_FAILPOINT("advisor.solve");
  // Degradation ladder, rung 3 (no budget left for the ILP at all): greedy
  // selection over whatever part of the benefit matrix was filled.
  if (!prep_complete_ || options_.deadline.Expired()) {
    report.AddFallback("ilp:greedy-fallback");
    std::vector<const IndexInfo*> selected;
    std::vector<double> selected_benefit;
    SelectStaticGreedy(&selected, &selected_benefit);
    return FinishAdviceFromMatrix(selected, selected_benefit,
                                  /*proved_optimal=*/false, std::move(report));
  }
  const int nq = workload_.size();
  const int nc = static_cast<int>(candidates_.size());

  // Variables: x_j (build index j) for j in [0, nc); then y_{q,j} for every
  // positive-benefit pair.
  LinearProgram lp;
  lp.objective.assign(static_cast<size_t>(nc), 0.0);
  // Building an index costs maintenance whether or not a query uses it.
  for (int j = 0; j < nc; ++j) lp.objective[j] = -MaintenanceCost(j);
  struct PairVar {
    int q;
    int j;
    int var;
  };
  std::vector<PairVar> pairs;
  for (int q = 0; q < nq; ++q) {
    for (int j = 0; j < nc; ++j) {
      if (benefit_[q][j] > kBenefitEps) {
        const int var = static_cast<int>(lp.objective.size());
        lp.objective.push_back(benefit_[q][j]);
        pairs.push_back({q, j, var});
      }
    }
  }
  // y_{q,j} <= x_j.
  for (const PairVar& pair : pairs) {
    lp.AddConstraint({{{pair.var, 1.0}, {pair.j, -1.0}}, 0.0});
  }
  // Accuracy constraints: one access path per table per query (paper §3.4).
  std::map<std::pair<int, TableId>, std::vector<int>> per_table;
  for (const PairVar& pair : pairs) {
    per_table[{pair.q, candidates_[pair.j]->table_id}].push_back(pair.var);
  }
  for (const auto& [key, vars] : per_table) {
    if (vars.size() < 2) continue;
    LinearProgram::Constraint row;
    for (int var : vars) row.terms.push_back({var, 1.0});
    row.rhs = 1.0;
    lp.AddConstraint(std::move(row));
  }
  // Storage budget over the x_j.
  if (std::isfinite(options_.storage_budget_bytes)) {
    LinearProgram::Constraint row;
    for (int j = 0; j < nc; ++j) {
      row.terms.push_back({j, candidates_[j]->SizeBytes()});
    }
    row.rhs = options_.storage_budget_bytes;
    lp.AddConstraint(std::move(row));
  }

  BinaryMip mip;
  mip.lp = std::move(lp);
  MipOptions mip_options = options_.mip;
  mip_options.deadline = options_.deadline;
  MipSolution solution;
  {
    PhaseTimer timer(&report, "solve", "advisor.solve");
    PARINDA_ASSIGN_OR_RETURN(solution, SolveBinaryMip(mip, mip_options));
  }
  if (solution.degraded) {
    if (!solution.feasible) {
      // Rung 3 again: the budget expired before any incumbent was found.
      report.AddFallback("ilp:greedy-fallback");
      std::vector<const IndexInfo*> selected;
      std::vector<double> selected_benefit;
      SelectStaticGreedy(&selected, &selected_benefit);
      return FinishAdviceFromMatrix(selected, selected_benefit,
                                    /*proved_optimal=*/false,
                                    std::move(report));
    }
    // Rung 2: the truncated search still holds a feasible incumbent.
    report.AddFallback("ilp:incumbent");
  } else if (!solution.feasible) {
    return Status::SolverError("index-selection ILP is infeasible");
  }
  std::vector<const IndexInfo*> selected;
  std::vector<double> model_benefit;
  for (int j = 0; j < nc; ++j) {
    if (solution.values[j] == 1) {
      selected.push_back(candidates_[j]);
      double b = 0.0;
      for (const PairVar& pair : pairs) {
        if (pair.j == j && solution.values[pair.var] == 1) {
          b += benefit_[pair.q][pair.j];
        }
      }
      model_benefit.push_back(b);
    }
  }
  // Drop zero-contribution indexes the solver may have set freely.
  std::vector<const IndexInfo*> pruned;
  std::vector<double> pruned_benefit;
  for (size_t s = 0; s < selected.size(); ++s) {
    if (model_benefit[s] > kBenefitEps) {
      pruned.push_back(selected[s]);
      pruned_benefit.push_back(model_benefit[s]);
    }
  }
  return FinishAdvice(pruned, pruned_benefit, solution.proved_optimal,
                      std::move(report));
}

Result<IndexAdvice> IndexAdvisor::SuggestWithStaticGreedy() {
  DegradationReport report;
  PARINDA_RETURN_IF_ERROR(PrepareBestEffort(&report));
  std::vector<const IndexInfo*> selected;
  std::vector<double> selected_benefit;
  SelectStaticGreedy(&selected, &selected_benefit);
  return FinishAdvice(selected, selected_benefit, /*proved_optimal=*/false,
                      std::move(report));
}

Result<IndexAdvice> IndexAdvisor::SuggestWithGreedy() {
  DegradationReport report;
  PARINDA_RETURN_IF_ERROR(PrepareBestEffort(&report));
  // Without a complete matrix the interaction-aware search has no per-query
  // models to consult; degrade to the static ranking.
  if (!prep_complete_ || options_.deadline.Expired()) {
    report.AddFallback("greedy:static-fallback");
    std::vector<const IndexInfo*> selected;
    std::vector<double> selected_benefit;
    SelectStaticGreedy(&selected, &selected_benefit);
    return FinishAdviceFromMatrix(selected, selected_benefit,
                                  /*proved_optimal=*/false, std::move(report));
  }
  const int nq = workload_.size();
  const int nc = static_cast<int>(candidates_.size());
  std::vector<const IndexInfo*> selected;
  std::vector<double> selected_benefit;
  std::vector<bool> in_set(static_cast<size_t>(nc), false);
  std::vector<double> current_cost = base_cost_;
  double used_bytes = 0.0;
  const bool budgeted = std::isfinite(options_.storage_budget_bytes);

  bool truncated = false;
  while (!truncated) {
    // Anytime cut: keep the selection built so far.
    if (options_.deadline.Expired()) {
      report.AddFallback("greedy:truncated");
      break;
    }
    int best = -1;
    double best_score = 0.0;
    double best_gain = 0.0;
    std::vector<double> best_costs;
    for (int j = 0; j < nc && !truncated; ++j) {
      if (in_set[j]) continue;
      const double size = candidates_[j]->SizeBytes();
      if (budgeted && used_bytes + size > options_.storage_budget_bytes) {
        continue;
      }
      std::vector<const IndexInfo*> trial = selected;
      trial.push_back(candidates_[j]);
      double gain = -MaintenanceCost(j);
      std::vector<double> costs(static_cast<size_t>(nq), 0.0);
      for (int q = 0; q < nq; ++q) {
        auto cost = QueryCost(q, trial);
        if (!cost.ok()) {
          if (!IsBudgetError(cost.status())) return cost.status();
          report.AddFallback("greedy:truncated");
          truncated = true;
          break;
        }
        costs[q] = *cost;
        gain += (current_cost[q] - *cost) * workload_.queries[q].weight;
      }
      if (truncated) break;
      if (gain <= kBenefitEps) continue;
      const double score = budgeted ? gain / std::max(1.0, size) : gain;
      if (score > best_score) {
        best = j;
        best_score = score;
        best_gain = gain;
        best_costs = std::move(costs);
      }
    }
    if (truncated || best < 0) break;
    in_set[best] = true;
    selected.push_back(candidates_[best]);
    selected_benefit.push_back(best_gain);
    used_bytes += candidates_[best]->SizeBytes();
    current_cost = std::move(best_costs);
  }
  return FinishAdvice(selected, selected_benefit, /*proved_optimal=*/false,
                      std::move(report));
}

}  // namespace parinda
