#include "advisor/benefit_matrix.h"

#include <algorithm>

namespace parinda {

void BenefitMatrix::Reset(int num_queries, int num_candidates, bool sparse) {
  sparse_ = sparse;
  num_candidates_ = num_candidates;
  rows_.clear();
  dense_.clear();
  if (sparse_) {
    rows_.assign(static_cast<size_t>(num_queries), {});
  } else {
    dense_.assign(static_cast<size_t>(num_queries),
                  std::vector<double>(static_cast<size_t>(num_candidates),
                                      0.0));
  }
}

void BenefitMatrix::Set(int q, int j, double gain) {
  if (sparse_) {
    rows_[static_cast<size_t>(q)].push_back({j, gain});
  } else {
    dense_[static_cast<size_t>(q)][static_cast<size_t>(j)] = gain;
  }
}

double BenefitMatrix::Get(int q, int j) const {
  if (!sparse_) return dense_[static_cast<size_t>(q)][static_cast<size_t>(j)];
  const std::vector<Entry>& row = rows_[static_cast<size_t>(q)];
  auto it = std::lower_bound(
      row.begin(), row.end(), j,
      [](const Entry& e, int cand) { return e.cand < cand; });
  return it != row.end() && it->cand == j ? it->gain : 0.0;
}

int64_t BenefitMatrix::NonZeros() const {
  int64_t nnz = 0;
  if (sparse_) {
    for (const auto& row : rows_) nnz += static_cast<int64_t>(row.size());
    return nnz;
  }
  for (const auto& row : dense_) {
    for (const double v : row) nnz += v > 0.0 ? 1 : 0;
  }
  return nnz;
}

size_t BenefitMatrix::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& row : rows_) bytes += row.capacity() * sizeof(Entry);
  for (const auto& row : dense_) bytes += row.capacity() * sizeof(double);
  return bytes;
}

}  // namespace parinda
