#include "rewriter/rewriter.h"

#include <algorithm>
#include <map>
#include <set>

#include "parser/binder.h"

namespace parinda {

namespace {

/// Per-range rewrite decision: the fragments covering the query's columns
/// and, for each used parent column, which fragment serves it.
struct RangePlan {
  bool rewrite = false;
  std::vector<const TableInfo*> fragments_used;
  /// parent column ordinal -> index into fragments_used.
  std::map<ColumnId, int> column_home;
};

/// Greedy set cover of `needed` parent columns by the parent's fragments.
RangePlan PlanRange(const std::set<ColumnId>& needed,
                    const std::vector<const TableInfo*>& fragments) {
  RangePlan plan;
  std::set<ColumnId> uncovered = needed;
  while (!uncovered.empty()) {
    const TableInfo* best = nullptr;
    int best_cover = 0;
    for (const TableInfo* frag : fragments) {
      // Already chosen?
      if (std::find(plan.fragments_used.begin(), plan.fragments_used.end(),
                    frag) != plan.fragments_used.end()) {
        continue;
      }
      int cover = 0;
      for (ColumnId col : frag->parent_columns) {
        if (uncovered.count(col) > 0) ++cover;
      }
      if (cover > best_cover ||
          (cover == best_cover && cover > 0 && best != nullptr &&
           frag->pages < best->pages)) {
        best = frag;
        best_cover = cover;
      }
    }
    if (best == nullptr || best_cover == 0) {
      // Not coverable by fragments: keep the base table.
      plan.rewrite = false;
      return plan;
    }
    const int frag_index = static_cast<int>(plan.fragments_used.size());
    plan.fragments_used.push_back(best);
    for (ColumnId col : best->parent_columns) {
      if (uncovered.erase(col) > 0) {
        plan.column_home[col] = frag_index;
      }
    }
  }
  plan.rewrite = !plan.fragments_used.empty();
  return plan;
}

/// Rewrites every bound column reference of `expr` in place: refs to range r
/// are re-qualified onto the alias of the fragment (or base table) serving
/// that column. `alias_of` maps (range, parent column) to the new qualifier;
/// fragment column names equal parent column names, so only the qualifier
/// changes.
void RequalifyExpr(
    Expr* expr,
    const std::vector<std::map<ColumnId, std::string>>& alias_of) {
  if (expr->kind == ExprKind::kColumnRef && expr->bound_range >= 0) {
    const auto& mapping = alias_of[expr->bound_range];
    auto it = mapping.find(expr->bound_column);
    if (it != mapping.end()) {
      expr->table_name = it->second;
    }
    expr->bound_range = -1;
    expr->bound_column = kInvalidColumnId;
  }
  for (auto& child : expr->children) RequalifyExpr(child.get(), alias_of);
}

}  // namespace

Result<RewriteResult> RewriteForPartitions(
    const CatalogReader& catalog, const SelectStatement& bound_stmt,
    const std::vector<const TableInfo*>& fragments) {
  const int num_rels = static_cast<int>(bound_stmt.from.size());

  // Group fragments by parent table.
  std::map<TableId, std::vector<const TableInfo*>> by_parent;
  for (const TableInfo* frag : fragments) {
    if (frag->parent_table != kInvalidTableId) {
      by_parent[frag->parent_table].push_back(frag);
    }
  }

  // Columns used per range.
  std::vector<std::set<ColumnId>> used(static_cast<size_t>(num_rels));
  auto collect = [&](const Expr* expr) {
    if (expr == nullptr) return;
    std::vector<std::pair<int, ColumnId>> refs;
    expr->CollectColumnRefs(&refs);
    for (const auto& [range, col] : refs) {
      if (range >= 0) used[range].insert(col);
    }
  };
  bool has_star = false;
  for (const SelectItem& item : bound_stmt.select_list) {
    if (item.star) {
      has_star = true;
    } else {
      collect(item.expr.get());
    }
  }
  collect(bound_stmt.where.get());
  for (const auto& g : bound_stmt.group_by) collect(g.get());
  for (const OrderItem& item : bound_stmt.order_by) collect(item.expr.get());

  // Decide per range.
  std::vector<RangePlan> plans(static_cast<size_t>(num_rels));
  bool any = false;
  for (int r = 0; r < num_rels; ++r) {
    const TableInfo* table = catalog.GetTable(bound_stmt.from[r].bound_table);
    if (table == nullptr) {
      return Status::BindError("statement not bound to this catalog");
    }
    auto it = by_parent.find(table->id);
    if (it == by_parent.end()) continue;
    std::set<ColumnId> needed = used[r];
    if (has_star) {
      for (ColumnId c = 0; c < table->schema.num_columns(); ++c) {
        needed.insert(c);
      }
    }
    if (needed.empty()) {
      // Query counts rows only; the narrowest fragment serves it.
      needed.insert(table->primary_key.empty() ? 0 : table->primary_key[0]);
    }
    plans[r] = PlanRange(needed, it->second);
    // A multi-fragment rewrite reconstructs rows by joining on the parent
    // primary key; without one the fragments cannot be recombined.
    if (plans[r].rewrite && plans[r].fragments_used.size() > 1 &&
        table->primary_key.empty()) {
      plans[r] = RangePlan{};
    }
    any = any || plans[r].rewrite;
  }

  RewriteResult result;
  result.stmt = bound_stmt.Clone();
  if (!any) {
    result.changed = false;
    PARINDA_RETURN_IF_ERROR(BindStatement(catalog, &result.stmt));
    return result;
  }

  // Build the new FROM list and the (range, column) -> alias map.
  std::vector<std::map<ColumnId, std::string>> alias_of(
      static_cast<size_t>(num_rels));
  std::vector<TableRef> new_from;
  std::vector<std::unique_ptr<Expr>> pk_join_conds;
  for (int r = 0; r < num_rels; ++r) {
    const TableRef& original = bound_stmt.from[r];
    const TableInfo* table = catalog.GetTable(original.bound_table);
    if (!plans[r].rewrite) {
      TableRef keep = original;
      keep.bound_table = kInvalidTableId;
      // Qualify this range's columns with its effective name so added
      // fragment tables cannot make them ambiguous.
      for (ColumnId c = 0; c < table->schema.num_columns(); ++c) {
        alias_of[r][c] = keep.EffectiveName();
      }
      new_from.push_back(std::move(keep));
      continue;
    }
    const RangePlan& plan = plans[r];
    std::vector<std::string> frag_aliases;
    for (size_t k = 0; k < plan.fragments_used.size(); ++k) {
      TableRef ref;
      ref.table_name = plan.fragments_used[k]->name;
      ref.alias = original.EffectiveName() + "_p" + std::to_string(k);
      frag_aliases.push_back(ref.alias);
      new_from.push_back(std::move(ref));
    }
    for (const auto& [col, frag_index] : plan.column_home) {
      alias_of[r][col] = frag_aliases[static_cast<size_t>(frag_index)];
    }
    // Join the fragments on the parent primary key.
    for (size_t k = 1; k < plan.fragments_used.size(); ++k) {
      for (ColumnId pk : table->primary_key) {
        const std::string& pk_name = table->schema.column(pk).name;
        pk_join_conds.push_back(Expr::MakeBinary(
            ExprKind::kComparison, BinaryOp::kEq,
            Expr::MakeColumnRef(frag_aliases[0], pk_name),
            Expr::MakeColumnRef(frag_aliases[k], pk_name)));
      }
    }
  }

  // Re-qualify all column references, then install the new FROM list.
  for (SelectItem& item : result.stmt.select_list) {
    if (!item.star) RequalifyExpr(item.expr.get(), alias_of);
  }
  if (result.stmt.where != nullptr) {
    RequalifyExpr(result.stmt.where.get(), alias_of);
  }
  for (auto& g : result.stmt.group_by) RequalifyExpr(g.get(), alias_of);
  for (OrderItem& item : result.stmt.order_by) {
    RequalifyExpr(item.expr.get(), alias_of);
  }
  result.stmt.from = std::move(new_from);
  for (auto& cond : pk_join_conds) {
    if (result.stmt.where == nullptr) {
      result.stmt.where = std::move(cond);
    } else {
      result.stmt.where =
          Expr::MakeAnd(std::move(result.stmt.where), std::move(cond));
    }
  }
  PARINDA_RETURN_IF_ERROR(BindStatement(catalog, &result.stmt));
  result.changed = true;
  return result;
}

}  // namespace parinda
