#ifndef PARINDA_REWRITER_REWRITER_H_
#define PARINDA_REWRITER_REWRITER_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"

namespace parinda {

/// Result of rewriting one query onto vertical partitions.
struct RewriteResult {
  /// The rewritten statement, bound against the catalog passed in.
  SelectStatement stmt;
  /// False when no referenced table had a usable fragment set (stmt is then
  /// a bound clone of the input).
  bool changed = false;
};

/// PARINDA's automatic query rewriter (paper §3.3: "an automatic query
/// rewriter is used to rewrite the original workload for the composite
/// fragments").
///
/// For every FROM entry whose table has fragments in `fragments`, the
/// columns the query uses are covered by a minimal set of fragments (greedy
/// set cover, smallest-pages tie-break). A single covering fragment simply
/// replaces the table; multiple fragments are joined on the parent's
/// primary key (which every fragment carries — that is why what-if tables
/// include it). Column references are re-qualified onto the fragment that
/// holds them; the result is re-bound against `catalog`, which must resolve
/// the fragment tables (a WhatIfTableCatalog overlay or the real catalog
/// after materialization).
[[nodiscard]] Result<RewriteResult> RewriteForPartitions(
    const CatalogReader& catalog, const SelectStatement& bound_stmt,
    const std::vector<const TableInfo*>& fragments);

}  // namespace parinda

#endif  // PARINDA_REWRITER_REWRITER_H_
