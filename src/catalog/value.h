#ifndef PARINDA_CATALOG_VALUE_H_
#define PARINDA_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "catalog/types.h"

namespace parinda {

/// A runtime value of one of the catalog types, plus SQL NULL.
///
/// Values are small, copyable, and totally ordered within a type (NULLs sort
/// last, as in PostgreSQL's default NULLS LAST).
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Bool(bool v) { return Value(Repr(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// Type of a non-null value. Precondition: !is_null().
  ValueType type() const;

  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// Numeric view of the value: int64/double as-is, bool as 0/1.
  /// Precondition: !is_null() and type() != kString.
  double ToNumeric() const;

  /// Three-way comparison. NULLs compare equal to each other and greater than
  /// any non-null (NULLS LAST). Int64 and Double compare numerically across
  /// types; otherwise types must match.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// On-disk byte size of this value (varlena header included for strings).
  int StorageSize() const;

  /// SQL-literal rendering ("42", "3.14", "'sky'", "true", "NULL").
  std::string ToString() const;

  /// Hash usable by hash joins / grouping. Equal values hash equal, including
  /// the int64/double numeric cross-type equality.
  size_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Repr r) : data_(std::move(r)) {}

  Repr data_;
};

}  // namespace parinda

#endif  // PARINDA_CATALOG_VALUE_H_
