#include "catalog/schema.h"

#include "common/strings.h"

namespace parinda {

ColumnId TableSchema::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, column_name)) {
      return static_cast<ColumnId>(i);
    }
  }
  return kInvalidColumnId;
}

}  // namespace parinda
