#ifndef PARINDA_CATALOG_SCHEMA_H_
#define PARINDA_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/types.h"

namespace parinda {

/// Definition of one table column.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  /// Declared average width hint in bytes for variable-length types; ignored
  /// for fixed-size types. ANALYZE replaces it with the measured width.
  int declared_avg_width = 16;
  bool nullable = true;
};

/// Ordered list of columns making up a table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<ColumnDef> columns)
      : name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(ColumnId id) const { return columns_[id]; }

  /// Case-insensitive lookup; returns kInvalidColumnId when absent.
  ColumnId FindColumn(const std::string& column_name) const;

  /// Appends a column and returns its ordinal.
  ColumnId AddColumn(ColumnDef def) {
    columns_.push_back(std::move(def));
    return static_cast<ColumnId>(columns_.size()) - 1;
  }

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace parinda

#endif  // PARINDA_CATALOG_SCHEMA_H_
