#include "catalog/value.h"

#include <cmath>
#include <functional>

#include "common/check.h"
#include "common/logging.h"
#include "common/strings.h"

namespace parinda {

ValueType Value::type() const {
  PARINDA_DCHECK(!is_null());
  if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt64;
  if (std::holds_alternative<double>(data_)) return ValueType::kDouble;
  if (std::holds_alternative<std::string>(data_)) return ValueType::kString;
  return ValueType::kBool;
}

double Value::ToNumeric() const {
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  if (std::holds_alternative<double>(data_)) return std::get<double>(data_);
  if (std::holds_alternative<bool>(data_)) {
    return std::get<bool>(data_) ? 1.0 : 0.0;
  }
  PARINDA_LOG(Fatal) << "ToNumeric on non-numeric value";
  return 0.0;
}

int Value::Compare(const Value& other) const {
  const bool ln = is_null();
  const bool rn = other.is_null();
  if (ln && rn) return 0;
  if (ln) return 1;   // NULLS LAST
  if (rn) return -1;
  const ValueType lt = type();
  const ValueType rt = other.type();
  if (lt == ValueType::kString && rt == ValueType::kString) {
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }
  if (lt == ValueType::kBool && rt == ValueType::kBool) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  // Numeric cross-type comparison (int64 vs double).
  PARINDA_CHECK(TypeIsNumeric(lt) || lt == ValueType::kBool);
  PARINDA_CHECK(TypeIsNumeric(rt) || rt == ValueType::kBool);
  const double l = ToNumeric();
  const double r = other.ToNumeric();
  if (l < r) return -1;
  if (l > r) return 1;
  return 0;
}

int Value::StorageSize() const {
  if (is_null()) return 0;
  switch (type()) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      // 4-byte varlena header + payload, as in PostgreSQL 8.3.
      return 4 + static_cast<int>(AsString().size());
    case ValueType::kBool:
      return 1;
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return StringPrintf("%g", AsDouble());
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
  }
  return "?";
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9u;
  switch (type()) {
    case ValueType::kInt64:
    case ValueType::kDouble:
    case ValueType::kBool: {
      // Hash on the numeric view so 1::int64 == 1.0::double hash equal.
      double d = ToNumeric();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

}  // namespace parinda
