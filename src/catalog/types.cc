#include "catalog/types.h"

namespace parinda {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "bigint";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "varchar";
    case ValueType::kBool:
      return "bool";
  }
  return "?";
}

int TypeAlignment(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return 4;
    case ValueType::kBool:
      return 1;
  }
  return 1;
}

int TypeFixedSize(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return -1;
    case ValueType::kBool:
      return 1;
  }
  return -1;
}

}  // namespace parinda
