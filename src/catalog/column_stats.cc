#include "catalog/column_stats.h"

#include "common/strings.h"

namespace parinda {

std::string ColumnStats::ToString() const {
  return StringPrintf(
      "null_frac=%.3f avg_width=%.1f n_distinct=%.1f mcvs=%zu hist=%zu "
      "corr=%.3f",
      null_frac, avg_width, n_distinct, mcv_values.size(),
      histogram_bounds.size(), correlation);
}

}  // namespace parinda
