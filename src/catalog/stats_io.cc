#include "catalog/stats_io.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "common/strings.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("stats.load");

namespace {

/// Round-trip-safe literal rendering (doubles with full precision, strings
/// single-quoted with '' escaping).
std::string FormatValue(const Value& v) {
  if (v.is_null()) return "NULL";
  switch (v.type()) {
    case ValueType::kInt64:
      return std::to_string(v.AsInt64());
    case ValueType::kDouble:
      return StringPrintf("%.17g", v.AsDouble());
    case ValueType::kBool:
      return v.AsBool() ? "true" : "false";
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');
      }
      out.push_back('\'');
      return out;
    }
  }
  return "NULL";
}

/// Strict numeric parsers: the whole token must be consumed, so a corrupted
/// byte ("12x4", "1.5e", truncated "-") is a ParseError instead of a silent
/// partial value.
Result<double> ParseDouble(const std::string& token) {
  if (token.empty()) return Status::ParseError("empty numeric field");
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    return Status::ParseError("malformed number '" + token + "'");
  }
  return v;
}

Result<int64_t> ParseInt(const std::string& token) {
  if (token.empty()) return Status::ParseError("empty integer field");
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    return Status::ParseError("malformed integer '" + token + "'");
  }
  return static_cast<int64_t>(v);
}

/// Splits one line into tokens; quoted strings stay single tokens (quotes
/// kept so the value parser can recognize them). An unterminated quote means
/// the line was cut mid-literal — corruption, not a value.
Result<std::vector<std::string>> TokenizeLine(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '\'') {
      std::string token = "'";
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '\'') {
          if (i + 1 < line.size() && line[i + 1] == '\'') {
            token += "''";
            i += 2;
            continue;
          }
          closed = true;
          break;
        }
        token.push_back(line[i++]);
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      token.push_back('\'');
      ++i;  // closing quote
      out.push_back(std::move(token));
      continue;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.push_back(line.substr(start, i - start));
  }
  return out;
}

Result<Value> ParseValue(const std::string& token, ValueType type) {
  if (token == "NULL") return Value::Null();
  if (token.size() >= 2 && token.front() == '\'') {
    std::string payload;
    for (size_t i = 1; i + 1 < token.size(); ++i) {
      payload.push_back(token[i]);
      if (token[i] == '\'' && i + 2 < token.size() && token[i + 1] == '\'') {
        ++i;  // collapse the '' escape
      }
    }
    return Value::String(std::move(payload));
  }
  switch (type) {
    case ValueType::kInt64: {
      PARINDA_ASSIGN_OR_RETURN(int64_t v, ParseInt(token));
      return Value::Int64(v);
    }
    case ValueType::kDouble: {
      PARINDA_ASSIGN_OR_RETURN(double v, ParseDouble(token));
      return Value::Double(v);
    }
    case ValueType::kBool:
      if (token != "true" && token != "false") {
        return Status::ParseError("malformed bool '" + token + "'");
      }
      return Value::Bool(token == "true");
    case ValueType::kString:
      return Status::ParseError("expected quoted string literal, got '" +
                                token + "'");
  }
  return Status::ParseError("unknown value type");
}

Result<ValueType> ParseType(const std::string& name) {
  if (name == "bigint") return ValueType::kInt64;
  if (name == "double") return ValueType::kDouble;
  if (name == "varchar") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  return Status::ParseError("unknown type '" + name + "'");
}

Result<std::vector<ColumnId>> ParseColumnList(const std::string& csv) {
  std::vector<ColumnId> out;
  if (csv.empty() || csv == "-") return out;
  for (const std::string& part : Split(csv, ',')) {
    PARINDA_ASSIGN_OR_RETURN(int64_t col, ParseInt(part));
    out.push_back(static_cast<ColumnId>(col));
  }
  return out;
}

}  // namespace

std::string DumpCatalogStats(const CatalogReader& catalog) {
  std::string out;
  out += "# PARINDA catalog statistics dump v1\n";
  int64_t table_count = 0;
  int64_t index_count = 0;
  for (const TableInfo* table : catalog.AllTables()) {
    ++table_count;
    std::vector<std::string> pk;
    for (ColumnId col : table->primary_key) pk.push_back(std::to_string(col));
    out += StringPrintf("table %s rows %.17g pages %.17g pk %s\n",
                        table->name.c_str(), table->row_count, table->pages,
                        pk.empty() ? "-" : Join(pk, ",").c_str());
    for (ColumnId c = 0; c < table->schema.num_columns(); ++c) {
      const ColumnDef& def = table->schema.column(c);
      const ColumnStats* stats = table->StatsFor(c);
      ColumnStats empty;
      const ColumnStats& st = stats != nullptr ? *stats : empty;
      out += StringPrintf(
          "column %s %s null_frac %.17g avg_width %.17g n_distinct %.17g "
          "correlation %.17g",
          def.name.c_str(), ValueTypeName(def.type), st.null_frac,
          st.avg_width, st.n_distinct, st.correlation);
      if (!st.min_value.is_null()) {
        out += " min " + FormatValue(st.min_value);
      }
      if (!st.max_value.is_null()) {
        out += " max " + FormatValue(st.max_value);
      }
      out += "\n";
      for (size_t i = 0; i < st.mcv_values.size(); ++i) {
        out += StringPrintf("mcv %s %.17g\n",
                            FormatValue(st.mcv_values[i]).c_str(),
                            st.mcv_freqs[i]);
      }
      for (const Value& bound : st.histogram_bounds) {
        out += "hist " + FormatValue(bound) + "\n";
      }
    }
  }
  for (const TableInfo* table : catalog.AllTables()) {
    for (const IndexInfo* index : catalog.TableIndexes(table->id)) {
      ++index_count;
      std::vector<std::string> cols;
      for (ColumnId col : index->columns) cols.push_back(std::to_string(col));
      out += StringPrintf(
          "index %s on %s (%s)%s leaf_pages %.17g height %d entries %.17g\n",
          index->name.c_str(), table->name.c_str(), Join(cols, ",").c_str(),
          index->unique ? " unique" : "", index->leaf_pages,
          index->tree_height, index->entries);
    }
  }
  // Footer so a truncated copy (partial download, torn write) is detected on
  // load instead of silently yielding a smaller catalog.
  out += StringPrintf("end tables %lld indexes %lld\n",
                      static_cast<long long>(table_count),
                      static_cast<long long>(index_count));
  return out;
}

Result<std::unique_ptr<Catalog>> LoadCatalogStats(std::string_view text,
                                                  const Deadline& deadline) {
  PARINDA_FAILPOINT("stats.load");
  auto catalog = std::make_unique<Catalog>();
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  int64_t tables_seen = 0;
  int64_t indexes_seen = 0;
  bool saw_end = false;

  // Accumulated state for the current table, flushed on the next stanza.
  struct PendingTable {
    TableSchema schema;
    std::vector<ColumnId> pk;
    double rows = 0.0;
    double pages = 0.0;
    std::vector<ColumnStats> stats;
  };
  std::unique_ptr<PendingTable> pending;

  auto flush = [&]() -> Status {
    if (pending == nullptr) return Status::OK();
    PARINDA_ASSIGN_OR_RETURN(TableId id,
                             catalog->CreateTable(pending->schema, pending->pk));
    PARINDA_RETURN_IF_ERROR(catalog->UpdateTableStats(
        id, pending->rows, pending->pages, std::move(pending->stats)));
    pending.reset();
    ++tables_seen;
    return Status::OK();
  };

  auto err = [&lineno](const std::string& message) {
    return Status::ParseError(StringPrintf("line %d: %s", lineno,
                                           message.c_str()));
  };

  while (std::getline(in, line)) {
    ++lineno;
    // An infinite deadline (the default) never reads the clock, so
    // unbudgeted loads pay nothing for this check.
    PARINDA_RETURN_IF_ERROR(deadline.CheckOk("stats.load"));
    if (line.empty() || line[0] == '#') continue;
    auto tokenized = TokenizeLine(line);
    if (!tokenized.ok()) return err(tokenized.status().message());
    const std::vector<std::string>& tokens = *tokenized;
    if (tokens.empty()) continue;
    if (saw_end) return err("content after end marker");
    const std::string& kind = tokens[0];

    if (kind == "table") {
      PARINDA_RETURN_IF_ERROR(flush());
      if (tokens.size() < 8 || tokens[2] != "rows" || tokens[4] != "pages" ||
          tokens[6] != "pk") {
        return err("malformed table stanza");
      }
      pending = std::make_unique<PendingTable>();
      pending->schema = TableSchema(tokens[1], {});
      {
        auto rows = ParseDouble(tokens[3]);
        if (!rows.ok()) return err(rows.status().message());
        pending->rows = *rows;
        auto pages = ParseDouble(tokens[5]);
        if (!pages.ok()) return err(pages.status().message());
        pending->pages = *pages;
      }
      PARINDA_ASSIGN_OR_RETURN(pending->pk, ParseColumnList(tokens[7]));
      continue;
    }
    if (kind == "column") {
      if (pending == nullptr) return err("column before table");
      if (tokens.size() < 11) return err("malformed column stanza");
      PARINDA_ASSIGN_OR_RETURN(ValueType type, ParseType(tokens[2]));
      ColumnStats stats;
      {
        auto null_frac = ParseDouble(tokens[4]);
        auto avg_width = ParseDouble(tokens[6]);
        auto n_distinct = ParseDouble(tokens[8]);
        auto correlation = ParseDouble(tokens[10]);
        for (const auto* field :
             {&null_frac, &avg_width, &n_distinct, &correlation}) {
          if (!field->ok()) return err(field->status().message());
        }
        stats.null_frac = *null_frac;
        stats.avg_width = *avg_width;
        stats.n_distinct = *n_distinct;
        stats.correlation = *correlation;
      }
      for (size_t i = 11; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "min") {
          PARINDA_ASSIGN_OR_RETURN(stats.min_value,
                                   ParseValue(tokens[i + 1], type));
        } else if (tokens[i] == "max") {
          PARINDA_ASSIGN_OR_RETURN(stats.max_value,
                                   ParseValue(tokens[i + 1], type));
        } else {
          return err("unknown column attribute '" + tokens[i] + "'");
        }
      }
      ColumnDef def;
      def.name = tokens[1];
      def.type = type;
      def.declared_avg_width = static_cast<int>(stats.avg_width);
      pending->schema.AddColumn(def);
      pending->stats.push_back(std::move(stats));
      continue;
    }
    if (kind == "mcv") {
      if (pending == nullptr || pending->stats.empty()) {
        return err("mcv before column");
      }
      if (tokens.size() != 3) return err("malformed mcv line");
      ColumnStats& stats = pending->stats.back();
      const ValueType type =
          pending->schema.column(pending->schema.num_columns() - 1).type;
      PARINDA_ASSIGN_OR_RETURN(Value v, ParseValue(tokens[1], type));
      auto freq = ParseDouble(tokens[2]);
      if (!freq.ok()) return err(freq.status().message());
      stats.mcv_values.push_back(std::move(v));
      stats.mcv_freqs.push_back(*freq);
      continue;
    }
    if (kind == "hist") {
      if (pending == nullptr || pending->stats.empty()) {
        return err("hist before column");
      }
      if (tokens.size() != 2) return err("malformed hist line");
      ColumnStats& stats = pending->stats.back();
      const ValueType type =
          pending->schema.column(pending->schema.num_columns() - 1).type;
      PARINDA_ASSIGN_OR_RETURN(Value v, ParseValue(tokens[1], type));
      stats.histogram_bounds.push_back(std::move(v));
      continue;
    }
    if (kind == "index") {
      PARINDA_RETURN_IF_ERROR(flush());
      // index <name> on <table> (<cols>) [unique] leaf_pages <f> height <n>
      // entries <f>
      if (tokens.size() < 10 || tokens[2] != "on") {
        return err("malformed index stanza");
      }
      const TableInfo* table = catalog->FindTable(tokens[3]);
      if (table == nullptr) return err("index on unknown table " + tokens[3]);
      std::string cols = tokens[4];
      if (cols.size() < 2 || cols.front() != '(' || cols.back() != ')') {
        return err("malformed index column list");
      }
      PARINDA_ASSIGN_OR_RETURN(
          std::vector<ColumnId> columns,
          ParseColumnList(cols.substr(1, cols.size() - 2)));
      size_t i = 5;
      bool unique = false;
      if (tokens[i] == "unique") {
        unique = true;
        ++i;
      }
      if (i + 5 >= tokens.size() || tokens[i] != "leaf_pages" ||
          tokens[i + 2] != "height" || tokens[i + 4] != "entries") {
        return err("malformed index attributes");
      }
      auto leaf_pages = ParseDouble(tokens[i + 1]);
      auto height = ParseInt(tokens[i + 3]);
      auto entries = ParseDouble(tokens[i + 5]);
      if (!leaf_pages.ok()) return err(leaf_pages.status().message());
      if (!height.ok()) return err(height.status().message());
      if (!entries.ok()) return err(entries.status().message());
      PARINDA_ASSIGN_OR_RETURN(
          IndexId id, catalog->CreateIndex(tokens[1], table->id, columns,
                                           unique));
      PARINDA_RETURN_IF_ERROR(catalog->UpdateIndexStats(
          id, *leaf_pages, static_cast<int>(*height), *entries));
      ++indexes_seen;
      continue;
    }
    if (kind == "end") {
      PARINDA_RETURN_IF_ERROR(flush());
      if (tokens.size() != 5 || tokens[1] != "tables" ||
          tokens[3] != "indexes") {
        return err("malformed end marker");
      }
      auto tables = ParseInt(tokens[2]);
      auto indexes = ParseInt(tokens[4]);
      if (!tables.ok()) return err(tables.status().message());
      if (!indexes.ok()) return err(indexes.status().message());
      if (*tables != tables_seen || *indexes != indexes_seen) {
        return err(StringPrintf(
            "truncated dump: end marker promises %lld tables / %lld indexes, "
            "found %lld / %lld",
            static_cast<long long>(*tables), static_cast<long long>(*indexes),
            static_cast<long long>(tables_seen),
            static_cast<long long>(indexes_seen)));
      }
      saw_end = true;
      continue;
    }
    return err("unknown stanza '" + kind + "'");
  }
  PARINDA_RETURN_IF_ERROR(flush());
  // A dump that carries content must carry the footer: a copy cut off
  // mid-file would otherwise load as a plausible smaller catalog. Stanza-free
  // input (empty file, comments only) stays loadable as an empty catalog.
  if (!saw_end && (tables_seen > 0 || indexes_seen > 0)) {
    return Status::ParseError(
        "truncated dump: missing 'end tables <n> indexes <n>' footer");
  }
  return catalog;
}

}  // namespace parinda
