#include "catalog/stats_io.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace parinda {

namespace {

/// Round-trip-safe literal rendering (doubles with full precision, strings
/// single-quoted with '' escaping).
std::string FormatValue(const Value& v) {
  if (v.is_null()) return "NULL";
  switch (v.type()) {
    case ValueType::kInt64:
      return std::to_string(v.AsInt64());
    case ValueType::kDouble:
      return StringPrintf("%.17g", v.AsDouble());
    case ValueType::kBool:
      return v.AsBool() ? "true" : "false";
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');
      }
      out.push_back('\'');
      return out;
    }
  }
  return "NULL";
}

/// Splits one line into tokens; quoted strings stay single tokens (quotes
/// kept so the value parser can recognize them).
std::vector<std::string> TokenizeLine(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '\'') {
      std::string token = "'";
      ++i;
      while (i < line.size()) {
        if (line[i] == '\'') {
          if (i + 1 < line.size() && line[i + 1] == '\'') {
            token += "''";
            i += 2;
            continue;
          }
          break;
        }
        token.push_back(line[i++]);
      }
      token.push_back('\'');
      ++i;  // closing quote
      out.push_back(std::move(token));
      continue;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.push_back(line.substr(start, i - start));
  }
  return out;
}

Result<Value> ParseValue(const std::string& token, ValueType type) {
  if (token == "NULL") return Value::Null();
  if (token.size() >= 2 && token.front() == '\'') {
    std::string payload;
    for (size_t i = 1; i + 1 < token.size(); ++i) {
      payload.push_back(token[i]);
      if (token[i] == '\'' && i + 2 < token.size() && token[i + 1] == '\'') {
        ++i;  // collapse the '' escape
      }
    }
    return Value::String(std::move(payload));
  }
  switch (type) {
    case ValueType::kInt64:
      return Value::Int64(std::strtoll(token.c_str(), nullptr, 10));
    case ValueType::kDouble:
      return Value::Double(std::strtod(token.c_str(), nullptr));
    case ValueType::kBool:
      return Value::Bool(token == "true");
    case ValueType::kString:
      return Status::ParseError("expected quoted string literal, got '" +
                                token + "'");
  }
  return Status::ParseError("unknown value type");
}

Result<ValueType> ParseType(const std::string& name) {
  if (name == "bigint") return ValueType::kInt64;
  if (name == "double") return ValueType::kDouble;
  if (name == "varchar") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  return Status::ParseError("unknown type '" + name + "'");
}

Result<std::vector<ColumnId>> ParseColumnList(const std::string& csv) {
  std::vector<ColumnId> out;
  if (csv.empty() || csv == "-") return out;
  for (const std::string& part : Split(csv, ',')) {
    out.push_back(static_cast<ColumnId>(std::strtol(part.c_str(), nullptr, 10)));
  }
  return out;
}

}  // namespace

std::string DumpCatalogStats(const CatalogReader& catalog) {
  std::string out;
  out += "# PARINDA catalog statistics dump v1\n";
  for (const TableInfo* table : catalog.AllTables()) {
    std::vector<std::string> pk;
    for (ColumnId col : table->primary_key) pk.push_back(std::to_string(col));
    out += StringPrintf("table %s rows %.17g pages %.17g pk %s\n",
                        table->name.c_str(), table->row_count, table->pages,
                        pk.empty() ? "-" : Join(pk, ",").c_str());
    for (ColumnId c = 0; c < table->schema.num_columns(); ++c) {
      const ColumnDef& def = table->schema.column(c);
      const ColumnStats* stats = table->StatsFor(c);
      ColumnStats empty;
      const ColumnStats& st = stats != nullptr ? *stats : empty;
      out += StringPrintf(
          "column %s %s null_frac %.17g avg_width %.17g n_distinct %.17g "
          "correlation %.17g",
          def.name.c_str(), ValueTypeName(def.type), st.null_frac,
          st.avg_width, st.n_distinct, st.correlation);
      if (!st.min_value.is_null()) {
        out += " min " + FormatValue(st.min_value);
      }
      if (!st.max_value.is_null()) {
        out += " max " + FormatValue(st.max_value);
      }
      out += "\n";
      for (size_t i = 0; i < st.mcv_values.size(); ++i) {
        out += StringPrintf("mcv %s %.17g\n",
                            FormatValue(st.mcv_values[i]).c_str(),
                            st.mcv_freqs[i]);
      }
      for (const Value& bound : st.histogram_bounds) {
        out += "hist " + FormatValue(bound) + "\n";
      }
    }
  }
  for (const TableInfo* table : catalog.AllTables()) {
    for (const IndexInfo* index : catalog.TableIndexes(table->id)) {
      std::vector<std::string> cols;
      for (ColumnId col : index->columns) cols.push_back(std::to_string(col));
      out += StringPrintf(
          "index %s on %s (%s)%s leaf_pages %.17g height %d entries %.17g\n",
          index->name.c_str(), table->name.c_str(), Join(cols, ",").c_str(),
          index->unique ? " unique" : "", index->leaf_pages,
          index->tree_height, index->entries);
    }
  }
  return out;
}

Result<std::unique_ptr<Catalog>> LoadCatalogStats(std::string_view text) {
  auto catalog = std::make_unique<Catalog>();
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;

  // Accumulated state for the current table, flushed on the next stanza.
  struct PendingTable {
    TableSchema schema;
    std::vector<ColumnId> pk;
    double rows = 0.0;
    double pages = 0.0;
    std::vector<ColumnStats> stats;
  };
  std::unique_ptr<PendingTable> pending;

  auto flush = [&]() -> Status {
    if (pending == nullptr) return Status::OK();
    PARINDA_ASSIGN_OR_RETURN(TableId id,
                             catalog->CreateTable(pending->schema, pending->pk));
    PARINDA_RETURN_IF_ERROR(catalog->UpdateTableStats(
        id, pending->rows, pending->pages, std::move(pending->stats)));
    pending.reset();
    return Status::OK();
  };

  auto err = [&lineno](const std::string& message) {
    return Status::ParseError(StringPrintf("line %d: %s", lineno,
                                           message.c_str()));
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens = TokenizeLine(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "table") {
      PARINDA_RETURN_IF_ERROR(flush());
      if (tokens.size() < 8 || tokens[2] != "rows" || tokens[4] != "pages" ||
          tokens[6] != "pk") {
        return err("malformed table stanza");
      }
      pending = std::make_unique<PendingTable>();
      pending->schema = TableSchema(tokens[1], {});
      pending->rows = std::strtod(tokens[3].c_str(), nullptr);
      pending->pages = std::strtod(tokens[5].c_str(), nullptr);
      PARINDA_ASSIGN_OR_RETURN(pending->pk, ParseColumnList(tokens[7]));
      continue;
    }
    if (kind == "column") {
      if (pending == nullptr) return err("column before table");
      if (tokens.size() < 11) return err("malformed column stanza");
      PARINDA_ASSIGN_OR_RETURN(ValueType type, ParseType(tokens[2]));
      ColumnStats stats;
      stats.null_frac = std::strtod(tokens[4].c_str(), nullptr);
      stats.avg_width = std::strtod(tokens[6].c_str(), nullptr);
      stats.n_distinct = std::strtod(tokens[8].c_str(), nullptr);
      stats.correlation = std::strtod(tokens[10].c_str(), nullptr);
      for (size_t i = 11; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "min") {
          PARINDA_ASSIGN_OR_RETURN(stats.min_value,
                                   ParseValue(tokens[i + 1], type));
        } else if (tokens[i] == "max") {
          PARINDA_ASSIGN_OR_RETURN(stats.max_value,
                                   ParseValue(tokens[i + 1], type));
        } else {
          return err("unknown column attribute '" + tokens[i] + "'");
        }
      }
      ColumnDef def;
      def.name = tokens[1];
      def.type = type;
      def.declared_avg_width = static_cast<int>(stats.avg_width);
      pending->schema.AddColumn(def);
      pending->stats.push_back(std::move(stats));
      continue;
    }
    if (kind == "mcv") {
      if (pending == nullptr || pending->stats.empty()) {
        return err("mcv before column");
      }
      if (tokens.size() != 3) return err("malformed mcv line");
      ColumnStats& stats = pending->stats.back();
      const ValueType type =
          pending->schema.column(pending->schema.num_columns() - 1).type;
      PARINDA_ASSIGN_OR_RETURN(Value v, ParseValue(tokens[1], type));
      stats.mcv_values.push_back(std::move(v));
      stats.mcv_freqs.push_back(std::strtod(tokens[2].c_str(), nullptr));
      continue;
    }
    if (kind == "hist") {
      if (pending == nullptr || pending->stats.empty()) {
        return err("hist before column");
      }
      if (tokens.size() != 2) return err("malformed hist line");
      ColumnStats& stats = pending->stats.back();
      const ValueType type =
          pending->schema.column(pending->schema.num_columns() - 1).type;
      PARINDA_ASSIGN_OR_RETURN(Value v, ParseValue(tokens[1], type));
      stats.histogram_bounds.push_back(std::move(v));
      continue;
    }
    if (kind == "index") {
      PARINDA_RETURN_IF_ERROR(flush());
      // index <name> on <table> (<cols>) [unique] leaf_pages <f> height <n>
      // entries <f>
      if (tokens.size() < 10 || tokens[2] != "on") {
        return err("malformed index stanza");
      }
      const TableInfo* table = catalog->FindTable(tokens[3]);
      if (table == nullptr) return err("index on unknown table " + tokens[3]);
      std::string cols = tokens[4];
      if (cols.size() < 2 || cols.front() != '(' || cols.back() != ')') {
        return err("malformed index column list");
      }
      PARINDA_ASSIGN_OR_RETURN(
          std::vector<ColumnId> columns,
          ParseColumnList(cols.substr(1, cols.size() - 2)));
      size_t i = 5;
      bool unique = false;
      if (tokens[i] == "unique") {
        unique = true;
        ++i;
      }
      if (i + 5 >= tokens.size() || tokens[i] != "leaf_pages" ||
          tokens[i + 2] != "height" || tokens[i + 4] != "entries") {
        return err("malformed index attributes");
      }
      PARINDA_ASSIGN_OR_RETURN(
          IndexId id, catalog->CreateIndex(tokens[1], table->id, columns,
                                           unique));
      PARINDA_RETURN_IF_ERROR(catalog->UpdateIndexStats(
          id, std::strtod(tokens[i + 1].c_str(), nullptr),
          static_cast<int>(std::strtol(tokens[i + 3].c_str(), nullptr, 10)),
          std::strtod(tokens[i + 5].c_str(), nullptr)));
      continue;
    }
    return err("unknown stanza '" + kind + "'");
  }
  PARINDA_RETURN_IF_ERROR(flush());
  return catalog;
}

}  // namespace parinda
