#ifndef PARINDA_CATALOG_STATS_IO_H_
#define PARINDA_CATALOG_STATS_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"

namespace parinda {

/// Catalog/statistics serialization.
///
/// Everything the designer consumes — schemas, row/page counts, per-column
/// statistics, index metadata — fits in a small text file. Dumping a
/// production catalog and loading it elsewhere lets a DBA run every PARINDA
/// scenario *without the data*: what-if features, INUM, the ILP advisor and
/// AutoPart all operate purely on statistics (plans cannot be executed, but
/// the demo's advisory workflows never execute).
///
/// Format: a line-oriented text format, one object per stanza:
///
///   table <name> rows <n> pages <n> pk <col,...>
///   column <name> <type> null_frac <f> avg_width <f> n_distinct <f>
///       correlation <f> [min <literal>] [max <literal>]
///   mcv <literal> <freq>          (repeated, under the current column)
///   hist <literal>                (repeated, under the current column)
///   index <name> on <table> (<col,...>) [unique] leaf_pages <f>
///       height <n> entries <f>
///   end tables <n> indexes <n>
///
/// String literals are single-quoted with '' escaping; NULL bounds omitted.
/// The `end` footer carries the object counts: LoadCatalogStats requires it
/// on any dump with content, so a truncated copy fails loudly instead of
/// loading as a plausible smaller catalog. Numeric fields are parsed
/// strictly (the whole token must be a number) and unterminated string
/// literals are rejected, so flipped or dropped bytes surface as ParseError.

/// Serializes every table (with statistics) and index of `catalog`.
std::string DumpCatalogStats(const CatalogReader& catalog);

/// Parses a dump into a fresh catalog. Fails with ParseError on malformed
/// input; the returned catalog is fully usable by the binder, planner, and
/// all advisors. Production stats dumps can run to millions of lines, so
/// loading is an anytime operation like every other long pipeline here: the
/// parse loop consults `deadline` and fails with kDeadlineExceeded when the
/// budget runs out (the default deadline is infinite and costs nothing).
[[nodiscard]] Result<std::unique_ptr<Catalog>> LoadCatalogStats(
    std::string_view text, const Deadline& deadline = {});

}  // namespace parinda

#endif  // PARINDA_CATALOG_STATS_IO_H_
