#ifndef PARINDA_CATALOG_SIZE_MODEL_H_
#define PARINDA_CATALOG_SIZE_MODEL_H_

#include <vector>

#include "catalog/types.h"

namespace parinda {

/// PostgreSQL 8.3 storage constants used by both the ANALYZE pass (for real
/// structures) and the what-if layer (for hypothetical ones). Keeping a
/// single model guarantees that simulated and materialized features get the
/// same page counts, which is exactly the property demo scenario 1 verifies.
inline constexpr int kPageSize = 8192;          // paper's B
inline constexpr int kIndexRowOverhead = 24;    // paper's o (IndexTuple + ItemId)
inline constexpr int kHeapTupleOverhead = 28;   // 23-byte header + pad + ItemId
inline constexpr int kPageHeaderSize = 24;
inline constexpr double kBTreeFillFactor = 0.90;

/// (type, average width) pair describing one column for sizing purposes.
struct SizedColumn {
  ValueType type = ValueType::kInt64;
  /// Average stored bytes (varlena header included for strings).
  double avg_width = 8.0;
};

/// Rounds `offset` up to the next multiple of `alignment`.
double AlignUp(double offset, int alignment);

/// Width in bytes of a row holding `columns`, with each column padded to its
/// type alignment based on the columns before it — the paper's
/// `sum(size(c) + align(c))` term.
double AlignedRowWidth(const std::vector<SizedColumn>& columns);

/// Equation 1 of the paper: leaf pages of a B-tree index over `columns` on
/// a table with `row_count` rows:
///   Pages = ceil( (o + sum(size(c) + align(c))) * R / B )
/// Only leaf pages are counted; internal pages are ignored (paper, §3.2).
/// This is what the what-if index component uses. Clamped to >= 1 page, as
/// the heap estimator is: even an index on an empty table occupies its root
/// page, and a zero-page hypothetical index would be costed as free.
double Equation1IndexPages(double row_count,
                           const std::vector<SizedColumn>& columns);

/// Leaf pages of a *materialized* B-tree, computed by packing whole entries
/// into pages under the default fill factor. Slightly larger than Equation 1
/// (page headers, fill factor, no entry splitting); the accuracy benchmark
/// (E2) quantifies the gap. Clamped to >= 1 page like Equation 1.
double EstimateIndexLeafPages(double row_count,
                              const std::vector<SizedColumn>& columns);

/// Heap pages of a table with `row_count` rows of the given columns,
/// accounting for the tuple header and page header.
double EstimateHeapPages(double row_count,
                         const std::vector<SizedColumn>& columns);

/// B-tree height (root at level h, leaves at level 0) for a given number of
/// leaf pages, assuming ~`fanout` children per internal page. Fanouts below
/// 2 are clamped to 2 (a smaller fanout cannot shrink the page count and
/// would never terminate).
int EstimateBTreeHeight(double leaf_pages, double fanout = 256.0);

}  // namespace parinda

#endif  // PARINDA_CATALOG_SIZE_MODEL_H_
