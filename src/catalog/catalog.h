#ifndef PARINDA_CATALOG_CATALOG_H_
#define PARINDA_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/column_stats.h"
#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/status.h"

namespace parinda {

/// Metadata for one (real or hypothetical) B-tree index.
struct IndexInfo {
  IndexId id = kInvalidIndexId;
  std::string name;
  TableId table_id = kInvalidTableId;
  /// Key columns, by table ordinal, in key order.
  std::vector<ColumnId> columns;
  bool unique = false;
  /// True for what-if indexes that exist only as injected statistics.
  bool hypothetical = false;
  /// Leaf pages (Equation 1 for hypothetical, measured for real indexes).
  double leaf_pages = 0.0;
  /// B-tree height above the leaf level.
  int tree_height = 0;
  /// Number of index entries (== table rows for non-partial indexes).
  double entries = 0.0;

  /// Size in bytes (leaf pages * page size), the quantity the storage-budget
  /// constraint of the ILP is expressed in.
  double SizeBytes() const;
};

/// Metadata for one (real or hypothetical) table.
struct TableInfo {
  TableId id = kInvalidTableId;
  std::string name;
  TableSchema schema;
  double row_count = 0.0;
  double pages = 0.0;
  /// Primary key column ordinals (may be empty).
  std::vector<ColumnId> primary_key;
  /// Per-column statistics, parallel to schema.columns(). Empty before
  /// ANALYZE.
  std::vector<ColumnStats> column_stats;
  /// True for what-if partition tables simulated by the what-if layer.
  bool hypothetical = false;
  /// For vertical partitions: the table this fragment was cut from, and the
  /// parent ordinal of each fragment column. Invalid/-empty for base tables.
  TableId parent_table = kInvalidTableId;
  std::vector<ColumnId> parent_columns;

  /// For horizontally range-partitioned tables: the child table per range
  /// and the split points. Child k covers [bounds[k-1], bounds[k]) with
  /// open ends (children.size() == bounds.size() + 1). The planner scans
  /// such a table as an Append over the children that survive pruning.
  std::vector<TableId> horizontal_children;
  ColumnId partition_column = kInvalidColumnId;
  std::vector<Value> partition_bounds;

  bool IsHorizontallyPartitioned() const {
    return !horizontal_children.empty();
  }

  bool HasStats() const { return !column_stats.empty(); }
  const ColumnStats* StatsFor(ColumnId col) const {
    if (col < 0 || static_cast<size_t>(col) >= column_stats.size()) {
      return nullptr;
    }
    return &column_stats[col];
  }
};

/// Read interface the optimizer plans against. The what-if layer substitutes
/// a hypothetical overlay implementing this same interface, which is how
/// simulated design features become indistinguishable from real ones.
class CatalogReader {
 public:
  virtual ~CatalogReader() = default;

  /// Case-insensitive lookup by table name; nullptr when absent.
  virtual const TableInfo* FindTable(const std::string& name) const = 0;
  virtual const TableInfo* GetTable(TableId id) const = 0;
  virtual const IndexInfo* GetIndex(IndexId id) const = 0;
  /// All indexes (real and hypothetical) on `table`.
  virtual std::vector<const IndexInfo*> TableIndexes(TableId table) const = 0;
  virtual std::vector<const TableInfo*> AllTables() const = 0;
};

/// The system catalog: owns table and index metadata plus statistics.
/// Thread-compatible (external synchronization if shared).
class Catalog : public CatalogReader {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new table; fails with AlreadyExists on duplicate name.
  [[nodiscard]] Result<TableId> CreateTable(TableSchema schema,
                              std::vector<ColumnId> primary_key = {});

  /// Registers a new index over existing columns of an existing table.
  [[nodiscard]] Result<IndexId> CreateIndex(const std::string& index_name, TableId table,
                              std::vector<ColumnId> columns,
                              bool unique = false);

  [[nodiscard]] Status DropTable(TableId id);
  [[nodiscard]] Status DropIndex(IndexId id);

  /// Replaces the statistics of a table (row count, pages, column stats).
  [[nodiscard]] Status UpdateTableStats(TableId id, double row_count, double pages,
                          std::vector<ColumnStats> stats);

  /// Replaces sizing data of an index after it is built.
  [[nodiscard]] Status UpdateIndexStats(IndexId id, double leaf_pages, int tree_height,
                          double entries);

  /// Mutable access for the ANALYZE pass and the what-if layer.
  TableInfo* GetMutableTable(TableId id);
  IndexInfo* GetMutableIndex(IndexId id);

  // CatalogReader:
  const TableInfo* FindTable(const std::string& name) const override;
  const TableInfo* GetTable(TableId id) const override;
  const IndexInfo* GetIndex(IndexId id) const override;
  std::vector<const IndexInfo*> TableIndexes(TableId table) const override;
  std::vector<const TableInfo*> AllTables() const override;

 private:
  TableId next_table_id_ = 0;
  IndexId next_index_id_ = 0;
  std::map<TableId, std::unique_ptr<TableInfo>> tables_;
  std::map<IndexId, std::unique_ptr<IndexInfo>> indexes_;
  /// Lower-cased name -> id.
  std::map<std::string, TableId> table_names_;
};

}  // namespace parinda

#endif  // PARINDA_CATALOG_CATALOG_H_
