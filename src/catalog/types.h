#ifndef PARINDA_CATALOG_TYPES_H_
#define PARINDA_CATALOG_TYPES_H_

#include <cstdint>
#include <string>

namespace parinda {

/// Column data types. The subset PostgreSQL's SDSS schema actually needs:
/// bigint, double precision, varchar, boolean.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
};

/// "bigint", "double", "varchar", "bool".
const char* ValueTypeName(ValueType type);

/// On-disk alignment requirement in bytes, mirroring PostgreSQL typalign
/// ('d' = 8 for bigint/double, 'i' = 4 for varlena, 'c' = 1 for bool).
int TypeAlignment(ValueType type);

/// Fixed on-disk size in bytes, or -1 for variable-length types (varchar).
int TypeFixedSize(ValueType type);

/// True for types with a total order usable in range predicates & histograms.
inline bool TypeIsOrdered(ValueType type) { return type != ValueType::kBool; }

/// True for numeric types where histogram interpolation is meaningful.
inline bool TypeIsNumeric(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kDouble;
}

using TableId = int32_t;
using IndexId = int32_t;
/// Column ordinal within its table (0-based).
using ColumnId = int32_t;

inline constexpr TableId kInvalidTableId = -1;
inline constexpr IndexId kInvalidIndexId = -1;
inline constexpr ColumnId kInvalidColumnId = -1;

}  // namespace parinda

#endif  // PARINDA_CATALOG_TYPES_H_
