#include "catalog/catalog.h"

#include <algorithm>

#include "catalog/size_model.h"
#include "common/strings.h"

namespace parinda {

double IndexInfo::SizeBytes() const { return leaf_pages * kPageSize; }

Result<TableId> Catalog::CreateTable(TableSchema schema,
                                     std::vector<ColumnId> primary_key) {
  const std::string key = ToLower(schema.name());
  if (key.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (table_names_.count(key) > 0) {
    return Status::AlreadyExists("table '" + schema.name() + "' exists");
  }
  for (ColumnId col : primary_key) {
    if (col < 0 || col >= schema.num_columns()) {
      return Status::InvalidArgument("primary key column out of range");
    }
  }
  const TableId id = next_table_id_++;
  auto info = std::make_unique<TableInfo>();
  info->id = id;
  info->name = schema.name();
  info->schema = std::move(schema);
  info->primary_key = std::move(primary_key);
  tables_[id] = std::move(info);
  table_names_[key] = id;
  return id;
}

Result<IndexId> Catalog::CreateIndex(const std::string& index_name,
                                     TableId table,
                                     std::vector<ColumnId> columns,
                                     bool unique) {
  const TableInfo* t = GetTable(table);
  if (t == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(table));
  }
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (ColumnId col : columns) {
    if (col < 0 || col >= t->schema.num_columns()) {
      return Status::InvalidArgument("index column out of range for table '" +
                                     t->name + "'");
    }
  }
  for (const auto& [id, idx] : indexes_) {
    if (EqualsIgnoreCase(idx->name, index_name)) {
      return Status::AlreadyExists("index '" + index_name + "' exists");
    }
  }
  const IndexId id = next_index_id_++;
  auto info = std::make_unique<IndexInfo>();
  info->id = id;
  info->name = index_name;
  info->table_id = table;
  info->columns = std::move(columns);
  info->unique = unique;
  indexes_[id] = std::move(info);
  return id;
}

Status Catalog::DropTable(TableId id) {
  auto it = tables_.find(id);
  if (it == tables_.end()) {
    return Status::NotFound("no table with id " + std::to_string(id));
  }
  // Drop dependent indexes first.
  for (auto iit = indexes_.begin(); iit != indexes_.end();) {
    if (iit->second->table_id == id) {
      iit = indexes_.erase(iit);
    } else {
      ++iit;
    }
  }
  table_names_.erase(ToLower(it->second->name));
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::DropIndex(IndexId id) {
  if (indexes_.erase(id) == 0) {
    return Status::NotFound("no index with id " + std::to_string(id));
  }
  return Status::OK();
}

Status Catalog::UpdateTableStats(TableId id, double row_count, double pages,
                                 std::vector<ColumnStats> stats) {
  TableInfo* t = GetMutableTable(id);
  if (t == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(id));
  }
  if (!stats.empty() &&
      stats.size() != static_cast<size_t>(t->schema.num_columns())) {
    return Status::InvalidArgument("column stats arity mismatch");
  }
  t->row_count = row_count;
  t->pages = pages;
  t->column_stats = std::move(stats);
  return Status::OK();
}

Status Catalog::UpdateIndexStats(IndexId id, double leaf_pages,
                                 int tree_height, double entries) {
  IndexInfo* idx = GetMutableIndex(id);
  if (idx == nullptr) {
    return Status::NotFound("no index with id " + std::to_string(id));
  }
  idx->leaf_pages = leaf_pages;
  idx->tree_height = tree_height;
  idx->entries = entries;
  return Status::OK();
}

TableInfo* Catalog::GetMutableTable(TableId id) {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

IndexInfo* Catalog::GetMutableIndex(IndexId id) {
  auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : it->second.get();
}

const TableInfo* Catalog::FindTable(const std::string& name) const {
  auto it = table_names_.find(ToLower(name));
  return it == table_names_.end() ? nullptr : GetTable(it->second);
}

const TableInfo* Catalog::GetTable(TableId id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

const IndexInfo* Catalog::GetIndex(IndexId id) const {
  auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<const IndexInfo*> Catalog::TableIndexes(TableId table) const {
  std::vector<const IndexInfo*> out;
  for (const auto& [id, idx] : indexes_) {
    if (idx->table_id == table) out.push_back(idx.get());
  }
  return out;
}

std::vector<const TableInfo*> Catalog::AllTables() const {
  std::vector<const TableInfo*> out;
  out.reserve(tables_.size());
  for (const auto& [id, t] : tables_) out.push_back(t.get());
  return out;
}

}  // namespace parinda
