#include "catalog/size_model.h"

#include <cmath>

namespace parinda {

double AlignUp(double offset, int alignment) {
  if (alignment <= 1) return offset;
  const double a = static_cast<double>(alignment);
  return std::ceil(offset / a) * a;
}

double AlignedRowWidth(const std::vector<SizedColumn>& columns) {
  double offset = 0.0;
  for (const SizedColumn& col : columns) {
    offset = AlignUp(offset, TypeAlignment(col.type));
    offset += col.avg_width;
  }
  return offset;
}

double Equation1IndexPages(double row_count,
                           const std::vector<SizedColumn>& columns) {
  const double entry = kIndexRowOverhead + AlignedRowWidth(columns);
  // Never below one page: an empty or tiny table must not produce a
  // zero-page hypothetical index, or the what-if layer costs its scans at
  // ~0 and the advisor always "recommends" it (the heap estimator clamps
  // the same way).
  return std::max(1.0, std::ceil(entry * row_count / kPageSize));
}

double EstimateIndexLeafPages(double row_count,
                              const std::vector<SizedColumn>& columns) {
  const double entry = kIndexRowOverhead + AlignedRowWidth(columns);
  const double usable = (kPageSize - kPageHeaderSize) * kBTreeFillFactor;
  const double per_page = std::max(1.0, std::floor(usable / entry));
  return std::max(1.0, std::ceil(row_count / per_page));
}

double EstimateHeapPages(double row_count,
                         const std::vector<SizedColumn>& columns) {
  const double tuple = kHeapTupleOverhead + AlignUp(AlignedRowWidth(columns), 8);
  const double usable = kPageSize - kPageHeaderSize;
  const double per_page = std::max(1.0, std::floor(usable / tuple));
  return std::max(1.0, std::ceil(row_count / per_page));
}

int EstimateBTreeHeight(double leaf_pages, double fanout) {
  // A fanout <= 1 would make ceil(pages / fanout) non-decreasing and the
  // loop below spin forever; no B-tree has internal pages holding fewer
  // than two children, so clamp.
  const double effective_fanout = std::max(2.0, fanout);
  int height = 0;
  double pages = std::max(1.0, leaf_pages);
  while (pages > 1.0) {
    pages = std::ceil(pages / effective_fanout);
    ++height;
  }
  return height;
}

}  // namespace parinda
