#include "catalog/size_model.h"

#include <cmath>

namespace parinda {

double AlignUp(double offset, int alignment) {
  if (alignment <= 1) return offset;
  const double a = static_cast<double>(alignment);
  return std::ceil(offset / a) * a;
}

double AlignedRowWidth(const std::vector<SizedColumn>& columns) {
  double offset = 0.0;
  for (const SizedColumn& col : columns) {
    offset = AlignUp(offset, TypeAlignment(col.type));
    offset += col.avg_width;
  }
  return offset;
}

double Equation1IndexPages(double row_count,
                           const std::vector<SizedColumn>& columns) {
  const double entry = kIndexRowOverhead + AlignedRowWidth(columns);
  return std::ceil(entry * row_count / kPageSize);
}

double EstimateIndexLeafPages(double row_count,
                              const std::vector<SizedColumn>& columns) {
  const double entry = kIndexRowOverhead + AlignedRowWidth(columns);
  const double usable = (kPageSize - kPageHeaderSize) * kBTreeFillFactor;
  const double per_page = std::max(1.0, std::floor(usable / entry));
  return std::ceil(row_count / per_page);
}

double EstimateHeapPages(double row_count,
                         const std::vector<SizedColumn>& columns) {
  const double tuple = kHeapTupleOverhead + AlignUp(AlignedRowWidth(columns), 8);
  const double usable = kPageSize - kPageHeaderSize;
  const double per_page = std::max(1.0, std::floor(usable / tuple));
  return std::max(1.0, std::ceil(row_count / per_page));
}

int EstimateBTreeHeight(double leaf_pages, double fanout) {
  int height = 0;
  double pages = std::max(1.0, leaf_pages);
  while (pages > 1.0) {
    pages = std::ceil(pages / fanout);
    ++height;
  }
  return height;
}

}  // namespace parinda
