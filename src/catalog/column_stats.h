#ifndef PARINDA_CATALOG_COLUMN_STATS_H_
#define PARINDA_CATALOG_COLUMN_STATS_H_

#include <string>
#include <vector>

#include "catalog/value.h"

namespace parinda {

/// Per-column statistics, mirroring PostgreSQL's `pg_statistic` entries that
/// the planner consumes: null fraction, average width, distinct count,
/// most-common values, equi-depth histogram, and physical/logical order
/// correlation.
///
/// The what-if layer (see `src/whatif`) copies and re-derives these for
/// hypothetical indexes and partitions — "the query optimizer primarily deals
/// with statistics, it cannot differentiate between the real design features
/// and the what-if ones" (paper, §1).
struct ColumnStats {
  /// Fraction of rows that are NULL in this column, in [0, 1].
  double null_frac = 0.0;

  /// Average on-disk width in bytes (varlena header included for strings).
  double avg_width = 8.0;

  /// PostgreSQL convention: > 0 is an absolute distinct count; < 0 is the
  /// negated fraction of rows that are distinct (scales with table growth);
  /// 0 means unknown.
  double n_distinct = 0.0;

  /// Most-common values and their frequencies (parallel arrays, sorted by
  /// descending frequency). Frequencies are fractions of all rows.
  std::vector<Value> mcv_values;
  std::vector<double> mcv_freqs;

  /// Equi-depth histogram bounds over the non-MCV values (ascending).
  /// `histogram_bounds.size() - 1` buckets of equal row mass.
  std::vector<Value> histogram_bounds;

  /// Correlation between physical row order and this column's order, in
  /// [-1, 1]. Drives the Mackert–Lohman interpolation in index scan costing.
  double correlation = 0.0;

  /// Observed min/max (may be NULL Values if the column is all-NULL).
  Value min_value;
  Value max_value;

  /// Resolves n_distinct against a concrete row count.
  double DistinctCount(double row_count) const {
    if (n_distinct > 0.0) return n_distinct;
    if (n_distinct < 0.0) return -n_distinct * row_count;
    return row_count > 0 ? row_count : 1.0;  // unknown: assume all-distinct
  }

  /// Total frequency mass held by the MCV list.
  double McvTotalFrequency() const {
    double sum = 0.0;
    for (double f : mcv_freqs) sum += f;
    return sum;
  }

  /// Debug rendering.
  std::string ToString() const;
};

}  // namespace parinda

#endif  // PARINDA_CATALOG_COLUMN_STATS_H_
