#ifndef PARINDA_PARINDA_REPORT_H_
#define PARINDA_PARINDA_REPORT_H_

#include <string>

#include "advisor/index_advisor.h"
#include "autopart/autopart.h"
#include "catalog/catalog.h"
#include "parinda/parinda.h"

namespace parinda {

/// Text renderings of the designer's outputs — the tabular content of the
/// demo GUIs (Figures 2 & 3) for terminal front-ends. All functions resolve
/// table/column names through `catalog`.

/// Scenario 1 report: per-query base vs what-if costs and benefits, average
/// benefit, rewritten queries for partitioned tables.
std::string FormatInteractiveReport(const CatalogReader& catalog,
                                    const Workload& workload,
                                    const InteractiveReport& report);

/// Scenario 2 report: suggested fragments (with column names), per-query
/// benefit table, workload speedup, replication usage.
std::string FormatPartitionAdvice(const CatalogReader& catalog,
                                  const PartitionAdvice& advice);

/// Scenario 3 report: suggested indexes (sizes, benefits, used-by lists),
/// per-query benefit table, budget usage.
std::string FormatIndexAdvice(const CatalogReader& catalog,
                              const IndexAdvice& advice);

/// "table(col1, col2)" rendering of an index definition.
std::string FormatIndexDef(const CatalogReader& catalog,
                           const WhatIfIndexDef& def);

/// "table { col1, col2 } (+ primary key)" rendering of a fragment.
std::string FormatFragment(const CatalogReader& catalog,
                           const FragmentDef& fragment);

}  // namespace parinda

#endif  // PARINDA_PARINDA_REPORT_H_
