#include "parinda/report.h"

#include "common/strings.h"

namespace parinda {

namespace {

std::string ColumnList(const CatalogReader& catalog, TableId table_id,
                       const std::vector<ColumnId>& columns,
                       const char* separator) {
  const TableInfo* table = catalog.GetTable(table_id);
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (ColumnId col : columns) {
    if (table != nullptr && col >= 0 && col < table->schema.num_columns()) {
      names.push_back(table->schema.column(col).name);
    } else {
      names.push_back("c" + std::to_string(col));
    }
  }
  return Join(names, separator);
}

std::string TableName(const CatalogReader& catalog, TableId table_id) {
  const TableInfo* table = catalog.GetTable(table_id);
  return table != nullptr ? table->name : "#" + std::to_string(table_id);
}

}  // namespace

std::string FormatIndexDef(const CatalogReader& catalog,
                           const WhatIfIndexDef& def) {
  return TableName(catalog, def.table) + "(" +
         ColumnList(catalog, def.table, def.columns, ", ") + ")";
}

std::string FormatFragment(const CatalogReader& catalog,
                           const FragmentDef& fragment) {
  return TableName(catalog, fragment.table) + " { " +
         ColumnList(catalog, fragment.table, fragment.columns, ", ") +
         " } (+ primary key)";
}

std::string FormatInteractiveReport(const CatalogReader& catalog,
                                    const Workload& workload,
                                    const InteractiveReport& report) {
  (void)catalog;
  std::string out = StringPrintf("%-5s %12s %12s %9s\n", "query", "base cost",
                                 "what-if", "benefit");
  for (size_t q = 0; q < report.per_query_base.size(); ++q) {
    out += StringPrintf("Q%-4zu %12.1f %12.1f %8.1f%%\n", q + 1,
                        report.per_query_base[q], report.per_query_optimized[q],
                        report.per_query_benefit_pct[q]);
  }
  out += StringPrintf("average workload benefit: %.1f%%\n",
                      report.average_benefit_pct);
  for (size_t q = 0; q < report.rewritten_sql.size(); ++q) {
    if (q < workload.queries.size() &&
        report.rewritten_sql[q] != workload.queries[q].sql) {
      out += StringPrintf("rewritten Q%zu: %s\n", q + 1,
                          report.rewritten_sql[q].c_str());
    }
  }
  return out;
}

std::string FormatPartitionAdvice(const CatalogReader& catalog,
                                  const PartitionAdvice& advice) {
  std::string out =
      StringPrintf("suggested fragments (%zu, %.2f MB replicated):\n",
                   advice.fragments.size(),
                   advice.replicated_bytes / 1024.0 / 1024.0);
  for (const FragmentDef& fragment : advice.fragments) {
    out += "  " + FormatFragment(catalog, fragment) + "\n";
  }
  out += StringPrintf("%-5s %12s %12s %9s\n", "query", "base cost",
                      "partitioned", "benefit");
  for (size_t q = 0; q < advice.per_query_base.size(); ++q) {
    const double benefit =
        advice.per_query_base[q] > 0.0
            ? 100.0 *
                  (advice.per_query_base[q] - advice.per_query_optimized[q]) /
                  advice.per_query_base[q]
            : 0.0;
    out += StringPrintf("Q%-4zu %12.1f %12.1f %8.1f%%\n", q + 1,
                        advice.per_query_base[q],
                        advice.per_query_optimized[q], benefit);
  }
  out += StringPrintf("workload: %.0f -> %.0f (%.2fx)\n", advice.base_cost,
                      advice.optimized_cost, advice.Speedup());
  return out;
}

std::string FormatIndexAdvice(const CatalogReader& catalog,
                              const IndexAdvice& advice) {
  std::string out = StringPrintf(
      "suggested indexes (%zu, %.2f MB total%s):\n", advice.indexes.size(),
      advice.total_size_bytes / 1024.0 / 1024.0,
      advice.proved_optimal ? ", ILP optimum proved" : "");
  for (const SuggestedIndex& s : advice.indexes) {
    std::vector<std::string> used;
    for (int q : s.used_by) used.push_back("Q" + std::to_string(q + 1));
    out += StringPrintf("  %-40s %8.2f MB  used by: %s\n",
                        FormatIndexDef(catalog, s.def).c_str(),
                        s.size_bytes / 1024.0 / 1024.0,
                        Join(used, ",").c_str());
  }
  out += StringPrintf("%-5s %12s %12s %9s\n", "query", "base cost",
                      "with indexes", "benefit");
  for (size_t q = 0; q < advice.per_query_base.size(); ++q) {
    const double benefit =
        advice.per_query_base[q] > 0.0
            ? 100.0 *
                  (advice.per_query_base[q] - advice.per_query_optimized[q]) /
                  advice.per_query_base[q]
            : 0.0;
    out += StringPrintf("Q%-4zu %12.1f %12.1f %8.1f%%\n", q + 1,
                        advice.per_query_base[q],
                        advice.per_query_optimized[q], benefit);
  }
  out += StringPrintf("workload: %.0f -> %.0f (%.2fx)\n", advice.base_cost,
                      advice.optimized_cost, advice.Speedup());
  return out;
}

}  // namespace parinda
