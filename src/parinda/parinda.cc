#include "parinda/parinda.h"

#include <cmath>

#include "design/design_session.h"
#include "optimizer/planner.h"
#include "parser/binder.h"
#include "parser/parser.h"

namespace parinda {

Result<InteractiveReport> Parinda::EvaluateDesign(
    const Workload& workload, const InteractiveDesign& design,
    const CostParams& params, const Deadline& deadline) {
  // A one-shot DesignSession: the first Evaluate() on a fresh session *is*
  // the stateless evaluation (same overlay composition, same planner calls,
  // same summation order — bit-identical reports; asserted in
  // tests/parinda_test.cc).
  DesignSessionOptions options;
  options.params = params;
  options.deadline = deadline;
  DesignSession session(db_->catalog(), &workload, options);
  for (const WhatIfPartitionDef& partition : design.partitions) {
    PARINDA_ASSIGN_OR_RETURN(OverlayId unused,
                             session.AddPartition(partition));
    (void)unused;
  }
  for (const RangePartitionDef& ranges : design.range_partitions) {
    PARINDA_ASSIGN_OR_RETURN(OverlayId unused,
                             session.AddRangePartitioning(ranges));
    (void)unused;
  }
  for (const WhatIfIndexDef& def : design.indexes) {
    PARINDA_ASSIGN_OR_RETURN(OverlayId unused, session.AddIndex(def));
    (void)unused;
  }
  for (const WhatIfJoinDef& join : design.join_flags) {
    PARINDA_ASSIGN_OR_RETURN(OverlayId unused, session.AddJoinFlags(join));
    (void)unused;
  }
  return session.Evaluate();
}

Result<SimulationAccuracyReport> Parinda::VerifyIndexSimulation(
    const std::string& sql, const WhatIfIndexDef& def,
    const CostParams& params) {
  SimulationAccuracyReport report;
  PARINDA_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  PARINDA_RETURN_IF_ERROR(BindStatement(db_->catalog(), &stmt));

  // What-if side.
  WhatIfIndexSet whatif(db_->catalog());
  PARINDA_ASSIGN_OR_RETURN(IndexId whatif_id, whatif.AddIndex(def));
  report.whatif_pages = whatif.Get(whatif_id)->leaf_pages;
  HookRegistry hooks;
  hooks.set_relation_info_hook(whatif.MakeHook());
  PlannerOptions whatif_options;
  whatif_options.params = params;
  whatif_options.hooks = &hooks;
  {
    PARINDA_ASSIGN_OR_RETURN(Plan plan,
                             PlanQuery(db_->catalog(), stmt, whatif_options));
    report.whatif_cost = plan.total_cost();
    report.whatif_plan = plan.ToString();
  }

  // Materialized side: build, plan, drop.
  const std::string real_name =
      (def.name.empty() ? "verify_index" : def.name) + "_materialized";
  PARINDA_ASSIGN_OR_RETURN(
      IndexId real_id, db_->BuildIndex(real_name, def.table, def.columns,
                                       def.unique));
  report.materialized_pages = db_->catalog().GetIndex(real_id)->leaf_pages;
  PlannerOptions real_options;
  real_options.params = params;
  {
    auto plan = PlanQuery(db_->catalog(), stmt, real_options);
    if (!plan.ok()) {
      (void)db_->DropIndex(real_id);
      return plan.status();
    }
    report.materialized_cost = plan->total_cost();
    report.materialized_plan = plan->ToString();
  }
  PARINDA_RETURN_IF_ERROR(db_->DropIndex(real_id));

  if (report.materialized_cost > 0.0) {
    report.cost_error_fraction =
        std::fabs(report.whatif_cost - report.materialized_cost) /
        report.materialized_cost;
  }
  if (report.materialized_pages > 0.0) {
    report.size_error_fraction =
        std::fabs(report.whatif_pages - report.materialized_pages) /
        report.materialized_pages;
  }
  return report;
}

Result<PartitionAdvice> Parinda::SuggestPartitions(const Workload& workload,
                                                   AutoPartOptions options) {
  AutoPartAdvisor advisor(db_->catalog(), workload, options);
  return advisor.Suggest();
}

Result<std::vector<TableId>> Parinda::MaterializePartitions(
    const PartitionAdvice& advice) {
  std::vector<TableId> out;
  int counter = 0;
  for (const FragmentDef& fragment : advice.fragments) {
    const TableInfo* parent = db_->catalog().GetTable(fragment.table);
    if (parent == nullptr) {
      return Status::NotFound("fragment parent table missing");
    }
    const std::string name =
        parent->name + "_part" + std::to_string(counter++);
    PARINDA_ASSIGN_OR_RETURN(
        TableId id,
        db_->MaterializeVerticalPartition(fragment.table, name,
                                          fragment.columns));
    out.push_back(id);
  }
  return out;
}

Result<IndexAdvice> Parinda::SuggestIndexes(const Workload& workload,
                                            IndexAdvisorOptions options) {
  IndexAdvisor advisor(db_->catalog(), workload, options);
  return advisor.SuggestWithIlp();
}

Result<std::vector<IndexId>> Parinda::MaterializeIndexes(
    const IndexAdvice& advice) {
  std::vector<IndexId> out;
  for (const SuggestedIndex& suggestion : advice.indexes) {
    PARINDA_ASSIGN_OR_RETURN(
        IndexId id,
        db_->BuildIndex(suggestion.def.name + "_real", suggestion.def.table,
                        suggestion.def.columns, suggestion.def.unique));
    out.push_back(id);
  }
  return out;
}

}  // namespace parinda
