#ifndef PARINDA_PARINDA_PARINDA_H_
#define PARINDA_PARINDA_PARINDA_H_

#include <string>
#include <vector>

#include "advisor/index_advisor.h"
#include "autopart/autopart.h"
#include "common/check.h"
#include "common/status.h"
#include "design/design_session.h"
#include "storage/database.h"
#include "whatif/whatif_horizontal.h"
#include "whatif/whatif_index.h"
#include "whatif/whatif_join.h"
#include "whatif/whatif_table.h"
#include "workload/workload.h"

namespace parinda {

/// A manually chosen physical design to simulate (scenario 1's inputs: "she
/// creates several what-if table partitions and several what-if indexes").
struct InteractiveDesign {
  std::vector<WhatIfIndexDef> indexes;
  std::vector<WhatIfPartitionDef> partitions;
  /// Horizontal range partitionings to simulate (extension beyond the demo;
  /// see src/whatif/whatif_horizontal.h).
  std::vector<RangePartitionDef> range_partitions;
  /// What-if join-method restrictions (the paper's fourth design-feature
  /// kind), AND-composed onto the evaluation's cost parameters.
  std::vector<WhatIfJoinDef> join_flags;
};

// InteractiveReport (scenario 1's output) lives with the session layer that
// produces it: see design/design_session.h.

/// Scenario 1's verification step: "compare the execution plan of the
/// what-if design with the execution plan of the same materialized physical
/// design. This way the accuracy of the physical design simulation is
/// verified."
struct SimulationAccuracyReport {
  double whatif_cost = 0.0;
  double materialized_cost = 0.0;
  double whatif_pages = 0.0;
  double materialized_pages = 0.0;
  std::string whatif_plan;
  std::string materialized_plan;
  /// Relative cost estimation error of the simulation.
  double cost_error_fraction = 0.0;
  /// Relative index-size (Equation 1) error.
  double size_error_fraction = 0.0;
};

/// PARINDA — the interactive physical designer facade. Wraps the three demo
/// scenarios over one database instance.
class Parinda {
 public:
  /// `db` must outlive this object. Non-owning.
  explicit Parinda(Database* db) : db_(db) { PARINDA_CHECK(db != nullptr); }

  Parinda(const Parinda&) = delete;
  Parinda& operator=(const Parinda&) = delete;

  const CatalogReader& catalog() const { return db_->catalog(); }

  // --- Scenario 1: interactive partition/index selection ---

  /// Simulates `design` and reports the workload benefit. Pure what-if: no
  /// data is touched, which is why this is interactive-speed. A thin
  /// stateless wrapper over a one-shot DesignSession; for an iterating
  /// add/drop/re-evaluate loop, hold a DesignSession directly and get
  /// incremental re-evaluation.
  ///
  /// `deadline` bounds the evaluation (DESIGN.md §10): on expiry the report
  /// comes back with `degradation.degraded = true` and the un-costed queries
  /// at zero. The advisor entry points below take their budget through
  /// `options.deadline` instead. All budgets default to infinite, which is
  /// bit-identical to the un-budgeted code path.
  [[nodiscard]] Result<InteractiveReport> EvaluateDesign(const Workload& workload,
                                           const InteractiveDesign& design,
                                           const CostParams& params = {},
                                           const Deadline& deadline = {});

  /// Builds the real index for `def`, plans `sql` both ways, and reports
  /// simulation accuracy. The real index is dropped afterwards.
  [[nodiscard]] Result<SimulationAccuracyReport> VerifyIndexSimulation(
      const std::string& sql, const WhatIfIndexDef& def,
      const CostParams& params = {});

  // --- Scenario 2: automatic partition suggestion ---

  [[nodiscard]] Result<PartitionAdvice> SuggestPartitions(const Workload& workload,
                                            AutoPartOptions options = {});

  /// "The user has the option to physically create on disk the suggested
  /// partitions." Returns the new table ids.
  [[nodiscard]] Result<std::vector<TableId>> MaterializePartitions(
      const PartitionAdvice& advice);

  // --- Scenario 3: automatic index suggestion ---

  [[nodiscard]] Result<IndexAdvice> SuggestIndexes(const Workload& workload,
                                     IndexAdvisorOptions options = {});

  /// "The user has the option to physically create the suggested set of
  /// indexes on disk." Returns the new index ids.
  [[nodiscard]] Result<std::vector<IndexId>> MaterializeIndexes(const IndexAdvice& advice);

 private:
  Database* db_;
};

}  // namespace parinda

#endif  // PARINDA_PARINDA_PARINDA_H_
