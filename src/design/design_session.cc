#include "design/design_session.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "optimizer/planner.h"
#include "rewriter/rewriter.h"

namespace parinda {

namespace {

bool Intersects(const std::vector<TableId>& tables,
                const std::vector<TableId>& touched) {
  for (TableId t : touched) {
    if (std::find(tables.begin(), tables.end(), t) != tables.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

DesignSession::DesignSession(const CatalogReader& catalog,
                             const Workload* workload,
                             DesignSessionOptions options)
    : catalog_(catalog), workload_(workload), options_(options) {
  overlay_ = std::make_unique<ComposedOverlay>(catalog_, options_.params);
  PARINDA_CHECK_OK(overlay_->Compose({}));
  RebuildQueryStates();
}

DesignSession::~DesignSession() = default;

Result<OverlayId> DesignSession::AddIndex(WhatIfIndexDef def) {
  return AddComponent(MakeIndexOverlay(std::move(def)));
}

Result<OverlayId> DesignSession::AddPartition(WhatIfPartitionDef def) {
  return AddComponent(MakeTableOverlay(std::move(def)));
}

Result<OverlayId> DesignSession::AddRangePartitioning(RangePartitionDef def) {
  return AddComponent(MakeRangePartitionOverlay(std::move(def)));
}

Result<OverlayId> DesignSession::AddJoinFlags(WhatIfJoinDef def) {
  return AddComponent(MakeJoinFlagsOverlay(def));
}

Result<OverlayId> DesignSession::AddComponent(
    std::unique_ptr<OverlayComponent> component) {
  entries_.push_back(Entry{next_id_, std::move(component)});
  Status composed = Recompose();
  if (!composed.ok()) {
    // Eager validation: nothing was added, overlay_ still matches entries_.
    entries_.pop_back();
    return composed;
  }
  const Entry& entry = entries_.back();
  if (entry.component->kind() == OverlayKind::kJoinFlags) ++params_epoch_;
  InvalidateFor(*entry.component);
  return next_id_++;
}

Status DesignSession::Drop(OverlayId id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return Status::NotFound("no design feature with id " + std::to_string(id));
  }
  const size_t pos = static_cast<size_t>(it - entries_.begin());
  Entry removed = std::move(*it);
  entries_.erase(it);
  Status composed = Recompose();
  if (!composed.ok()) {
    // E.g. dropping a partition while an index on its fragment remains.
    entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(pos),
                    std::move(removed));
    PARINDA_CHECK_OK(Recompose());
    return composed;
  }
  if (removed.component->kind() == OverlayKind::kJoinFlags) ++params_epoch_;
  InvalidateFor(*removed.component);
  return Status::OK();
}

void DesignSession::ClearDesign() {
  if (entries_.empty()) return;
  entries_.clear();
  PARINDA_CHECK_OK(Recompose());
  ++params_epoch_;
  for (QueryState& qs : queries_) {
    qs.whatif_valid = false;
    qs.index_only_delta = false;
  }
}

void DesignSession::SetWorkload(const Workload* workload) {
  workload_ = workload;
  RebuildQueryStates();
}

Status DesignSession::Recompose() {
  auto candidate = std::make_unique<ComposedOverlay>(catalog_, options_.params);
  std::vector<const OverlayComponent*> components;
  components.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    components.push_back(entry.component.get());
  }
  PARINDA_RETURN_IF_ERROR(candidate->Compose(components));
  overlay_ = std::move(candidate);
  return Status::OK();
}

void DesignSession::InvalidateFor(const OverlayComponent& component) {
  static metrics::Counter& invalidations =
      metrics::Registry::Global().counter("design.invalidations");
  const std::vector<TableId> touched =
      component.TouchedTables(overlay_->catalog());
  const bool is_index = component.kind() == OverlayKind::kIndex;
  for (QueryState& qs : queries_) {
    const bool affected = touched.empty() || Intersects(qs.tables, touched);
    if (!affected) continue;
    if (qs.whatif_valid) {
      invalidations.Increment();
      qs.whatif_valid = false;
      qs.index_only_delta = is_index;
    } else {
      // Already pending: the pending re-evaluation may use INUM only if
      // *every* outstanding delta is an index delta.
      qs.index_only_delta = qs.index_only_delta && is_index;
    }
  }
}

void DesignSession::RebuildQueryStates() {
  queries_.clear();
  const int nq = workload_ == nullptr ? 0 : workload_->size();
  queries_.resize(static_cast<size_t>(nq));
  for (int q = 0; q < nq; ++q) {
    QueryState& qs = queries_[static_cast<size_t>(q)];
    for (const TableRef& ref : workload_->queries[q].stmt.from) {
      if (ref.bound_table == kInvalidTableId) continue;
      if (std::find(qs.tables.begin(), qs.tables.end(), ref.bound_table) ==
          qs.tables.end()) {
        qs.tables.push_back(ref.bound_table);
      }
    }
  }
}

bool DesignSession::InumEligible(const QueryState& qs) const {
  if (!qs.index_only_delta) return false;
  // Table and range-partition components change the catalog content (or the
  // rewrite) of the queries they touch; INUM models the base catalog, so any
  // such component on one of this query's tables disqualifies it.
  for (const Entry& entry : entries_) {
    const OverlayKind kind = entry.component->kind();
    if (kind != OverlayKind::kTable && kind != OverlayKind::kRangePartition) {
      continue;
    }
    const std::vector<TableId> touched =
        entry.component->TouchedTables(overlay_->catalog());
    if (touched.empty() || Intersects(qs.tables, touched)) return false;
  }
  return true;
}

Result<double> DesignSession::InumRecost(int q, QueryState* qs) {
  if (qs->inum == nullptr || qs->inum_params_epoch != params_epoch_) {
    qs->inum = std::make_unique<InumCostModel>(
        catalog_, workload_->queries[q].stmt, overlay_->params());
    Status init = qs->inum->Init();
    if (!init.ok()) {
      qs->inum.reset();
      return init;
    }
    qs->inum_params_epoch = params_epoch_;
  }
  // The configuration the full path would see: the real indexes plus this
  // design's what-if indexes, per referenced table.
  std::vector<const IndexInfo*> config;
  for (TableId t : qs->tables) {
    for (const IndexInfo* index : catalog_.TableIndexes(t)) {
      config.push_back(index);
    }
    for (const IndexInfo* index : overlay_->index_set().IndexesFor(t)) {
      config.push_back(index);
    }
  }
  return qs->inum->EstimateCost(config);
}

Result<InteractiveReport> DesignSession::Evaluate() {
  PARINDA_FAILPOINT("design.evaluate");
  const auto fp_before = failpoint::AllHits();
  DegradationReport degradation;
  const int64_t plans_before = Planner::stats().plans_built;
  last_eval_inum_recosts_ = 0;

  const int nq = workload_ == nullptr ? 0 : workload_->size();
  PARINDA_CHECK(static_cast<int>(queries_.size()) == nq);

  // Budget expiry stops re-costing mid-way: finished queries report fresh
  // costs, the rest keep their previous (possibly zero) values and remain
  // pending, so a later Evaluate() with a fresh budget completes them.
  bool truncated = false;

  PlannerOptions base_options;
  base_options.params = options_.params;
  {
    PhaseTimer timer(&degradation, "base", "design.base");
    for (int q = 0; q < nq; ++q) {
      QueryState& qs = queries_[static_cast<size_t>(q)];
      if (qs.base_valid) continue;
      if (options_.deadline.Expired()) {
        truncated = true;
        break;
      }
      PARINDA_ASSIGN_OR_RETURN(
          Plan plan,
          PlanQuery(catalog_, workload_->queries[q].stmt, base_options));
      qs.base_cost = plan.total_cost();
      qs.base_valid = true;
    }
  }

  PlannerOptions whatif_options;
  whatif_options.params = overlay_->params();
  whatif_options.hooks = &overlay_->hooks();
  PhaseTimer whatif_timer(&degradation, "whatif", "design.whatif");
  for (int q = 0; q < nq; ++q) {
    QueryState& qs = queries_[static_cast<size_t>(q)];
    if (qs.whatif_valid) continue;
    if (truncated || options_.deadline.Expired()) {
      truncated = true;
      break;
    }
    static metrics::Counter& eval_incremental =
        metrics::Registry::Global().counter("design.eval_incremental");
    static metrics::Counter& eval_full =
        metrics::Registry::Global().counter("design.eval_full");
    bool served = false;
    if (options_.inum_index_deltas && InumEligible(qs)) {
      // Index deltas never change the rewrite, so the cached rewritten_sql
      // (set by the prior full evaluation) stays correct.
      Result<double> cost = InumRecost(q, &qs);
      if (cost.ok()) {
        qs.whatif_cost = *cost;
        ++last_eval_inum_recosts_;
        eval_incremental.Increment();
        served = true;
      }
      // On INUM failure (e.g. a query shape it cannot model) fall through to
      // the exact path rather than failing the evaluation.
    }
    if (!served) {
      eval_full.Increment();
      PARINDA_ASSIGN_OR_RETURN(
          RewriteResult rewritten,
          RewriteForPartitions(overlay_->catalog(), workload_->queries[q].stmt,
                               overlay_->fragments()));
      PARINDA_ASSIGN_OR_RETURN(
          Plan plan,
          PlanQuery(overlay_->catalog(), rewritten.stmt, whatif_options));
      qs.whatif_cost = plan.total_cost();
      qs.rewritten_sql = rewritten.changed ? rewritten.stmt.ToSql()
                                           : workload_->queries[q].sql;
    }
    qs.whatif_valid = true;
    qs.index_only_delta = false;
  }
  whatif_timer.Stop();
  if (truncated) degradation.AddFallback("evaluate:truncated");

  // Aggregation replicates the stateless evaluation's summation order
  // exactly (query order, benefit folded in as computed), so a warmed
  // session's report is bit-identical to a fresh one's.
  InteractiveReport report;
  report.per_query_base.assign(static_cast<size_t>(nq), 0.0);
  report.per_query_whatif.assign(static_cast<size_t>(nq), 0.0);
  report.per_query_benefit_pct.assign(static_cast<size_t>(nq), 0.0);
  report.rewritten_sql.assign(static_cast<size_t>(nq), "");
  for (int q = 0; q < nq; ++q) {
    const QueryState& qs = queries_[static_cast<size_t>(q)];
    report.per_query_base[static_cast<size_t>(q)] = qs.base_cost;
    report.base_cost += qs.base_cost * workload_->queries[q].weight;
  }
  for (int q = 0; q < nq; ++q) {
    const QueryState& qs = queries_[static_cast<size_t>(q)];
    report.per_query_whatif[static_cast<size_t>(q)] = qs.whatif_cost;
    report.whatif_cost += qs.whatif_cost * workload_->queries[q].weight;
    report.rewritten_sql[static_cast<size_t>(q)] = qs.rewritten_sql;
    if (report.per_query_base[static_cast<size_t>(q)] > 0.0) {
      report.per_query_benefit_pct[static_cast<size_t>(q)] =
          100.0 *
          (report.per_query_base[static_cast<size_t>(q)] -
           report.per_query_whatif[static_cast<size_t>(q)]) /
          report.per_query_base[static_cast<size_t>(q)];
    }
    report.average_benefit_pct +=
        report.per_query_benefit_pct[static_cast<size_t>(q)];
  }
  if (nq > 0) report.average_benefit_pct /= nq;

  last_eval_planner_calls_ = Planner::stats().plans_built - plans_before;
  degradation.failpoint_hits = failpoint::HitsSince(fp_before);
  report.degradation = std::move(degradation);
  return report;
}

std::vector<DesignSession::ComponentEntry> DesignSession::Components() const {
  std::vector<ComponentEntry> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    ComponentEntry e;
    e.id = entry.id;
    e.kind = entry.component->kind();
    e.description = entry.component->Describe(overlay_->catalog());
    out.push_back(std::move(e));
  }
  return out;
}

int DesignSession::pending_queries() const {
  int pending = 0;
  for (const QueryState& qs : queries_) {
    if (!qs.whatif_valid) ++pending;
  }
  return pending;
}

}  // namespace parinda
