#include "design/design_session.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "catalog/stats_io.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "optimizer/planner.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("design.evaluate");

namespace {

bool Intersects(const std::vector<TableId>& tables,
                const std::vector<TableId>& touched) {
  for (TableId t : touched) {
    if (std::find(tables.begin(), tables.end(), t) != tables.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

DesignSession::DesignSession(const CatalogReader& catalog,
                             const Workload* workload,
                             DesignSessionOptions options)
    : catalog_(catalog), workload_(workload), options_(options) {
  if (options_.memory_budget_bytes > 0) {
    governor_ = std::make_unique<CacheGovernor>(
        MemoryBudget{options_.memory_budget_bytes});
    // Callbacks capture `this`: RebuildQueryStates swaps the caches out, so
    // they must re-check liveness rather than capture the caches directly.
    evaluator_shard_ =
        governor_->RegisterShard("evaluator", [this](const std::string& id) {
          if (evaluator_ != nullptr) evaluator_->EraseCacheEntry(id);
        });
    bank_shard_ =
        governor_->RegisterShard("inum_bank", [this](const std::string& id) {
          if (inum_bank_ != nullptr) {
            inum_bank_->EvictSlot(
                static_cast<int>(std::strtol(id.c_str(), nullptr, 10)));
          }
        });
  }
  overlay_ = std::make_unique<ComposedOverlay>(catalog_, options_.params);
  PARINDA_CHECK_OK(overlay_->Compose({}));
  RebuildQueryStates();
}

DesignSession::~DesignSession() = default;

Result<OverlayId> DesignSession::AddIndex(WhatIfIndexDef def) {
  return AddComponent(MakeIndexOverlay(std::move(def)));
}

Result<OverlayId> DesignSession::AddPartition(WhatIfPartitionDef def) {
  return AddComponent(MakeTableOverlay(std::move(def)));
}

Result<OverlayId> DesignSession::AddRangePartitioning(RangePartitionDef def) {
  return AddComponent(MakeRangePartitionOverlay(std::move(def)));
}

Result<OverlayId> DesignSession::AddJoinFlags(WhatIfJoinDef def) {
  return AddComponent(MakeJoinFlagsOverlay(def));
}

Result<OverlayId> DesignSession::AddComponent(
    std::unique_ptr<OverlayComponent> component) {
  const std::vector<char> was_pending = PendingSnapshot();
  entries_.push_back(Entry{next_id_, std::move(component)});
  Status composed = Recompose();
  if (!composed.ok()) {
    // Eager validation: nothing was added, overlay_ still matches entries_.
    entries_.pop_back();
    return composed;
  }
  CountInvalidations(was_pending);
  return next_id_++;
}

Status DesignSession::Drop(OverlayId id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return Status::NotFound("no design feature with id " + std::to_string(id));
  }
  const std::vector<char> was_pending = PendingSnapshot();
  const size_t pos = static_cast<size_t>(it - entries_.begin());
  Entry removed = std::move(*it);
  entries_.erase(it);
  Status composed = Recompose();
  if (!composed.ok()) {
    // E.g. dropping a partition while an index on its fragment remains.
    entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(pos),
                    std::move(removed));
    PARINDA_CHECK_OK(Recompose());
    return composed;
  }
  CountInvalidations(was_pending);
  return Status::OK();
}

void DesignSession::ClearDesign() {
  if (entries_.empty()) return;
  const std::vector<char> was_pending = PendingSnapshot();
  entries_.clear();
  PARINDA_CHECK_OK(Recompose());
  CountInvalidations(was_pending);
}

void DesignSession::SetWorkload(const Workload* workload) {
  workload_ = workload;
  RebuildQueryStates();
}

Status DesignSession::Recompose() {
  auto candidate = std::make_unique<ComposedOverlay>(catalog_, options_.params);
  std::vector<const OverlayComponent*> components;
  components.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    components.push_back(entry.component.get());
  }
  PARINDA_RETURN_IF_ERROR(candidate->Compose(components));
  overlay_ = std::move(candidate);
  // The engine's view of the design: one unit per component, in insertion
  // order. Touched tables resolve through the *composed* catalog (an index
  // on a what-if fragment depends on the fragment's base parent).
  units_.clear();
  nonindex_units_.clear();
  for (const Entry& entry : entries_) {
    OverlayUnit unit;
    unit.tables = entry.component->TouchedTables(overlay_->catalog());
    std::sort(unit.tables.begin(), unit.tables.end());
    unit.signature = std::string(OverlayKindName(entry.component->kind())) +
                     ":" + entry.component->Signature();
    if (entry.component->kind() != OverlayKind::kIndex) {
      nonindex_units_.push_back(unit);
    }
    units_.push_back(std::move(unit));
  }
  return Status::OK();
}

void DesignSession::RebuildQueryStates() {
  queries_.clear();
  evaluator_.reset();
  inum_bank_.reset();
  if (governor_ != nullptr) {
    // The caches just vanished wholesale; drop their tracked entries without
    // firing the eviction callbacks.
    governor_->ForgetShard(evaluator_shard_);
    governor_->ForgetShard(bank_shard_);
  }
  const int nq = workload_ == nullptr ? 0 : workload_->size();
  if (workload_ != nullptr) {
    evaluator_ = std::make_unique<WorkloadEvaluator>(catalog_, *workload_);
    inum_bank_ = std::make_unique<InumBank>(catalog_, *workload_);
    if (governor_ != nullptr) {
      evaluator_->set_governor(governor_.get(), evaluator_shard_);
      inum_bank_->set_governor(governor_.get(), bank_shard_);
    }
  }
  queries_.resize(static_cast<size_t>(nq));
  for (int q = 0; q < nq; ++q) {
    QueryState& qs = queries_[static_cast<size_t>(q)];
    // First-reference order (not the evaluator's sorted sets): the INUM
    // configuration below is assembled in this order, as it always was.
    for (const TableRef& ref : workload_->queries[q].stmt.from) {
      if (ref.bound_table == kInvalidTableId) continue;
      if (std::find(qs.tables.begin(), qs.tables.end(), ref.bound_table) ==
          qs.tables.end()) {
        qs.tables.push_back(ref.bound_table);
      }
    }
  }
}

std::string DesignSession::CurrentKey(int q) const {
  return evaluator_->KeyFor(q, units_, options_.params);
}

std::string DesignSession::CurrentNonIndexKey(int q) const {
  return evaluator_->KeyFor(q, nonindex_units_, options_.params);
}

bool DesignSession::Pending(int q) const {
  const QueryState& qs = queries_[static_cast<size_t>(q)];
  return !qs.has_value || qs.stored_key != CurrentKey(q);
}

std::vector<char> DesignSession::PendingSnapshot() const {
  std::vector<char> pending(queries_.size(), 0);
  for (size_t q = 0; q < queries_.size(); ++q) {
    pending[q] = Pending(static_cast<int>(q)) ? 1 : 0;
  }
  return pending;
}

void DesignSession::CountInvalidations(const std::vector<char>& was_pending) {
  static metrics::Counter& invalidations =
      metrics::Registry::Global().counter("design.invalidations");
  for (size_t q = 0; q < queries_.size(); ++q) {
    if (!was_pending[q] && Pending(static_cast<int>(q))) {
      invalidations.Increment();
    }
  }
}

bool DesignSession::InumEligible(int q, const QueryState& qs) const {
  // Every delta since the stored cost must have been an index delta...
  if (!qs.has_value || qs.stored_nonindex_key != CurrentNonIndexKey(q)) {
    return false;
  }
  // ...and no table/range component may sit on any of this query's tables:
  // those change the catalog content (or the rewrite) of the queries they
  // touch, and INUM models the base catalog.
  for (const Entry& entry : entries_) {
    const OverlayKind kind = entry.component->kind();
    if (kind != OverlayKind::kTable && kind != OverlayKind::kRangePartition) {
      continue;
    }
    const std::vector<TableId> touched =
        entry.component->TouchedTables(overlay_->catalog());
    if (touched.empty() || Intersects(qs.tables, touched)) return false;
  }
  return true;
}

Result<double> DesignSession::InumRecost(int q, const QueryState& qs) {
  // The bank rebuilds the model when the composed params changed (join-flag
  // deltas); the session never arms a deadline here — INUM recosting is the
  // cheap path, and budget policing happens per query in Evaluate().
  PARINDA_ASSIGN_OR_RETURN(InumCostModel * model,
                           inum_bank_->Model(q, overlay_->params(), nullptr));
  // The configuration the full path would see: the real indexes plus this
  // design's what-if indexes, per referenced table.
  std::vector<const IndexInfo*> config;
  for (TableId t : qs.tables) {
    for (const IndexInfo* index : catalog_.TableIndexes(t)) {
      config.push_back(index);
    }
    for (const IndexInfo* index : overlay_->index_set().IndexesFor(t)) {
      config.push_back(index);
    }
  }
  return model->EstimateCost(config);
}

Result<InteractiveReport> DesignSession::Evaluate() {
  PARINDA_FAILPOINT("design.evaluate");
  const auto fp_before = failpoint::AllHits();
  DegradationReport degradation;
  const int64_t plans_before = Planner::stats().plans_built;
  const int64_t evictions_before =
      governor_ != nullptr ? governor_->stats().evictions : 0;
  last_eval_inum_recosts_ = 0;

  const int nq = workload_ == nullptr ? 0 : workload_->size();
  PARINDA_CHECK(static_cast<int>(queries_.size()) == nq);

  // Budget expiry stops re-costing mid-way: finished queries report fresh
  // costs, the rest keep their previous (possibly zero) values and remain
  // pending, so a later Evaluate() with a fresh budget completes them.
  bool truncated = false;

  const EvalContext base_ctx{options_.params, /*parallelism=*/0,
                             options_.deadline, nullptr};
  {
    PhaseTimer timer(&degradation, "base", "design.base");
    for (int q = 0; q < nq; ++q) {
      QueryState& qs = queries_[static_cast<size_t>(q)];
      if (qs.has_base) continue;
      // Cached costs are served even after the deadline fires; only a cache
      // miss (a planner call) checks the budget.
      if (const auto cached = evaluator_->CachedBaseCost(q, options_.params);
          cached.has_value()) {
        qs.base_cost = *cached;
        qs.has_base = true;
        continue;
      }
      if (options_.deadline.Expired()) {
        truncated = true;
        break;
      }
      Result<double> base = evaluator_->BaseCost(q, base_ctx);
      if (!base.ok()) return base.status();
      qs.base_cost = *base;
      qs.has_base = true;
    }
  }

  PhaseTimer whatif_timer(&degradation, "whatif", "design.whatif");
  for (int q = 0; q < nq; ++q) {
    QueryState& qs = queries_[static_cast<size_t>(q)];
    const std::string key = CurrentKey(q);
    if (qs.has_value && qs.stored_key == key) continue;
    if (truncated || options_.deadline.Expired()) {
      truncated = true;
      break;
    }
    static metrics::Counter& eval_incremental =
        metrics::Registry::Global().counter("design.eval_incremental");
    static metrics::Counter& eval_full =
        metrics::Registry::Global().counter("design.eval_full");
    bool served = false;
    if (options_.inum_index_deltas && InumEligible(q, qs)) {
      // Index deltas never change the rewrite, so the cached rewritten_sql
      // (set by the prior full evaluation) stays correct. INUM's recomposed
      // cost is approximate and therefore never enters the engine's exact
      // cost cache — it lives only in this session's per-query state.
      Result<double> cost = InumRecost(q, qs);
      if (cost.ok()) {
        qs.whatif_cost = *cost;
        ++last_eval_inum_recosts_;
        eval_incremental.Increment();
        served = true;
      }
      // On INUM failure (e.g. a query shape it cannot model) fall through to
      // the exact path rather than failing the evaluation.
    }
    if (!served) {
      eval_full.Increment();
      WorkloadEvaluator::OverlayView view;
      view.catalog = &overlay_->catalog();
      view.fragments = &overlay_->fragments();
      view.hooks = &overlay_->hooks();
      view.params = overlay_->params();
      PARINDA_ASSIGN_OR_RETURN(WorkloadEvaluator::QueryEval eval,
                               evaluator_->EvaluateQuery(q, view, key));
      qs.whatif_cost = eval.cost;
      qs.rewritten_sql = std::move(eval.rewritten_sql);
    }
    qs.has_value = true;
    qs.stored_key = key;
    qs.stored_nonindex_key = CurrentNonIndexKey(q);
  }
  whatif_timer.Stop();
  if (truncated) degradation.AddFallback("evaluate:truncated");

  // Aggregation replicates the stateless evaluation's summation order
  // exactly (query order, benefit folded in as computed), so a warmed
  // session's report is bit-identical to a fresh one's.
  InteractiveReport report;
  report.per_query_base.assign(static_cast<size_t>(nq), 0.0);
  report.per_query_optimized.assign(static_cast<size_t>(nq), 0.0);
  report.per_query_benefit_pct.assign(static_cast<size_t>(nq), 0.0);
  report.rewritten_sql.assign(static_cast<size_t>(nq), "");
  for (int q = 0; q < nq; ++q) {
    const QueryState& qs = queries_[static_cast<size_t>(q)];
    const double base = qs.has_base ? qs.base_cost : 0.0;
    report.per_query_base[static_cast<size_t>(q)] = base;
    report.base_cost += base * workload_->queries[q].weight;
  }
  for (int q = 0; q < nq; ++q) {
    const QueryState& qs = queries_[static_cast<size_t>(q)];
    report.per_query_optimized[static_cast<size_t>(q)] = qs.whatif_cost;
    report.optimized_cost += qs.whatif_cost * workload_->queries[q].weight;
    report.rewritten_sql[static_cast<size_t>(q)] = qs.rewritten_sql;
    if (report.per_query_base[static_cast<size_t>(q)] > 0.0) {
      report.per_query_benefit_pct[static_cast<size_t>(q)] =
          100.0 *
          (report.per_query_base[static_cast<size_t>(q)] -
           report.per_query_optimized[static_cast<size_t>(q)]) /
          report.per_query_base[static_cast<size_t>(q)];
    }
    report.average_benefit_pct +=
        report.per_query_benefit_pct[static_cast<size_t>(q)];
  }
  if (nq > 0) report.average_benefit_pct /= nq;

  // Eviction during this evaluation means the budget forced re-planning
  // somewhere: costs are still exact, but the run degraded to more planner
  // calls — worth surfacing alongside budget truncation.
  if (governor_ != nullptr &&
      governor_->stats().evictions > evictions_before) {
    degradation.AddFallback("engine:cache-evicted");
  }

  last_eval_planner_calls_ = Planner::stats().plans_built - plans_before;
  degradation.failpoint_hits = failpoint::HitsSince(fp_before);
  report.degradation = std::move(degradation);
  return report;
}

SpillScope DesignSession::ComputeSpillScope() const {
  // Everything a cached cost depends on besides the key itself: the exact
  // cost parameters, the catalog statistics the planner read, and the
  // workload text and weights the query indexes refer to.
  SpillScope scope;
  scope.params_sig = ParamsSignature(options_.params);
  uint32_t crc = Crc32Update(0, DumpCatalogStats(catalog_));
  if (workload_ != nullptr) {
    for (const WorkloadQuery& query : workload_->queries) {
      crc = Crc32Update(crc, query.sql);
      crc = Crc32Update(crc, "\n");
      uint64_t weight_bits = 0;
      std::memcpy(&weight_bits, &query.weight, sizeof(weight_bits));
      char buf[20];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(weight_bits));
      crc = Crc32Update(crc, buf);
      crc = Crc32Update(crc, "\n");
    }
  }
  scope.scope_crc = crc;
  return scope;
}

Status DesignSession::SaveCache(const std::string& path) const {
  if (workload_ == nullptr || evaluator_ == nullptr) {
    return Status::FailedPrecondition(
        "SaveCache requires a workload (the cache is keyed by query index)");
  }
  return SaveCacheSpill(path, ComputeSpillScope(),
                        evaluator_->ExportCacheRecords(), options_.deadline);
}

Result<SpillLoadReport> DesignSession::LoadCache(const std::string& path) {
  if (workload_ == nullptr || evaluator_ == nullptr) {
    return Status::FailedPrecondition(
        "LoadCache requires a workload (the cache is keyed by query index)");
  }
  std::vector<CostCacheRecord> records;
  PARINDA_ASSIGN_OR_RETURN(
      SpillLoadReport report,
      LoadCacheSpill(path, ComputeSpillScope(), &records, options_.deadline));
  for (const CostCacheRecord& record : records) {
    PARINDA_RETURN_IF_ERROR(evaluator_->ImportCacheRecord(record));
  }
  return report;
}

std::vector<DesignSession::ComponentEntry> DesignSession::Components() const {
  std::vector<ComponentEntry> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    ComponentEntry e;
    e.id = entry.id;
    e.kind = entry.component->kind();
    e.description = entry.component->Describe(overlay_->catalog());
    out.push_back(std::move(e));
  }
  return out;
}

int DesignSession::pending_queries() const {
  int pending = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    if (Pending(static_cast<int>(q))) ++pending;
  }
  return pending;
}

}  // namespace parinda
