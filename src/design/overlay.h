#ifndef PARINDA_DESIGN_OVERLAY_H_
#define PARINDA_DESIGN_OVERLAY_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/cost_params.h"
#include "optimizer/hooks.h"
#include "whatif/whatif_horizontal.h"
#include "whatif/whatif_index.h"
#include "whatif/whatif_join.h"
#include "whatif/whatif_table.h"

namespace parinda {

/// The four what-if design-feature kinds of the paper's §3.2. The enum order
/// is the *composition order*: table overlays apply first (so indexes over
/// hypothetical fragments size correctly against the fragment's statistics),
/// then horizontal range partitionings, then indexes, then join flags.
enum class OverlayKind {
  kTable = 0,
  kRangePartition = 1,
  kIndex = 2,
  kJoinFlags = 3,
};

/// Stable lowercase name ("table", "range", "index", "join").
const char* OverlayKindName(OverlayKind kind);

class ComposedOverlay;

/// One composable what-if design feature. The four concrete kinds (made by
/// the Make*Overlay factories below) wrap the ad-hoc what-if mechanisms of
/// src/whatif/ behind a uniform interface so a DesignSession can hold a
/// heterogeneous set, compose it into one ComposedOverlay, and reason about
/// which queries a delta invalidates.
class OverlayComponent {
 public:
  virtual ~OverlayComponent() = default;

  virtual OverlayKind kind() const = 0;

  /// Base tables whose queries this component can influence. An empty result
  /// means the component is global (affects every query — join flags). For a
  /// feature targeting a hypothetical table (e.g. an index on a what-if
  /// fragment), the table is resolved through `catalog` to the *base* parent,
  /// since query → table dependencies are expressed in base-table ids.
  virtual std::vector<TableId> TouchedTables(
      const CatalogReader& catalog) const = 0;

  /// Human-readable one-liner (REPL `list`, DesignSession::Components).
  virtual std::string Describe(const CatalogReader& catalog) const = 0;

  /// Content signature: two components of the same kind with equal
  /// signatures contribute identically to any composed overlay. DesignSession
  /// feeds these to the engine's cost cache (WorkloadEvaluator::OverlayUnit),
  /// so dropping and re-adding an identical feature hits the cache instead of
  /// re-planning. Doubles are hex-encoded bit-exactly — two signatures are
  /// equal iff the definitions are.
  virtual std::string Signature() const = 0;

  /// Installs this feature into `overlay`; called by ComposedOverlay::Compose
  /// in kind-major order.
  [[nodiscard]] virtual Status ApplyTo(ComposedOverlay* overlay) const = 0;
};

std::unique_ptr<OverlayComponent> MakeIndexOverlay(WhatIfIndexDef def);
std::unique_ptr<OverlayComponent> MakeTableOverlay(WhatIfPartitionDef def);
std::unique_ptr<OverlayComponent> MakeRangePartitionOverlay(
    RangePartitionDef def);
std::unique_ptr<OverlayComponent> MakeJoinFlagsOverlay(WhatIfJoinDef def);

/// All four what-if mechanisms composed over one base catalog: a
/// WhatIfTableCatalog for hypothetical tables, a WhatIfIndexSet sized over
/// that overlay (so fragment indexes see fragment statistics), a HookRegistry
/// with the index-injection hook installed, and the cost parameters with
/// every join-flags component applied. This is the single object the planner
/// consumes — the seam parinda-lint's `overlay-internals` check keeps layers
/// above from re-wiring by hand.
///
/// A ComposedOverlay is single-use: construct, Compose once, then read. A
/// DesignSession rebuilds a fresh instance per delta, which makes overlay
/// state a pure function of the component set (the determinism guarantee of
/// DESIGN.md §9 rests on this).
class ComposedOverlay {
 public:
  /// `base` must outlive this overlay.
  explicit ComposedOverlay(const CatalogReader& base, CostParams params = {});

  ComposedOverlay(const ComposedOverlay&) = delete;
  ComposedOverlay& operator=(const ComposedOverlay&) = delete;

  /// Applies `components` in kind-major order (tables, ranges, indexes, join
  /// flags; insertion order within a kind). On error the overlay is
  /// half-built and must be discarded.
  [[nodiscard]] Status Compose(
      const std::vector<const OverlayComponent*>& components);

  /// The catalog the binder/rewriter/planner should see.
  const WhatIfTableCatalog& catalog() const { return tables_; }
  const WhatIfIndexSet& index_set() const { return indexes_; }
  /// Vertical-partition fragments in application order (rewriter input).
  const std::vector<const TableInfo*>& fragments() const { return fragments_; }
  /// Registry with the composed relation-info hook installed.
  const HookRegistry& hooks() const { return hooks_; }
  /// Session cost parameters with every join-flags component AND-composed.
  const CostParams& params() const { return params_; }

  // Feature installers, called from OverlayComponent::ApplyTo.
  [[nodiscard]] Status ApplyPartition(const WhatIfPartitionDef& def);
  [[nodiscard]] Status ApplyRangePartitioning(const RangePartitionDef& def);
  [[nodiscard]] Status ApplyIndex(const WhatIfIndexDef& def);
  [[nodiscard]] Status ApplyJoinFlags(const WhatIfJoinDef& def);

 private:
  CostParams params_;
  WhatIfTableCatalog tables_;
  WhatIfIndexSet indexes_;
  HookRegistry hooks_;
  std::vector<const TableInfo*> fragments_;
};

}  // namespace parinda

#endif  // PARINDA_DESIGN_OVERLAY_H_
