#include "design/overlay.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace parinda {

namespace {

/// Bit-exact rendering for signature strings (Value::ToString's decimal
/// formatting can collide for distinct doubles).
void AppendSignatureValue(std::string* out, const Value& value) {
  if (value.is_null()) {
    *out += "null";
    return;
  }
  if (value.type() == ValueType::kDouble) {
    const double d = value.AsDouble();
    unsigned long long bits = 0;
    static_assert(sizeof(bits) >= sizeof(d));
    std::memcpy(&bits, &d, sizeof(d));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "x%016llx", bits);
    *out += buf;
    return;
  }
  *out += value.ToString();
}

void AppendColumnIds(std::string* out, const std::vector<ColumnId>& columns) {
  *out += "[";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) *out += ",";
    *out += std::to_string(columns[i]);
  }
  *out += "]";
}

std::string TableName(const CatalogReader& catalog, TableId id) {
  const TableInfo* table = catalog.GetTable(id);
  return table != nullptr ? table->name : "table#" + std::to_string(id);
}

std::string ColumnList(const CatalogReader& catalog, TableId id,
                       const std::vector<ColumnId>& columns) {
  const TableInfo* table = catalog.GetTable(id);
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ",";
    if (table != nullptr && columns[i] >= 0 &&
        columns[i] < table->schema.num_columns()) {
      out += table->schema.column(columns[i]).name;
    } else {
      out += "col#" + std::to_string(columns[i]);
    }
  }
  return out;
}

/// Dependency tables for a feature targeting `table`: hypothetical tables
/// resolve to their base parent (query dependencies are in base ids); a
/// hypothetical table with no resolvable parent yields {} = global, the
/// conservative answer.
std::vector<TableId> BaseTablesFor(const CatalogReader& catalog,
                                   TableId table) {
  if (table < kWhatIfTableIdBase) return {table};
  const TableInfo* info = catalog.GetTable(table);
  if (info != nullptr && info->parent_table != kInvalidTableId) {
    return {info->parent_table};
  }
  return {};
}

class IndexOverlay : public OverlayComponent {
 public:
  explicit IndexOverlay(WhatIfIndexDef def) : def_(std::move(def)) {}
  OverlayKind kind() const override { return OverlayKind::kIndex; }
  std::vector<TableId> TouchedTables(
      const CatalogReader& catalog) const override {
    return BaseTablesFor(catalog, def_.table);
  }
  std::string Describe(const CatalogReader& catalog) const override {
    return "index " + def_.name + " on " + TableName(catalog, def_.table) +
           "(" + ColumnList(catalog, def_.table, def_.columns) + ")" +
           (def_.unique ? " unique" : "");
  }
  std::string Signature() const override {
    std::string out = def_.name + ":" + std::to_string(def_.table) + ":";
    AppendColumnIds(&out, def_.columns);
    out += def_.unique ? ":u" : ":n";
    return out;
  }
  Status ApplyTo(ComposedOverlay* overlay) const override {
    return overlay->ApplyIndex(def_);
  }

 private:
  WhatIfIndexDef def_;
};

class TableOverlay : public OverlayComponent {
 public:
  explicit TableOverlay(WhatIfPartitionDef def) : def_(std::move(def)) {}
  OverlayKind kind() const override { return OverlayKind::kTable; }
  std::vector<TableId> TouchedTables(
      const CatalogReader& catalog) const override {
    return BaseTablesFor(catalog, def_.parent);
  }
  std::string Describe(const CatalogReader& catalog) const override {
    return "partition " + def_.name + " of " +
           TableName(catalog, def_.parent) + " { " +
           ColumnList(catalog, def_.parent, def_.columns) + " }";
  }
  std::string Signature() const override {
    // The fragment name is plan-relevant: it appears in rewritten SQL.
    std::string out = def_.name + ":" + std::to_string(def_.parent) + ":";
    AppendColumnIds(&out, def_.columns);
    return out;
  }
  Status ApplyTo(ComposedOverlay* overlay) const override {
    return overlay->ApplyPartition(def_);
  }

 private:
  WhatIfPartitionDef def_;
};

class RangePartitionOverlay : public OverlayComponent {
 public:
  explicit RangePartitionOverlay(RangePartitionDef def)
      : def_(std::move(def)) {}
  OverlayKind kind() const override { return OverlayKind::kRangePartition; }
  std::vector<TableId> TouchedTables(
      const CatalogReader& catalog) const override {
    return BaseTablesFor(catalog, def_.parent);
  }
  std::string Describe(const CatalogReader& catalog) const override {
    return "range partitioning of " + TableName(catalog, def_.parent) +
           " on " + ColumnList(catalog, def_.parent, {def_.column}) +
           " into " + std::to_string(def_.bounds.size() + 1) + " ranges";
  }
  std::string Signature() const override {
    std::string out = std::to_string(def_.parent) + ":" +
                      std::to_string(def_.column) + ":[";
    for (size_t i = 0; i < def_.bounds.size(); ++i) {
      if (i > 0) out += ",";
      AppendSignatureValue(&out, def_.bounds[i]);
    }
    out += "]:" + def_.name_prefix;
    return out;
  }
  Status ApplyTo(ComposedOverlay* overlay) const override {
    return overlay->ApplyRangePartitioning(def_);
  }

 private:
  RangePartitionDef def_;
};

class JoinFlagsOverlay : public OverlayComponent {
 public:
  explicit JoinFlagsOverlay(WhatIfJoinDef def) : def_(def) {}
  OverlayKind kind() const override { return OverlayKind::kJoinFlags; }
  std::vector<TableId> TouchedTables(const CatalogReader&) const override {
    return {};  // global: join flags affect every query's plan search
  }
  std::string Describe(const CatalogReader&) const override {
    std::string out = "join flags";
    out += def_.enable_nestloop ? " nestloop=on" : " nestloop=off";
    out += def_.enable_mergejoin ? " mergejoin=on" : " mergejoin=off";
    out += def_.enable_hashjoin ? " hashjoin=on" : " hashjoin=off";
    return out;
  }
  std::string Signature() const override {
    std::string out;
    out += def_.enable_nestloop ? 'N' : 'n';
    out += def_.enable_mergejoin ? 'M' : 'm';
    out += def_.enable_hashjoin ? 'H' : 'h';
    return out;
  }
  Status ApplyTo(ComposedOverlay* overlay) const override {
    return overlay->ApplyJoinFlags(def_);
  }

 private:
  WhatIfJoinDef def_;
};

}  // namespace

const char* OverlayKindName(OverlayKind kind) {
  switch (kind) {
    case OverlayKind::kTable:
      return "table";
    case OverlayKind::kRangePartition:
      return "range";
    case OverlayKind::kIndex:
      return "index";
    case OverlayKind::kJoinFlags:
      return "join";
  }
  return "?";
}

std::unique_ptr<OverlayComponent> MakeIndexOverlay(WhatIfIndexDef def) {
  return std::make_unique<IndexOverlay>(std::move(def));
}
std::unique_ptr<OverlayComponent> MakeTableOverlay(WhatIfPartitionDef def) {
  return std::make_unique<TableOverlay>(std::move(def));
}
std::unique_ptr<OverlayComponent> MakeRangePartitionOverlay(
    RangePartitionDef def) {
  return std::make_unique<RangePartitionOverlay>(std::move(def));
}
std::unique_ptr<OverlayComponent> MakeJoinFlagsOverlay(WhatIfJoinDef def) {
  return std::make_unique<JoinFlagsOverlay>(def);
}

ComposedOverlay::ComposedOverlay(const CatalogReader& base, CostParams params)
    : params_(params), tables_(base), indexes_(tables_) {
  hooks_.set_relation_info_hook(indexes_.MakeHook());
}

Status ComposedOverlay::Compose(
    const std::vector<const OverlayComponent*>& components) {
  // Kind-major order makes the overlay a function of the component *set*
  // (plus per-kind insertion order), not of the interleaving of kinds — and
  // matches the order the stateless EvaluateDesign always used: partitions,
  // then range partitionings, then indexes.
  for (OverlayKind kind :
       {OverlayKind::kTable, OverlayKind::kRangePartition, OverlayKind::kIndex,
        OverlayKind::kJoinFlags}) {
    for (const OverlayComponent* component : components) {
      if (component->kind() != kind) continue;
      PARINDA_RETURN_IF_ERROR(component->ApplyTo(this));
    }
  }
  return Status::OK();
}

Status ComposedOverlay::ApplyPartition(const WhatIfPartitionDef& def) {
  PARINDA_ASSIGN_OR_RETURN(TableId id, tables_.AddPartition(def));
  fragments_.push_back(tables_.GetTable(id));
  return Status::OK();
}

Status ComposedOverlay::ApplyRangePartitioning(const RangePartitionDef& def) {
  PARINDA_ASSIGN_OR_RETURN(std::vector<TableId> children,
                           tables_.AddRangePartitioning(def));
  (void)children;  // children are reached through the shadowed parent
  return Status::OK();
}

Status ComposedOverlay::ApplyIndex(const WhatIfIndexDef& def) {
  PARINDA_ASSIGN_OR_RETURN(IndexId id, indexes_.AddIndex(def));
  (void)id;
  return Status::OK();
}

Status ComposedOverlay::ApplyJoinFlags(const WhatIfJoinDef& def) {
  params_ = WhatIfJoin::Apply(params_, def);
  return Status::OK();
}

}  // namespace parinda
