#ifndef PARINDA_DESIGN_DESIGN_SESSION_H_
#define PARINDA_DESIGN_DESIGN_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "design/overlay.h"
#include "engine/advice.h"
#include "engine/cache_governor.h"
#include "engine/cache_spill.h"
#include "engine/inum_bank.h"
#include "engine/workload_evaluator.h"
#include "workload/workload.h"

namespace parinda {

/// Scenario 1 output: "the average workload benefit and the individual
/// queries benefits are displayed"; rewritten queries can be saved.
///
/// Shares AdviceSummary with the advisor reports: `optimized_cost` /
/// `per_query_optimized` are the what-if design's costs. When
/// `degradation.degraded`, some queries kept their last-known (possibly
/// zero) costs; the next Evaluate() with a fresh budget completes them.
struct InteractiveReport : AdviceSummary {
  /// Per-query benefit in percent ((base - optimized) / base * 100).
  std::vector<double> per_query_benefit_pct;
  double average_benefit_pct = 0.0;
  /// Queries rewritten for the what-if partitions.
  std::vector<std::string> rewritten_sql;
};

/// Handle to one design feature inside a session (returned by Add*, consumed
/// by Drop). Handles are never reused within a session.
using OverlayId = int64_t;

struct DesignSessionOptions {
  CostParams params;
  /// When true, a query invalidated *only* by index deltas (and whose tables
  /// carry no table/range-partition components) is re-costed through INUM
  /// plan recomposition (§3.4) instead of full re-optimization. INUM's
  /// recomposed cost is a close approximation, not bit-identical to the
  /// planner's, so this is opt-in; with the default (false) the session is
  /// exact — invalidation alone already skips every untouched query, which
  /// is where the interactive-latency win comes from.
  bool inum_index_deltas = false;
  /// Time budget consulted by Evaluate() before each per-query planner or
  /// INUM call. On expiry the evaluation stops re-costing: already-finished
  /// queries report fresh costs, the rest keep their previous values and
  /// stay pending, and the report is marked degraded. Re-arm per call with
  /// DesignSession::set_deadline. Infinite by default.
  Deadline deadline;
  /// Byte budget for the session's evaluation caches (cost-cache entries and
  /// INUM model slots together). 0 (default) = unbounded, the pre-governor
  /// behavior. Under a budget, cold entries are LRU-evicted and their
  /// queries re-plan on the next touch — advice stays bit-identical to an
  /// unbudgeted session; only planner-call counts change. An Evaluate() in
  /// which eviction fired records `engine:cache-evicted` in its
  /// DegradationReport.
  int64_t memory_budget_bytes = 0;
};

/// An interactive what-if design session — the stateful core of the paper's
/// scenario 1 loop ("she creates several what-if table partitions and several
/// what-if indexes", re-checks the benefit, adjusts, repeats).
///
/// The session holds a set of OverlayComponents and a workload, and costs
/// queries through the shared evaluation engine (WorkloadEvaluator,
/// DESIGN.md §13): each query's cached cost is keyed on the signatures of the
/// overlay units touching its tables, so an Add* or Drop delta leaves the
/// keys — and the cached costs — of untouched queries intact (join flags are
/// global). Evaluate() after a single-table delta re-plans |queries
/// referencing that table| queries, not the whole workload; dropping back to
/// a previously evaluated design re-plans nothing at all, because the old
/// keys hit the engine cache.
///
/// Determinism guarantee: Evaluate() returns a report bit-identical to a
/// fresh stateless evaluation of the same component set, for *any*
/// interleaving of Add/Drop deltas that reaches that set (see DESIGN.md §9;
/// requires inum_index_deltas == false). Parinda::EvaluateDesign is exactly
/// that fresh one-shot session.
///
/// Not thread-safe: the component list and the per-query cost cache are
/// single-owner state, confined to the thread driving the session (the REPL
/// or one advisor call) — which is why they carry no PARINDA_GUARDED_BY
/// annotations (common/annotations.h); pool parallelism lives *below* the
/// session, inside InumCostModel and the advisors. `catalog` and the
/// workload must outlive the session, and the base catalog must not change
/// behind it (materializing a feature or re-ANALYZEing invalidates the
/// cached costs silently — start a new session after mutating the database).
class DesignSession {
 public:
  /// `workload` may be null (empty reports until SetWorkload).
  DesignSession(const CatalogReader& catalog, const Workload* workload,
                DesignSessionOptions options = {});
  ~DesignSession();

  DesignSession(const DesignSession&) = delete;
  DesignSession& operator=(const DesignSession&) = delete;

  // --- Deltas. Each Add* validates eagerly by recomposing the overlay: on
  // error nothing is added and the session is unchanged. ---

  [[nodiscard]] Result<OverlayId> AddIndex(WhatIfIndexDef def);
  [[nodiscard]] Result<OverlayId> AddPartition(WhatIfPartitionDef def);
  [[nodiscard]] Result<OverlayId> AddRangePartitioning(RangePartitionDef def);
  [[nodiscard]] Result<OverlayId> AddJoinFlags(WhatIfJoinDef def);

  /// Removes one feature. Fails (and leaves the session unchanged) when `id`
  /// is unknown or the remainder no longer composes (e.g. dropping a
  /// partition while an index on its fragment remains).
  [[nodiscard]] Status Drop(OverlayId id);

  /// Drops every feature.
  void ClearDesign();

  /// Replaces the workload; all cached per-query state is discarded.
  void SetWorkload(const Workload* workload);

  /// Re-arms the evaluation budget (deadlines are absolute instants, so a
  /// long-lived session sets a fresh one before each budgeted Evaluate()).
  void set_deadline(const Deadline& deadline) { options_.deadline = deadline; }

  /// Evaluates the current design over the workload, re-planning only
  /// invalidated queries. The first call on a fresh session plans everything
  /// (it *is* the stateless evaluation).
  [[nodiscard]] Result<InteractiveReport> Evaluate();

  // --- Durable cache spill (DESIGN.md §14) ---

  /// Writes the engine's cost cache to `path` (atomic temp+rename; see
  /// cache_spill.h for the format and failure matrix). Requires a workload.
  [[nodiscard]] Status SaveCache(const std::string& path) const;

  /// Warms the engine's cost cache from a spill file written by SaveCache
  /// under the same catalog, workload, and cost parameters. Corrupt records
  /// are skipped (counted in the report); a mismatched or unreadable file
  /// returns an error the caller should treat as "cache stays cold", never
  /// as session failure. Requires a workload.
  [[nodiscard]] Result<SpillLoadReport> LoadCache(const std::string& path);

  // --- Introspection ---

  struct ComponentEntry {
    OverlayId id = 0;
    OverlayKind kind = OverlayKind::kIndex;
    std::string description;
  };
  /// Current components in insertion order.
  std::vector<ComponentEntry> Components() const;

  /// The composed overlay backing the next Evaluate() (for EXPLAIN-style
  /// inspection; never null).
  const ComposedOverlay& overlay() const { return *overlay_; }

  /// Queries whose what-if cost the next Evaluate() must recompute.
  int pending_queries() const;
  /// PlanQuery invocations during the last Evaluate() (includes INUM's
  /// internal cache-fill calls).
  int64_t last_eval_planner_calls() const { return last_eval_planner_calls_; }
  /// Queries served by INUM recomposition during the last Evaluate().
  int last_eval_inum_recosts() const { return last_eval_inum_recosts_; }
  /// The cache governor, when `memory_budget_bytes` armed one; nullptr on
  /// unbudgeted sessions.
  const CacheGovernor* governor() const { return governor_.get(); }

 private:
  struct Entry {
    OverlayId id = 0;
    std::unique_ptr<OverlayComponent> component;
  };

  struct QueryState {
    /// Base tables the query references (deduplicated, from the binder).
    std::vector<TableId> tables;
    /// Base-design cost, held in session state (not read back from the
    /// engine cache at report time: under a memory budget the governor may
    /// evict the cache entry between the base phase and aggregation, and the
    /// report must not care). O(1) per query — bounded by the workload, so
    /// deliberately outside the governor's remit.
    bool has_base = false;
    double base_cost = 0.0;
    /// True once some evaluation (exact or INUM) stored a what-if cost.
    bool has_value = false;
    double whatif_cost = 0.0;
    std::string rewritten_sql;
    /// Engine cache key the stored cost was computed under; the query is
    /// pending while this differs from the current design's key.
    std::string stored_key;
    /// Same key restricted to non-index units — when it still matches, every
    /// delta since the stored cost was an index delta (the precondition for
    /// INUM plan recomposition).
    std::string stored_nonindex_key;
  };

  [[nodiscard]] Result<OverlayId> AddComponent(
      std::unique_ptr<OverlayComponent> component);
  /// Rebuilds overlay_ (and the engine's unit view of it) from entries_.
  /// The overlay is a pure function of the component list, which is what
  /// makes cached costs reusable across rebuilds.
  [[nodiscard]] Status Recompose();
  void RebuildQueryStates();
  /// Engine cache key of query `q` under the current design (and the
  /// non-index restriction of it). Requires a workload.
  std::string CurrentKey(int q) const;
  std::string CurrentNonIndexKey(int q) const;
  /// Whether each query's next Evaluate() must re-cost it; compared across a
  /// delta to count valid->pending transitions (`design.invalidations`).
  bool Pending(int q) const;
  std::vector<char> PendingSnapshot() const;
  void CountInvalidations(const std::vector<char>& was_pending);
  /// True when query `q` may be re-costed via INUM (index-only delta, no
  /// table/range component on any of its tables).
  bool InumEligible(int q, const QueryState& qs) const;
  [[nodiscard]] Result<double> InumRecost(int q, const QueryState& qs);
  /// What a spill file must match: the exact params signature plus a CRC
  /// over the catalog statistics and the workload text/weights.
  SpillScope ComputeSpillScope() const;

  const CatalogReader& catalog_;
  const Workload* workload_;
  DesignSessionOptions options_;
  std::vector<Entry> entries_;
  OverlayId next_id_ = 1;
  std::unique_ptr<ComposedOverlay> overlay_;
  /// The current design as the engine cache sees it: one (touched tables,
  /// signature) unit per component, in insertion order; nonindex_units_
  /// excludes index components.
  std::vector<OverlayUnit> units_;
  std::vector<OverlayUnit> nonindex_units_;
  /// Shared evaluation engine over (catalog_, *workload_); null without a
  /// workload, rebuilt by SetWorkload.
  std::unique_ptr<WorkloadEvaluator> evaluator_;
  /// Per-query INUM models for the incremental index-delta path; the bank
  /// rebuilds a model when the composed params change (join-flag deltas).
  std::unique_ptr<InumBank> inum_bank_;
  /// LRU governor over both caches when the options set a byte budget. The
  /// session drives both caches from one thread, so governing the bank's
  /// model slots is safe here (unlike AutoPart's parallel workers).
  std::unique_ptr<CacheGovernor> governor_;
  int evaluator_shard_ = 0;
  int bank_shard_ = 0;
  std::vector<QueryState> queries_;
  int64_t last_eval_planner_calls_ = 0;
  int last_eval_inum_recosts_ = 0;
};

}  // namespace parinda

#endif  // PARINDA_DESIGN_DESIGN_SESSION_H_
