#include "storage/heap_table.h"

#include <algorithm>

#include "catalog/size_model.h"

namespace parinda {

Result<RowId> HeapTable::Append(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table '" +
                                   schema_.name() + "'");
  }
  const int64_t bytes = RowBytes(row, schema_);
  const int64_t usable = kPageSize - kPageHeaderSize;
  const RowId id = static_cast<RowId>(rows_.size());
  if (page_first_row_.empty() || current_page_bytes_ + bytes > usable) {
    page_first_row_.push_back(id);
    current_page_bytes_ = 0;
  }
  current_page_bytes_ += bytes;
  rows_.push_back(std::move(row));
  return id;
}

int64_t HeapTable::num_pages() const {
  return std::max<int64_t>(1, static_cast<int64_t>(page_first_row_.size()));
}

int64_t HeapTable::PageOf(RowId id) const {
  if (page_first_row_.empty()) return 0;
  auto it = std::upper_bound(page_first_row_.begin(), page_first_row_.end(), id);
  return static_cast<int64_t>(it - page_first_row_.begin()) - 1;
}

int64_t HeapTable::RowBytes(const Row& row, const TableSchema& schema) {
  double offset = 0.0;
  for (size_t i = 0; i < row.size(); ++i) {
    const ValueType type = schema.column(static_cast<ColumnId>(i)).type;
    if (!row[i].is_null()) {
      offset = AlignUp(offset, TypeAlignment(type));
      offset += row[i].StorageSize();
    }
  }
  return kHeapTupleOverhead + static_cast<int64_t>(AlignUp(offset, 8));
}

}  // namespace parinda
