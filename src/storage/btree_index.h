#ifndef PARINDA_STORAGE_BTREE_INDEX_H_
#define PARINDA_STORAGE_BTREE_INDEX_H_

#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/heap_table.h"

namespace parinda {

/// A materialized B-tree index: sorted (key, RowId) entries with exact leaf
/// page accounting, so what-if size estimates (Equation 1) can be validated
/// against real builds — the comparison demo scenario 1 performs.
class BTreeIndex {
 public:
  /// Builds the index over `table` on `key_columns` (table ordinals).
  /// O(n log n); the build cost is what benchmark E1 contrasts with what-if
  /// simulation.
  [[nodiscard]] static Result<BTreeIndex> Build(const HeapTable& table,
                                  std::vector<ColumnId> key_columns);

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;
  BTreeIndex(BTreeIndex&&) = default;
  BTreeIndex& operator=(BTreeIndex&&) = default;

  const std::vector<ColumnId>& key_columns() const { return key_columns_; }
  int64_t num_entries() const { return static_cast<int64_t>(entries_.size()); }

  /// Exact leaf pages from entry packing.
  int64_t leaf_pages() const { return leaf_pages_; }
  /// Tree height above the leaf level.
  int height() const { return height_; }

  /// Row ids whose key satisfies lo <= key <= hi on the *first* key column
  /// (prefix range scan; lo/hi may be empty for open bounds). Results are in
  /// key order. Also reports how many leaf pages the scan touched.
  struct ScanResult {
    std::vector<RowId> row_ids;
    int64_t leaf_pages_touched = 0;
  };
  ScanResult RangeScan(const std::optional<Value>& lo, bool lo_inclusive,
                       const std::optional<Value>& hi, bool hi_inclusive) const;

  /// Row ids whose full key equals `key` (may be a key prefix).
  ScanResult EqualScan(const Row& key_prefix) const;

 private:
  struct Entry {
    Row key;
    RowId row_id;
  };

  BTreeIndex() = default;

  /// Leaf page holding the entry at `entry_index`.
  int64_t LeafPageOf(int64_t entry_index) const;

  std::vector<ColumnId> key_columns_;
  std::vector<Entry> entries_;
  /// entries-per-leaf-page boundaries: first entry index of each leaf page.
  std::vector<int64_t> leaf_first_entry_;
  int64_t leaf_pages_ = 0;
  int height_ = 0;
};

}  // namespace parinda

#endif  // PARINDA_STORAGE_BTREE_INDEX_H_
