#include "storage/btree_index.h"

#include <algorithm>

#include "catalog/size_model.h"

namespace parinda {

namespace {

/// On-page bytes of one index entry (paper's o + aligned key width).
int64_t EntryBytes(const Row& key, const std::vector<ColumnId>& key_columns,
                   const TableSchema& schema) {
  double offset = 0.0;
  for (size_t i = 0; i < key.size(); ++i) {
    const ValueType type = schema.column(key_columns[i]).type;
    if (!key[i].is_null()) {
      offset = AlignUp(offset, TypeAlignment(type));
      offset += key[i].StorageSize();
    }
  }
  return kIndexRowOverhead + static_cast<int64_t>(offset);
}

}  // namespace

Result<BTreeIndex> BTreeIndex::Build(const HeapTable& table,
                                     std::vector<ColumnId> key_columns) {
  if (key_columns.empty()) {
    return Status::InvalidArgument("index needs at least one key column");
  }
  for (ColumnId col : key_columns) {
    if (col < 0 || col >= table.schema().num_columns()) {
      return Status::InvalidArgument("index key column out of range");
    }
  }
  BTreeIndex index;
  index.key_columns_ = key_columns;
  index.entries_.reserve(static_cast<size_t>(table.num_rows()));
  for (RowId id = 0; id < table.num_rows(); ++id) {
    const Row& row = table.row(id);
    Row key;
    key.reserve(key_columns.size());
    for (ColumnId col : key_columns) key.push_back(row[col]);
    index.entries_.push_back(Entry{std::move(key), id});
  }
  std::stable_sort(index.entries_.begin(), index.entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return CompareRows(a.key, b.key) < 0;
                   });
  // Pack entries into leaf pages under the B-tree fill factor.
  const int64_t usable = static_cast<int64_t>(
      (kPageSize - kPageHeaderSize) * kBTreeFillFactor);
  int64_t page_bytes = 0;
  for (size_t i = 0; i < index.entries_.size(); ++i) {
    const int64_t bytes =
        EntryBytes(index.entries_[i].key, key_columns, table.schema());
    if (index.leaf_first_entry_.empty() || page_bytes + bytes > usable) {
      index.leaf_first_entry_.push_back(static_cast<int64_t>(i));
      page_bytes = 0;
    }
    page_bytes += bytes;
  }
  index.leaf_pages_ =
      std::max<int64_t>(1, static_cast<int64_t>(index.leaf_first_entry_.size()));
  index.height_ =
      EstimateBTreeHeight(static_cast<double>(index.leaf_pages_));
  return index;
}

BTreeIndex::ScanResult BTreeIndex::RangeScan(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive) const {
  ScanResult result;
  auto first_key_less = [](const Entry& e, const Value& v) {
    return e.key[0].Compare(v) < 0;
  };
  auto value_less = [](const Value& v, const Entry& e) {
    return v.Compare(e.key[0]) < 0;
  };
  auto begin = entries_.begin();
  auto end = entries_.end();
  if (lo.has_value()) {
    begin = lo_inclusive
                ? std::lower_bound(entries_.begin(), entries_.end(), *lo,
                                   first_key_less)
                : std::upper_bound(entries_.begin(), entries_.end(), *lo,
                                   value_less);
  }
  if (hi.has_value()) {
    end = hi_inclusive
              ? std::upper_bound(entries_.begin(), entries_.end(), *hi,
                                 value_less)
              : std::lower_bound(entries_.begin(), entries_.end(), *hi,
                                 first_key_less);
  }
  if (begin < end) {
    result.row_ids.reserve(static_cast<size_t>(end - begin));
    for (auto it = begin; it != end; ++it) result.row_ids.push_back(it->row_id);
    const int64_t first = begin - entries_.begin();
    const int64_t last = (end - entries_.begin()) - 1;
    result.leaf_pages_touched = LeafPageOf(last) - LeafPageOf(first) + 1;
  }
  return result;
}

BTreeIndex::ScanResult BTreeIndex::EqualScan(const Row& key_prefix) const {
  ScanResult result;
  const size_t k = key_prefix.size();
  auto prefix_less = [k](const Row& a, const Row& b) {
    for (size_t i = 0; i < k; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), key_prefix,
      [&](const Entry& e, const Row& key) { return prefix_less(e.key, key); });
  auto end = std::upper_bound(
      entries_.begin(), entries_.end(), key_prefix,
      [&](const Row& key, const Entry& e) { return prefix_less(key, e.key); });
  if (begin < end) {
    result.row_ids.reserve(static_cast<size_t>(end - begin));
    for (auto it = begin; it != end; ++it) result.row_ids.push_back(it->row_id);
    const int64_t first = begin - entries_.begin();
    const int64_t last = (end - entries_.begin()) - 1;
    result.leaf_pages_touched = LeafPageOf(last) - LeafPageOf(first) + 1;
  }
  return result;
}

int64_t BTreeIndex::LeafPageOf(int64_t entry_index) const {
  if (leaf_first_entry_.empty()) return 0;
  auto it = std::upper_bound(leaf_first_entry_.begin(),
                             leaf_first_entry_.end(), entry_index);
  return static_cast<int64_t>(it - leaf_first_entry_.begin()) - 1;
}

}  // namespace parinda
