#include "storage/database.h"

#include <algorithm>

namespace parinda {

Result<TableId> Database::CreateTable(TableSchema schema,
                                      std::vector<ColumnId> primary_key) {
  auto heap = std::make_unique<HeapTable>(schema);
  PARINDA_ASSIGN_OR_RETURN(
      TableId id, catalog_.CreateTable(std::move(schema), std::move(primary_key)));
  heaps_[id] = std::move(heap);
  return id;
}

Status Database::Insert(TableId table, Row row) {
  HeapTable* heap = GetMutableHeapTable(table);
  if (heap == nullptr) {
    return Status::NotFound("no heap for table id " + std::to_string(table));
  }
  PARINDA_ASSIGN_OR_RETURN(RowId unused, heap->Append(std::move(row)));
  (void)unused;
  return Status::OK();
}

Status Database::InsertMany(TableId table, std::vector<Row> rows) {
  HeapTable* heap = GetMutableHeapTable(table);
  if (heap == nullptr) {
    return Status::NotFound("no heap for table id " + std::to_string(table));
  }
  heap->Reserve(heap->num_rows() + static_cast<int64_t>(rows.size()));
  for (Row& row : rows) {
    PARINDA_ASSIGN_OR_RETURN(RowId unused, heap->Append(std::move(row)));
    (void)unused;
  }
  return Status::OK();
}

Status Database::Analyze(TableId table, const AnalyzeOptions& options) {
  const HeapTable* heap = GetHeapTable(table);
  if (heap == nullptr) {
    return Status::NotFound("no heap for table id " + std::to_string(table));
  }
  PARINDA_ASSIGN_OR_RETURN(std::vector<ColumnStats> stats,
                           AnalyzeTable(*heap, options));
  return catalog_.UpdateTableStats(table,
                                   static_cast<double>(heap->num_rows()),
                                   static_cast<double>(heap->num_pages()),
                                   std::move(stats));
}

Result<IndexId> Database::BuildIndex(const std::string& name, TableId table,
                                     std::vector<ColumnId> columns,
                                     bool unique) {
  const HeapTable* heap = GetHeapTable(table);
  if (heap == nullptr) {
    return Status::NotFound("no heap for table id " + std::to_string(table));
  }
  PARINDA_ASSIGN_OR_RETURN(IndexId id,
                           catalog_.CreateIndex(name, table, columns, unique));
  auto built = BTreeIndex::Build(*heap, columns);
  if (!built.ok()) {
    // Roll back the catalog entry so a failed build leaves no trace.
    (void)catalog_.DropIndex(id);
    return built.status();
  }
  auto btree = std::make_unique<BTreeIndex>(std::move(built).value());
  PARINDA_RETURN_IF_ERROR(catalog_.UpdateIndexStats(
      id, static_cast<double>(btree->leaf_pages()), btree->height(),
      static_cast<double>(btree->num_entries())));
  btrees_[id] = std::move(btree);
  return id;
}

Status Database::DropIndex(IndexId id) {
  PARINDA_RETURN_IF_ERROR(catalog_.DropIndex(id));
  btrees_.erase(id);
  return Status::OK();
}

Status Database::DropTable(TableId id) {
  // Indexes on the table go away with the catalog entry; drop their trees.
  for (const IndexInfo* index : catalog_.TableIndexes(id)) {
    btrees_.erase(index->id);
  }
  // Unlink from any parent whose horizontal partitioning references it.
  for (const TableInfo* table : catalog_.AllTables()) {
    if (std::find(table->horizontal_children.begin(),
                  table->horizontal_children.end(),
                  id) != table->horizontal_children.end()) {
      TableInfo* parent = catalog_.GetMutableTable(table->id);
      parent->horizontal_children.clear();
      parent->partition_column = kInvalidColumnId;
      parent->partition_bounds.clear();
    }
  }
  PARINDA_RETURN_IF_ERROR(catalog_.DropTable(id));
  heaps_.erase(id);
  return Status::OK();
}

Result<std::vector<TableId>> Database::MaterializeRangePartitions(
    TableId parent, ColumnId column, const std::vector<Value>& bounds) {
  const TableInfo* parent_info = catalog_.GetTable(parent);
  const HeapTable* parent_heap = GetHeapTable(parent);
  if (parent_info == nullptr || parent_heap == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(parent));
  }
  if (column < 0 || column >= parent_info->schema.num_columns()) {
    return Status::InvalidArgument("partition column out of range");
  }
  if (bounds.empty()) {
    return Status::InvalidArgument("range partitioning needs split points");
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i - 1].Compare(bounds[i]) >= 0) {
      return Status::InvalidArgument("split points must be ascending");
    }
  }
  std::vector<TableId> children;
  for (size_t k = 0; k <= bounds.size(); ++k) {
    TableSchema schema(parent_info->name + "_hp" + std::to_string(k),
                       parent_info->schema.columns());
    PARINDA_ASSIGN_OR_RETURN(
        TableId id, CreateTable(std::move(schema), parent_info->primary_key));
    catalog_.GetMutableTable(id)->parent_table = parent;
    children.push_back(id);
  }
  // Route each row to its range (NULL partition keys go to the first child,
  // matching NULLS-in-default-partition behaviour).
  for (RowId rid = 0; rid < parent_heap->num_rows(); ++rid) {
    const Row& row = parent_heap->row(rid);
    const Value& key = row[column];
    size_t k = 0;
    if (!key.is_null()) {
      while (k < bounds.size() && key.Compare(bounds[k]) >= 0) ++k;
    }
    PARINDA_RETURN_IF_ERROR(Insert(children[k], row));
  }
  for (TableId child : children) {
    PARINDA_RETURN_IF_ERROR(Analyze(child));
  }
  TableInfo* info = catalog_.GetMutableTable(parent);
  info->horizontal_children = children;
  info->partition_column = column;
  info->partition_bounds = bounds;
  return children;
}

Result<TableId> Database::MaterializeVerticalPartition(
    TableId parent, const std::string& name, std::vector<ColumnId> columns) {
  const TableInfo* parent_info = catalog_.GetTable(parent);
  const HeapTable* parent_heap = GetHeapTable(parent);
  if (parent_info == nullptr || parent_heap == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(parent));
  }
  // Fragment columns = parent primary key + requested columns (deduped,
  // preserving parent order for the PK prefix).
  std::vector<ColumnId> frag_columns = parent_info->primary_key;
  for (ColumnId col : columns) {
    if (col < 0 || col >= parent_info->schema.num_columns()) {
      return Status::InvalidArgument("partition column out of range");
    }
    if (std::find(frag_columns.begin(), frag_columns.end(), col) ==
        frag_columns.end()) {
      frag_columns.push_back(col);
    }
  }
  TableSchema schema(name, {});
  for (ColumnId col : frag_columns) {
    schema.AddColumn(parent_info->schema.column(col));
  }
  // PK of the fragment = the copied parent PK columns (always the prefix).
  std::vector<ColumnId> frag_pk;
  for (size_t i = 0; i < parent_info->primary_key.size(); ++i) {
    frag_pk.push_back(static_cast<ColumnId>(i));
  }
  PARINDA_ASSIGN_OR_RETURN(TableId id,
                           CreateTable(std::move(schema), std::move(frag_pk)));
  HeapTable* heap = GetMutableHeapTable(id);
  heap->Reserve(parent_heap->num_rows());
  for (RowId rid = 0; rid < parent_heap->num_rows(); ++rid) {
    const Row& src = parent_heap->row(rid);
    Row dst;
    dst.reserve(frag_columns.size());
    for (ColumnId col : frag_columns) dst.push_back(src[col]);
    PARINDA_ASSIGN_OR_RETURN(RowId unused, heap->Append(std::move(dst)));
    (void)unused;
  }
  TableInfo* info = catalog_.GetMutableTable(id);
  info->parent_table = parent;
  info->parent_columns = frag_columns;
  PARINDA_RETURN_IF_ERROR(Analyze(id));
  return id;
}

const HeapTable* Database::GetHeapTable(TableId id) const {
  auto it = heaps_.find(id);
  return it == heaps_.end() ? nullptr : it->second.get();
}

HeapTable* Database::GetMutableHeapTable(TableId id) {
  auto it = heaps_.find(id);
  return it == heaps_.end() ? nullptr : it->second.get();
}

const BTreeIndex* Database::GetBTree(IndexId id) const {
  auto it = btrees_.find(id);
  return it == btrees_.end() ? nullptr : it->second.get();
}

}  // namespace parinda
