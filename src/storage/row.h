#ifndef PARINDA_STORAGE_ROW_H_
#define PARINDA_STORAGE_ROW_H_

#include <cstdint>
#include <vector>

#include "catalog/value.h"

namespace parinda {

/// One tuple: a vector of Values, parallel to a schema's columns.
using Row = std::vector<Value>;

/// Row identifier within a heap table (insertion order position).
using RowId = int64_t;

/// Lexicographic three-way comparison of two rows (used by sort nodes and
/// B-tree keys). Rows must have equal arity.
int CompareRows(const Row& a, const Row& b);

/// Combined hash of all values in the row.
size_t HashRow(const Row& row);

}  // namespace parinda

#endif  // PARINDA_STORAGE_ROW_H_
