#ifndef PARINDA_STORAGE_DATABASE_H_
#define PARINDA_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/analyze.h"
#include "storage/btree_index.h"
#include "storage/heap_table.h"

namespace parinda {

/// One database instance: catalog + heap tables + materialized indexes.
///
/// This is the substrate PARINDA tunes. The advisor layers never mutate data;
/// they read statistics through `catalog()` and, when the user asks to
/// "physically create" a suggestion (demo scenarios 2 & 3), call
/// `BuildIndex` / `MaterializeVerticalPartition`.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates an empty table with the given schema and optional primary key
  /// (by column ordinal).
  [[nodiscard]] Result<TableId> CreateTable(TableSchema schema,
                              std::vector<ColumnId> primary_key = {});

  /// Appends a row to a table. Invalidates statistics until the next Analyze.
  [[nodiscard]] Status Insert(TableId table, Row row);

  /// Bulk-append; reserves storage up front.
  [[nodiscard]] Status InsertMany(TableId table, std::vector<Row> rows);

  /// Runs the statistics pass and stores results into the catalog.
  [[nodiscard]] Status Analyze(TableId table, const AnalyzeOptions& options = {});

  /// Creates *and builds* a real index; updates the catalog with measured
  /// sizes. The expensive operation the what-if layer avoids.
  [[nodiscard]] Result<IndexId> BuildIndex(const std::string& name, TableId table,
                             std::vector<ColumnId> columns,
                             bool unique = false);

  [[nodiscard]] Status DropIndex(IndexId id);

  /// Drops a table, its heap storage, and every index built on it. Clears
  /// horizontal-partition metadata pointing at it from a parent.
  [[nodiscard]] Status DropTable(TableId id);

  /// Materializes a horizontal range partitioning of `parent` on `column`
  /// with ascending split points `bounds`: creates bounds.size()+1 child
  /// tables named `<parent>_hp<k>` holding the rows of each range, analyzes
  /// them, and records the partitioning metadata on the parent so the
  /// planner scans it as a pruned Append. Returns the child ids.
  [[nodiscard]] Result<std::vector<TableId>> MaterializeRangePartitions(
      TableId parent, ColumnId column, const std::vector<Value>& bounds);

  /// Materializes a vertical partition of `parent`: a new table named `name`
  /// holding the parent's primary key plus `columns`, with data copied and
  /// analyzed. Returns the new table id. What-if tables simulate exactly
  /// this.
  [[nodiscard]] Result<TableId> MaterializeVerticalPartition(TableId parent,
                                               const std::string& name,
                                               std::vector<ColumnId> columns);

  const HeapTable* GetHeapTable(TableId id) const;
  HeapTable* GetMutableHeapTable(TableId id);
  const BTreeIndex* GetBTree(IndexId id) const;

 private:
  Catalog catalog_;
  std::map<TableId, std::unique_ptr<HeapTable>> heaps_;
  std::map<IndexId, std::unique_ptr<BTreeIndex>> btrees_;
};

}  // namespace parinda

#endif  // PARINDA_STORAGE_DATABASE_H_
