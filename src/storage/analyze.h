#ifndef PARINDA_STORAGE_ANALYZE_H_
#define PARINDA_STORAGE_ANALYZE_H_

#include <vector>

#include "catalog/column_stats.h"
#include "common/status.h"
#include "storage/heap_table.h"

namespace parinda {

/// Knobs for the statistics pass, modelled on PostgreSQL ANALYZE.
struct AnalyzeOptions {
  /// Max MCV entries and histogram buckets per column
  /// (PostgreSQL's default_statistics_target).
  int stats_target = 100;
  /// Rows to sample; 0 analyzes the whole table. PostgreSQL samples
  /// 300 * stats_target rows; sampled runs extrapolate distinct counts with
  /// the Duj1 estimator, as ANALYZE does.
  int64_t sample_rows = 0;
  /// Seed for the deterministic sampling permutation.
  uint64_t sample_seed = 0x5eed;
};

/// Computes statistics for every column of `table` — over the whole table
/// by default, or over a deterministic seeded sample when
/// `options.sample_rows` is set. Returns one ColumnStats per schema column.
[[nodiscard]] Result<std::vector<ColumnStats>> AnalyzeTable(
    const HeapTable& table, const AnalyzeOptions& options = {});

/// Statistics for a single column, exposed for targeted re-analysis and
/// tests.
ColumnStats AnalyzeColumn(const HeapTable& table, ColumnId column,
                          const AnalyzeOptions& options = {});

}  // namespace parinda

#endif  // PARINDA_STORAGE_ANALYZE_H_
