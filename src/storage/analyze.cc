#include "storage/analyze.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "catalog/types.h"
#include "common/random.h"

namespace parinda {

namespace {

/// Pearson correlation between physical row position and value rank — the
/// statistic PostgreSQL stores as pg_stats.correlation and the cost model
/// uses to interpolate between best-case and worst-case index scan I/O.
double ComputeCorrelation(const std::vector<std::pair<Value, int64_t>>& sorted) {
  const size_t n = sorted.size();
  if (n < 2) return 0.0;
  // sorted[i].second is the physical position of the i-th smallest value;
  // correlate rank i against position.
  double mean = (static_cast<double>(n) - 1.0) / 2.0;
  double num = 0.0;
  double den_rank = 0.0;
  double den_pos = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dr = static_cast<double>(i) - mean;
    const double dp = static_cast<double>(sorted[i].second) - mean;
    num += dr * dp;
    den_rank += dr * dr;
    den_pos += dp * dp;
  }
  if (den_rank <= 0.0 || den_pos <= 0.0) return 0.0;
  return num / std::sqrt(den_rank * den_pos);
}

/// Deterministic sample of row ids in physical order (Floyd's algorithm
/// over a seeded RNG); empty when no sampling is requested.
std::vector<RowId> SampleRowIds(int64_t total_rows,
                                const AnalyzeOptions& options) {
  if (options.sample_rows <= 0 || options.sample_rows >= total_rows) {
    return {};
  }
  Random rng(options.sample_seed);
  std::vector<RowId> ids;
  ids.reserve(static_cast<size_t>(options.sample_rows));
  // Simple distinct-sampling: draw until enough unique ids (sample sizes are
  // far below the table size in practice).
  std::vector<bool> taken(static_cast<size_t>(total_rows), false);
  while (static_cast<int64_t>(ids.size()) < options.sample_rows) {
    const RowId id = static_cast<RowId>(
        rng.Uniform(static_cast<uint64_t>(total_rows)));
    if (!taken[static_cast<size_t>(id)]) {
      taken[static_cast<size_t>(id)] = true;
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

ColumnStats AnalyzeColumn(const HeapTable& table, ColumnId column,
                          const AnalyzeOptions& options) {
  ColumnStats stats;
  const int64_t total_rows = table.num_rows();
  const ValueType type = table.schema().column(column).type;
  if (total_rows == 0) {
    stats.avg_width = TypeFixedSize(type) > 0 ? TypeFixedSize(type) : 16;
    return stats;
  }
  const std::vector<RowId> sample = SampleRowIds(total_rows, options);
  const bool sampled = !sample.empty();
  const int64_t considered =
      sampled ? static_cast<int64_t>(sample.size()) : total_rows;

  // Gather non-null values with their physical positions.
  std::vector<std::pair<Value, int64_t>> values;
  values.reserve(static_cast<size_t>(considered));
  int64_t nulls = 0;
  double width_sum = 0.0;
  for (int64_t k = 0; k < considered; ++k) {
    const RowId id = sampled ? sample[static_cast<size_t>(k)] : k;
    const Value& v = table.row(id)[column];
    if (v.is_null()) {
      ++nulls;
      continue;
    }
    width_sum += v.StorageSize();
    values.emplace_back(v, id);
  }
  stats.null_frac = static_cast<double>(nulls) / static_cast<double>(considered);
  if (values.empty()) {
    stats.avg_width = TypeFixedSize(type) > 0 ? TypeFixedSize(type) : 16;
    return stats;
  }
  stats.avg_width = width_sum / static_cast<double>(values.size());

  std::stable_sort(values.begin(), values.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.Compare(b.first) < 0;
                   });
  stats.min_value = values.front().first;
  stats.max_value = values.back().first;
  if (TypeIsOrdered(type)) {
    stats.correlation = ComputeCorrelation(values);
  }

  // Runs of equal values -> (value, count), already in value order.
  struct Group {
    Value value;
    int64_t count;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < values.size();) {
    size_t j = i + 1;
    while (j < values.size() &&
           values[j].first.Compare(values[i].first) == 0) {
      ++j;
    }
    groups.push_back(Group{values[i].first, static_cast<int64_t>(j - i)});
    i = j;
  }
  double distinct = static_cast<double>(groups.size());
  const double nonnull = static_cast<double>(values.size());

  if (sampled) {
    // Extrapolate distinct counts from the sample with the Duj1 estimator
    // (Haas & Stokes), exactly like PostgreSQL's ANALYZE: f1 is the number
    // of values seen exactly once.
    double f1 = 0.0;
    for (const Group& g : groups) {
      if (g.count == 1) f1 += 1.0;
    }
    const double n = nonnull;
    const double big_n = static_cast<double>(total_rows);
    if (f1 >= n) {
      // Every sampled value unique: assume the column scales with the table.
      distinct = big_n;
    } else if (n > 0.0) {
      const double denom = n - f1 + f1 * n / big_n;
      if (denom > 0.0) {
        distinct = std::min(big_n, n * distinct / denom);
      }
    }
  }

  // PostgreSQL convention: if the distinct count appears to scale with the
  // table (> 10% of rows), store it as a negative fraction.
  const double effective_rows =
      sampled ? static_cast<double>(total_rows) : nonnull;
  if (distinct > 0.1 * effective_rows) {
    stats.n_distinct = -distinct / static_cast<double>(total_rows);
  } else {
    stats.n_distinct = distinct;
  }

  // MCVs: values noticeably more frequent than average, capped at
  // stats_target. Skip when every value is unique.
  std::vector<size_t> by_freq(groups.size());
  std::iota(by_freq.begin(), by_freq.end(), 0);
  std::stable_sort(by_freq.begin(), by_freq.end(), [&](size_t a, size_t b) {
    return groups[a].count > groups[b].count;
  });
  const double avg_count = nonnull / std::max(1.0, static_cast<double>(groups.size()));
  std::vector<bool> is_mcv(groups.size(), false);
  if (distinct < nonnull) {
    for (size_t k = 0;
         k < by_freq.size() && stats.mcv_values.size() <
                                   static_cast<size_t>(options.stats_target);
         ++k) {
      const Group& g = groups[by_freq[k]];
      if (g.count <= 1) break;
      if (static_cast<double>(g.count) < 1.25 * avg_count &&
          static_cast<double>(groups.size()) >
              static_cast<double>(options.stats_target)) {
        break;
      }
      is_mcv[by_freq[k]] = true;
      stats.mcv_values.push_back(g.value);
      stats.mcv_freqs.push_back(static_cast<double>(g.count) /
                                static_cast<double>(considered));
    }
  }

  // Equi-depth histogram over the non-MCV values.
  if (TypeIsOrdered(type)) {
    std::vector<Value> rest;
    rest.reserve(values.size());
    size_t gi = 0;
    int64_t consumed = 0;
    for (const auto& [v, pos] : values) {
      // Advance the group cursor to the group containing v.
      while (consumed >= groups[gi].count) {
        consumed = 0;
        ++gi;
      }
      if (!is_mcv[gi]) rest.push_back(v);
      ++consumed;
    }
    // Need at least two distinct values to form a bucket.
    if (rest.size() >= 2 && rest.front().Compare(rest.back()) != 0) {
      const int buckets =
          std::min<int>(options.stats_target,
                        static_cast<int>(rest.size()) - 1);
      stats.histogram_bounds.reserve(static_cast<size_t>(buckets) + 1);
      for (int b = 0; b <= buckets; ++b) {
        const size_t pos = static_cast<size_t>(
            std::llround(static_cast<double>(b) *
                         static_cast<double>(rest.size() - 1) / buckets));
        stats.histogram_bounds.push_back(rest[pos]);
      }
    }
  }
  return stats;
}

Result<std::vector<ColumnStats>> AnalyzeTable(const HeapTable& table,
                                              const AnalyzeOptions& options) {
  std::vector<ColumnStats> out;
  out.reserve(static_cast<size_t>(table.schema().num_columns()));
  for (ColumnId col = 0; col < table.schema().num_columns(); ++col) {
    out.push_back(AnalyzeColumn(table, col, options));
  }
  return out;
}

}  // namespace parinda
