#include "storage/row.h"

#include "common/check.h"

namespace parinda {

int CompareRows(const Row& a, const Row& b) {
  PARINDA_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678u;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace parinda
