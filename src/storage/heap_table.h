#ifndef PARINDA_STORAGE_HEAP_TABLE_H_
#define PARINDA_STORAGE_HEAP_TABLE_H_

#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/row.h"

namespace parinda {

/// In-memory heap table with PostgreSQL-style page accounting.
///
/// Rows live in insertion order (that order *is* the physical order the
/// correlation statistic is computed against). Page boundaries are tracked so
/// sequential and index scans can charge realistic page I/O.
class HeapTable {
 public:
  explicit HeapTable(TableSchema schema) : schema_(std::move(schema)) {}

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;
  HeapTable(HeapTable&&) = default;
  HeapTable& operator=(HeapTable&&) = default;

  const TableSchema& schema() const { return schema_; }

  /// Appends a row; fails on arity mismatch. Returns the new RowId.
  [[nodiscard]] Result<RowId> Append(Row row);

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const Row& row(RowId id) const { return rows_[static_cast<size_t>(id)]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Heap pages occupied, from exact per-row byte packing.
  int64_t num_pages() const;

  /// Page number holding `id` (for index-scan page-touch accounting).
  int64_t PageOf(RowId id) const;

  /// Reserves capacity ahead of bulk loads.
  void Reserve(int64_t rows) { rows_.reserve(static_cast<size_t>(rows)); }

 private:
  /// Bytes a row occupies on a page, header + aligned data.
  static int64_t RowBytes(const Row& row, const TableSchema& schema);

  TableSchema schema_;
  std::vector<Row> rows_;
  /// First row id of each page; pages_[p] <= id < pages_[p+1].
  std::vector<RowId> page_first_row_;
  int64_t current_page_bytes_ = 0;
};

}  // namespace parinda

#endif  // PARINDA_STORAGE_HEAP_TABLE_H_
