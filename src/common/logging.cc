#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "common/annotations.h"

namespace parinda {

namespace {
// ordering: relaxed — a configuration knob read per log statement. Level
// changes need no happens-before with the messages themselves (a message
// racing a SetLogLevel may use either level, which is the documented
// behavior); the sink mutex below orders the actual stream writes.
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes sink writes so lines from pool workers never interleave
// mid-line. Function-local static: safe during static init/teardown logging.
Mutex& SinkMutex() {
  static Mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // The log sink itself is the one legitimate stderr writer in src/; the
    // sink mutex keeps one statement's line atomic under concurrent logging.
    MutexLock lock(SinkMutex());
    std::cerr << stream_.str() << std::endl;  // parinda-lint: allow(iostream-in-lib)
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace parinda
