#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace parinda {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // The log sink itself is the one legitimate stderr writer in src/.
    std::cerr << stream_.str() << std::endl;  // parinda-lint: allow(iostream-in-lib)
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace parinda
