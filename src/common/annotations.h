#ifndef PARINDA_COMMON_ANNOTATIONS_H_
#define PARINDA_COMMON_ANNOTATIONS_H_

#include <mutex>

/// Thread-safety annotations and the annotated mutex types they attach to.
///
/// The macros expand to Clang's thread-safety attributes when the compiler
/// supports them (clang with -Wthread-safety; enable project-wide with
/// -DPARINDA_THREAD_SAFETY=ON) and to nothing elsewhere, so annotated code
/// compiles identically under GCC. The same annotations are checked
/// independently — and cross-file — by parinda-analyze's lock-discipline
/// pass, which runs on every toolchain (see tools/analyze/ and DESIGN.md
/// §11), so the discipline is enforced even on a GCC-only CI container.
///
/// Usage:
///
///   class Cache {
///    private:
///     Mutex mu_;
///     std::map<K, V> entries_ PARINDA_GUARDED_BY(mu_);
///     void EvictLocked() PARINDA_REQUIRES(mu_);   // caller holds mu_
///     V Lookup(K k) PARINDA_EXCLUDES(mu_);        // caller must NOT hold
///   };
///
/// Clang's analysis only understands mutexes whose type is itself annotated
/// as a capability. libstdc++'s std::mutex is not, so library code guards
/// shared state with the `parinda::Mutex` wrapper below and takes scopes
/// with `parinda::MutexLock` (drop-in for std::lock_guard; exposes the
/// underlying std::unique_lock for condition-variable waits).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PARINDA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PARINDA_THREAD_ANNOTATION
#define PARINDA_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define PARINDA_CAPABILITY(name) PARINDA_THREAD_ANNOTATION(capability(name))
/// Declares an RAII type that acquires on construction, releases on scope exit.
#define PARINDA_SCOPED_CAPABILITY PARINDA_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read or written while holding `mu`.
#define PARINDA_GUARDED_BY(mu) PARINDA_THREAD_ANNOTATION(guarded_by(mu))
/// Pointer field: the *pointee* may only be touched while holding `mu`.
#define PARINDA_PT_GUARDED_BY(mu) PARINDA_THREAD_ANNOTATION(pt_guarded_by(mu))
/// Function requires the caller to already hold the named mutex(es).
#define PARINDA_REQUIRES(...) \
  PARINDA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function must be entered with the named mutex(es) NOT held.
#define PARINDA_EXCLUDES(...) \
  PARINDA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the named mutex(es) and returns holding them.
#define PARINDA_ACQUIRE(...) \
  PARINDA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the named mutex(es).
#define PARINDA_RELEASE(...) \
  PARINDA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Opt a function out of the analysis (init/teardown paths); use sparingly
/// and say why in a comment.
#define PARINDA_NO_THREAD_SAFETY_ANALYSIS \
  PARINDA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace parinda {

/// std::mutex wrapper annotated as a Clang capability so PARINDA_GUARDED_BY
/// fields can name it. Same cost as the raw mutex.
class PARINDA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PARINDA_ACQUIRE() { mu_.lock(); }
  void unlock() PARINDA_RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for APIs that need the std type (MutexLock).
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scope for Mutex (drop-in for std::lock_guard). Condition variables
/// wait on `native()`, which is the underlying std::unique_lock — the wait
/// re-acquires before returning, so the capability claim stays sound for the
/// whole scope.
class PARINDA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PARINDA_ACQUIRE(mu)
      : lock_(mu.native_handle()) {}
  ~MutexLock() PARINDA_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace parinda

#endif  // PARINDA_COMMON_ANNOTATIONS_H_
