#ifndef PARINDA_COMMON_STATUS_H_
#define PARINDA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace parinda {

/// Error categories used across the library. Mirrors the small set of
/// failure modes a physical-design tool encounters: bad user input (SQL,
/// constraints), missing catalog objects, solver/search failures, and
/// internal invariant violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kUnsupported,
  kSolverError,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kFailedPrecondition,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Exception-free error propagation (the library never throws).
///
/// A `Status` is either OK or carries a code plus message. Functions that can
/// fail return `Status` (or `Result<T>` when they also produce a value) and
/// callers propagate with `PARINDA_RETURN_IF_ERROR` / `PARINDA_ASSIGN_OR_RETURN`.
///
/// `[[nodiscard]]` on the class makes ignoring a returned Status a compiler
/// warning (an error under PARINDA_WERROR); discard explicitly with
/// `(void)expr` only when failure is genuinely irrelevant.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status SolverError(std::string msg) {
    return Status(StatusCode::kSolverError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Analogous to
/// absl::StatusOr / arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value keeps `return value;` ergonomic.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PARINDA_DCHECK(!status_.ok() &&
                   "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    PARINDA_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    PARINDA_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    PARINDA_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace parinda

/// Propagates a non-OK Status to the caller.
#define PARINDA_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::parinda::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define PARINDA_CONCAT_IMPL(a, b) a##b
#define PARINDA_CONCAT(a, b) PARINDA_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// moves the value into `lhs`.
#define PARINDA_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  PARINDA_ASSIGN_OR_RETURN_IMPL(                                    \
      PARINDA_CONCAT(_result_, __LINE__), lhs, rexpr)

#define PARINDA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#endif  // PARINDA_COMMON_STATUS_H_
