#ifndef PARINDA_COMMON_FILE_IO_H_
#define PARINDA_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace parinda {

/// Crash-safe small-file I/O for PARINDA's on-disk emitters (cache spills,
/// trace exports, bench JSON reports).
///
/// The atomic writer follows the classic temp-file-plus-rename protocol:
/// content is written to `<path>.tmp`, flushed and fsync'ed, and only then
/// renamed over `path`. POSIX rename is atomic within a filesystem, so a
/// reader of `path` sees either the complete previous file or the complete
/// new one — never a half-written hybrid, even if the process dies mid-write
/// (the worst case is a leftover `.tmp`, which the next write overwrites).

/// Atomically replaces `path` with `content`. On error the original file (if
/// any) is untouched; a stale `<path>.tmp` may remain and is harmless.
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     std::string_view content);

/// Reads the whole file into a string. NotFound when it does not exist,
/// Internal on read errors.
[[nodiscard]] Result<std::string> ReadFile(const std::string& path);

}  // namespace parinda

#endif  // PARINDA_COMMON_FILE_IO_H_
