#ifndef PARINDA_COMMON_THREAD_POOL_H_
#define PARINDA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/deadline.h"
#include "common/status.h"

namespace parinda {

/// A fixed-size work-queue thread pool for the advisor evaluation layers.
///
/// Tasks are `Status`-returning closures (the library never throws; a task
/// that would fail returns its error instead). `WaitAll()` blocks until the
/// queue drains and returns the error of the *earliest-submitted* failed
/// task — independent of execution interleaving — so error propagation is
/// deterministic under any worker count.
///
/// Cancellation: with `set_cancel_on_error(true)` (what `ParallelFor` uses),
/// the first task failure drops every still-queued task so `WaitAll` drains
/// promptly instead of grinding through work whose result will be discarded.
/// Because tasks are dequeued in submission order, every task with a smaller
/// sequence number than the failing one has already been dequeued, so the
/// earliest-submitted-error contract is unaffected. An optional
/// `CancellationToken` (`set_cancellation`) lets an outside controller —
/// e.g. a deadline watcher — trip the same drain; skipped tasks record
/// `kCancelled`.
///
/// Thread-safety contract for callers (see DESIGN.md §"Parallel evaluation
/// layer"): tasks submitted to one pool may run concurrently, so each task
/// must only read shared state (e.g. a `CatalogReader`) and write to slots
/// it exclusively owns (e.g. one row of a pre-sized matrix). Submission and
/// waiting are intended for a single owner thread.
///
/// This is the only place in the library allowed to create threads; the
/// `detached-thread` lint check enforces that.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (clamped to at least 1).
  explicit ThreadPool(int num_workers);

  /// Equivalent to Shutdown(): drains outstanding tasks, then joins the
  /// workers. Errors of tasks not collected through WaitAll are discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called concurrently with WaitAll.
  /// Returns kFailedPrecondition (and drops the task) after Shutdown().
  [[nodiscard]] Status Submit(std::function<Status()> task)
      PARINDA_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished or was cancelled.
  /// Returns the error of the earliest-submitted failed task, or OK.
  /// Resets the error state, so the pool can be reused for another batch.
  /// Returns kFailedPrecondition after Shutdown(), or when another thread
  /// is already blocked in WaitAll (waiting is single-owner).
  [[nodiscard]] Status WaitAll() PARINDA_EXCLUDES(mu_);

  /// Drains outstanding tasks, then joins the workers. Idempotent. After
  /// shutdown, Submit and WaitAll return kFailedPrecondition.
  void Shutdown() PARINDA_EXCLUDES(mu_);

  /// Drops every task still queued (running tasks finish); each dropped
  /// task records kCancelled, so a subsequent WaitAll returns kCancelled
  /// unless an earlier-submitted task already failed for a real reason.
  void CancelPending() PARINDA_EXCLUDES(mu_);

  /// When set, the first task failure cancels all still-queued tasks.
  /// Toggle only between batches (not while tasks are in flight).
  void set_cancel_on_error(bool value) PARINDA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cancel_on_error_ = value;
  }

  /// Optional external cancellation: once `token->cancelled()` is observed,
  /// queued tasks are skipped with kCancelled. `token` must outlive the
  /// current batch; pass nullptr to detach. Toggle only between batches.
  void set_cancellation(const CancellationToken* token) PARINDA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cancellation_ = token;
  }

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Worker count for "use the whole machine": hardware concurrency,
  /// at least 1.
  static int DefaultParallelism();

 private:
  struct TaskItem {
    int64_t seq = 0;
    std::function<Status()> fn;
  };

  void WorkerLoop();
  /// Drops queued tasks, recording `why` for the earliest.
  void DropQueuedLocked(const Status& why) PARINDA_REQUIRES(mu_);
  /// Records a task outcome under the earliest-seq rule.
  void RecordOutcomeLocked(int64_t seq, Status status) PARINDA_REQUIRES(mu_);

  /// Guards every piece of batch state below; workers and the owner thread
  /// meet only through it (plus the two condition variables).
  Mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::deque<TaskItem> queue_ PARINDA_GUARDED_BY(mu_);
  int64_t next_seq_ PARINDA_GUARDED_BY(mu_) = 0;
  /// Queued plus currently-running tasks.
  int pending_ PARINDA_GUARDED_BY(mu_) = 0;
  bool stopping_ PARINDA_GUARDED_BY(mu_) = false;
  bool shutdown_ PARINDA_GUARDED_BY(mu_) = false;
  /// True while a thread is blocked in WaitAll (single-waiter rule).
  bool waiting_ PARINDA_GUARDED_BY(mu_) = false;
  bool cancel_on_error_ PARINDA_GUARDED_BY(mu_) = false;
  const CancellationToken* cancellation_ PARINDA_GUARDED_BY(mu_) = nullptr;
  /// Earliest-submitted failure of the current batch.
  int64_t first_error_seq_ PARINDA_GUARDED_BY(mu_) = -1;
  Status first_error_ PARINDA_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // parinda-lint: allow(detached-thread)
};

/// Resolves a `parallelism` option to a worker count: values >= 1 are taken
/// verbatim; 0 (and negatives) mean "auto" — one worker per hardware thread.
int ResolveParallelism(int parallelism);

/// Runs `fn(0) ... fn(n-1)` on up to `parallelism` workers and returns the
/// lowest-index error (OK if none). `parallelism <= 1` executes inline on
/// the calling thread, in index order, stopping at the first error — no
/// threads are created. With more workers the pool runs with
/// cancel-on-error, so a failure (including a worker observing an expired
/// Deadline) drains the queue promptly. On success every `fn(i)` has run,
/// each writing only to state it owns; successful results therefore do not
/// depend on execution order, which is what makes parallel and serial runs
/// bit-identical.
[[nodiscard]] Status ParallelFor(int parallelism, int n,
                                 const std::function<Status(int)>& fn);

}  // namespace parinda

#endif  // PARINDA_COMMON_THREAD_POOL_H_
