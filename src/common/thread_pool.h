#ifndef PARINDA_COMMON_THREAD_POOL_H_
#define PARINDA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace parinda {

/// A fixed-size work-queue thread pool for the advisor evaluation layers.
///
/// Tasks are `Status`-returning closures (the library never throws; a task
/// that would fail returns its error instead). `WaitAll()` blocks until the
/// queue drains and returns the error of the *earliest-submitted* failed
/// task — independent of execution interleaving — so error propagation is
/// deterministic under any worker count.
///
/// Thread-safety contract for callers (see DESIGN.md §"Parallel evaluation
/// layer"): tasks submitted to one pool may run concurrently, so each task
/// must only read shared state (e.g. a `CatalogReader`) and write to slots
/// it exclusively owns (e.g. one row of a pre-sized matrix). Submission and
/// waiting are intended for a single owner thread.
///
/// This is the only place in the library allowed to create threads; the
/// `detached-thread` lint check enforces that.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (clamped to at least 1).
  explicit ThreadPool(int num_workers);

  /// Drains outstanding tasks, then joins the workers. Errors of tasks not
  /// yet collected through WaitAll are discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called concurrently with WaitAll.
  void Submit(std::function<Status()> task);

  /// Blocks until every submitted task has finished. Returns the error of
  /// the earliest-submitted failed task, or OK. Resets the error state, so
  /// the pool can be reused for another batch.
  [[nodiscard]] Status WaitAll();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Worker count for "use the whole machine": hardware concurrency,
  /// at least 1.
  static int DefaultParallelism();

 private:
  struct TaskItem {
    int64_t seq = 0;
    std::function<Status()> fn;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::deque<TaskItem> queue_;
  int64_t next_seq_ = 0;
  /// Queued plus currently-running tasks.
  int pending_ = 0;
  bool stopping_ = false;
  /// Earliest-submitted failure of the current batch.
  int64_t first_error_seq_ = -1;
  Status first_error_;
  std::vector<std::thread> workers_;  // parinda-lint: allow(detached-thread)
};

/// Resolves a `parallelism` option to a worker count: values >= 1 are taken
/// verbatim; 0 (and negatives) mean "auto" — one worker per hardware thread.
int ResolveParallelism(int parallelism);

/// Runs `fn(0) ... fn(n-1)` on up to `parallelism` workers and returns the
/// lowest-index error (OK if none). `parallelism <= 1` executes inline on
/// the calling thread, in index order, stopping at the first error — no
/// threads are created. With more workers the full index range is always
/// dispatched, every `fn(i)` writing only to state it owns; results must
/// therefore not depend on execution order, which is what makes parallel
/// and serial runs bit-identical.
[[nodiscard]] Status ParallelFor(int parallelism, int n,
                                 const std::function<Status(int)>& fn);

}  // namespace parinda

#endif  // PARINDA_COMMON_THREAD_POOL_H_
