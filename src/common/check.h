#ifndef PARINDA_COMMON_CHECK_H_
#define PARINDA_COMMON_CHECK_H_

#include <cassert>
#include <string>
#include <utility>

#include "common/logging.h"

/// Runtime invariant macros. Violations are programming errors, not
/// recoverable conditions: they log a FATAL message through the standard
/// logging sink (file:line plus the failed expression) and abort. Use
/// `Status`/`Result<T>` for expected failures; use these for "this cannot
/// happen" conditions at module boundaries and inside algorithms.
///
/// - PARINDA_CHECK(cond)     active in every build type.
/// - PARINDA_DCHECK(cond)    active only in debug builds (assert-backed);
///                           use for hot-path invariants too expensive to
///                           evaluate in release binaries.
/// - PARINDA_CHECK_OK(expr)  for a `Status` or `Result<T>` expression that
///                           must succeed; logs the status message on failure.

namespace parinda {
namespace internal_check {

/// Extracts a printable error description from either a Status (has
/// ToString) or a Result<T> (has status()). Implemented generically so this
/// header does not depend on status.h (status.h depends on us for
/// PARINDA_DCHECK).
template <typename T>
std::string DescribeError(const T& v) {
  if constexpr (requires { v.status(); }) {
    return v.status().ToString();
  } else {
    return v.ToString();
  }
}

}  // namespace internal_check
}  // namespace parinda

/// CHECK-style invariant assertion, active in all build types.
#define PARINDA_CHECK(cond)                                          \
  do {                                                               \
    if (!(cond)) {                                                   \
      PARINDA_LOG(Fatal) << "Check failed: " #cond;                  \
    }                                                                \
  } while (0)

/// Debug-only invariant assertion (compiles away under NDEBUG).
#define PARINDA_DCHECK(cond) assert(cond)

/// Asserts that a Status or Result<T> expression is OK; on failure logs the
/// carried error message and aborts.
#define PARINDA_CHECK_OK(expr)                                       \
  do {                                                               \
    const auto& _parinda_check_ok_val = (expr);                      \
    if (!_parinda_check_ok_val.ok()) {                               \
      PARINDA_LOG(Fatal)                                             \
          << "Check failed: " #expr " is OK: "                       \
          << ::parinda::internal_check::DescribeError(               \
                 _parinda_check_ok_val);                             \
    }                                                                \
  } while (0)

#endif  // PARINDA_COMMON_CHECK_H_
