#include "common/crc32.h"

namespace parinda {

namespace {

/// 256-entry lookup table for the reflected IEEE polynomial 0xEDB88320,
/// built once at first use (byte-at-a-time Sarwate algorithm).
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  static const Crc32Table table;
  crc = ~crc;
  for (const char c : data) {
    crc = (crc >> 8) ^
          table.entries[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace parinda
