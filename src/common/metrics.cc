#include "common/metrics.h"

#include <cmath>
#include <limits>

#include "common/strings.h"

namespace parinda {
namespace metrics {

namespace {

/// Lowest finite bucket bound: 100 ns.
constexpr double kMinBound = 1e-7;

}  // namespace

double Histogram::BucketUpperBound(int b) {
  if (b <= 0) return kMinBound;
  if (b >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinBound * std::pow(10.0, static_cast<double>(b) /
                                        static_cast<double>(kBucketsPerDecade));
}

int Histogram::BucketFor(double seconds) {
  if (!(seconds > kMinBound)) return 0;  // underflow (also NaN, negatives)
  // b such that bound(b-1) <= seconds < bound(b).
  const int b = 1 + static_cast<int>(std::floor(
                        kBucketsPerDecade * std::log10(seconds / kMinBound)));
  if (b >= kNumBuckets) return kNumBuckets - 1;
  // Guard the log/floor seam: values exactly on a bound must land above it.
  if (seconds >= BucketUpperBound(b)) return b + 1 < kNumBuckets ? b + 1 : b;
  return b;
}

void Histogram::Record(double seconds) {
  if (std::isnan(seconds)) return;
  if (seconds < 0.0) seconds = 0.0;
  buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS fold: atomic<double>::fetch_add is C++20 but not universally lock-
  // free; the explicit loop is portable and still wait-free in practice
  // (Record is called per task / per optimizer call, not per tuple).
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + seconds,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t counts[kNumBuckets];
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  // Rank of the q-th observation (1-based), then the bucket containing it.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * total)));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] >= rank) {
      const double lower = b == 0 ? 0.0 : BucketUpperBound(b - 1);
      double upper = BucketUpperBound(b);
      if (!std::isfinite(upper)) upper = lower * 10.0;  // overflow bucket
      // Linear interpolation by rank position inside the bucket.
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(counts[b]);
      return lower + (upper - lower) * frac;
    }
    seen += counts[b];
  }
  return BucketUpperBound(kNumBuckets - 2);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram.count(), histogram.sum(),
                               histogram.p50(), histogram.p95(),
                               histogram.p99()});
  }
  return snap;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, gauge] : gauges_) gauge.Reset();
  for (auto& [name, histogram] : histograms_) histogram.Reset();
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterValue& c : counters) {
    out += StringPrintf("counter    %-36s %lld\n", c.name.c_str(),
                        static_cast<long long>(c.value));
  }
  for (const GaugeValue& g : gauges) {
    out += StringPrintf("gauge      %-36s %lld\n", g.name.c_str(),
                        static_cast<long long>(g.value));
  }
  for (const HistogramValue& h : histograms) {
    out += StringPrintf(
        "histogram  %-36s count=%lld sum=%.3fs p50=%.3fms p95=%.3fms "
        "p99=%.3fms\n",
        h.name.c_str(), static_cast<long long>(h.count), h.sum,
        h.p50 * 1000.0, h.p95 * 1000.0, h.p99 * 1000.0);
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StringPrintf("%s\n    \"%s\": %lld", i == 0 ? "" : ",",
                        JsonEscaped(counters[i].name).c_str(),
                        static_cast<long long>(counters[i].value));
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += StringPrintf("%s\n    \"%s\": %lld", i == 0 ? "" : ",",
                        JsonEscaped(gauges[i].name).c_str(),
                        static_cast<long long>(gauges[i].value));
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += StringPrintf(
        "%s\n    \"%s\": {\"count\": %lld, \"sum\": %s, \"p50\": %s, "
        "\"p95\": %s, \"p99\": %s}",
        i == 0 ? "" : ",", JsonEscaped(h.name).c_str(),
        static_cast<long long>(h.count), JsonNumber(h.sum).c_str(),
        JsonNumber(h.p50).c_str(), JsonNumber(h.p95).c_str(),
        JsonNumber(h.p99).c_str());
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace metrics
}  // namespace parinda
