#ifndef PARINDA_COMMON_DEADLINE_H_
#define PARINDA_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace parinda {

/// A monotonic-clock time budget for anytime operations.
///
/// Deadlines are cooperative: long-running loops call `Expired()` (cheap) or
/// `CheckOk()` (returns a `kDeadlineExceeded` Status) at their decision
/// points and degrade gracefully — return the best incumbent, fall back to a
/// cheaper algorithm — instead of running open-loop.
///
/// A default-constructed Deadline is *infinite*: `Expired()` returns false
/// without ever reading the clock, so the infinite-budget path is both free
/// and bit-identical to code that never consulted a deadline at all (the
/// determinism contract of DESIGN.md §10). Copies share the same absolute
/// expiry instant, so a Deadline can be passed by value through options
/// structs and worker tasks while still describing one budget.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline: never expires, never reads the clock.
  Deadline() : when_(Clock::time_point::max()) {}

  /// Expires `seconds` from now (monotonic clock). Non-positive budgets
  /// produce an already-expired deadline, which is handy in tests. Budgets
  /// too large for the clock to represent — including +infinity and NaN —
  /// saturate to `Infinite()`: a practically-unbounded budget must never
  /// overflow `Clock::duration` into an *instantly expired* deadline.
  static Deadline After(double seconds);
  static Deadline AfterMillis(int64_t ms) {
    return After(static_cast<double>(ms) / 1000.0);
  }
  /// Infinite deadline, spelled out for call sites.
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return when_ == Clock::time_point::max(); }

  /// True once the budget is spent. Free (no clock read) when infinite.
  bool Expired() const {
    if (infinite()) return false;
    return Clock::now() >= when_;
  }

  /// OK while the budget lasts; `kDeadlineExceeded` naming `what` after.
  [[nodiscard]] Status CheckOk(std::string_view what) const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded("deadline expired in " +
                                    std::string(what));
  }

  /// Seconds until expiry (negative once expired); +infinity when infinite.
  double RemainingSeconds() const;

 private:
  Clock::time_point when_;
};

/// Cooperative cancellation flag shared between a controller and workers.
/// Thread-safe; `Cancel()` is sticky.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // ordering: relaxed — the flag is the entire message. Cancellation
  // publishes no data for the observer to read afterwards; workers that see
  // it merely stop early, and every result they did publish is ordered by
  // the ThreadPool mutex, not by this flag.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Status CheckOk(std::string_view what) const {
    if (!cancelled()) return Status::OK();
    return Status::Cancelled("cancelled in " + std::string(what));
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// What an anytime pipeline did to stay within its budget. Attached to every
/// advisor result (IndexAdvice, PartitionAdvice, InteractiveReport) so
/// callers can tell a full-fidelity answer from a best-effort one.
struct DegradationReport {
  /// True when any fallback fired or any phase was truncated by the budget.
  bool degraded = false;
  /// Which fallbacks fired, in order ("ilp:incumbent", "finish:matrix-estimate",
  /// "autopart:search-truncated", ...).
  std::vector<std::string> fallbacks;
  /// Wall-clock seconds per pipeline phase, in execution order.
  std::vector<std::pair<std::string, double>> phase_seconds;
  /// Failpoints that fired while this pipeline ran (name -> hits). Empty
  /// unless fault injection is active.
  std::vector<std::pair<std::string, int64_t>> failpoint_hits;

  /// Marks the run degraded and names the fallback rung that fired. Also
  /// bumps the process-wide `degradation.fallbacks` metrics counters, so
  /// per-rung degradation rates are observable without a report in hand.
  void AddFallback(std::string what);

  /// One-line summary for logs and the REPL.
  std::string ToString() const;
};

/// Scoped phase timer: records wall-clock of a named pipeline phase into a
/// DegradationReport on destruction (or an explicit Stop()).
///
/// Contract (tested in common_test.cc): the timer must be stopped — by
/// `Stop()` or by leaving its scope — before the report is moved, copied,
/// or handed to a caller; otherwise the phase's entry lands in an abandoned
/// report and `phase_seconds` silently under-reports. For reports that are
/// read *mid-phase* (a deadline fired and a partial result is being
/// assembled while the phase is still open), call `Flush()` first: it
/// records the elapsed time so far without ending the phase, updating the
/// same entry in place on every call.
///
/// When `span` is given (a string literal, e.g. "advisor.solve"), stopping
/// the timer also records a trace span over the same interval — the phase
/// timestamps are reused, so tracing adds no clock reads here.
class PhaseTimer {
 public:
  PhaseTimer(DegradationReport* report, std::string phase,
             const char* span = nullptr)
      : report_(report), phase_(std::move(phase)), span_(span),
        start_(Deadline::Clock::now()) {}
  ~PhaseTimer() { Stop(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Records elapsed-so-far under the phase name (in place: the last entry
  /// with this phase's name is updated, or one is appended). The timer
  /// keeps running; later Flush/Stop calls overwrite with a larger value.
  void Flush();

  /// Final Flush + emits the trace span (if any). Idempotent.
  void Stop();

 private:
  DegradationReport* report_;
  std::string phase_;
  const char* span_;
  Deadline::Clock::time_point start_;
  /// Index of this timer's entry in report_->phase_seconds; -1 until the
  /// first Flush. Stable because other timers only ever append.
  int entry_index_ = -1;
  bool stopped_ = false;
};

}  // namespace parinda

#endif  // PARINDA_COMMON_DEADLINE_H_
