#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace parinda {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StringPrintf("%.17g", v);
}

}  // namespace parinda
