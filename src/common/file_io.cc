#include "common/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace parinda {

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + tmp +
                            "' for writing: " + std::strerror(errno));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  // Flush user-space buffers, then force the bytes to stable storage before
  // the rename publishes them: rename-before-fsync can surface a zero-length
  // file after a power loss on some filesystems.
  const bool flushed = std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != content.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write of '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path +
                            "': " + reason);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string content;
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    content.append(buf, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::Internal("error reading '" + path + "'");
  }
  return content;
}

}  // namespace parinda
