#ifndef PARINDA_COMMON_CRC32_H_
#define PARINDA_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace parinda {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for integrity
/// checking of on-disk artifacts — the engine's cache-spill records use one
/// checksum per record so a torn write or bit flip downgrades to a cache
/// miss instead of a wrong cost. CRC-32 detects all single- and double-bit
/// errors and all burst errors up to 32 bits, which covers the corruption
/// modes the chaos tests inject.

/// CRC of `data` in one shot.
uint32_t Crc32(std::string_view data);

/// Incremental form: feed chunks left to right, starting from
/// `Crc32Update(0, first_chunk)`; the final value equals `Crc32` of the
/// concatenation.
uint32_t Crc32Update(uint32_t crc, std::string_view data);

}  // namespace parinda

#endif  // PARINDA_COMMON_CRC32_H_
