#ifndef PARINDA_COMMON_STRINGS_H_
#define PARINDA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace parinda {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (SQL identifiers are case-insensitive in our dialect).
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True when `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `s` for use inside a double-quoted JSON string: quotes,
/// backslashes, and control characters (including \n, \t, \r) are encoded.
std::string JsonEscaped(std::string_view s);

/// Renders `v` as a JSON number with full round-trip precision (%.17g), or
/// the literal `null` when `v` is NaN or infinite — bare `nan`/`inf` tokens
/// are not valid JSON.
std::string JsonNumber(double v);

}  // namespace parinda

#endif  // PARINDA_COMMON_STRINGS_H_
