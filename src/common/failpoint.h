#ifndef PARINDA_COMMON_FAILPOINT_H_
#define PARINDA_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace parinda {
namespace failpoint {

/// What an active failpoint does when hit.
enum class Mode {
  kOff = 0,   ///< Inert (counter not maintained either).
  kError,     ///< Return Status::Internal("failpoint <name>").
  kDelay,     ///< Sleep for the configured milliseconds, then continue OK.
  kCrash,     ///< Abort the process (tests-only: exercises crash recovery).
};

/// Fault-injection hooks for robustness testing.
///
/// Long-running pipelines mark their interesting decision points with the
/// PARINDA_FAILPOINT macro, naming each point "layer.point" (the catalog
/// lives in DESIGN.md §10). In production the macro is a single
/// relaxed atomic load (the registry keeps a global "anything active?" flag);
/// when a point is armed — programmatically via `Configure()` or through the
/// `PARINDA_FAILPOINTS` environment variable — hitting it injects the
/// configured fault and bumps a per-point hit counter.
///
/// Environment spec: comma-separated `name=mode[:ms]` entries, e.g.
///   PARINDA_FAILPOINTS="advisor.matrix=error,inum.estimate=delay:5"
/// Parsed once, lazily, on the first `Hit()`/`Configure()` call.
///
/// Hit counters are only maintained while any failpoint is active, keeping
/// the inactive fast path to one atomic load.

/// Arms `name` with `mode`. `delay_ms` applies to kDelay. Thread-safe.
void Configure(std::string_view name, Mode mode, int delay_ms = 1);

/// Disarms `name` (its hit counter is kept until ClearAll).
void Clear(std::string_view name);

/// Disarms everything and zeroes all hit counters. Tests call this in
/// teardown so points armed by one test never leak into the next. The
/// PARINDA_FAILPOINTS spec is parsed (once) before any registry operation,
/// so a Clear/ClearAll always supersedes env-armed points — they cannot
/// re-arm later.
void ClearAll();

/// Evaluates the failpoint `name`: injects the configured fault (if armed)
/// and returns the resulting Status. Prefer the PARINDA_FAILPOINT macro.
[[nodiscard]] Status Hit(std::string_view name);

/// Hits recorded for `name` since the last ClearAll (0 when never hit or
/// when no failpoint has been active).
int64_t HitCount(std::string_view name);

/// All (name, hits) pairs with a non-zero count, sorted by name.
std::vector<std::pair<std::string, int64_t>> AllHits();

/// Hits recorded since `snapshot` (a previous AllHits() result): pairs whose
/// count grew, with the delta. Pipelines use this to attribute failpoint
/// activity to one run in their DegradationReport.
std::vector<std::pair<std::string, int64_t>> HitsSince(
    const std::vector<std::pair<std::string, int64_t>>& snapshot);

/// True when at least one failpoint is armed (single relaxed atomic load).
bool AnyActive();

/// Every failpoint name declared with PARINDA_REGISTER_FAILPOINT, sorted.
/// This is the authoritative catalog the CI sweep iterates (via the
/// `--list-failpoints` hook on the failpoint test binary), replacing
/// grep-harvesting of names from source.
std::vector<std::string> ListRegistered();

namespace internal {
/// Static-initialization hook behind PARINDA_REGISTER_FAILPOINT; records the
/// name in the registry's catalog. Construction is thread-safe and idempotent.
class Registrar {
 public:
  explicit Registrar(std::string_view name);
};
}  // namespace internal

/// Parses an environment-style spec ("a=error,b=delay:5") and arms the named
/// points. Returns InvalidArgument on a malformed entry. Exposed for tests;
/// `PARINDA_FAILPOINTS` goes through this.
[[nodiscard]] Status ConfigureFromSpec(std::string_view spec);

}  // namespace failpoint
}  // namespace parinda

/// Declares a fault-injection point. Must appear in a function returning
/// Status (or Result<T>): when the point is armed in error mode the injected
/// Status propagates to the caller like any other failure.
#define PARINDA_FAILPOINT(name)                                \
  do {                                                         \
    if (::parinda::failpoint::AnyActive()) {                   \
      ::parinda::Status _fp = ::parinda::failpoint::Hit(name); \
      if (!_fp.ok()) return _fp;                               \
    }                                                          \
  } while (0)

/// Adds `name` to the registry's catalog (ListRegistered) at static
/// initialization. Place one at namespace scope in the .cc file that hits
/// the point, next to the pipeline it instruments; the failpoint test's
/// `--list-failpoints` mode prints the catalog for the CI sweep, and its
/// error-mode table cross-checks that every cataloged point is actually
/// crossed by some pipeline.
#define PARINDA_REGISTER_FAILPOINT(name)                \
  static const ::parinda::failpoint::internal::Registrar \
      PARINDA_CONCAT(parinda_failpoint_registrar_, __COUNTER__)(name)

#endif  // PARINDA_COMMON_FAILPOINT_H_
