#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace parinda {

namespace {
/// Pool-wide instruments, shared across every ThreadPool instance: queue
/// depth after the latest push/pop, per-task wall-clock, and a lifetime
/// task counter. Worker utilization = threadpool.task_seconds.sum over the
/// batch's wall-clock × worker count.
metrics::Gauge& QueueDepthGauge() {
  static metrics::Gauge& gauge =
      metrics::Registry::Global().gauge("threadpool.queue_depth");
  return gauge;
}
}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  const int count = std::max(1, num_workers);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    // Drain so no task runs against a half-destroyed pool; the batch error
    // is deliberately dropped — owners that care call WaitAll first.
    // (Explicit wait loops, not wait(lock, predicate): the predicate lambda
    // would be analyzed as a separate function that does not hold mu_.)
    while (pending_ != 0) batch_done_.wait(lock.native());
    shutdown_ = true;
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

Status ThreadPool::Submit(std::function<Status()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition(
          "ThreadPool::Submit after Shutdown");
    }
    queue_.push_back({next_seq_++, std::move(task)});
    ++pending_;
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  work_ready_.notify_one();
  return Status::OK();
}

Status ThreadPool::WaitAll() {
  MutexLock lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("ThreadPool::WaitAll after Shutdown");
  }
  if (waiting_) {
    return Status::FailedPrecondition(
        "concurrent ThreadPool::WaitAll (waiting is single-owner)");
  }
  waiting_ = true;
  while (pending_ != 0) batch_done_.wait(lock.native());
  waiting_ = false;
  Status result = std::move(first_error_);
  first_error_ = Status::OK();
  first_error_seq_ = -1;
  return result;
}

void ThreadPool::CancelPending() {
  bool drained = false;
  {
    MutexLock lock(mu_);
    DropQueuedLocked(Status::Cancelled("task cancelled before running"));
    drained = pending_ == 0;
  }
  if (drained) batch_done_.notify_all();
}

void ThreadPool::DropQueuedLocked(const Status& why) {
  for (const TaskItem& item : queue_) {
    RecordOutcomeLocked(item.seq, why);
    --pending_;
  }
  queue_.clear();
}

void ThreadPool::RecordOutcomeLocked(int64_t seq, Status status) {
  if (!status.ok() && (first_error_seq_ < 0 || seq < first_error_seq_)) {
    first_error_seq_ = seq;
    first_error_ = std::move(status);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskItem item;
    const CancellationToken* cancellation = nullptr;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_ready_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ with a drained queue
      item = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
      // Snapshot the token pointer while holding mu_ (it is only swapped
      // between batches); the token itself is internally thread-safe.
      cancellation = cancellation_;
    }
    Status status;
    if (cancellation != nullptr && cancellation->cancelled()) {
      status = Status::Cancelled("task cancelled before running");
    } else {
      static metrics::Counter& tasks_run =
          metrics::Registry::Global().counter("threadpool.tasks_run");
      static metrics::Histogram& task_seconds =
          metrics::Registry::Global().histogram("threadpool.task_seconds");
      PARINDA_TRACE_SPAN("thread_pool.task");
      const metrics::ScopedLatency timer(&task_seconds);
      tasks_run.Increment();
      status = item.fn();
    }
    {
      MutexLock lock(mu_);
      const bool failed = !status.ok();
      RecordOutcomeLocked(item.seq, std::move(status));
      if (failed && cancel_on_error_) {
        // Every task with a smaller seq is already dequeued, so dropping
        // the queue cannot hide an earlier-submitted error.
        DropQueuedLocked(Status::Cancelled("batch cancelled on first error"));
      }
      --pending_;
      if (pending_ == 0) batch_done_.notify_all();
    }
  }
}

int ThreadPool::DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int ResolveParallelism(int parallelism) {
  return parallelism >= 1 ? parallelism : ThreadPool::DefaultParallelism();
}

Status ParallelFor(int parallelism, int n,
                   const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::OK();
  const int workers = std::min(std::max(1, parallelism), n);
  if (workers == 1) {
    for (int i = 0; i < n; ++i) {
      PARINDA_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  ThreadPool pool(workers);
  pool.set_cancel_on_error(true);
  for (int i = 0; i < n; ++i) {
    PARINDA_RETURN_IF_ERROR(pool.Submit([&fn, i] { return fn(i); }));
  }
  return pool.WaitAll();
}

}  // namespace parinda
