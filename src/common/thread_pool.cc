#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace parinda {

ThreadPool::ThreadPool(int num_workers) {
  const int count = std::max(1, num_workers);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain so no task runs against a half-destroyed pool; the batch error is
  // deliberately dropped — owners that care call WaitAll themselves.
  (void)WaitAll();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<Status()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back({next_seq_++, std::move(task)});
    ++pending_;
  }
  work_ready_.notify_one();
}

Status ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [this] { return pending_ == 0; });
  Status result = std::move(first_error_);
  first_error_ = Status::OK();
  first_error_seq_ = -1;
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    Status status = item.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() &&
          (first_error_seq_ < 0 || item.seq < first_error_seq_)) {
        first_error_seq_ = item.seq;
        first_error_ = std::move(status);
      }
      --pending_;
      if (pending_ == 0) batch_done_.notify_all();
    }
  }
}

int ThreadPool::DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int ResolveParallelism(int parallelism) {
  return parallelism >= 1 ? parallelism : ThreadPool::DefaultParallelism();
}

Status ParallelFor(int parallelism, int n,
                   const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::OK();
  const int workers = std::min(std::max(1, parallelism), n);
  if (workers == 1) {
    for (int i = 0; i < n; ++i) {
      PARINDA_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  ThreadPool pool(workers);
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { return fn(i); });
  }
  return pool.WaitAll();
}

}  // namespace parinda
