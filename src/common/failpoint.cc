#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/annotations.h"
#include "common/strings.h"

namespace parinda {
namespace failpoint {
namespace {

struct Entry {
  Mode mode = Mode::kOff;
  int delay_ms = 1;
  int64_t hits = 0;
};

struct Registry {
  Mutex mu;
  std::map<std::string, Entry, std::less<>> points PARINDA_GUARDED_BY(mu);
  // Catalog of declared point names (PARINDA_REGISTER_FAILPOINT), filled at
  // static initialization and never cleared: ClearAll resets arming and hit
  // counters, not the catalog itself.
  std::set<std::string, std::less<>> registered PARINDA_GUARDED_BY(mu);
  // Count of armed (non-kOff) points; mirrors into `any_active` so the
  // inactive fast path in PARINDA_FAILPOINT is one relaxed atomic load.
  int active PARINDA_GUARDED_BY(mu) = 0;
  // ordering: relaxed — a hint flag, not a publication. Arming happens under
  // `mu` and every reader that acts on a hit re-checks the authoritative
  // entry under `mu` in Hit(); a stale relaxed read can only delay (or
  // briefly prolong) the slow path by one hit, never corrupt state.
  std::atomic<bool> any_active{false};
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

Status ConfigureFromSpecImpl(std::string_view spec);

// Arms points from PARINDA_FAILPOINTS exactly once per process. Every public
// registry entry point calls this first, so the env spec can never re-arm a
// registry that a test already Clear()ed/ClearAll()ed. Malformed specs are
// ignored (CI passes well-formed ones; tests use Configure()).
void EnsureEnvParsed() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("PARINDA_FAILPOINTS");
    if (spec != nullptr && spec[0] != '\0') {
      (void)ConfigureFromSpecImpl(spec);
    }
  });
}

void SetModeLocked(Registry& registry, std::string_view name, Mode mode,
                   int delay_ms) PARINDA_REQUIRES(registry.mu) {
  auto it = registry.points.find(name);
  if (it == registry.points.end()) {
    it = registry.points.emplace(std::string(name), Entry{}).first;
  }
  const bool was_armed = it->second.mode != Mode::kOff;
  const bool now_armed = mode != Mode::kOff;
  it->second.mode = mode;
  it->second.delay_ms = delay_ms;
  if (was_armed != now_armed) {
    registry.active += now_armed ? 1 : -1;
    registry.any_active.store(registry.active > 0, std::memory_order_relaxed);
  }
}

}  // namespace

void Configure(std::string_view name, Mode mode, int delay_ms) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  SetModeLocked(registry, name, mode, delay_ms);
}

void Clear(std::string_view name) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return;
  SetModeLocked(registry, name, Mode::kOff, it->second.delay_ms);
}

void ClearAll() {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.points.clear();
  registry.active = 0;
  registry.any_active.store(false, std::memory_order_relaxed);
}

bool AnyActive() {
  EnsureEnvParsed();
  return GetRegistry().any_active.load(std::memory_order_relaxed);
}

std::vector<std::string> ListRegistered() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  return std::vector<std::string>(registry.registered.begin(),
                                  registry.registered.end());
}

namespace internal {

Registrar::Registrar(std::string_view name) {
  // No EnsureEnvParsed here: registration runs during static initialization
  // and must only touch the catalog, never arm anything.
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.registered.emplace(name);
}

}  // namespace internal

Status Hit(std::string_view name) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  Mode mode;
  int delay_ms;
  {
    MutexLock lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end() || it->second.mode == Mode::kOff) {
      return Status::OK();
    }
    ++it->second.hits;
    mode = it->second.mode;
    delay_ms = it->second.delay_ms;
  }
  switch (mode) {
    case Mode::kOff:
      break;
    case Mode::kError:
      return Status::Internal("failpoint " + std::string(name));
    case Mode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      break;
    case Mode::kCrash:
      std::abort();
  }
  return Status::OK();
}

int64_t HitCount(std::string_view name) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, int64_t>> AllHits() {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [name, entry] : registry.points) {
    if (entry.hits > 0) out.emplace_back(name, entry.hits);
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> HitsSince(
    const std::vector<std::pair<std::string, int64_t>>& snapshot) {
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [name, hits] : AllHits()) {
    int64_t before = 0;
    for (const auto& [prev_name, prev_hits] : snapshot) {
      if (prev_name == name) {
        before = prev_hits;
        break;
      }
    }
    if (hits > before) out.emplace_back(name, hits - before);
  }
  return out;
}

namespace {

Status ConfigureFromSpecImpl(std::string_view spec) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  for (std::string_view entry : Split(spec, ',')) {
    entry = StripWhitespace(entry);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec entry '" +
                                     std::string(entry) +
                                     "' is not name=mode[:ms]");
    }
    const std::string_view name = entry.substr(0, eq);
    std::string_view mode_str = entry.substr(eq + 1);
    int delay_ms = 1;
    const size_t colon = mode_str.find(':');
    if (colon != std::string_view::npos) {
      const std::string ms(mode_str.substr(colon + 1));
      char* end = nullptr;
      const long parsed = std::strtol(ms.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || parsed < 0) {
        return Status::InvalidArgument("failpoint spec '" +
                                       std::string(entry) +
                                       "' has a bad delay");
      }
      delay_ms = static_cast<int>(parsed);
      mode_str = mode_str.substr(0, colon);
    }
    Mode mode;
    if (mode_str == "error") {
      mode = Mode::kError;
    } else if (mode_str == "delay") {
      mode = Mode::kDelay;
    } else if (mode_str == "crash") {
      mode = Mode::kCrash;
    } else if (mode_str == "off") {
      mode = Mode::kOff;
    } else {
      return Status::InvalidArgument("failpoint spec '" + std::string(entry) +
                                     "' has unknown mode '" +
                                     std::string(mode_str) + "'");
    }
    SetModeLocked(registry, name, mode, delay_ms);
  }
  return Status::OK();
}

}  // namespace

Status ConfigureFromSpec(std::string_view spec) {
  EnsureEnvParsed();
  return ConfigureFromSpecImpl(spec);
}

}  // namespace failpoint
}  // namespace parinda
