#ifndef PARINDA_COMMON_MEMSIZE_H_
#define PARINDA_COMMON_MEMSIZE_H_

#include <cstdint>
#include <string>

namespace parinda {

/// Heap-size estimation for cache accounting (the engine's MemoryBudget).
///
/// These are deliberately *approximations*: they charge the object header
/// plus the payload actually stored, ignoring allocator rounding and
/// small-string optimization. A memory budget enforced on estimates this
/// coarse still bounds real usage to within a small constant factor, which
/// is all an eviction policy needs — the estimates only steer *which* entry
/// to drop and *when*, never any cost the advisors report.

/// Per-node bookkeeping charge for hash-map / tree-map entries (bucket
/// pointers, hashes, parent/child links), folded into one conservative
/// constant so callers don't reach into container internals.
inline constexpr int64_t kMapNodeOverheadBytes = 64;

/// Approximate footprint of a std::string: the object itself plus its
/// characters (SSO-resident bytes are double-counted; acceptable slack).
inline int64_t ApproxStringBytes(const std::string& s) {
  return static_cast<int64_t>(sizeof(std::string)) +
         static_cast<int64_t>(s.size());
}

}  // namespace parinda

#endif  // PARINDA_COMMON_MEMSIZE_H_
