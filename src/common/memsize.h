#ifndef PARINDA_COMMON_MEMSIZE_H_
#define PARINDA_COMMON_MEMSIZE_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace parinda {

/// Peak resident set size of this process in bytes (Linux: VmHWM from
/// /proc/self/status), or 0 where the facility does not exist. Observability
/// only — bench reports record it so the perf trajectory tracks memory
/// alongside time; nothing gates on the value, so the 0 fallback is safe.
inline int64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  int64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoll(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Heap-size estimation for cache accounting (the engine's MemoryBudget).
///
/// These are deliberately *approximations*: they charge the object header
/// plus the payload actually stored, ignoring allocator rounding and
/// small-string optimization. A memory budget enforced on estimates this
/// coarse still bounds real usage to within a small constant factor, which
/// is all an eviction policy needs — the estimates only steer *which* entry
/// to drop and *when*, never any cost the advisors report.

/// Per-node bookkeeping charge for hash-map / tree-map entries (bucket
/// pointers, hashes, parent/child links), folded into one conservative
/// constant so callers don't reach into container internals.
inline constexpr int64_t kMapNodeOverheadBytes = 64;

/// Approximate footprint of a std::string: the object itself plus its
/// characters (SSO-resident bytes are double-counted; acceptable slack).
inline int64_t ApproxStringBytes(const std::string& s) {
  return static_cast<int64_t>(sizeof(std::string)) +
         static_cast<int64_t>(s.size());
}

}  // namespace parinda

#endif  // PARINDA_COMMON_MEMSIZE_H_
