#ifndef PARINDA_COMMON_TRACE_H_
#define PARINDA_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace parinda {
namespace trace {

/// Scoped trace spans recorded into a bounded per-run ring buffer,
/// exportable as Chrome `trace_event` JSON (chrome://tracing, Perfetto).
///
/// Recording is OFF by default. A disabled span costs exactly one relaxed
/// atomic load — no clock read, no allocation — so instrumented code is
/// bit-identical and effectively free when tracing is not armed (the same
/// determinism contract as Deadline's infinite fast path, DESIGN.md §10).
/// Arm with `Start()`, drain with `Snapshot()`/`WriteChromeJson()`:
///
///   trace::Start();
///   ... run the pipeline ...
///   PARINDA_CHECK_OK(trace::WriteChromeJson("run.trace.json"));
///   trace::Stop();
///
/// Spans are named "module.point" ("inum.build_entry", "advisor.solve");
/// the catalog of emitted spans lives in DESIGN.md §12. When the ring
/// fills, the oldest events are overwritten and `dropped()` counts them —
/// an export never silently looks complete when it is not (the drop count
/// is embedded in the exported JSON as metadata).

using Clock = std::chrono::steady_clock;

/// One completed span. Timestamps are microseconds since `Start()`.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< span begin
  double dur_us = 0.0;  ///< span duration
  int tid = 0;          ///< small sequential thread id (not the OS id)
};

/// True while recording is armed (one relaxed atomic load).
bool Enabled();

/// Clears the buffer and starts recording into a ring of `capacity` events.
void Start(size_t capacity = 1 << 16);

/// Stops recording; the buffer is kept for Snapshot/WriteChromeJson.
void Stop();

/// Stops recording and drops the buffer (tests call this in teardown).
void Clear();

/// Completed events in timestamp order (oldest surviving event first).
std::vector<TraceEvent> Snapshot();

/// Events overwritten because the ring was full, since Start().
int64_t dropped();

/// The whole buffer as a Chrome trace_event JSON document
/// ({"traceEvents":[...]}; load in chrome://tracing or ui.perfetto.dev).
std::string ExportChromeJson();

/// Writes ExportChromeJson() to `path`.
[[nodiscard]] Status WriteChromeJson(const std::string& path);

/// Records a completed span from explicit begin/end instants. Used by
/// PhaseTimer, which already owns the timestamps; prefer PARINDA_TRACE_SPAN
/// for new call sites. No-op while disabled.
void RecordComplete(const char* name, Clock::time_point begin,
                    Clock::time_point end);

/// RAII span: marks begin at construction, records at scope exit. All cost
/// is behind the Enabled() gate.
class Span {
 public:
  explicit Span(const char* name) {
    if (Enabled()) {
      name_ = name;
      begin_ = Clock::now();
    }
  }
  ~Span() {
    if (name_ != nullptr) RecordComplete(name_, begin_, Clock::now());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  /// Non-null only when the span was armed at construction.
  const char* name_ = nullptr;
  Clock::time_point begin_;
};

}  // namespace trace
}  // namespace parinda

#define PARINDA_TRACE_CONCAT_INNER(a, b) a##b
#define PARINDA_TRACE_CONCAT(a, b) PARINDA_TRACE_CONCAT_INNER(a, b)

/// Declares a scoped trace span covering the rest of the enclosing block.
/// `name` must be a string literal ("module.point").
#define PARINDA_TRACE_SPAN(name)                                      \
  ::parinda::trace::Span PARINDA_TRACE_CONCAT(parinda_trace_span_,    \
                                              __COUNTER__) {          \
    name                                                              \
  }

#endif  // PARINDA_COMMON_TRACE_H_
