#include "common/deadline.h"

#include <limits>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace parinda {

Deadline Deadline::After(double seconds) {
  Deadline d;
  const Clock::time_point now = Clock::now();
  // Largest budget the clock can still represent from `now`. Anything at or
  // beyond it (minus a one-second guard for double→tick rounding) saturates
  // to Infinite: the cast below would otherwise overflow Clock::duration
  // and wrap an effectively-unbounded budget into an already-expired one.
  const double max_seconds =
      std::chrono::duration<double>(Clock::time_point::max() - now).count() -
      1.0;
  if (!(seconds < max_seconds)) return d;  // also catches +inf and NaN
  d.when_ = now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds));
  return d;
}

double Deadline::RemainingSeconds() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

void DegradationReport::AddFallback(std::string what) {
  degraded = true;
  // Rare by construction (a fallback means a budget already ran out), so
  // the registry lookups here are not a hot-path concern.
  metrics::Registry::Global().counter("degradation.fallbacks").Increment();
  metrics::Registry::Global()
      .counter("degradation.fallback." + what)
      .Increment();
  fallbacks.push_back(std::move(what));
}

std::string DegradationReport::ToString() const {
  if (!degraded && failpoint_hits.empty()) return "full fidelity";
  std::string out = degraded ? "degraded" : "full fidelity";
  if (!fallbacks.empty()) {
    out += " [";
    for (size_t i = 0; i < fallbacks.size(); ++i) {
      if (i > 0) out += ", ";
      out += fallbacks[i];
    }
    out += "]";
  }
  for (const auto& [phase, seconds] : phase_seconds) {
    out += StringPrintf(" %s=%.2fms", phase.c_str(), seconds * 1000.0);
  }
  for (const auto& [name, hits] : failpoint_hits) {
    out += " failpoint:" + name + "x" + std::to_string(hits);
  }
  return out;
}

void PhaseTimer::Flush() {
  if (stopped_ || report_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(Deadline::Clock::now() - start_).count();
  // In-place update: repeated flushes (and the final Stop) refine this
  // timer's own entry instead of appending duplicates. The entry is tracked
  // by index, not name — earlier closed phases may legitimately share the
  // name — which is stable under the documented stop-before-move contract
  // (other timers only ever append).
  if (entry_index_ < 0) {
    entry_index_ = static_cast<int>(report_->phase_seconds.size());
    report_->phase_seconds.emplace_back(phase_, seconds);
    return;
  }
  report_->phase_seconds[static_cast<size_t>(entry_index_)].second = seconds;
}

void PhaseTimer::Stop() {
  if (stopped_ || report_ == nullptr) return;
  Flush();
  stopped_ = true;
  if (span_ != nullptr) {
    trace::RecordComplete(span_, start_, Deadline::Clock::now());
  }
}

}  // namespace parinda
