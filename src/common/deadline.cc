#include "common/deadline.h"

#include <limits>

#include "common/strings.h"

namespace parinda {

double Deadline::RemainingSeconds() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

std::string DegradationReport::ToString() const {
  if (!degraded && failpoint_hits.empty()) return "full fidelity";
  std::string out = degraded ? "degraded" : "full fidelity";
  if (!fallbacks.empty()) {
    out += " [";
    for (size_t i = 0; i < fallbacks.size(); ++i) {
      if (i > 0) out += ", ";
      out += fallbacks[i];
    }
    out += "]";
  }
  for (const auto& [phase, seconds] : phase_seconds) {
    out += StringPrintf(" %s=%.2fms", phase.c_str(), seconds * 1000.0);
  }
  for (const auto& [name, hits] : failpoint_hits) {
    out += " failpoint:" + name + "x" + std::to_string(hits);
  }
  return out;
}

void PhaseTimer::Stop() {
  if (stopped_ || report_ == nullptr) return;
  stopped_ = true;
  const double seconds =
      std::chrono::duration<double>(Deadline::Clock::now() - start_).count();
  report_->phase_seconds.emplace_back(phase_, seconds);
}

}  // namespace parinda
