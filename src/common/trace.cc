#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/annotations.h"
#include "common/file_io.h"
#include "common/strings.h"

namespace parinda {
namespace trace {

namespace {

// ordering: relaxed — the flag only gates whether spans bother to read the
// clock and take the buffer mutex; event data itself is published under
// that mutex, never through this flag.
std::atomic<bool> g_enabled{false};

// ordering: relaxed — a monotonically growing id source; the value is the
// entire message (see DESIGN.md §11 bare-atomic conventions).
std::atomic<int> g_next_tid{0};

/// Small dense per-thread id, stable for the thread's lifetime; exported
/// Chrome JSON reads much better than hashed std::thread::id values.
int ThisThreadId() {
  thread_local int id = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

struct Buffer {
  Mutex mu;
  /// Ring storage; `size` grows to capacity, then `next` wraps.
  std::vector<TraceEvent> ring PARINDA_GUARDED_BY(mu);
  size_t capacity PARINDA_GUARDED_BY(mu) = 0;
  size_t next PARINDA_GUARDED_BY(mu) = 0;
  int64_t dropped PARINDA_GUARDED_BY(mu) = 0;
  Clock::time_point epoch PARINDA_GUARDED_BY(mu);
};

Buffer& GlobalBuffer() {
  static Buffer buffer;
  return buffer;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Start(size_t capacity) {
  Buffer& buf = GlobalBuffer();
  {
    MutexLock lock(buf.mu);
    buf.ring.clear();
    buf.ring.reserve(std::max<size_t>(1, capacity));
    buf.capacity = std::max<size_t>(1, capacity);
    buf.next = 0;
    buf.dropped = 0;
    buf.epoch = Clock::now();
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void Stop() { g_enabled.store(false, std::memory_order_relaxed); }

void Clear() {
  Stop();
  Buffer& buf = GlobalBuffer();
  MutexLock lock(buf.mu);
  buf.ring.clear();
  buf.ring.shrink_to_fit();
  buf.capacity = 0;
  buf.next = 0;
  buf.dropped = 0;
}

void RecordComplete(const char* name, Clock::time_point begin,
                    Clock::time_point end) {
  if (!Enabled()) return;
  const int tid = ThisThreadId();
  Buffer& buf = GlobalBuffer();
  MutexLock lock(buf.mu);
  if (buf.capacity == 0) return;  // armed flag raced with Clear()
  TraceEvent event;
  event.name = name;
  event.ts_us =
      std::chrono::duration<double, std::micro>(begin - buf.epoch).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  event.tid = tid;
  if (buf.ring.size() < buf.capacity) {
    buf.ring.push_back(std::move(event));
  } else {
    buf.ring[buf.next] = std::move(event);
    buf.next = (buf.next + 1) % buf.capacity;
    ++buf.dropped;
  }
}

std::vector<TraceEvent> Snapshot() {
  Buffer& buf = GlobalBuffer();
  std::vector<TraceEvent> out;
  {
    MutexLock lock(buf.mu);
    out = buf.ring;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

int64_t dropped() {
  Buffer& buf = GlobalBuffer();
  MutexLock lock(buf.mu);
  return buf.dropped;
}

std::string ExportChromeJson() {
  const std::vector<TraceEvent> events = Snapshot();
  const int64_t dropped_events = dropped();
  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n";
  out += StringPrintf("\"otherData\": {\"tool\": \"parinda\", "
                      "\"dropped_events\": %lld},\n",
                      static_cast<long long>(dropped_events));
  out += "\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += StringPrintf(
        "%s\n  {\"name\": \"%s\", \"cat\": \"parinda\", \"ph\": \"X\", "
        "\"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": %d}",
        i == 0 ? "" : ",", JsonEscaped(e.name).c_str(),
        JsonNumber(e.ts_us).c_str(), JsonNumber(e.dur_us).c_str(), e.tid);
  }
  out += events.empty() ? "]\n" : "\n]\n";
  out += "}\n";
  return out;
}

Status WriteChromeJson(const std::string& path) {
  // Atomic (temp+rename): a crash mid-write never leaves a half-JSON file
  // where a previous good trace used to be.
  return WriteFileAtomic(path, ExportChromeJson());
}

}  // namespace trace
}  // namespace parinda
