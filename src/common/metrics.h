#ifndef PARINDA_COMMON_METRICS_H_
#define PARINDA_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"

namespace parinda {
namespace metrics {

/// Process-wide metrics for PARINDA's hot paths (DESIGN.md §12).
///
/// Three instrument kinds, all safe to touch from any thread:
///
///   Counter    monotonically increasing int64 tally (cache hits, plans
///              built). Increment is one relaxed atomic add.
///   Gauge      last-written int64 level (pool queue depth). Set is one
///              relaxed atomic store.
///   Histogram  latency distribution over log-spaced buckets with
///              p50/p95/p99 readout. Record is a handful of relaxed atomic
///              operations (bucket add, count add, CAS-folded sum).
///
/// Instruments are owned by the global `Registry` and live for the process
/// lifetime; `Registry::Global().counter("x")` registers on first use
/// (mutex-guarded) and returns a stable reference, so call sites cache it
/// in a function-local static and pay only the relaxed-atomic fast path:
///
///   static Counter& hits =
///       Registry::Global().counter("inum.cache_hits");
///   hits.Increment();
///
/// None of the instruments feed back into any decision the library makes,
/// so instrumented runs are bit-identical to uninstrumented ones by
/// construction; the instruments only observe.
///
/// Reset semantics: `Reset()`/`ResetAll()` zero the stored values but never
/// destroy an instrument, so cached references stay valid forever. Tests
/// and benches isolate measurement windows by resetting or by differencing
/// two `Snapshot()` calls.

/// Monotonic event tally.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  // ordering: relaxed — a pure tally. Nothing is published through it and
  // no reader infers cross-thread state from it; snapshots only need the
  // eventual value, which WaitAll/join edges already order.
  std::atomic<int64_t> value_{0};
};

/// Last-written level (queue depth, active workers).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  // ordering: relaxed — see Counter; a gauge is an observational level, not
  // a synchronization point.
  std::atomic<int64_t> value_{0};
};

/// Latency histogram over fixed log-spaced buckets.
///
/// Values are seconds. Buckets span 100 ns .. 1000 s at four buckets per
/// decade, plus an underflow and an overflow bucket; quantiles interpolate
/// linearly inside the winning bucket, so `Quantile(q)` is exact to within
/// one bucket's width (a factor of 10^(1/4) ≈ 1.78).
class Histogram {
 public:
  /// 4 buckets/decade over [1e-7 s, 1e3 s) → 40, plus underflow + overflow.
  static constexpr int kBucketsPerDecade = 4;
  static constexpr int kNumBuckets = 42;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Negative values clamp to zero (underflow).
  void Record(double seconds);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Value at quantile `q` in [0, 1]; 0 when empty. Exact to one bucket.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  void Reset();

  /// Upper bound (seconds) of bucket `b`; +infinity for the overflow bucket.
  static double BucketUpperBound(int b);
  /// Bucket index an observation of `seconds` lands in.
  static int BucketFor(double seconds);

 private:
  // ordering: relaxed — per-bucket tallies and a folded sum; quantile
  // readers tolerate a torn-across-buckets view (a snapshot during
  // concurrent writes is still a valid histogram of *some* prefix).
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// RAII latency probe: records the scope's wall-clock into a histogram at
/// destruction. Pass nullptr to disarm (no clock read at all).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (histogram_ == nullptr) return;
    histogram_->Record(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - begin_)
                           .count());
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point begin_;
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Human-readable dump, one instrument per line (REPL `stats` command).
  std::string ToText() const;
  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Names are escaped; non-finite values are emitted as null.
  std::string ToJson() const;
};

/// Owner of every instrument. One global instance; instruments register on
/// first use and are never destroyed or re-created, so references returned
/// here remain valid for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. Registration takes the registry mutex; cache
  /// the returned reference (function-local static) on hot paths.
  Counter& counter(std::string_view name) PARINDA_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) PARINDA_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) PARINDA_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const PARINDA_EXCLUDES(mu_);

  /// Zeroes every instrument (registrations survive; references stay valid).
  void ResetAll() PARINDA_EXCLUDES(mu_);

 private:
  /// Guards the maps only; the instruments themselves are lock-free.
  /// std::map nodes are stable, so references escape the lock safely.
  mutable Mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_
      PARINDA_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ PARINDA_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      PARINDA_GUARDED_BY(mu_);
};

}  // namespace metrics
}  // namespace parinda

#endif  // PARINDA_COMMON_METRICS_H_
