#ifndef PARINDA_COMMON_RANDOM_H_
#define PARINDA_COMMON_RANDOM_H_

#include <cstdint>
#include <cmath>

namespace parinda {

/// Deterministic, seedable pseudo-random generator (xorshift128+).
///
/// Data generation, workload sampling and benchmarks all use this so that
/// every experiment is exactly reproducible from its seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding avoids correlated low-entropy states.
    state_[0] = SplitMix64(&seed);
    state_[1] = SplitMix64(&seed);
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return NextUint64() % n; }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Zipfian rank in [0, n) with skew `theta` in (0, 1). Uses the classic
  /// Gray et al. rejection-free generator.
  uint64_t NextZipf(uint64_t n, double theta) {
    // Recompute constants only when (n, theta) changes.
    if (n != zipf_n_ || theta != zipf_theta_) {
      zipf_n_ = n;
      zipf_theta_ = theta;
      zipf_zetan_ = Zeta(n, theta);
      zipf_alpha_ = 1.0 / (1.0 - theta);
      zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                  (1.0 - Zeta(2, theta) / zipf_zetan_);
    }
    double u = NextDouble();
    double uz = u * zipf_zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n) *
        std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t state_[2];
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace parinda

#endif  // PARINDA_COMMON_RANDOM_H_
