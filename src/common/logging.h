#ifndef PARINDA_COMMON_LOGGING_H_
#define PARINDA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace parinda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log sink; writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace parinda

#define PARINDA_LOG(level)                                      \
  ::parinda::internal_logging::LogMessage(                      \
      ::parinda::LogLevel::k##level, __FILE__, __LINE__)

#endif  // PARINDA_COMMON_LOGGING_H_
