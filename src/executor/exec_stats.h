#ifndef PARINDA_EXECUTOR_EXEC_STATS_H_
#define PARINDA_EXECUTOR_EXEC_STATS_H_

#include <cstdint>

#include "optimizer/cost_params.h"

namespace parinda {

/// Deterministic execution accounting. The in-memory executor charges page
/// touches and per-tuple CPU exactly like a disk-resident PostgreSQL would
/// issue them; `MeasuredCost` converts the tally into the optimizer's cost
/// units so estimated and "measured" costs are directly comparable —
/// the workload-speedup numbers (paper's 2x–10x) are ratios of this measure.
struct ExecStats {
  int64_t seq_pages_read = 0;
  int64_t random_pages_read = 0;
  int64_t tuples_processed = 0;
  int64_t operator_evals = 0;

  ExecStats& operator+=(const ExecStats& other) {
    seq_pages_read += other.seq_pages_read;
    random_pages_read += other.random_pages_read;
    tuples_processed += other.tuples_processed;
    operator_evals += other.operator_evals;
    return *this;
  }

  /// Cost-unit equivalent of the observed work.
  double MeasuredCost(const CostParams& params) const {
    return params.seq_page_cost * static_cast<double>(seq_pages_read) +
           params.random_page_cost * static_cast<double>(random_pages_read) +
           params.cpu_tuple_cost * static_cast<double>(tuples_processed) +
           params.cpu_operator_cost * static_cast<double>(operator_evals);
  }
};

}  // namespace parinda

#endif  // PARINDA_EXECUTOR_EXEC_STATS_H_
