#ifndef PARINDA_EXECUTOR_EXECUTOR_H_
#define PARINDA_EXECUTOR_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "executor/exec_stats.h"
#include "executor/expr_eval.h"
#include "optimizer/plan.h"
#include "storage/database.h"

namespace parinda {

/// Result of executing one statement.
struct ExecResult {
  /// Final projected rows (after aggregation / ORDER BY / LIMIT).
  std::vector<Row> rows;
  ExecStats stats;
  /// Rows each relational plan node actually produced (scans, joins, sorts;
  /// presentation nodes are reproduced semantically and not tracked).
  /// Keys alias the executed plan's nodes.
  std::map<const PlanNode*, int64_t> node_output_rows;
};

/// Executes `plan` (produced by PlanQuery for `stmt` against db.catalog())
/// over the database's heap tables and indexes.
///
/// The relational core (scans and joins) follows the plan exactly — join
/// order, join methods, index choices — and charges page/CPU accounting
/// accordingly; aggregation, final sort, and LIMIT are applied semantically
/// from the statement (they do not affect page I/O). The statement must be
/// the one the plan was built from.
[[nodiscard]] Result<ExecResult> ExecutePlan(const Database& db, const SelectStatement& stmt,
                               const Plan& plan);

/// Convenience: bind (against db.catalog()), plan with `options`, execute.
[[nodiscard]] Result<ExecResult> ExecuteSql(const Database& db, const std::string& sql);

/// EXPLAIN ANALYZE rendering: the plan tree with estimated vs actual row
/// counts per relational node (actuals from `result.node_output_rows`).
std::string FormatExplainAnalyze(const Plan& plan, const ExecResult& result,
                                 const CatalogReader& catalog);

}  // namespace parinda

#endif  // PARINDA_EXECUTOR_EXECUTOR_H_
