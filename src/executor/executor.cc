#include "executor/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"
#include "optimizer/planner.h"
#include "optimizer/selectivity.h"
#include "parser/binder.h"
#include "parser/parser.h"

namespace parinda {

namespace {

/// Hash/equality for grouping keys.
struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    return a.size() == b.size() && CompareRows(a, b) == 0;
  }
};

class ExecutorImpl {
 public:
  ExecutorImpl(const Database& db, const SelectStatement& stmt)
      : db_(db), stmt_(stmt), num_ranges_(static_cast<int>(stmt.from.size())) {}

  Result<ExecResult> Run(const Plan& plan);

 private:
  Result<std::vector<CompositeRow>> ExecRel(const PlanNode& node,
                                            ExecStats* stats);
  Result<std::vector<CompositeRow>> ExecRelImpl(const PlanNode& node,
                                                ExecStats* stats);
  Result<std::vector<CompositeRow>> ExecSeqScan(const PlanNode& node,
                                                ExecStats* stats);
  Result<std::vector<CompositeRow>> ExecIndexScan(const PlanNode& node,
                                                  ExecStats* stats);
  Result<std::vector<CompositeRow>> ExecBitmapHeapScan(const PlanNode& node,
                                                       ExecStats* stats);
  /// Evaluates a scan node's index conditions against its B-tree, returning
  /// matching row ids (key order) and leaf pages touched.
  Result<BTreeIndex::ScanResult> ProbeIndex(const PlanNode& node) const;
  Result<std::vector<CompositeRow>> ExecNestLoop(const PlanNode& node,
                                                 ExecStats* stats);
  Result<std::vector<CompositeRow>> ExecHashJoin(const PlanNode& node,
                                                 ExecStats* stats);
  Result<std::vector<CompositeRow>> ExecMergeJoin(const PlanNode& node,
                                                  ExecStats* stats);
  Result<std::vector<CompositeRow>> ExecSort(const PlanNode& node,
                                             ExecStats* stats);

  /// Applies node.filters and (for joins) node.join_conds.
  Result<bool> PassesQuals(const PlanNode& node, const CompositeRow& row,
                           ExecStats* stats);

  /// Builds a composite row with `heap_row` placed at `range`.
  CompositeRow MakeComposite(int range, const Row& heap_row) const;

  /// Merges two composites (disjoint ranges).
  static CompositeRow MergeComposites(const CompositeRow& a,
                                      const CompositeRow& b);

  /// Fetches heap rows for index scan results, charging page I/O.
  Result<std::vector<CompositeRow>> FetchHeapRows(
      const PlanNode& node, const std::vector<RowId>& row_ids,
      int64_t leaf_pages_touched, ExecStats* stats);

  const Database& db_;
  const SelectStatement& stmt_;
  int num_ranges_;
  std::map<const PlanNode*, int64_t> node_rows_;
};

CompositeRow ExecutorImpl::MakeComposite(int range, const Row& heap_row) const {
  CompositeRow composite(static_cast<size_t>(num_ranges_));
  composite[range] = heap_row;
  return composite;
}

CompositeRow ExecutorImpl::MergeComposites(const CompositeRow& a,
                                           const CompositeRow& b) {
  CompositeRow out = a;
  for (size_t i = 0; i < b.size(); ++i) {
    if (!b[i].empty()) out[i] = b[i];
  }
  return out;
}

Result<bool> ExecutorImpl::PassesQuals(const PlanNode& node,
                                       const CompositeRow& row,
                                       ExecStats* stats) {
  for (const Expr* qual : node.join_conds) {
    stats->operator_evals += 1;
    PARINDA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*qual, row));
    if (!pass) return false;
  }
  for (const Expr* qual : node.filters) {
    stats->operator_evals += 1;
    PARINDA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*qual, row));
    if (!pass) return false;
  }
  return true;
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecSeqScan(
    const PlanNode& node, ExecStats* stats) {
  const HeapTable* heap = db_.GetHeapTable(node.table_id);
  if (heap == nullptr) {
    return Status::NotFound("no heap table for plan scan node");
  }
  stats->seq_pages_read += heap->num_pages();
  std::vector<CompositeRow> out;
  for (RowId id = 0; id < heap->num_rows(); ++id) {
    stats->tuples_processed += 1;
    CompositeRow composite = MakeComposite(node.range_index, heap->row(id));
    bool pass = true;
    for (const Expr* qual : node.filters) {
      stats->operator_evals += 1;
      PARINDA_ASSIGN_OR_RETURN(pass, EvalPredicate(*qual, composite));
      if (!pass) break;
    }
    if (pass) out.push_back(std::move(composite));
  }
  return out;
}

Result<std::vector<CompositeRow>> ExecutorImpl::FetchHeapRows(
    const PlanNode& node, const std::vector<RowId>& row_ids,
    int64_t leaf_pages_touched, ExecStats* stats) {
  const HeapTable* heap = db_.GetHeapTable(node.table_id);
  if (heap == nullptr) {
    return Status::NotFound("no heap table for plan scan node");
  }
  stats->random_pages_read += leaf_pages_touched;
  std::unordered_set<int64_t> pages;
  std::vector<CompositeRow> out;
  for (RowId id : row_ids) {
    stats->tuples_processed += 1;
    pages.insert(heap->PageOf(id));
    CompositeRow composite = MakeComposite(node.range_index, heap->row(id));
    bool pass = true;
    for (const Expr* qual : node.filters) {
      stats->operator_evals += 1;
      PARINDA_ASSIGN_OR_RETURN(pass, EvalPredicate(*qual, composite));
      if (!pass) break;
    }
    if (pass) out.push_back(std::move(composite));
  }
  stats->random_pages_read += static_cast<int64_t>(pages.size());
  return out;
}

Result<BTreeIndex::ScanResult> ExecutorImpl::ProbeIndex(
    const PlanNode& node) const {
  const BTreeIndex* btree = db_.GetBTree(node.index_id);
  if (btree == nullptr) {
    return Status::InvalidArgument(
        "plan uses a hypothetical index; what-if plans cannot be executed "
        "until the index is materialized");
  }
  // IN-list probe (bitmap scans only): union of one equality probe per
  // list element.
  for (const Expr* cond : node.index_conds) {
    if (cond->kind != ExprKind::kInList) continue;
    const Expr& arg = *cond->children[0];
    if (arg.kind == ExprKind::kColumnRef &&
        arg.bound_range == node.range_index &&
        arg.bound_column == btree->key_columns()[0]) {
      BTreeIndex::ScanResult merged;
      for (size_t i = 1; i < cond->children.size(); ++i) {
        auto item = EvalConstExpr(*cond->children[i]);
        if (!item || item->is_null()) continue;
        BTreeIndex::ScanResult probe = btree->EqualScan({*item});
        merged.leaf_pages_touched += probe.leaf_pages_touched;
        merged.row_ids.insert(merged.row_ids.end(), probe.row_ids.begin(),
                              probe.row_ids.end());
      }
      return merged;
    }
  }
  // Decompose index conditions into an equality prefix plus an optional
  // range on the next key column.
  Row eq_prefix;
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  for (size_t k = 0; k < btree->key_columns().size(); ++k) {
    const ColumnId col = btree->key_columns()[k];
    bool advanced = false;
    for (const Expr* cond : node.index_conds) {
      auto simple = ExtractSimpleClause(*cond);
      if (simple && simple->column == col &&
          simple->range == node.range_index) {
        if (simple->op == BinaryOp::kEq &&
            eq_prefix.size() == k) {  // extend prefix
          eq_prefix.push_back(simple->constant);
          advanced = true;
          break;
        }
        if (k == eq_prefix.size()) {  // range on next column
          switch (simple->op) {
            case BinaryOp::kGt:
              lo = simple->constant;
              lo_inclusive = false;
              break;
            case BinaryOp::kGe:
              lo = simple->constant;
              lo_inclusive = true;
              break;
            case BinaryOp::kLt:
              hi = simple->constant;
              hi_inclusive = false;
              break;
            case BinaryOp::kLe:
              hi = simple->constant;
              hi_inclusive = true;
              break;
            default:
              break;
          }
        }
      } else if (cond->kind == ExprKind::kBetween) {
        const Expr& arg = *cond->children[0];
        if (arg.kind == ExprKind::kColumnRef && arg.bound_column == col &&
            arg.bound_range == node.range_index && k == eq_prefix.size()) {
          auto lo_v = EvalConstExpr(*cond->children[1]);
          auto hi_v = EvalConstExpr(*cond->children[2]);
          if (lo_v && hi_v) {
            lo = *lo_v;
            hi = *hi_v;
            lo_inclusive = hi_inclusive = true;
          }
        }
      }
    }
    if (!advanced) break;
  }
  if (!eq_prefix.empty()) {
    // Residual range bounds on later columns are re-checked by the caller
    // (the conditions stay in node.index_conds).
    return btree->EqualScan(eq_prefix);
  }
  return btree->RangeScan(lo, lo_inclusive, hi, hi_inclusive);
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecIndexScan(
    const PlanNode& node, ExecStats* stats) {
  PARINDA_ASSIGN_OR_RETURN(BTreeIndex::ScanResult scan, ProbeIndex(node));
  // Re-check every index condition (harmless for enforced ones, necessary
  // for bounds the one-dimensional probe could not apply).
  PlanNode recheck = node;  // shallow copy: reuse filters + index_conds
  recheck.filters.insert(recheck.filters.end(), node.index_conds.begin(),
                         node.index_conds.end());
  return FetchHeapRows(recheck, scan.row_ids, scan.leaf_pages_touched, stats);
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecBitmapHeapScan(
    const PlanNode& node, ExecStats* stats) {
  // The executor side of cost_bitmap_heap_scan: probe the index like a
  // plain scan, but sort the matching row ids into physical order so heap
  // pages are each touched once, sequentially.
  const HeapTable* heap = db_.GetHeapTable(node.table_id);
  if (heap == nullptr) {
    return Status::NotFound("no heap table for plan scan node");
  }
  PARINDA_ASSIGN_OR_RETURN(BTreeIndex::ScanResult scan, ProbeIndex(node));
  std::sort(scan.row_ids.begin(), scan.row_ids.end());
  stats->random_pages_read += scan.leaf_pages_touched;

  std::vector<CompositeRow> out;
  int64_t last_page = -1;
  for (RowId id : scan.row_ids) {
    stats->tuples_processed += 1;
    const int64_t page = heap->PageOf(id);
    if (page != last_page) {
      stats->seq_pages_read += 1;  // physical order: one pass over pages
      last_page = page;
    }
    CompositeRow composite = MakeComposite(node.range_index, heap->row(id));
    bool pass = true;
    // Recheck index conditions plus residual filters.
    for (const Expr* qual : node.index_conds) {
      stats->operator_evals += 1;
      PARINDA_ASSIGN_OR_RETURN(pass, EvalPredicate(*qual, composite));
      if (!pass) break;
    }
    if (pass) {
      for (const Expr* qual : node.filters) {
        stats->operator_evals += 1;
        PARINDA_ASSIGN_OR_RETURN(pass, EvalPredicate(*qual, composite));
        if (!pass) break;
      }
    }
    if (pass) out.push_back(std::move(composite));
  }
  return out;
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecNestLoop(
    const PlanNode& node, ExecStats* stats) {
  const PlanNode& outer_node = *node.children[0];
  const PlanNode& inner_node = *node.children[1];
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> outer,
                           ExecRel(outer_node, stats));
  std::vector<CompositeRow> out;

  // Parameterized inner index scan: re-probe the index per outer row.
  if (!node.param_outer_exprs.empty() &&
      inner_node.type == PlanNodeType::kIndexScan) {
    const BTreeIndex* btree = db_.GetBTree(inner_node.index_id);
    if (btree == nullptr) {
      return Status::InvalidArgument(
          "plan uses a hypothetical index; cannot execute");
    }
    for (const CompositeRow& outer_row : outer) {
      PARINDA_ASSIGN_OR_RETURN(
          Value key, EvalScalar(*node.param_outer_exprs[0], outer_row));
      if (key.is_null()) continue;
      BTreeIndex::ScanResult scan = btree->EqualScan({key});
      PARINDA_ASSIGN_OR_RETURN(
          std::vector<CompositeRow> inner_rows,
          FetchHeapRows(inner_node, scan.row_ids, scan.leaf_pages_touched,
                        stats));
      for (const CompositeRow& inner_row : inner_rows) {
        CompositeRow joined = MergeComposites(outer_row, inner_row);
        stats->tuples_processed += 1;
        PARINDA_ASSIGN_OR_RETURN(bool pass, PassesQuals(node, joined, stats));
        if (pass) out.push_back(std::move(joined));
      }
    }
    return out;
  }

  // Plain / materialized rescan: execute inner once, charge rescans.
  ExecStats inner_stats;
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> inner,
                           ExecRel(inner_node, &inner_stats));
  const bool materialized = inner_node.type == PlanNodeType::kMaterialize;
  const int64_t loops = std::max<int64_t>(1, static_cast<int64_t>(outer.size()));
  if (materialized) {
    // One real execution; rescans only cost tuple CPU (charged below).
    *stats += inner_stats;
  } else {
    // A real nested loop re-reads the inner relation every iteration.
    ExecStats scaled = inner_stats;
    scaled.seq_pages_read *= loops;
    scaled.random_pages_read *= loops;
    scaled.tuples_processed *= loops;
    scaled.operator_evals *= loops;
    *stats += scaled;
  }
  for (const CompositeRow& outer_row : outer) {
    for (const CompositeRow& inner_row : inner) {
      stats->tuples_processed += 1;
      CompositeRow joined = MergeComposites(outer_row, inner_row);
      PARINDA_ASSIGN_OR_RETURN(bool pass, PassesQuals(node, joined, stats));
      if (pass) out.push_back(std::move(joined));
    }
  }
  return out;
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecHashJoin(
    const PlanNode& node, ExecStats* stats) {
  const PlanNode& outer_node = *node.children[0];
  const PlanNode& inner_node = *node.children[1];
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> outer,
                           ExecRel(outer_node, stats));
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> inner,
                           ExecRel(inner_node, stats));

  // Split each equi-join condition into (outer side, inner side) using which
  // composite slot is populated.
  auto side_of = [&](const Expr& column_ref,
                     const std::vector<CompositeRow>& rows) -> bool {
    if (rows.empty()) return false;
    return !rows.front()[column_ref.bound_range].empty();
  };
  std::vector<const Expr*> outer_keys;
  std::vector<const Expr*> inner_keys;
  for (const Expr* cond : node.join_conds) {
    if (cond->kind != ExprKind::kComparison || cond->op != BinaryOp::kEq ||
        cond->children[0]->kind != ExprKind::kColumnRef ||
        cond->children[1]->kind != ExprKind::kColumnRef) {
      continue;  // evaluated as a residual qual below
    }
    const Expr* a = cond->children[0].get();
    const Expr* b = cond->children[1].get();
    if (side_of(*a, outer)) {
      outer_keys.push_back(a);
      inner_keys.push_back(b);
    } else {
      outer_keys.push_back(b);
      inner_keys.push_back(a);
    }
  }
  if (outer_keys.empty()) {
    return Status::Internal("hash join without hashable clause");
  }
  std::unordered_multimap<size_t, const CompositeRow*> table;
  table.reserve(inner.size());
  for (const CompositeRow& row : inner) {
    Row key;
    for (const Expr* e : inner_keys) {
      PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, row));
      key.push_back(std::move(v));
    }
    stats->operator_evals += 1;
    table.emplace(HashRow(key), &row);
  }
  std::vector<CompositeRow> out;
  for (const CompositeRow& outer_row : outer) {
    Row key;
    for (const Expr* e : outer_keys) {
      PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, outer_row));
      key.push_back(std::move(v));
    }
    stats->operator_evals += 1;
    auto [begin, end] = table.equal_range(HashRow(key));
    for (auto it = begin; it != end; ++it) {
      CompositeRow joined = MergeComposites(outer_row, *it->second);
      stats->tuples_processed += 1;
      PARINDA_ASSIGN_OR_RETURN(bool pass, PassesQuals(node, joined, stats));
      if (pass) out.push_back(std::move(joined));
    }
  }
  return out;
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecMergeJoin(
    const PlanNode& node, ExecStats* stats) {
  // Inputs are already ordered (by Sort children or index order); run a
  // standard merge with equal-key group cross products.
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> outer,
                           ExecRel(*node.children[0], stats));
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> inner,
                           ExecRel(*node.children[1], stats));
  // Merge keys: the pathkeys the planner sorted each side on.
  const std::vector<PathKey>& outer_keys = node.children[0]->pathkeys;
  const std::vector<PathKey>& inner_keys = node.children[1]->pathkeys;
  const size_t nkeys = std::min(outer_keys.size(), inner_keys.size());
  if (nkeys == 0) return Status::Internal("merge join without sort keys");

  auto key_of = [](const CompositeRow& row, const std::vector<PathKey>& keys,
                   size_t n) {
    Row out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(row[keys[i].range][keys[i].column]);
    }
    return out;
  };
  std::vector<CompositeRow> out;
  size_t i = 0;
  size_t j = 0;
  while (i < outer.size() && j < inner.size()) {
    Row ko = key_of(outer[i], outer_keys, nkeys);
    Row kj = key_of(inner[j], inner_keys, nkeys);
    stats->operator_evals += 1;
    const int c = CompareRows(ko, kj);
    if (c < 0) {
      ++i;
      continue;
    }
    if (c > 0) {
      ++j;
      continue;
    }
    // Equal group: find extents on both sides.
    size_t i_end = i + 1;
    while (i_end < outer.size() &&
           CompareRows(key_of(outer[i_end], outer_keys, nkeys), ko) == 0) {
      ++i_end;
    }
    size_t j_end = j + 1;
    while (j_end < inner.size() &&
           CompareRows(key_of(inner[j_end], inner_keys, nkeys), kj) == 0) {
      ++j_end;
    }
    for (size_t a = i; a < i_end; ++a) {
      for (size_t b = j; b < j_end; ++b) {
        CompositeRow joined = MergeComposites(outer[a], inner[b]);
        stats->tuples_processed += 1;
        PARINDA_ASSIGN_OR_RETURN(bool pass, PassesQuals(node, joined, stats));
        if (pass) out.push_back(std::move(joined));
      }
    }
    i = i_end;
    j = j_end;
  }
  return out;
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecSort(const PlanNode& node,
                                                         ExecStats* stats) {
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> rows,
                           ExecRel(*node.children[0], stats));
  const std::vector<PathKey>& keys = node.sort_keys;
  stats->operator_evals += static_cast<int64_t>(
      rows.size() > 1 ? static_cast<double>(rows.size()) *
                            std::log2(static_cast<double>(rows.size()))
                      : 1);
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const CompositeRow& a, const CompositeRow& b) {
                     for (const PathKey& key : keys) {
                       const Value& va = a[key.range][key.column];
                       const Value& vb = b[key.range][key.column];
                       const int c = va.Compare(vb);
                       if (c != 0) return key.descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return rows;
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecRel(const PlanNode& node,
                                                        ExecStats* stats) {
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> rows,
                           ExecRelImpl(node, stats));
  node_rows_[&node] = static_cast<int64_t>(rows.size());
  return rows;
}

Result<std::vector<CompositeRow>> ExecutorImpl::ExecRelImpl(
    const PlanNode& node, ExecStats* stats) {
  switch (node.type) {
    case PlanNodeType::kSeqScan:
      return ExecSeqScan(node, stats);
    case PlanNodeType::kIndexScan:
      return ExecIndexScan(node, stats);
    case PlanNodeType::kBitmapHeapScan:
      return ExecBitmapHeapScan(node, stats);
    case PlanNodeType::kAppend: {
      std::vector<CompositeRow> out;
      for (const PlanNodePtr& child : node.children) {
        PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> rows,
                                 ExecRel(*child, stats));
        for (CompositeRow& row : rows) out.push_back(std::move(row));
      }
      return out;
    }
    case PlanNodeType::kNestLoopJoin:
      return ExecNestLoop(node, stats);
    case PlanNodeType::kHashJoin:
      return ExecHashJoin(node, stats);
    case PlanNodeType::kMergeJoin:
      return ExecMergeJoin(node, stats);
    case PlanNodeType::kMaterialize:
      return ExecRel(*node.children[0], stats);
    case PlanNodeType::kSort:
      return ExecSort(node, stats);
    default:
      return Status::Internal(
          "presentation node reached relational executor");
  }
}

Result<ExecResult> ExecutorImpl::Run(const Plan& plan) {
  // Peel presentation nodes (Limit / Aggregate / the ORDER BY Sort) off the
  // top of the plan; the semantic pass below reproduces their effect. Sorts
  // feeding merge joins sit inside the join tree and are not affected.
  const PlanNode* node = plan.root.get();
  while (node != nullptr && (node->type == PlanNodeType::kLimit ||
                             node->type == PlanNodeType::kAggregate ||
                             (node->type == PlanNodeType::kSort &&
                              !stmt_.order_by.empty()))) {
    node = node->children[0].get();
  }
  if (node == nullptr) return Status::Internal("empty plan");

  ExecResult result;
  PARINDA_ASSIGN_OR_RETURN(std::vector<CompositeRow> rows,
                           ExecRel(*node, &result.stats));

  const bool has_aggs = StatementHasAggregates(stmt_);
  std::vector<Row> projected;
  std::vector<Row> order_keys;  // parallel to projected

  if (has_aggs) {
    // Group.
    std::unordered_map<Row, std::vector<const CompositeRow*>, RowHash, RowEq>
        groups;
    for (const CompositeRow& row : rows) {
      Row key;
      for (const auto& g : stmt_.group_by) {
        PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*g, row));
        key.push_back(std::move(v));
      }
      result.stats.operator_evals += 1;
      groups[key].push_back(&row);
    }
    if (groups.empty() && stmt_.group_by.empty()) {
      groups[Row{}] = {};  // global aggregate over empty input
    }
    for (const auto& [key, group] : groups) {
      Row out_row;
      for (const SelectItem& item : stmt_.select_list) {
        if (item.star) {
          return Status::Unsupported("SELECT * with aggregation");
        }
        PARINDA_ASSIGN_OR_RETURN(Value v, EvalAggregate(*item.expr, group));
        out_row.push_back(std::move(v));
      }
      Row okey;
      for (const OrderItem& item : stmt_.order_by) {
        PARINDA_ASSIGN_OR_RETURN(Value v, EvalAggregate(*item.expr, group));
        okey.push_back(std::move(v));
      }
      projected.push_back(std::move(out_row));
      order_keys.push_back(std::move(okey));
    }
  } else {
    for (const CompositeRow& row : rows) {
      Row out_row;
      for (const SelectItem& item : stmt_.select_list) {
        if (item.star) {
          for (size_t r = 0; r < row.size(); ++r) {
            for (const Value& v : row[r]) out_row.push_back(v);
          }
        } else {
          PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*item.expr, row));
          out_row.push_back(std::move(v));
        }
      }
      Row okey;
      for (const OrderItem& item : stmt_.order_by) {
        PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*item.expr, row));
        okey.push_back(std::move(v));
      }
      projected.push_back(std::move(out_row));
      order_keys.push_back(std::move(okey));
    }
  }

  if (!stmt_.order_by.empty()) {
    std::vector<size_t> perm(projected.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt_.order_by.size(); ++k) {
        const int c = order_keys[a][k].Compare(order_keys[b][k]);
        if (c != 0) return stmt_.order_by[k].descending ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(projected.size());
    for (size_t i : perm) sorted.push_back(std::move(projected[i]));
    projected = std::move(sorted);
  }

  if (stmt_.limit >= 0 &&
      projected.size() > static_cast<size_t>(stmt_.limit)) {
    projected.resize(static_cast<size_t>(stmt_.limit));
  }
  result.rows = std::move(projected);
  result.node_output_rows = std::move(node_rows_);
  return result;
}

}  // namespace

Result<ExecResult> ExecutePlan(const Database& db, const SelectStatement& stmt,
                               const Plan& plan) {
  ExecutorImpl impl(db, stmt);
  return impl.Run(plan);
}

namespace {

void ExplainAnalyzeNode(const PlanNode& node, int depth,
                        const CatalogReader& catalog,
                        const std::map<const PlanNode*, int64_t>& actuals,
                        std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (depth > 0) out->append("-> ");
  out->append(PlanNodeTypeName(node.type));
  if (node.range_index >= 0) {
    const TableInfo* table = catalog.GetTable(node.table_id);
    if (table != nullptr) {
      out->append(" on ");
      out->append(table->name);
    }
  }
  auto it = actuals.find(&node);
  if (it != actuals.end()) {
    out->append(StringPrintf("  (cost=%.2f rows=%.0f) (actual rows=%lld)",
                             node.total_cost, node.rows,
                             static_cast<long long>(it->second)));
  } else {
    out->append(StringPrintf("  (cost=%.2f rows=%.0f)", node.total_cost,
                             node.rows));
  }
  out->push_back('\n');
  for (const PlanNodePtr& child : node.children) {
    ExplainAnalyzeNode(*child, depth + 1, catalog, actuals, out);
  }
}

}  // namespace

std::string FormatExplainAnalyze(const Plan& plan, const ExecResult& result,
                                 const CatalogReader& catalog) {
  std::string out;
  if (plan.root != nullptr) {
    ExplainAnalyzeNode(*plan.root, 0, catalog, result.node_output_rows, &out);
  }
  return out;
}

Result<ExecResult> ExecuteSql(const Database& db, const std::string& sql) {
  PARINDA_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  PARINDA_RETURN_IF_ERROR(BindStatement(db.catalog(), &stmt));
  PARINDA_ASSIGN_OR_RETURN(Plan plan, PlanQuery(db.catalog(), stmt));
  return ExecutePlan(db, stmt, plan);
}

}  // namespace parinda
