#ifndef PARINDA_EXECUTOR_EXPR_EVAL_H_
#define PARINDA_EXECUTOR_EXPR_EVAL_H_

#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "storage/row.h"

namespace parinda {

/// An intermediate tuple during join processing: one Row per FROM range
/// (empty Row for ranges not yet joined in).
using CompositeRow = std::vector<Row>;

/// Evaluates a scalar (non-aggregate) expression against a composite row.
/// Column references index composite[bound_range][bound_column].
[[nodiscard]] Result<Value> EvalScalar(const Expr& expr, const CompositeRow& row);

/// Evaluates a predicate; NULL results are treated as false (SQL ternary
/// logic collapsed at the filter boundary, as in the executor proper).
[[nodiscard]] Result<bool> EvalPredicate(const Expr& expr, const CompositeRow& row);

/// Evaluates an expression that may contain aggregate function calls over a
/// group of composite rows (count/sum/avg/min/max); scalar parts are taken
/// from the first row of the group.
[[nodiscard]] Result<Value> EvalAggregate(const Expr& expr,
                            const std::vector<const CompositeRow*>& group);

/// True when the expression contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

}  // namespace parinda

#endif  // PARINDA_EXECUTOR_EXPR_EVAL_H_
