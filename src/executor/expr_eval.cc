#include "executor/expr_eval.h"

#include <cmath>

namespace parinda {

namespace {

bool IsAggName(const std::string& f) {
  return f == "count" || f == "sum" || f == "avg" || f == "min" || f == "max";
}

Result<Value> EvalArith(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (!TypeIsNumeric(lhs.type()) || !TypeIsNumeric(rhs.type())) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  const bool both_int = lhs.type() == ValueType::kInt64 &&
                        rhs.type() == ValueType::kInt64 &&
                        op != BinaryOp::kDiv;
  const double l = lhs.ToNumeric();
  const double r = rhs.ToNumeric();
  double out = 0.0;
  switch (op) {
    case BinaryOp::kAdd:
      out = l + r;
      break;
    case BinaryOp::kSub:
      out = l - r;
      break;
    case BinaryOp::kMul:
      out = l * r;
      break;
    case BinaryOp::kDiv:
      if (r == 0.0) return Value::Null();  // SQL would error; NULL keeps flow
      out = l / r;
      break;
    default:
      return Status::InvalidArgument("not an arithmetic operator");
  }
  return both_int ? Value::Int64(static_cast<int64_t>(out)) : Value::Double(out);
}

Result<Value> EvalScalarFunc(const std::string& f, const Value& arg) {
  if (arg.is_null()) return Value::Null();
  const double x = arg.ToNumeric();
  if (f == "abs") {
    return arg.type() == ValueType::kInt64 ? Value::Int64(std::llabs(arg.AsInt64()))
                                           : Value::Double(std::fabs(x));
  }
  if (f == "sqrt") return Value::Double(std::sqrt(x));
  if (f == "floor") return Value::Double(std::floor(x));
  if (f == "ceil") return Value::Double(std::ceil(x));
  return Status::InvalidArgument("unknown scalar function '" + f + "'");
}

}  // namespace

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFuncCall && IsAggName(expr.func_name)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

Result<Value> EvalScalar(const Expr& expr, const CompositeRow& row) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      if (expr.bound_range < 0 ||
          static_cast<size_t>(expr.bound_range) >= row.size() ||
          row[expr.bound_range].empty()) {
        return Status::Internal("column reference outside composite row");
      }
      return row[expr.bound_range][expr.bound_column];
    }
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kArith: {
      PARINDA_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.children[0], row));
      PARINDA_ASSIGN_OR_RETURN(Value rhs, EvalScalar(*expr.children[1], row));
      return EvalArith(expr.op, lhs, rhs);
    }
    case ExprKind::kComparison: {
      PARINDA_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.children[0], row));
      PARINDA_ASSIGN_OR_RETURN(Value rhs, EvalScalar(*expr.children[1], row));
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      const int c = lhs.Compare(rhs);
      bool result = false;
      switch (expr.op) {
        case BinaryOp::kEq:
          result = c == 0;
          break;
        case BinaryOp::kNe:
          result = c != 0;
          break;
        case BinaryOp::kLt:
          result = c < 0;
          break;
        case BinaryOp::kLe:
          result = c <= 0;
          break;
        case BinaryOp::kGt:
          result = c > 0;
          break;
        case BinaryOp::kGe:
          result = c >= 0;
          break;
        default:
          return Status::InvalidArgument("not a comparison operator");
      }
      return Value::Bool(result);
    }
    case ExprKind::kAnd: {
      PARINDA_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.children[0], row));
      if (!lhs.is_null() && !lhs.AsBool()) return Value::Bool(false);
      PARINDA_ASSIGN_OR_RETURN(Value rhs, EvalScalar(*expr.children[1], row));
      if (!rhs.is_null() && !rhs.AsBool()) return Value::Bool(false);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    case ExprKind::kOr: {
      PARINDA_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.children[0], row));
      if (!lhs.is_null() && lhs.AsBool()) return Value::Bool(true);
      PARINDA_ASSIGN_OR_RETURN(Value rhs, EvalScalar(*expr.children[1], row));
      if (!rhs.is_null() && rhs.AsBool()) return Value::Bool(true);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    case ExprKind::kNot: {
      PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.AsBool());
    }
    case ExprKind::kBetween: {
      PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr.children[0], row));
      PARINDA_ASSIGN_OR_RETURN(Value lo, EvalScalar(*expr.children[1], row));
      PARINDA_ASSIGN_OR_RETURN(Value hi, EvalScalar(*expr.children[2], row));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      return Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }
    case ExprKind::kInList: {
      PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      for (size_t i = 1; i < expr.children.size(); ++i) {
        PARINDA_ASSIGN_OR_RETURN(Value item, EvalScalar(*expr.children[i], row));
        if (!item.is_null() && v.Compare(item) == 0) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case ExprKind::kIsNull: {
      PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr.children[0], row));
      return Value::Bool(expr.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kFuncCall: {
      if (IsAggName(expr.func_name)) {
        return Status::InvalidArgument("aggregate '" + expr.func_name +
                                       "' in scalar context");
      }
      if (expr.children.size() != 1) {
        return Status::InvalidArgument("scalar function arity");
      }
      PARINDA_ASSIGN_OR_RETURN(Value arg, EvalScalar(*expr.children[0], row));
      return EvalScalarFunc(expr.func_name, arg);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const CompositeRow& row) {
  PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(expr, row));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return Status::InvalidArgument("predicate did not evaluate to boolean");
  }
  return v.AsBool();
}

Result<Value> EvalAggregate(const Expr& expr,
                            const std::vector<const CompositeRow*>& group) {
  if (expr.kind == ExprKind::kFuncCall && IsAggName(expr.func_name)) {
    const std::string& f = expr.func_name;
    if (f == "count" && expr.star) {
      return Value::Int64(static_cast<int64_t>(group.size()));
    }
    if (expr.children.size() != 1) {
      return Status::InvalidArgument("aggregate arity");
    }
    int64_t count = 0;
    double sum = 0.0;
    Value min_v;
    Value max_v;
    for (const CompositeRow* row : group) {
      PARINDA_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr.children[0], *row));
      if (v.is_null()) continue;
      ++count;
      if (TypeIsNumeric(v.type())) sum += v.ToNumeric();
      if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
      if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
    }
    if (f == "count") return Value::Int64(count);
    if (count == 0) return Value::Null();
    if (f == "sum") return Value::Double(sum);
    if (f == "avg") return Value::Double(sum / static_cast<double>(count));
    if (f == "min") return min_v;
    return max_v;  // "max"
  }
  // Non-aggregate node: recurse, rebuilding the value from aggregated
  // children where needed.
  if (!ContainsAggregate(expr)) {
    if (group.empty()) return Value::Null();
    return EvalScalar(expr, *group.front());
  }
  // Mixed node (e.g. sum(a) / count(*)): evaluate children under aggregate
  // rules, then apply this node's operator.
  switch (expr.kind) {
    case ExprKind::kArith: {
      PARINDA_ASSIGN_OR_RETURN(Value lhs, EvalAggregate(*expr.children[0], group));
      PARINDA_ASSIGN_OR_RETURN(Value rhs, EvalAggregate(*expr.children[1], group));
      return EvalArith(expr.op, lhs, rhs);
    }
    case ExprKind::kComparison: {
      PARINDA_ASSIGN_OR_RETURN(Value lhs, EvalAggregate(*expr.children[0], group));
      PARINDA_ASSIGN_OR_RETURN(Value rhs, EvalAggregate(*expr.children[1], group));
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      const int c = lhs.Compare(rhs);
      switch (expr.op) {
        case BinaryOp::kEq:
          return Value::Bool(c == 0);
        case BinaryOp::kNe:
          return Value::Bool(c != 0);
        case BinaryOp::kLt:
          return Value::Bool(c < 0);
        case BinaryOp::kLe:
          return Value::Bool(c <= 0);
        case BinaryOp::kGt:
          return Value::Bool(c > 0);
        case BinaryOp::kGe:
          return Value::Bool(c >= 0);
        default:
          break;
      }
      return Status::InvalidArgument("not a comparison operator");
    }
    case ExprKind::kFuncCall: {
      PARINDA_ASSIGN_OR_RETURN(Value arg, EvalAggregate(*expr.children[0], group));
      return EvalScalarFunc(expr.func_name, arg);
    }
    default:
      return Status::Unsupported(
          "aggregate nested under unsupported expression kind");
  }
}

}  // namespace parinda
