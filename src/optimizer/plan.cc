#include "optimizer/plan.h"

#include "common/strings.h"

namespace parinda {

const char* PlanNodeTypeName(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kSeqScan:
      return "Seq Scan";
    case PlanNodeType::kIndexScan:
      return "Index Scan";
    case PlanNodeType::kBitmapHeapScan:
      return "Bitmap Heap Scan";
    case PlanNodeType::kAppend:
      return "Append";
    case PlanNodeType::kNestLoopJoin:
      return "Nested Loop";
    case PlanNodeType::kMergeJoin:
      return "Merge Join";
    case PlanNodeType::kHashJoin:
      return "Hash Join";
    case PlanNodeType::kMaterialize:
      return "Materialize";
    case PlanNodeType::kSort:
      return "Sort";
    case PlanNodeType::kAggregate:
      return "Aggregate";
    case PlanNodeType::kLimit:
      return "Limit";
  }
  return "?";
}

namespace {

void CollectScansImpl(const PlanNode* node,
                      std::vector<const PlanNode*>* out) {
  if (node == nullptr) return;
  if (node->type == PlanNodeType::kSeqScan ||
      node->type == PlanNodeType::kIndexScan ||
      node->type == PlanNodeType::kBitmapHeapScan) {
    out->push_back(node);
  }
  for (const PlanNodePtr& child : node->children) {
    CollectScansImpl(child.get(), out);
  }
}

std::string QualsToString(const std::vector<const Expr*>& quals) {
  std::vector<std::string> parts;
  parts.reserve(quals.size());
  for (const Expr* q : quals) parts.push_back(q->ToSql());
  return Join(parts, " AND ");
}

}  // namespace

std::vector<const PlanNode*> Plan::CollectScans() const {
  std::vector<const PlanNode*> out;
  CollectScansImpl(root.get(), &out);
  return out;
}

void ExplainNode(const PlanNode& node, int depth, const CatalogReader* catalog,
                 std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (depth > 0) out->append("-> ");
  out->append(PlanNodeTypeName(node.type));
  if (node.type == PlanNodeType::kIndexScan ||
      node.type == PlanNodeType::kBitmapHeapScan) {
    const IndexInfo* index =
        catalog != nullptr ? catalog->GetIndex(node.index_id) : nullptr;
    if (index != nullptr) {
      out->append(" using ");
      out->append(index->name);
    } else {
      out->append(StringPrintf(" using index #%d", node.index_id));
    }
  }
  if (node.range_index >= 0) {
    const TableInfo* table =
        catalog != nullptr ? catalog->GetTable(node.table_id) : nullptr;
    if (table != nullptr) {
      out->append(" on ");
      out->append(table->name);
    } else {
      out->append(StringPrintf(" on range %d (table #%d)", node.range_index,
                               node.table_id));
    }
  }
  out->append(StringPrintf("  (cost=%.2f..%.2f rows=%.0f width=%.0f)",
                           node.startup_cost, node.total_cost, node.rows,
                           node.width));
  out->push_back('\n');
  auto detail = [&](const char* label, const std::string& text) {
    if (text.empty()) return;
    out->append(static_cast<size_t>(depth) * 2 + 5, ' ');
    out->append(label);
    out->append(text);
    out->push_back('\n');
  };
  detail("Index Cond: ", QualsToString(node.index_conds));
  detail("Filter: ", QualsToString(node.filters));
  detail("Join Cond: ", QualsToString(node.join_conds));
  if (!node.sort_keys.empty()) {
    std::vector<std::string> keys;
    for (const PathKey& key : node.sort_keys) {
      keys.push_back(StringPrintf("r%d.c%d%s", key.range, key.column,
                                  key.descending ? " DESC" : ""));
    }
    detail("Sort Key: ", Join(keys, ", "));
  }
  if (node.type == PlanNodeType::kLimit && node.limit_count >= 0) {
    detail("Limit: ", std::to_string(node.limit_count));
  }
  for (const PlanNodePtr& child : node.children) {
    ExplainNode(*child, depth + 1, catalog, out);
  }
}

std::string Plan::ToString() const {
  std::string out;
  if (root != nullptr) ExplainNode(*root, 0, nullptr, &out);
  return out;
}

std::string Plan::ToString(const CatalogReader& catalog) const {
  std::string out;
  if (root != nullptr) ExplainNode(*root, 0, &catalog, &out);
  return out;
}

}  // namespace parinda
