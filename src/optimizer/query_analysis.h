#ifndef PARINDA_OPTIMIZER_QUERY_ANALYSIS_H_
#define PARINDA_OPTIMIZER_QUERY_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"

namespace parinda {

/// Structural decomposition of a bound SELECT statement, shared by the
/// planner, the INUM cached cost model, the index-candidate generator and
/// AutoPart's attribute-usage analysis.
struct AnalyzedQuery {
  /// Per FROM-range table metadata.
  std::vector<const TableInfo*> tables;

  /// Single-relation WHERE conjuncts, grouped by range.
  std::vector<std::vector<const Expr*>> restrictions;
  /// Combined selectivity of each range's restrictions.
  std::vector<double> restriction_sel;

  struct EquiJoin {
    const Expr* expr = nullptr;
    int left_range = -1;
    ColumnId left_column = kInvalidColumnId;
    int right_range = -1;
    ColumnId right_column = kInvalidColumnId;
  };
  std::vector<EquiJoin> equi_joins;

  /// Conjuncts spanning several ranges that are not simple equi-joins;
  /// `first` is the bitmask of ranges referenced.
  std::vector<std::pair<uint64_t, const Expr*>> complex_clauses;

  /// All columns each range touches anywhere in the query (SELECT list,
  /// WHERE, GROUP BY, ORDER BY) — AutoPart's "attribute usage" sets.
  std::vector<std::vector<ColumnId>> referenced_columns;

  /// Columns of each range usable as interesting orders (join columns plus
  /// simple ORDER BY / GROUP BY columns).
  std::vector<std::vector<ColumnId>> interesting_orders;

  /// Join columns of `range` (subset of interesting_orders).
  std::vector<ColumnId> JoinColumnsOf(int range) const;
};

/// Decomposes a bound statement. Fails with BindError when the statement was
/// not bound against (a superset of) `catalog`.
[[nodiscard]] Result<AnalyzedQuery> AnalyzeQuery(const CatalogReader& catalog,
                                   const SelectStatement& stmt);

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_QUERY_ANALYSIS_H_
