#ifndef PARINDA_OPTIMIZER_HOOKS_H_
#define PARINDA_OPTIMIZER_HOOKS_H_

#include <functional>
#include <vector>

#include "catalog/catalog.h"

namespace parinda {

/// Per-relation planning information, assembled by the planner from the
/// catalog and then offered to the relation-info hook for modification —
/// the analogue of PostgreSQL's `RelOptInfo` + `get_relation_info_hook`,
/// which is the extension point PARINDA uses to inject what-if features
/// (paper §3.1: "the hooks can be replaced at runtime with functions that
/// insert new statistics information into the list of physical design
/// features").
struct RelOptInfo {
  const TableInfo* table = nullptr;
  /// Effective statistics the planner will use. Initialized from `table`;
  /// hooks may override.
  double row_count = 0.0;
  double pages = 0.0;
  /// Indexes visible to the planner. Hooks append hypothetical entries here;
  /// the pointed-to IndexInfo objects must outlive planning.
  std::vector<const IndexInfo*> indexes;
};

/// Called once per base relation during planning, after the catalog lookup
/// and before path generation.
using RelationInfoHook = std::function<void(const CatalogReader&, RelOptInfo*)>;

/// Runtime-replaceable planner hooks. A default-constructed registry has no
/// hooks installed; planning then uses catalog data verbatim.
class HookRegistry {
 public:
  void set_relation_info_hook(RelationInfoHook hook) {
    relation_info_hook_ = std::move(hook);
  }
  void clear_relation_info_hook() { relation_info_hook_ = nullptr; }
  const RelationInfoHook& relation_info_hook() const {
    return relation_info_hook_;
  }

 private:
  RelationInfoHook relation_info_hook_;
};

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_HOOKS_H_
