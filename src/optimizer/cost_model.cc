#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "catalog/size_model.h"

namespace parinda {

namespace {

double ClampRows(double rows) { return std::max(1.0, std::ceil(rows)); }

}  // namespace

ScanCost CostSeqScan(const CostParams& params, const TableInfo& table,
                     double filter_sel, int num_filter_quals) {
  ScanCost cost;
  const double pages = std::max(1.0, table.pages);
  double run = params.seq_page_cost * pages +
               params.cpu_tuple_cost * table.row_count +
               params.cpu_operator_cost * num_filter_quals * table.row_count;
  if (!params.enable_seqscan) run += CostParams::kDisableCost;
  cost.startup = 0.0;
  cost.total = run;
  cost.rows = ClampRows(table.row_count * filter_sel);
  return cost;
}

double MackertLohmanPagesFetched(double tuples, double pages,
                                 double cache_pages) {
  // PostgreSQL index_pages_fetched() (costsize.c), single-table form.
  const double T = std::max(1.0, pages);
  const double b = std::max(1.0, cache_pages);
  const double s = std::max(0.0, tuples);
  if (s <= 0.0) return 0.0;
  double fetched;
  if (T <= b) {
    fetched = (2.0 * T * s) / (2.0 * T + s);
    fetched = std::min(fetched, T);
  } else {
    const double lim = (2.0 * T * b) / (2.0 * T - b);
    if (s <= lim) {
      fetched = (2.0 * T * s) / (2.0 * T + s);
    } else {
      fetched = b + (s - lim) * (T - b) / T;
      fetched = std::min(fetched, T);
    }
  }
  return std::ceil(fetched);
}

ScanCost CostIndexScan(const CostParams& params, const TableInfo& table,
                       const IndexInfo& index, double index_sel,
                       double filter_sel, int num_index_conds,
                       int num_filter_quals, double loop_count) {
  ScanCost cost;
  const double rows = std::max(1.0, table.row_count);
  const double heap_pages = std::max(1.0, table.pages);
  const double tuples_fetched = ClampRows(rows * index_sel);
  const double leaf_pages = std::max(1.0, index.leaf_pages);
  const double entries = index.entries > 0 ? index.entries : rows;

  // --- Index access cost (genericcostestimate) ---
  const double index_pages_fetched = std::ceil(index_sel * leaf_pages);
  double index_io = params.random_page_cost * std::max(1.0, index_pages_fetched);
  // Tree descent: one random page per level.
  index_io += params.random_page_cost * index.tree_height;
  const double index_cpu =
      params.cpu_index_tuple_cost * index_sel * entries +
      params.cpu_operator_cost * num_index_conds * index_sel * entries;
  const double index_startup =
      params.random_page_cost * (index.tree_height + 1);

  // --- Heap access cost: interpolate between perfectly correlated
  // (sequential) and uncorrelated (Mackert–Lohman random) I/O. ---
  double max_io;
  if (loop_count > 1.0) {
    // Amortize cache effects across rescans (PostgreSQL 9.x refinement of
    // the 8.3 model; keeps parameterized nested loops sanely priced).
    const double total_tuples = tuples_fetched * loop_count;
    max_io = MackertLohmanPagesFetched(total_tuples, heap_pages,
                                       params.effective_cache_size) /
             loop_count;
    max_io *= params.random_page_cost;
  } else {
    max_io = MackertLohmanPagesFetched(tuples_fetched, heap_pages,
                                       params.effective_cache_size) *
             params.random_page_cost;
  }
  const double pages_if_sorted = std::ceil(index_sel * heap_pages);
  const double min_io =
      params.random_page_cost +
      std::max(0.0, pages_if_sorted - 1.0) * params.seq_page_cost;

  // Correlation of the index's leading key column.
  double correlation = 0.0;
  if (!index.columns.empty()) {
    const ColumnStats* stats = table.StatsFor(index.columns[0]);
    if (stats != nullptr) correlation = stats->correlation;
  }
  const double csquared = correlation * correlation;
  const double heap_io = std::max(min_io, max_io + csquared * (min_io - max_io));

  const double heap_cpu =
      params.cpu_tuple_cost * tuples_fetched +
      params.cpu_operator_cost * num_filter_quals * tuples_fetched;

  double total = index_io + index_cpu + heap_io + heap_cpu;
  if (!params.enable_indexscan) total += CostParams::kDisableCost;

  cost.startup = index_startup;
  cost.total = total;
  cost.rows = ClampRows(rows * filter_sel);
  return cost;
}

ScanCost CostBitmapHeapScan(const CostParams& params, const TableInfo& table,
                            const IndexInfo& index, double index_sel,
                            double filter_sel, int num_index_conds,
                            int num_filter_quals) {
  ScanCost cost;
  const double rows = std::max(1.0, table.row_count);
  const double heap_pages = std::max(1.0, table.pages);
  const double tuples_fetched = ClampRows(rows * index_sel);
  const double leaf_pages = std::max(1.0, index.leaf_pages);
  const double entries = index.entries > 0 ? index.entries : rows;

  // Bitmap index scan: same index access arithmetic as a plain scan.
  const double index_pages_fetched = std::ceil(index_sel * leaf_pages);
  const double index_io =
      params.random_page_cost *
          std::max(1.0, index_pages_fetched) +
      params.random_page_cost * index.tree_height;
  const double index_cpu =
      params.cpu_index_tuple_cost * index_sel * entries +
      params.cpu_operator_cost * num_index_conds * index_sel * entries;

  // Heap pages, visited in physical order: per-page cost interpolates from
  // random (sparse bitmap) to sequential (dense bitmap) with sqrt density,
  // exactly like cost_bitmap_heap_scan.
  const double pages_fetched = MackertLohmanPagesFetched(
      tuples_fetched, heap_pages, params.effective_cache_size);
  double cost_per_page = params.random_page_cost;
  if (pages_fetched >= 2.0) {
    cost_per_page =
        params.random_page_cost -
        (params.random_page_cost - params.seq_page_cost) *
            std::sqrt(pages_fetched / heap_pages);
  }
  const double heap_io = pages_fetched * cost_per_page;
  // Every fetched tuple is rechecked against the index conditions.
  const double heap_cpu =
      (params.cpu_tuple_cost + params.cpu_operator_cost * num_index_conds) *
          tuples_fetched +
      params.cpu_operator_cost * num_filter_quals * tuples_fetched;

  double total = index_io + index_cpu + heap_io + heap_cpu;
  if (!params.enable_indexscan) total += CostParams::kDisableCost;
  // Building the bitmap happens before the first row comes out.
  cost.startup = index_io + index_cpu;
  cost.total = total;
  cost.rows = ClampRows(rows * filter_sel);
  return cost;
}

SortCost CostSort(const CostParams& params, double rows, double width,
                  double input_total_cost) {
  SortCost cost;
  const double tuples = std::max(2.0, rows);
  const double comparison = 2.0 * params.cpu_operator_cost;
  double sort_cost = comparison * tuples * std::log2(tuples);
  const double bytes = tuples * std::max(8.0, width);
  if (bytes > params.work_mem_bytes) {
    // External merge sort: charge I/O for one write+read pass per merge
    // level (simplified cost_sort disk case).
    const double pages = std::ceil(bytes / kPageSize);
    const double levels = std::max(
        1.0, std::ceil(std::log2(bytes / params.work_mem_bytes)));
    sort_cost += levels * pages *
                 (params.seq_page_cost * 0.75 + params.random_page_cost * 0.25) *
                 2.0;
  }
  if (!params.enable_sort) sort_cost += CostParams::kDisableCost;
  cost.startup = input_total_cost + sort_cost;
  cost.per_output = params.cpu_operator_cost;
  return cost;
}

}  // namespace parinda
