#include "optimizer/index_match.h"

#include "optimizer/selectivity.h"

namespace parinda {

IndexMatch MatchIndexConditions(const std::vector<const TableInfo*>& tables,
                                const std::vector<const Expr*>& restrictions,
                                int range, const IndexInfo& index,
                                bool allow_in_list) {
  IndexMatch match;
  std::vector<bool> consumed(restrictions.size(), false);
  for (size_t k = 0; k < index.columns.size(); ++k) {
    const ColumnId col = index.columns[k];
    bool matched_eq = false;
    for (size_t i = 0; i < restrictions.size(); ++i) {
      if (consumed[i]) continue;
      const ClauseMatchKind kind =
          MatchClauseToColumn(*restrictions[i], range, col);
      if (kind == ClauseMatchKind::kEquality) {
        match.matched_conds.push_back(restrictions[i]);
        consumed[i] = true;
        matched_eq = true;
        break;  // one equality pins this key column
      }
      if (kind == ClauseMatchKind::kRange) {
        match.matched_conds.push_back(restrictions[i]);
        consumed[i] = true;  // keep scanning for the paired bound
      }
      if (kind == ClauseMatchKind::kInList && allow_in_list && k == 0 &&
          !match.has_in_list) {
        match.matched_conds.push_back(restrictions[i]);
        consumed[i] = true;
        match.has_in_list = true;  // ends the prefix like a range does
      }
    }
    if (!matched_eq) break;  // range/IN (or nothing) ends the usable prefix
    ++match.num_eq_columns;
  }
  match.index_sel = match.matched_conds.empty()
                        ? 1.0
                        : ConjunctionSelectivity(tables, match.matched_conds);
  return match;
}

ScanCost IndexAccessCost(const CostParams& params,
                         const std::vector<const TableInfo*>& tables,
                         const std::vector<const Expr*>& restrictions,
                         double restriction_sel, int range,
                         const TableInfo& table, const IndexInfo& index) {
  const IndexMatch match =
      MatchIndexConditions(tables, restrictions, range, index);
  const int num_filters =
      static_cast<int>(restrictions.size() - match.matched_conds.size());
  return CostIndexScan(params, table, index, match.index_sel, restriction_sel,
                       static_cast<int>(match.matched_conds.size()),
                       num_filters);
}

}  // namespace parinda
