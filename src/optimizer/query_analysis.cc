#include "optimizer/query_analysis.h"

#include <algorithm>

#include "optimizer/selectivity.h"

namespace parinda {

namespace {

void AddUnique(std::vector<ColumnId>* list, ColumnId col) {
  if (std::find(list->begin(), list->end(), col) == list->end()) {
    list->push_back(col);
  }
}

void CollectReferenced(const Expr& expr,
                       std::vector<std::vector<ColumnId>>* referenced) {
  std::vector<std::pair<int, ColumnId>> refs;
  expr.CollectColumnRefs(&refs);
  for (const auto& [range, col] : refs) {
    if (range >= 0 && static_cast<size_t>(range) < referenced->size()) {
      AddUnique(&(*referenced)[range], col);
    }
  }
}

}  // namespace

std::vector<ColumnId> AnalyzedQuery::JoinColumnsOf(int range) const {
  std::vector<ColumnId> out;
  for (const EquiJoin& join : equi_joins) {
    if (join.left_range == range) AddUnique(&out, join.left_column);
    if (join.right_range == range) AddUnique(&out, join.right_column);
  }
  return out;
}

Result<AnalyzedQuery> AnalyzeQuery(const CatalogReader& catalog,
                                   const SelectStatement& stmt) {
  AnalyzedQuery out;
  const int num_rels = static_cast<int>(stmt.from.size());
  if (num_rels == 0) return Status::InvalidArgument("empty FROM list");
  if (num_rels > 63) return Status::Unsupported("too many relations");
  out.tables.resize(static_cast<size_t>(num_rels));
  out.restrictions.resize(static_cast<size_t>(num_rels));
  out.referenced_columns.resize(static_cast<size_t>(num_rels));
  out.interesting_orders.resize(static_cast<size_t>(num_rels));
  for (int r = 0; r < num_rels; ++r) {
    const TableInfo* table = catalog.GetTable(stmt.from[r].bound_table);
    if (table == nullptr) {
      return Status::BindError("statement is not bound to this catalog");
    }
    out.tables[r] = table;
  }

  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt.where.get(), &conjuncts);
  for (const Expr* conjunct : conjuncts) {
    std::vector<std::pair<int, ColumnId>> refs;
    conjunct->CollectColumnRefs(&refs);
    uint64_t mask = 0;
    for (const auto& [range, col] : refs) {
      if (range < 0) return Status::BindError("unbound column in WHERE");
      mask |= uint64_t{1} << range;
    }
    const int popcount = __builtin_popcountll(mask);
    if (popcount <= 1) {
      const int r = popcount == 0 ? 0 : __builtin_ctzll(mask);
      out.restrictions[r].push_back(conjunct);
    } else if (popcount == 2 && conjunct->kind == ExprKind::kComparison &&
               conjunct->op == BinaryOp::kEq &&
               conjunct->children[0]->kind == ExprKind::kColumnRef &&
               conjunct->children[1]->kind == ExprKind::kColumnRef) {
      AnalyzedQuery::EquiJoin join;
      join.expr = conjunct;
      join.left_range = conjunct->children[0]->bound_range;
      join.left_column = conjunct->children[0]->bound_column;
      join.right_range = conjunct->children[1]->bound_range;
      join.right_column = conjunct->children[1]->bound_column;
      out.equi_joins.push_back(join);
    } else {
      out.complex_clauses.emplace_back(mask, conjunct);
    }
  }

  out.restriction_sel.resize(static_cast<size_t>(num_rels));
  for (int r = 0; r < num_rels; ++r) {
    out.restriction_sel[r] =
        ConjunctionSelectivity(out.tables, out.restrictions[r]);
  }

  // Referenced columns: every expression in the statement.
  for (const SelectItem& item : stmt.select_list) {
    if (item.star) {
      for (int r = 0; r < num_rels; ++r) {
        for (ColumnId c = 0; c < out.tables[r]->schema.num_columns(); ++c) {
          AddUnique(&out.referenced_columns[r], c);
        }
      }
    } else if (item.expr != nullptr) {
      CollectReferenced(*item.expr, &out.referenced_columns);
    }
  }
  if (stmt.where != nullptr) {
    CollectReferenced(*stmt.where, &out.referenced_columns);
  }
  for (const auto& g : stmt.group_by) {
    CollectReferenced(*g, &out.referenced_columns);
  }
  for (const OrderItem& item : stmt.order_by) {
    CollectReferenced(*item.expr, &out.referenced_columns);
  }

  // Interesting orders: join columns + simple ORDER BY / GROUP BY columns.
  for (int r = 0; r < num_rels; ++r) {
    out.interesting_orders[r] = out.JoinColumnsOf(r);
  }
  for (const OrderItem& item : stmt.order_by) {
    const Expr* e = item.expr.get();
    if (e->kind == ExprKind::kColumnRef && e->bound_range >= 0) {
      AddUnique(&out.interesting_orders[e->bound_range], e->bound_column);
    }
  }
  for (const auto& g : stmt.group_by) {
    if (g->kind == ExprKind::kColumnRef && g->bound_range >= 0) {
      AddUnique(&out.interesting_orders[g->bound_range], g->bound_column);
    }
  }
  return out;
}

}  // namespace parinda
