#ifndef PARINDA_OPTIMIZER_SELECTIVITY_H_
#define PARINDA_OPTIMIZER_SELECTIVITY_H_

#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "parser/ast.h"

namespace parinda {

/// PostgreSQL's default selectivities for predicates the statistics cannot
/// resolve (src/include/utils/selfuncs.h).
inline constexpr double kDefaultEqSel = 0.005;
inline constexpr double kDefaultIneqSel = 0.3333333333333333;
inline constexpr double kDefaultRangeSel = 0.005;
inline constexpr double kDefaultUnknownSel = 0.5;

/// Clamps a selectivity into [0, 1].
double ClampSelectivity(double sel);

/// A predicate normalized to `column <op> constant` form.
struct SimpleClause {
  const Expr* expr = nullptr;
  int range = -1;
  ColumnId column = kInvalidColumnId;
  BinaryOp op = BinaryOp::kEq;
  Value constant;
};

/// Extracts `col <op> const` (either operand order, constants folded) from a
/// comparison; nullopt when the clause is not of that shape.
std::optional<SimpleClause> ExtractSimpleClause(const Expr& expr);

/// Folds an expression of literals (possibly with arithmetic) to a Value;
/// nullopt when the expression references columns or cannot be evaluated.
std::optional<Value> EvalConstExpr(const Expr& expr);

/// How a clause can be used against a specific column by a B-tree index.
/// kInList only suits bitmap scans (multiple probes, unioned); plain index
/// scans cannot serve it (PostgreSQL 8.3 behaves the same way).
enum class ClauseMatchKind { kNone, kEquality, kRange, kInList };

/// Classifies whether `expr` is an index-usable predicate on
/// (range, column): equality, range (including BETWEEN), or not usable.
ClauseMatchKind MatchClauseToColumn(const Expr& expr, int range,
                                    ColumnId column);

/// Combined selectivity of a conjunct list with PostgreSQL's range-pair
/// handling (upper and lower bounds on the same column combine additively,
/// not multiplicatively).
double ConjunctionSelectivity(const std::vector<const TableInfo*>& tables,
                              const std::vector<const Expr*>& conjuncts);

/// Selectivity of `column = constant` on `table`, using MCVs then the
/// distinct count (PostgreSQL's eqsel / var_eq_const).
double EqSelectivity(const TableInfo& table, ColumnId column,
                     const Value& constant);

/// Selectivity of `column <op> constant` for <, <=, >, >= using the MCV list
/// plus histogram interpolation (PostgreSQL's scalarltsel family).
double RangeSelectivity(const TableInfo& table, ColumnId column, BinaryOp op,
                        const Value& constant);

/// Selectivity of an arbitrary (bound) predicate over the single relation at
/// range index `range`, where `tables[r]` resolves range index r to its
/// TableInfo. Conjuncts multiply, disjuncts add-with-overlap, NOT inverts.
double ClauseSelectivity(const std::vector<const TableInfo*>& tables,
                         const Expr& expr);

/// Selectivity of an equi-join clause `t1.a = t2.b` (PostgreSQL's eqjoinsel:
/// (1-nullfrac1)(1-nullfrac2) / max(nd1, nd2)).
double EquiJoinSelectivity(const TableInfo& left, ColumnId left_col,
                           const TableInfo& right, ColumnId right_col);

/// True when the half-open range [lo, hi) (NULL bound = open end) can
/// contain rows satisfying all of the query's simple restrictions on
/// (range_index, column). Drives horizontal-partition pruning in the
/// planner (PostgreSQL's constraint exclusion).
bool RangeMayMatch(const Value& lo, const Value& hi,
                   const std::vector<const Expr*>& restrictions,
                   int range_index, ColumnId column);

/// Number of distinct values of `column` after filtering to `rows` rows
/// (scales n_distinct down for small row counts; used for GROUP BY
/// estimation).
double DistinctAfterFilter(const TableInfo& table, ColumnId column,
                           double rows);

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_SELECTIVITY_H_
