#ifndef PARINDA_OPTIMIZER_PLANNER_H_
#define PARINDA_OPTIMIZER_PLANNER_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/cost_params.h"
#include "optimizer/hooks.h"
#include "optimizer/plan.h"
#include "parser/ast.h"

namespace parinda {

/// Planner configuration.
struct PlannerOptions {
  CostParams params;
  /// Optional hook registry; what-if layers install their hooks here.
  const HookRegistry* hooks = nullptr;
  /// Relations up to which exhaustive System-R dynamic programming is used;
  /// larger FROM lists fall back to a greedy left-deep search.
  int max_dp_rels = 10;
};

/// Process-wide planner instrumentation. Every PlanQuery call increments
/// `plans_built` — including the calls INUM issues internally while filling
/// its cache — so incremental-vs-full evaluation strategies are assertable
/// in tests and reportable in benches. The counter is atomic (the parallel
/// advisor evaluation layer plans from worker threads).
class Planner {
 public:
  struct Stats {
    int64_t plans_built = 0;
  };

  /// Snapshot of the counters.
  static Stats stats();
  /// Resets the counters; tests and benches isolate measurement windows by
  /// resetting (or by differencing two snapshots).
  static void ResetStats();
};

/// Plans a *bound* SELECT statement (see BindStatement) into a physical plan
/// with PostgreSQL-style costs. The statement must outlive the returned
/// plan (plan nodes alias its expressions).
[[nodiscard]] Result<Plan> PlanQuery(const CatalogReader& catalog,
                       const SelectStatement& stmt,
                       const PlannerOptions& options = {});

/// True when the statement computes aggregates (GROUP BY or aggregate
/// functions in the SELECT list).
bool StatementHasAggregates(const SelectStatement& stmt);

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_PLANNER_H_
