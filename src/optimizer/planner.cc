#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "optimizer/cost_model.h"
#include "optimizer/index_match.h"
#include "optimizer/query_analysis.h"
#include "optimizer/selectivity.h"

namespace parinda {

namespace {

using RelMask = uint64_t;

double ClampRows(double rows) { return std::max(1.0, std::ceil(rows)); }

/// True when `prefix` is a prefix of `keys`.
bool PathKeysContain(const std::vector<PathKey>& keys,
                     const std::vector<PathKey>& prefix) {
  if (prefix.size() > keys.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(keys[i] == prefix[i])) return false;
  }
  return true;
}

using EquiJoinClause = AnalyzedQuery::EquiJoin;

bool HasAggCall(const Expr& expr) {
  if (expr.kind == ExprKind::kFuncCall) {
    const std::string& f = expr.func_name;
    if (f == "count" || f == "sum" || f == "avg" || f == "min" || f == "max") {
      return true;
    }
  }
  for (const auto& child : expr.children) {
    if (HasAggCall(*child)) return true;
  }
  return false;
}

class PlannerImpl {
 public:
  PlannerImpl(const CatalogReader& catalog, const SelectStatement& stmt,
              const PlannerOptions& options)
      : catalog_(catalog), stmt_(stmt), options_(options) {}

  Result<Plan> Run();

 private:
  Status Setup();
  /// Candidate access paths for one base relation.
  std::vector<PlanNodePtr> BaseRelPaths(int range);
  /// Adds `path` to `paths`, keeping only non-dominated candidates.
  static void AddPath(std::vector<PlanNodePtr>* paths, PlanNodePtr path);
  /// Cheapest path in a list (by total cost).
  static const PlanNodePtr& CheapestPath(const std::vector<PlanNodePtr>& paths);

  /// Estimated joint cardinality of the relations in `mask` after all
  /// applicable restriction and join clauses. Memoized for consistency
  /// across DP partitions.
  double MaskRows(RelMask mask);
  double MaskWidth(RelMask mask) const;

  /// All join paths for outer × inner.
  void GenerateJoinPaths(RelMask outer_mask, RelMask inner_mask,
                         const std::vector<PlanNodePtr>& outer_paths,
                         const std::vector<PlanNodePtr>& inner_paths,
                         std::vector<PlanNodePtr>* out);

  /// Adds aggregation / sort / limit on top of a join-tree path; returns the
  /// finished candidate.
  PlanNodePtr FinalizePath(PlanNodePtr path);

  /// Sort node on top of `input` ordered by `keys`.
  PlanNodePtr MakeSort(PlanNodePtr input, std::vector<PathKey> keys) const;

  /// Maps ORDER BY items to pathkeys; nullopt when any key is not a simple
  /// column reference.
  std::optional<std::vector<PathKey>> OrderByPathKeys() const;

  const CatalogReader& catalog_;
  const SelectStatement& stmt_;
  const PlannerOptions& options_;

  int num_rels_ = 0;
  AnalyzedQuery analyzed_;
  std::vector<const TableInfo*> tables_;
  std::vector<RelOptInfo> rels_;
  std::vector<std::vector<const Expr*>> restrictions_;
  std::vector<double> restriction_sel_;
  std::vector<EquiJoinClause> equi_joins_;
  std::vector<const Expr*> aggregates_;
  std::map<RelMask, double> mask_rows_;
  std::map<RelMask, std::vector<PlanNodePtr>> best_;
};

Status PlannerImpl::Setup() {
  num_rels_ = static_cast<int>(stmt_.from.size());
  PARINDA_ASSIGN_OR_RETURN(analyzed_, AnalyzeQuery(catalog_, stmt_));
  tables_ = analyzed_.tables;
  restrictions_ = analyzed_.restrictions;
  restriction_sel_ = analyzed_.restriction_sel;
  equi_joins_ = analyzed_.equi_joins;

  rels_.resize(static_cast<size_t>(num_rels_));
  for (int r = 0; r < num_rels_; ++r) {
    RelOptInfo& rel = rels_[r];
    rel.table = tables_[r];
    rel.row_count = std::max(1.0, rel.table->row_count);
    rel.pages = std::max(1.0, rel.table->pages);
    rel.indexes = catalog_.TableIndexes(rel.table->id);
    // PostgreSQL's get_relation_info_hook moment: let registered hooks add
    // what-if indexes or override sizes.
    if (options_.hooks != nullptr && options_.hooks->relation_info_hook()) {
      options_.hooks->relation_info_hook()(catalog_, &rel);
    }
  }
  for (const SelectItem& item : stmt_.select_list) {
    if (!item.star && item.expr != nullptr) aggregates_.push_back(item.expr.get());
  }
  return Status::OK();
}

double PlannerImpl::MaskWidth(RelMask mask) const {
  double width = 0.0;
  for (int r = 0; r < num_rels_; ++r) {
    if ((mask >> r) & 1) {
      const TableInfo* table = tables_[r];
      for (ColumnId c = 0; c < table->schema.num_columns(); ++c) {
        const ColumnStats* stats = table->StatsFor(c);
        width += stats != nullptr ? stats->avg_width : 8.0;
      }
    }
  }
  return width;
}

double PlannerImpl::MaskRows(RelMask mask) {
  auto it = mask_rows_.find(mask);
  if (it != mask_rows_.end()) return it->second;
  double rows = 1.0;
  for (int r = 0; r < num_rels_; ++r) {
    if ((mask >> r) & 1) {
      rows *= std::max(1.0, rels_[r].row_count) * restriction_sel_[r];
    }
  }
  for (const EquiJoinClause& clause : equi_joins_) {
    if (((mask >> clause.left_range) & 1) && ((mask >> clause.right_range) & 1)) {
      rows *= EquiJoinSelectivity(*tables_[clause.left_range],
                                  clause.left_column,
                                  *tables_[clause.right_range],
                                  clause.right_column);
    }
  }
  for (const auto& [cmask, cexpr] : analyzed_.complex_clauses) {
    if ((cmask & mask) == cmask) {
      rows *= ClauseSelectivity(tables_, *cexpr);
    }
  }
  rows = ClampRows(rows);
  mask_rows_[mask] = rows;
  return rows;
}

std::vector<PlanNodePtr> PlannerImpl::BaseRelPaths(int range) {
  std::vector<PlanNodePtr> paths;
  const RelOptInfo& rel = rels_[range];
  const TableInfo& table = *rel.table;
  const double out_rows = MaskRows(RelMask{1} << range);
  const double width = MaskWidth(RelMask{1} << range);

  // Use a TableInfo with hook-adjusted sizes for costing.
  TableInfo effective = table;
  effective.row_count = rel.row_count;
  effective.pages = rel.pages;

  // Horizontally partitioned table: scan as an Append over the children
  // that survive pruning against this query's predicates on the partition
  // column (PostgreSQL's constraint exclusion).
  if (table.IsHorizontallyPartitioned()) {
    std::vector<PlanNodePtr> child_scans;
    double append_cost = 0.0;
    double append_startup = 0.0;
    double append_rows = 0.0;
    bool usable = true;
    for (size_t k = 0; k < table.horizontal_children.size(); ++k) {
      const Value lo = k == 0 ? Value() : table.partition_bounds[k - 1];
      const Value hi = k == table.partition_bounds.size()
                           ? Value()
                           : table.partition_bounds[k];
      if (!RangeMayMatch(lo, hi, restrictions_[range], range,
                         table.partition_column)) {
        continue;  // pruned
      }
      const TableInfo* child = catalog_.GetTable(table.horizontal_children[k]);
      if (child == nullptr) {
        usable = false;
        break;
      }
      // Child selectivity: reuse the query's restriction selectivity against
      // the child's (sliced) statistics.
      std::vector<const TableInfo*> child_tables = tables_;
      child_tables[range] = child;
      const double child_sel =
          ConjunctionSelectivity(child_tables, restrictions_[range]);
      // Best access path for this child: seq scan vs its indexes.
      const ScanCost seq =
          CostSeqScan(options_.params, *child, child_sel,
                      static_cast<int>(restrictions_[range].size()));
      auto scan = std::make_shared<PlanNode>();
      scan->type = PlanNodeType::kSeqScan;
      scan->range_index = range;
      scan->table_id = child->id;
      scan->filters = restrictions_[range];
      scan->startup_cost = seq.startup;
      scan->total_cost = seq.total;
      scan->rows = seq.rows;
      scan->width = width;
      PlanNodePtr best_child = scan;
      for (const IndexInfo* child_index : catalog_.TableIndexes(child->id)) {
        const IndexMatch child_match = MatchIndexConditions(
            child_tables, restrictions_[range], range, *child_index);
        if (!child_match.HasConds()) continue;
        const ScanCost idx = CostIndexScan(
            options_.params, *child, *child_index, child_match.index_sel,
            child_sel, static_cast<int>(child_match.matched_conds.size()),
            static_cast<int>(restrictions_[range].size() -
                             child_match.matched_conds.size()));
        if (idx.total < best_child->total_cost) {
          auto idx_scan = std::make_shared<PlanNode>();
          idx_scan->type = PlanNodeType::kIndexScan;
          idx_scan->range_index = range;
          idx_scan->table_id = child->id;
          idx_scan->index_id = child_index->id;
          idx_scan->index_conds = child_match.matched_conds;
          for (const Expr* restriction : restrictions_[range]) {
            if (std::find(child_match.matched_conds.begin(),
                          child_match.matched_conds.end(),
                          restriction) == child_match.matched_conds.end()) {
              idx_scan->filters.push_back(restriction);
            }
          }
          idx_scan->startup_cost = idx.startup;
          idx_scan->total_cost = idx.total;
          idx_scan->rows = idx.rows;
          idx_scan->width = width;
          best_child = std::move(idx_scan);
        }
      }
      append_cost += best_child->total_cost;
      append_startup = std::max(append_startup, best_child->startup_cost);
      append_rows += best_child->rows;
      child_scans.push_back(std::move(best_child));
    }
    if (usable) {
      auto append = std::make_shared<PlanNode>();
      append->type = PlanNodeType::kAppend;
      append->range_index = range;
      append->table_id = table.id;
      append->children = std::move(child_scans);
      append->startup_cost = append_startup;
      append->total_cost =
          append_cost +
          options_.params.cpu_tuple_cost * std::max(1.0, append_rows) * 0.5;
      append->rows = std::max(1.0, std::min(out_rows, append_rows));
      append->width = width;
      AddPath(&paths, std::move(append));
    }
  }

  // Sequential scan.
  {
    const ScanCost cost =
        CostSeqScan(options_.params, effective, restriction_sel_[range],
                    static_cast<int>(restrictions_[range].size()));
    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kSeqScan;
    node->range_index = range;
    node->table_id = table.id;
    node->filters = restrictions_[range];
    node->startup_cost = cost.startup;
    node->total_cost = cost.total;
    node->rows = out_rows;
    node->width = width;
    AddPath(&paths, std::move(node));
  }

  // Index scans.
  for (const IndexInfo* index : rel.indexes) {
    const IndexMatch match =
        MatchIndexConditions(tables_, restrictions_[range], range, *index);
    const IndexMatch bitmap_match = MatchIndexConditions(
        tables_, restrictions_[range], range, *index, /*allow_in_list=*/true);
    std::vector<const Expr*> index_conds = match.matched_conds;
    // Pathkeys the index provides (ascending key order).
    std::vector<PathKey> pathkeys;
    for (ColumnId col : index->columns) {
      pathkeys.push_back(PathKey{range, col, false});
    }
    const bool provides_useful_order = [&] {
      // Leading column appears in ORDER BY / GROUP BY or an equi join.
      const ColumnId lead = index->columns[0];
      for (const OrderItem& item : stmt_.order_by) {
        const Expr* e = item.expr.get();
        if (e->kind == ExprKind::kColumnRef && e->bound_range == range &&
            e->bound_column == lead) {
          return true;
        }
      }
      for (const auto& g : stmt_.group_by) {
        if (g->kind == ExprKind::kColumnRef && g->bound_range == range &&
            g->bound_column == lead) {
          return true;
        }
      }
      for (const EquiJoinClause& clause : equi_joins_) {
        if ((clause.left_range == range && clause.left_column == lead) ||
            (clause.right_range == range && clause.right_column == lead)) {
          return true;
        }
      }
      return false;
    }();
    if (index_conds.empty() && !provides_useful_order &&
        !bitmap_match.HasConds()) {
      continue;
    }

    const double index_sel = match.index_sel;
    // Residual filters: everything not consumed as an index condition.
    std::vector<const Expr*> filters;
    for (const Expr* restriction : restrictions_[range]) {
      if (std::find(index_conds.begin(), index_conds.end(), restriction) ==
          index_conds.end()) {
        filters.push_back(restriction);
      }
    }
    if (!index_conds.empty() || provides_useful_order) {
      const ScanCost cost = CostIndexScan(
          options_.params, effective, *index, index_sel,
          restriction_sel_[range], static_cast<int>(index_conds.size()),
          static_cast<int>(filters.size()));
      auto node = std::make_shared<PlanNode>();
      node->type = PlanNodeType::kIndexScan;
      node->range_index = range;
      node->table_id = table.id;
      node->index_id = index->id;
      node->index_conds = index_conds;
      node->filters = filters;
      node->pathkeys = std::move(pathkeys);
      node->startup_cost = cost.startup;
      node->total_cost = cost.total;
      node->rows = out_rows;
      node->width = width;
      AddPath(&paths, std::move(node));
    }

    // Bitmap heap scan: unordered, reads heap pages in physical order (the
    // winner at medium selectivities), and additionally serves IN-list
    // predicates on the leading key column via multi-probe union.
    if (bitmap_match.HasConds()) {
      std::vector<const Expr*> index_conds = bitmap_match.matched_conds;
      const double index_sel = bitmap_match.index_sel;
      std::vector<const Expr*> filters;
      for (const Expr* restriction : restrictions_[range]) {
        if (std::find(index_conds.begin(), index_conds.end(), restriction) ==
            index_conds.end()) {
          filters.push_back(restriction);
        }
      }
      const ScanCost bitmap_cost = CostBitmapHeapScan(
          options_.params, effective, *index, index_sel,
          restriction_sel_[range], static_cast<int>(index_conds.size()),
          static_cast<int>(filters.size()));
      auto bitmap = std::make_shared<PlanNode>();
      bitmap->type = PlanNodeType::kBitmapHeapScan;
      bitmap->range_index = range;
      bitmap->table_id = table.id;
      bitmap->index_id = index->id;
      bitmap->index_conds = std::move(index_conds);
      bitmap->filters = std::move(filters);
      bitmap->startup_cost = bitmap_cost.startup;
      bitmap->total_cost = bitmap_cost.total;
      bitmap->rows = out_rows;
      bitmap->width = width;
      AddPath(&paths, std::move(bitmap));
    }
  }
  return paths;
}

void PlannerImpl::AddPath(std::vector<PlanNodePtr>* paths, PlanNodePtr path) {
  // Dominance pruning: drop `path` if an existing one is no more expensive
  // and at least as well ordered; drop existing ones `path` dominates.
  for (const PlanNodePtr& existing : *paths) {
    if (existing->total_cost <= path->total_cost &&
        existing->startup_cost <= path->startup_cost &&
        PathKeysContain(existing->pathkeys, path->pathkeys)) {
      return;
    }
  }
  paths->erase(
      std::remove_if(paths->begin(), paths->end(),
                     [&](const PlanNodePtr& existing) {
                       return path->total_cost <= existing->total_cost &&
                              path->startup_cost <= existing->startup_cost &&
                              PathKeysContain(path->pathkeys,
                                              existing->pathkeys);
                     }),
      paths->end());
  paths->push_back(std::move(path));
}

const PlanNodePtr& PlannerImpl::CheapestPath(
    const std::vector<PlanNodePtr>& paths) {
  PARINDA_CHECK(!paths.empty());
  size_t best = 0;
  for (size_t i = 1; i < paths.size(); ++i) {
    if (paths[i]->total_cost < paths[best]->total_cost) best = i;
  }
  return paths[best];
}

void PlannerImpl::GenerateJoinPaths(RelMask outer_mask, RelMask inner_mask,
                                    const std::vector<PlanNodePtr>& outer_paths,
                                    const std::vector<PlanNodePtr>& inner_paths,
                                    std::vector<PlanNodePtr>* out) {
  const CostParams& params = options_.params;
  const RelMask mask = outer_mask | inner_mask;
  const double join_rows = MaskRows(mask);
  const double width = MaskWidth(mask);

  // Clauses evaluated at this join.
  std::vector<const EquiJoinClause*> clauses;
  for (const EquiJoinClause& clause : equi_joins_) {
    const RelMask l = RelMask{1} << clause.left_range;
    const RelMask r = RelMask{1} << clause.right_range;
    if (((l & outer_mask) && (r & inner_mask)) ||
        ((l & inner_mask) && (r & outer_mask))) {
      clauses.push_back(&clause);
    }
  }
  std::vector<const Expr*> join_filters;
  for (const auto& [cmask, cexpr] : analyzed_.complex_clauses) {
    if ((cmask & mask) == cmask && (cmask & outer_mask) &&
        (cmask & inner_mask)) {
      join_filters.push_back(cexpr);
    }
  }
  std::vector<const Expr*> join_conds;
  for (const EquiJoinClause* clause : clauses) join_conds.push_back(clause->expr);

  const PlanNodePtr& inner_cheapest = CheapestPath(inner_paths);

  auto finish_join = [&](std::shared_ptr<PlanNode> node) {
    node->rows = join_rows;
    node->width = width;
    node->join_conds = join_conds;
    node->filters = join_filters;
    // Residual filter CPU.
    node->total_cost +=
        params.cpu_operator_cost * static_cast<double>(join_filters.size()) *
        join_rows;
    out->push_back(std::move(node));
  };

  for (const PlanNodePtr& outer : outer_paths) {
    // --- Nested loop (plain inner rescan) ---
    {
      auto node = std::make_shared<PlanNode>();
      node->type = PlanNodeType::kNestLoopJoin;
      node->children = {outer, inner_cheapest};
      node->pathkeys = outer->pathkeys;
      node->startup_cost = outer->startup_cost + inner_cheapest->startup_cost;
      double total = outer->total_cost +
                     ClampRows(outer->rows) * inner_cheapest->total_cost +
                     params.cpu_tuple_cost * join_rows;
      // Per-tuple qual evaluation on the cross product.
      total += params.cpu_operator_cost *
               static_cast<double>(clauses.size()) * ClampRows(outer->rows) *
               ClampRows(inner_cheapest->rows);
      if (!params.enable_nestloop) total += CostParams::kDisableCost;
      node->total_cost = total;
      finish_join(std::move(node));
    }
    // --- Nested loop with materialized inner ---
    {
      auto mat = std::make_shared<PlanNode>();
      mat->type = PlanNodeType::kMaterialize;
      mat->children = {inner_cheapest};
      mat->rows = inner_cheapest->rows;
      mat->width = inner_cheapest->width;
      mat->startup_cost = inner_cheapest->startup_cost;
      mat->total_cost = inner_cheapest->total_cost +
                        params.cpu_tuple_cost * inner_cheapest->rows;
      const double rescan =
          params.cpu_operator_cost * ClampRows(inner_cheapest->rows);
      auto node = std::make_shared<PlanNode>();
      node->type = PlanNodeType::kNestLoopJoin;
      node->pathkeys = outer->pathkeys;
      node->startup_cost = outer->startup_cost + mat->startup_cost;
      double total = outer->total_cost + mat->total_cost +
                     std::max(0.0, ClampRows(outer->rows) - 1.0) * rescan +
                     params.cpu_tuple_cost * join_rows;
      total += params.cpu_operator_cost *
               static_cast<double>(clauses.size()) * ClampRows(outer->rows) *
               ClampRows(inner_cheapest->rows);
      if (!params.enable_nestloop) total += CostParams::kDisableCost;
      node->total_cost = total;
      node->children = {outer, std::move(mat)};
      finish_join(std::move(node));
    }
    // --- Parameterized nested loop: inner index scan on a join column ---
    if (__builtin_popcountll(inner_mask) == 1 && !clauses.empty()) {
      const int inner_range = __builtin_ctzll(inner_mask);
      const RelOptInfo& rel = rels_[inner_range];
      TableInfo effective = *rel.table;
      effective.row_count = rel.row_count;
      effective.pages = rel.pages;
      for (const IndexInfo* index : rel.indexes) {
        // The index leading column must be the inner side of a clause.
        const EquiJoinClause* param_clause = nullptr;
        ColumnId inner_col = kInvalidColumnId;
        const Expr* outer_expr = nullptr;
        for (const EquiJoinClause* clause : clauses) {
          if (clause->left_range == inner_range &&
              clause->left_column == index->columns[0]) {
            param_clause = clause;
            inner_col = clause->left_column;
            outer_expr = clause->expr->children[1].get();
            break;
          }
          if (clause->right_range == inner_range &&
              clause->right_column == index->columns[0]) {
            param_clause = clause;
            inner_col = clause->right_column;
            outer_expr = clause->expr->children[0].get();
            break;
          }
        }
        if (param_clause == nullptr) continue;
        // Per-loop selectivity of key = outer value: 1 / ndistinct.
        const ColumnStats* stats = effective.StatsFor(inner_col);
        const double nd = stats != nullptr
                              ? stats->DistinctCount(effective.row_count)
                              : effective.row_count;
        const double eq_sel = 1.0 / std::max(1.0, nd);
        const double loop_count = ClampRows(outer->rows);
        const double filter_sel = restriction_sel_[inner_range] * eq_sel;
        const ScanCost cost = CostIndexScan(
            params, effective, *index, eq_sel, filter_sel, 1,
            static_cast<int>(restrictions_[inner_range].size()), loop_count);
        auto inner_scan = std::make_shared<PlanNode>();
        inner_scan->type = PlanNodeType::kIndexScan;
        inner_scan->range_index = inner_range;
        inner_scan->table_id = rel.table->id;
        inner_scan->index_id = index->id;
        inner_scan->index_conds = {param_clause->expr};
        inner_scan->filters = restrictions_[inner_range];
        inner_scan->startup_cost = cost.startup;
        inner_scan->total_cost = cost.total;
        inner_scan->rows = std::max(1.0, cost.rows);
        inner_scan->width = MaskWidth(inner_mask);

        auto node = std::make_shared<PlanNode>();
        node->type = PlanNodeType::kNestLoopJoin;
        node->pathkeys = outer->pathkeys;
        node->param_outer_exprs = {outer_expr};
        node->startup_cost = outer->startup_cost + inner_scan->startup_cost;
        double total = outer->total_cost + loop_count * inner_scan->total_cost +
                       params.cpu_tuple_cost * join_rows;
        if (!params.enable_nestloop) total += CostParams::kDisableCost;
        node->total_cost = total;
        node->children = {outer, std::move(inner_scan)};
        // The parameterized clause is enforced by the index; others filter.
        node->rows = join_rows;
        node->width = width;
        node->join_conds = join_conds;
        node->filters = join_filters;
        node->total_cost += params.cpu_operator_cost *
                            static_cast<double>(join_filters.size()) *
                            join_rows;
        out->push_back(std::move(node));
      }
    }
    // --- Hash join ---
    if (!clauses.empty()) {
      auto node = std::make_shared<PlanNode>();
      node->type = PlanNodeType::kHashJoin;
      node->children = {outer, inner_cheapest};
      const double build =
          inner_cheapest->total_cost +
          (params.cpu_operator_cost + params.cpu_tuple_cost) *
              ClampRows(inner_cheapest->rows);
      node->startup_cost = build;
      double total = build + outer->total_cost +
                     params.cpu_operator_cost *
                         static_cast<double>(clauses.size()) *
                         ClampRows(outer->rows) +
                     params.cpu_tuple_cost * join_rows;
      if (!params.enable_hashjoin) total += CostParams::kDisableCost;
      node->total_cost = total;
      finish_join(std::move(node));
    }
    // --- Merge join ---
    if (!clauses.empty()) {
      // Sort keys from the join clauses (outer side / inner side).
      std::vector<PathKey> outer_keys;
      std::vector<PathKey> inner_keys;
      for (const EquiJoinClause* clause : clauses) {
        const bool left_is_outer =
            ((RelMask{1} << clause->left_range) & outer_mask) != 0;
        outer_keys.push_back(PathKey{
            left_is_outer ? clause->left_range : clause->right_range,
            left_is_outer ? clause->left_column : clause->right_column, false});
        inner_keys.push_back(PathKey{
            left_is_outer ? clause->right_range : clause->left_range,
            left_is_outer ? clause->right_column : clause->left_column, false});
      }
      PlanNodePtr merge_outer = outer;
      if (!PathKeysContain(outer->pathkeys, outer_keys)) {
        merge_outer = MakeSort(outer, outer_keys);
      }
      PlanNodePtr merge_inner = inner_cheapest;
      if (!PathKeysContain(inner_cheapest->pathkeys, inner_keys)) {
        merge_inner = MakeSort(inner_cheapest, inner_keys);
      }
      auto node = std::make_shared<PlanNode>();
      node->type = PlanNodeType::kMergeJoin;
      node->pathkeys = merge_outer->pathkeys;
      node->startup_cost = merge_outer->startup_cost +
                           merge_inner->startup_cost;
      double total = merge_outer->total_cost + merge_inner->total_cost +
                     params.cpu_operator_cost *
                         (ClampRows(merge_outer->rows) +
                          ClampRows(merge_inner->rows)) +
                     params.cpu_tuple_cost * join_rows;
      if (!params.enable_mergejoin) total += CostParams::kDisableCost;
      node->total_cost = total;
      node->children = {std::move(merge_outer), std::move(merge_inner)};
      finish_join(std::move(node));
    }
  }
}

PlanNodePtr PlannerImpl::MakeSort(PlanNodePtr input,
                                  std::vector<PathKey> keys) const {
  const SortCost cost = CostSort(options_.params, input->rows, input->width,
                                 input->total_cost);
  auto node = std::make_shared<PlanNode>();
  node->type = PlanNodeType::kSort;
  node->rows = input->rows;
  node->width = input->width;
  node->startup_cost = cost.startup;
  node->total_cost = cost.startup + cost.per_output * ClampRows(input->rows);
  node->pathkeys = keys;
  node->sort_keys = std::move(keys);
  node->children = {std::move(input)};
  return node;
}

std::optional<std::vector<PathKey>> PlannerImpl::OrderByPathKeys() const {
  std::vector<PathKey> keys;
  for (const OrderItem& item : stmt_.order_by) {
    const Expr* e = item.expr.get();
    if (e->kind != ExprKind::kColumnRef || e->bound_range < 0) {
      return std::nullopt;
    }
    keys.push_back(PathKey{e->bound_range, e->bound_column, item.descending});
  }
  return keys;
}

PlanNodePtr PlannerImpl::FinalizePath(PlanNodePtr path) {
  const CostParams& params = options_.params;
  const bool has_aggs = StatementHasAggregates(stmt_);

  if (has_aggs) {
    // Grouping keys as pathkeys when they are simple columns.
    std::vector<PathKey> group_keys;
    bool simple_groups = true;
    for (const auto& g : stmt_.group_by) {
      if (g->kind == ExprKind::kColumnRef && g->bound_range >= 0) {
        group_keys.push_back(PathKey{g->bound_range, g->bound_column, false});
      } else {
        simple_groups = false;
      }
    }
    // Output group count: product of per-key distincts clamped by input.
    double groups = 1.0;
    if (!stmt_.group_by.empty()) {
      for (const auto& g : stmt_.group_by) {
        if (g->kind == ExprKind::kColumnRef && g->bound_range >= 0) {
          groups *= DistinctAfterFilter(*tables_[g->bound_range],
                                        g->bound_column, path->rows);
        } else {
          groups *= 10.0;  // unknown expression key
        }
      }
      groups = std::min(groups, std::max(1.0, path->rows));
    }
    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kAggregate;
    for (const auto& g : stmt_.group_by) node->group_by.push_back(g.get());
    node->aggregates = aggregates_;
    node->rows = ClampRows(groups);
    node->width = 8.0 * static_cast<double>(stmt_.select_list.size() + 1);
    const double agg_cpu =
        params.cpu_operator_cost * ClampRows(path->rows) *
        std::max<double>(1.0, static_cast<double>(aggregates_.size()));
    const bool input_sorted =
        simple_groups && !group_keys.empty() &&
        PathKeysContain(path->pathkeys, group_keys);
    if (input_sorted) {
      node->hashed_aggregation = false;
      node->pathkeys = path->pathkeys;
      node->startup_cost = path->startup_cost;
      node->total_cost = path->total_cost + agg_cpu;
    } else {
      node->hashed_aggregation = true;
      node->startup_cost = path->total_cost + agg_cpu;
      node->total_cost = node->startup_cost +
                         params.cpu_tuple_cost * node->rows;
    }
    node->children = {std::move(path)};
    path = std::move(node);
  }

  if (!stmt_.order_by.empty()) {
    auto keys = OrderByPathKeys();
    const bool sorted =
        keys.has_value() && PathKeysContain(path->pathkeys, *keys);
    if (!sorted) {
      std::vector<PathKey> sort_keys =
          keys.has_value() ? *keys : std::vector<PathKey>{};
      path = MakeSort(std::move(path), std::move(sort_keys));
    }
  }

  if (stmt_.limit >= 0) {
    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kLimit;
    node->limit_count = stmt_.limit;
    node->pathkeys = path->pathkeys;
    const double in_rows = ClampRows(path->rows);
    const double fraction =
        std::min(1.0, static_cast<double>(stmt_.limit) / in_rows);
    node->rows = std::min(in_rows, static_cast<double>(stmt_.limit));
    node->width = path->width;
    node->startup_cost = path->startup_cost;
    node->total_cost =
        path->startup_cost + fraction * (path->total_cost - path->startup_cost);
    node->children = {std::move(path)};
    path = std::move(node);
  }
  return path;
}

Result<Plan> PlannerImpl::Run() {
  PARINDA_RETURN_IF_ERROR(Setup());

  // Base relation paths.
  for (int r = 0; r < num_rels_; ++r) {
    best_[RelMask{1} << r] = BaseRelPaths(r);
  }

  const RelMask full_mask = (num_rels_ == 63)
                                ? ~RelMask{0}
                                : ((RelMask{1} << num_rels_) - 1);

  if (num_rels_ > 1 && num_rels_ <= options_.max_dp_rels) {
    // System-R dynamic programming over connected subsets.
    for (int size = 2; size <= num_rels_; ++size) {
      for (RelMask mask = 1; mask <= full_mask; ++mask) {
        if (__builtin_popcountll(mask) != size) continue;
        std::vector<PlanNodePtr> paths;
        bool connected = false;
        // Enumerate proper submask partitions.
        for (RelMask sub = (mask - 1) & mask; sub != 0;
             sub = (sub - 1) & mask) {
          const RelMask other = mask ^ sub;
          auto it_sub = best_.find(sub);
          auto it_other = best_.find(other);
          if (it_sub == best_.end() || it_other == best_.end()) continue;
          if (it_sub->second.empty() || it_other->second.empty()) continue;
          // Joinable (shares an equi-join clause)?
          bool joined = false;
          for (const EquiJoinClause& clause : equi_joins_) {
            const RelMask l = RelMask{1} << clause.left_range;
            const RelMask r = RelMask{1} << clause.right_range;
            if (((l & sub) && (r & other)) || ((l & other) && (r & sub))) {
              joined = true;
              break;
            }
          }
          if (!joined) continue;
          connected = true;
          std::vector<PlanNodePtr> generated;
          GenerateJoinPaths(sub, other, it_sub->second, it_other->second,
                            &generated);
          for (PlanNodePtr& p : generated) AddPath(&paths, std::move(p));
        }
        if (!connected) {
          // Cartesian fallback: split off the lowest relation.
          const RelMask lowest = mask & (~mask + 1);
          const RelMask rest = mask ^ lowest;
          auto it_low = best_.find(lowest);
          auto it_rest = best_.find(rest);
          if (it_low != best_.end() && it_rest != best_.end() &&
              !it_low->second.empty() && !it_rest->second.empty()) {
            std::vector<PlanNodePtr> generated;
            GenerateJoinPaths(it_rest->first, lowest, it_rest->second,
                              it_low->second, &generated);
            GenerateJoinPaths(lowest, it_rest->first, it_low->second,
                              it_rest->second, &generated);
            for (PlanNodePtr& p : generated) AddPath(&paths, std::move(p));
          }
        }
        if (!paths.empty()) best_[mask] = std::move(paths);
      }
    }
  } else if (num_rels_ > 1) {
    // Greedy left-deep: start from the smallest filtered relation, join the
    // cheapest-next at each step.
    std::vector<bool> used(static_cast<size_t>(num_rels_), false);
    int start = 0;
    double best_rows = -1.0;
    for (int r = 0; r < num_rels_; ++r) {
      const double rows = MaskRows(RelMask{1} << r);
      if (best_rows < 0 || rows < best_rows) {
        best_rows = rows;
        start = r;
      }
    }
    used[start] = true;
    RelMask current = RelMask{1} << start;
    std::vector<PlanNodePtr> current_paths = best_[current];
    for (int step = 1; step < num_rels_; ++step) {
      int pick = -1;
      std::vector<PlanNodePtr> pick_paths;
      double pick_cost = 0.0;
      for (int r = 0; r < num_rels_; ++r) {
        if (used[r]) continue;
        std::vector<PlanNodePtr> generated;
        GenerateJoinPaths(current, RelMask{1} << r, current_paths,
                          best_[RelMask{1} << r], &generated);
        if (generated.empty()) continue;
        std::vector<PlanNodePtr> pruned;
        for (PlanNodePtr& p : generated) AddPath(&pruned, std::move(p));
        const double cost = CheapestPath(pruned)->total_cost;
        if (pick < 0 || cost < pick_cost) {
          pick = r;
          pick_cost = cost;
          pick_paths = std::move(pruned);
        }
      }
      PARINDA_CHECK(pick >= 0);
      used[pick] = true;
      current |= RelMask{1} << pick;
      current_paths = std::move(pick_paths);
    }
    best_[full_mask] = std::move(current_paths);
  }

  auto it = best_.find(full_mask);
  if (it == best_.end() || it->second.empty()) {
    return Status::Internal("planner produced no paths");
  }

  // Finalize every surviving join path and keep the cheapest statement plan.
  PlanNodePtr best_final;
  for (const PlanNodePtr& path : it->second) {
    PlanNodePtr final_path = FinalizePath(path);
    if (best_final == nullptr ||
        final_path->total_cost < best_final->total_cost) {
      best_final = std::move(final_path);
    }
  }
  Plan plan;
  plan.root = std::move(best_final);
  return plan;
}

}  // namespace

bool StatementHasAggregates(const SelectStatement& stmt) {
  if (!stmt.group_by.empty()) return true;
  for (const SelectItem& item : stmt.select_list) {
    if (!item.star && item.expr != nullptr && HasAggCall(*item.expr)) {
      return true;
    }
  }
  return false;
}

namespace {
// Lives in the process-wide metrics registry so `stats dump`/bench exports
// see it alongside every other counter. Increments from pool workers
// publish nothing (the plans themselves travel through each worker's owned
// matrix slot, ordered by the ThreadPool mutex at WaitAll); readers only
// ever difference two snapshots taken on the owner thread after WaitAll,
// where the pool's mutex already provides happens-before.
metrics::Counter& PlansBuiltCounter() {
  static metrics::Counter& counter =
      metrics::Registry::Global().counter("planner.plans_built");
  return counter;
}
}  // namespace

Planner::Stats Planner::stats() {
  Stats out;
  out.plans_built = PlansBuiltCounter().value();
  return out;
}

void Planner::ResetStats() { PlansBuiltCounter().Reset(); }

Result<Plan> PlanQuery(const CatalogReader& catalog,
                       const SelectStatement& stmt,
                       const PlannerOptions& options) {
  PARINDA_TRACE_SPAN("optimizer.plan_query");
  PlansBuiltCounter().Increment();
  PlannerImpl impl(catalog, stmt, options);
  return impl.Run();
}

}  // namespace parinda
