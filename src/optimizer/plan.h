#ifndef PARINDA_OPTIMIZER_PLAN_H_
#define PARINDA_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "parser/ast.h"

namespace parinda {

/// Physical plan node kinds (PostgreSQL's executor node vocabulary, minus
/// index-only scans which 8.3 did not have).
enum class PlanNodeType : uint8_t {
  kSeqScan,
  kIndexScan,
  /// Bitmap index + heap scan collapsed into one node (PostgreSQL splits
  /// them into BitmapIndexScan/BitmapHeapScan; costs are identical).
  kBitmapHeapScan,
  /// Concatenation of child scans (horizontal partition access).
  kAppend,
  kNestLoopJoin,
  kMergeJoin,
  kHashJoin,
  kMaterialize,
  kSort,
  kAggregate,
  kLimit,
};

const char* PlanNodeTypeName(PlanNodeType type);

/// One component of a path's sort order: (FROM range index, column ordinal,
/// direction).
struct PathKey {
  int range = -1;
  ColumnId column = kInvalidColumnId;
  bool descending = false;

  bool operator==(const PathKey& other) const {
    return range == other.range && column == other.column &&
           descending == other.descending;
  }
};

struct PlanNode;
/// Plans are immutable DAG nodes shared between candidate paths during
/// dynamic-programming join search.
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// A physical plan node with PostgreSQL-style costing. Expression pointers
/// alias the (bound) SelectStatement that produced the plan, which must
/// outlive it.
struct PlanNode {
  PlanNodeType type = PlanNodeType::kSeqScan;

  /// Cost to produce the first tuple / all tuples, in PostgreSQL cost units.
  double startup_cost = 0.0;
  double total_cost = 0.0;
  /// Estimated output rows and average output row width (bytes).
  double rows = 0.0;
  double width = 0.0;

  /// Sort order of the output (empty = unordered).
  std::vector<PathKey> pathkeys;

  std::vector<PlanNodePtr> children;

  // --- Scan nodes ---
  /// Index into the statement's FROM list.
  int range_index = -1;
  TableId table_id = kInvalidTableId;
  /// kIndexScan only.
  IndexId index_id = kInvalidIndexId;
  /// Conjuncts evaluated through the index (kIndexScan).
  std::vector<const Expr*> index_conds;
  /// Residual conjuncts evaluated at this node (any node type).
  std::vector<const Expr*> filters;

  // --- Join nodes ---
  /// Equi-join conjuncts evaluated by the join itself.
  std::vector<const Expr*> join_conds;
  /// kNestLoopJoin with a parameterized inner index scan: the outer side of
  /// each inner index condition (parallel to the inner child's index_conds).
  std::vector<const Expr*> param_outer_exprs;

  // --- Sort nodes ---
  std::vector<PathKey> sort_keys;

  // --- Aggregate nodes ---
  /// Grouping keys (empty = plain aggregation over all input rows).
  std::vector<const Expr*> group_by;
  /// Aggregate output expressions (the bound SELECT list).
  std::vector<const Expr*> aggregates;
  bool hashed_aggregation = true;

  // --- Limit nodes ---
  int64_t limit_count = -1;
};

/// A complete plan for one statement.
struct Plan {
  PlanNodePtr root;

  double total_cost() const { return root != nullptr ? root->total_cost : 0.0; }

  /// All scan nodes in the tree (INUM decomposes plans into scan costs +
  /// internal cost through this).
  std::vector<const PlanNode*> CollectScans() const;

  /// EXPLAIN-style rendering (ids only).
  std::string ToString() const;

  /// EXPLAIN-style rendering with table and index names resolved through
  /// `catalog` — what the interactive tool shows the DBA.
  std::string ToString(const CatalogReader& catalog) const;
};

/// Pretty-prints a plan subtree at the given indent depth. `catalog` may be
/// null (ids are printed instead of names).
void ExplainNode(const PlanNode& node, int depth, const CatalogReader* catalog,
                 std::string* out);

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_PLAN_H_
