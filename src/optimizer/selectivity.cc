#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "common/logging.h"

namespace parinda {

std::optional<Value> EvalConstExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kArith: {
      auto lhs = EvalConstExpr(*expr.children[0]);
      auto rhs = EvalConstExpr(*expr.children[1]);
      if (!lhs || !rhs || lhs->is_null() || rhs->is_null()) return std::nullopt;
      if (!TypeIsNumeric(lhs->type()) || !TypeIsNumeric(rhs->type())) {
        return std::nullopt;
      }
      const bool both_int = lhs->type() == ValueType::kInt64 &&
                            rhs->type() == ValueType::kInt64 &&
                            expr.op != BinaryOp::kDiv;
      const double l = lhs->ToNumeric();
      const double r = rhs->ToNumeric();
      double out = 0.0;
      switch (expr.op) {
        case BinaryOp::kAdd:
          out = l + r;
          break;
        case BinaryOp::kSub:
          out = l - r;
          break;
        case BinaryOp::kMul:
          out = l * r;
          break;
        case BinaryOp::kDiv:
          if (r == 0.0) return std::nullopt;
          out = l / r;
          break;
        default:
          return std::nullopt;
      }
      return both_int ? Value::Int64(static_cast<int64_t>(out))
                      : Value::Double(out);
    }
    default:
      return std::nullopt;
  }
}

namespace {

BinaryOp FlipOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

}  // namespace

std::optional<SimpleClause> ExtractSimpleClause(const Expr& expr) {
  if (expr.kind != ExprKind::kComparison) return std::nullopt;
  const Expr* lhs = expr.children[0].get();
  const Expr* rhs = expr.children[1].get();
  BinaryOp op = expr.op;
  if (lhs->kind != ExprKind::kColumnRef && rhs->kind == ExprKind::kColumnRef) {
    std::swap(lhs, rhs);
    op = FlipOp(op);
  }
  if (lhs->kind != ExprKind::kColumnRef) return std::nullopt;
  auto constant = EvalConstExpr(*rhs);
  if (!constant || constant->is_null()) return std::nullopt;
  SimpleClause out;
  out.expr = &expr;
  out.range = lhs->bound_range;
  out.column = lhs->bound_column;
  out.op = op;
  out.constant = *constant;
  return out;
}

namespace {

/// Fraction of the histogram strictly below `v` (PostgreSQL's
/// ineq_histogram_selectivity).
double HistogramFractionBelow(const ColumnStats& stats, const Value& v) {
  const auto& bounds = stats.histogram_bounds;
  if (bounds.size() < 2) return kDefaultIneqSel;
  if (v.Compare(bounds.front()) <= 0) return 0.0;
  if (v.Compare(bounds.back()) > 0) return 1.0;
  // Binary search for the bucket containing v.
  size_t lo = 0;
  size_t hi = bounds.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (v.Compare(bounds[mid]) > 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double buckets = static_cast<double>(bounds.size() - 1);
  double partial = 0.5;
  if (!v.is_null() && TypeIsNumeric(v.type()) &&
      TypeIsNumeric(bounds[lo].type())) {
    const double b_lo = bounds[lo].ToNumeric();
    const double b_hi = bounds[hi].ToNumeric();
    partial = (b_hi > b_lo) ? (v.ToNumeric() - b_lo) / (b_hi - b_lo) : 0.5;
    partial = std::clamp(partial, 0.0, 1.0);
  }
  return (static_cast<double>(lo) + partial) / buckets;
}

}  // namespace

double ClampSelectivity(double sel) { return std::clamp(sel, 0.0, 1.0); }

double EqSelectivity(const TableInfo& table, ColumnId column,
                     const Value& constant) {
  const ColumnStats* stats = table.StatsFor(column);
  if (stats == nullptr) return kDefaultEqSel;
  // MCV exact match.
  for (size_t i = 0; i < stats->mcv_values.size(); ++i) {
    if (stats->mcv_values[i].Compare(constant) == 0) {
      return ClampSelectivity(stats->mcv_freqs[i]);
    }
  }
  // Out-of-range constants match nothing.
  if (!stats->min_value.is_null() &&
      (constant.Compare(stats->min_value) < 0 ||
       constant.Compare(stats->max_value) > 0)) {
    return 0.0;
  }
  const double distinct = stats->DistinctCount(table.row_count);
  const double mcv_mass = stats->McvTotalFrequency();
  const double remaining_distinct =
      std::max(1.0, distinct - static_cast<double>(stats->mcv_values.size()));
  const double remaining_mass =
      std::max(0.0, 1.0 - stats->null_frac - mcv_mass);
  return ClampSelectivity(remaining_mass / remaining_distinct);
}

double RangeSelectivity(const TableInfo& table, ColumnId column, BinaryOp op,
                        const Value& constant) {
  const ColumnStats* stats = table.StatsFor(column);
  if (stats == nullptr) return kDefaultIneqSel;
  // "<" selectivity, from MCVs + histogram; other ops derive from it.
  // Inclusivity only matters for the MCV mass: within the histogram a single
  // value carries negligible probability (PostgreSQL makes the same
  // approximation in ineq_histogram_selectivity).
  auto less_sel = [&](bool inclusive) {
    double mcv_below = 0.0;
    for (size_t i = 0; i < stats->mcv_values.size(); ++i) {
      const int c = stats->mcv_values[i].Compare(constant);
      if (c < 0 || (inclusive && c == 0)) mcv_below += stats->mcv_freqs[i];
    }
    const double hist_mass =
        std::max(0.0, 1.0 - stats->null_frac - stats->McvTotalFrequency());
    const double hist_frac = HistogramFractionBelow(*stats, constant);
    return mcv_below + hist_frac * hist_mass;
  };
  double sel;
  switch (op) {
    case BinaryOp::kLt:
      sel = less_sel(false);
      break;
    case BinaryOp::kLe:
      sel = less_sel(true);
      break;
    case BinaryOp::kGt:
      sel = 1.0 - stats->null_frac - less_sel(true);
      break;
    case BinaryOp::kGe:
      sel = 1.0 - stats->null_frac - less_sel(false);
      break;
    default:
      PARINDA_LOG(Fatal) << "RangeSelectivity on non-range op";
      return kDefaultIneqSel;
  }
  return ClampSelectivity(sel);
}

double ClauseSelectivity(const std::vector<const TableInfo*>& tables,
                         const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kAnd: {
      std::vector<const Expr*> conjuncts;
      FlattenConjuncts(&expr, &conjuncts);
      return ConjunctionSelectivity(tables, conjuncts);
    }
    case ExprKind::kOr: {
      const double s1 = ClauseSelectivity(tables, *expr.children[0]);
      const double s2 = ClauseSelectivity(tables, *expr.children[1]);
      return ClampSelectivity(s1 + s2 - s1 * s2);
    }
    case ExprKind::kNot:
      return ClampSelectivity(1.0 -
                              ClauseSelectivity(tables, *expr.children[0]));
    case ExprKind::kComparison: {
      auto simple = ExtractSimpleClause(expr);
      if (simple && simple->range >= 0 &&
          static_cast<size_t>(simple->range) < tables.size()) {
        const TableInfo& table = *tables[simple->range];
        switch (simple->op) {
          case BinaryOp::kEq:
            return EqSelectivity(table, simple->column, simple->constant);
          case BinaryOp::kNe:
            return ClampSelectivity(
                1.0 - EqSelectivity(table, simple->column, simple->constant));
          default:
            return RangeSelectivity(table, simple->column, simple->op,
                                    simple->constant);
        }
      }
      // Column-to-column within one relation, or unfoldable expressions.
      if (expr.op == BinaryOp::kEq) return kDefaultEqSel;
      if (expr.op == BinaryOp::kNe) return 1.0 - kDefaultEqSel;
      return kDefaultIneqSel;
    }
    case ExprKind::kBetween: {
      const Expr& arg = *expr.children[0];
      auto lo = EvalConstExpr(*expr.children[1]);
      auto hi = EvalConstExpr(*expr.children[2]);
      if (arg.kind == ExprKind::kColumnRef && lo && hi && arg.bound_range >= 0 &&
          static_cast<size_t>(arg.bound_range) < tables.size()) {
        const TableInfo& table = *tables[arg.bound_range];
        const double s_hi =
            RangeSelectivity(table, arg.bound_column, BinaryOp::kLe, *hi);
        const double s_lo =
            RangeSelectivity(table, arg.bound_column, BinaryOp::kGe, *lo);
        double s = s_hi + s_lo - 1.0;
        if (s <= 0.0) s = kDefaultRangeSel;
        return ClampSelectivity(s);
      }
      return kDefaultRangeSel;
    }
    case ExprKind::kInList: {
      const Expr& arg = *expr.children[0];
      double sel = 0.0;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        auto constant = EvalConstExpr(*expr.children[i]);
        if (arg.kind == ExprKind::kColumnRef && constant &&
            arg.bound_range >= 0 &&
            static_cast<size_t>(arg.bound_range) < tables.size()) {
          sel += EqSelectivity(*tables[arg.bound_range], arg.bound_column,
                               *constant);
        } else {
          sel += kDefaultEqSel;
        }
      }
      return ClampSelectivity(sel);
    }
    case ExprKind::kIsNull: {
      const Expr& arg = *expr.children[0];
      if (arg.kind == ExprKind::kColumnRef && arg.bound_range >= 0 &&
          static_cast<size_t>(arg.bound_range) < tables.size()) {
        const ColumnStats* stats =
            tables[arg.bound_range]->StatsFor(arg.bound_column);
        if (stats != nullptr) {
          return expr.negated ? ClampSelectivity(1.0 - stats->null_frac)
                              : ClampSelectivity(stats->null_frac);
        }
      }
      return expr.negated ? 1.0 - kDefaultEqSel : kDefaultEqSel;
    }
    case ExprKind::kLiteral:
      if (!expr.literal.is_null() && expr.literal.type() == ValueType::kBool) {
        return expr.literal.AsBool() ? 1.0 : 0.0;
      }
      return kDefaultUnknownSel;
    default:
      return kDefaultUnknownSel;
  }
}

double EquiJoinSelectivity(const TableInfo& left, ColumnId left_col,
                           const TableInfo& right, ColumnId right_col) {
  const ColumnStats* ls = left.StatsFor(left_col);
  const ColumnStats* rs = right.StatsFor(right_col);
  const double nd_left =
      ls != nullptr ? ls->DistinctCount(left.row_count) : left.row_count;
  const double nd_right =
      rs != nullptr ? rs->DistinctCount(right.row_count) : right.row_count;
  const double null_left = ls != nullptr ? ls->null_frac : 0.0;
  const double null_right = rs != nullptr ? rs->null_frac : 0.0;
  const double nd = std::max({nd_left, nd_right, 1.0});
  return ClampSelectivity((1.0 - null_left) * (1.0 - null_right) / nd);
}

double DistinctAfterFilter(const TableInfo& table, ColumnId column,
                           double rows) {
  const ColumnStats* stats = table.StatsFor(column);
  const double distinct =
      stats != nullptr ? stats->DistinctCount(table.row_count) : rows;
  if (table.row_count <= 0 || rows >= table.row_count) {
    return std::max(1.0, distinct);
  }
  // Yao's approximation of distinct values in a sample of `rows`.
  const double ratio = rows / table.row_count;
  const double est = distinct * (1.0 - std::pow(1.0 - ratio, table.row_count /
                                                                std::max(1.0, distinct)));
  return std::max(1.0, std::min(est, rows));
}

double ConjunctionSelectivity(const std::vector<const TableInfo*>& tables,
                              const std::vector<const Expr*>& conjuncts) {
  double sel = 1.0;
  // (range, column) -> accumulated lower/upper bound selectivities, so that
  // paired range bounds (col > a AND col < b) combine additively instead of
  // multiplying (PostgreSQL's rqlist logic in clauselist_selectivity).
  struct RangePair {
    std::optional<double> lower;  // sel of "col > / >= c"
    std::optional<double> upper;  // sel of "col < / <= c"
  };
  std::map<std::pair<int, ColumnId>, RangePair> ranges;
  for (const Expr* conjunct : conjuncts) {
    auto simple = ExtractSimpleClause(*conjunct);
    if (simple && simple->range >= 0 &&
        static_cast<size_t>(simple->range) < tables.size() &&
        (simple->op == BinaryOp::kLt || simple->op == BinaryOp::kLe ||
         simple->op == BinaryOp::kGt || simple->op == BinaryOp::kGe)) {
      const double s = RangeSelectivity(*tables[simple->range], simple->column,
                                        simple->op, simple->constant);
      RangePair& pair = ranges[{simple->range, simple->column}];
      if (simple->op == BinaryOp::kLt || simple->op == BinaryOp::kLe) {
        pair.upper = pair.upper ? std::min(*pair.upper, s) : s;
      } else {
        pair.lower = pair.lower ? std::min(*pair.lower, s) : s;
      }
      continue;
    }
    sel *= ClauseSelectivity(tables, *conjunct);
  }
  for (const auto& [key, pair] : ranges) {
    if (pair.lower && pair.upper) {
      double s = *pair.lower + *pair.upper - 1.0;
      if (s <= 0.0) s = kDefaultRangeSel;
      sel *= s;
    } else if (pair.lower) {
      sel *= *pair.lower;
    } else if (pair.upper) {
      sel *= *pair.upper;
    }
  }
  return ClampSelectivity(sel);
}

ClauseMatchKind MatchClauseToColumn(const Expr& expr, int range,
                                    ColumnId column) {
  if (expr.kind == ExprKind::kComparison) {
    auto simple = ExtractSimpleClause(expr);
    if (!simple || simple->range != range || simple->column != column) {
      return ClauseMatchKind::kNone;
    }
    if (simple->op == BinaryOp::kEq) return ClauseMatchKind::kEquality;
    if (simple->op == BinaryOp::kLt || simple->op == BinaryOp::kLe ||
        simple->op == BinaryOp::kGt || simple->op == BinaryOp::kGe) {
      return ClauseMatchKind::kRange;
    }
    return ClauseMatchKind::kNone;
  }
  if (expr.kind == ExprKind::kBetween) {
    const Expr& arg = *expr.children[0];
    if (arg.kind == ExprKind::kColumnRef && arg.bound_range == range &&
        arg.bound_column == column && EvalConstExpr(*expr.children[1]) &&
        EvalConstExpr(*expr.children[2])) {
      return ClauseMatchKind::kRange;
    }
  }
  if (expr.kind == ExprKind::kInList) {
    const Expr& arg = *expr.children[0];
    if (arg.kind == ExprKind::kColumnRef && arg.bound_range == range &&
        arg.bound_column == column) {
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (!EvalConstExpr(*expr.children[i])) return ClauseMatchKind::kNone;
      }
      return ClauseMatchKind::kInList;
    }
  }
  return ClauseMatchKind::kNone;
}

bool RangeMayMatch(const Value& lo, const Value& hi,
                   const std::vector<const Expr*>& restrictions,
                   int range_index, ColumnId column) {
  for (const Expr* clause : restrictions) {
    // BETWEEN lo' AND hi' on the partition column.
    if (clause->kind == ExprKind::kBetween) {
      const Expr& arg = *clause->children[0];
      if (arg.kind != ExprKind::kColumnRef || arg.bound_range != range_index ||
          arg.bound_column != column) {
        continue;
      }
      auto c_lo = EvalConstExpr(*clause->children[1]);
      auto c_hi = EvalConstExpr(*clause->children[2]);
      if (c_lo && !hi.is_null() && c_lo->Compare(hi) >= 0) return false;
      if (c_hi && !lo.is_null() && c_hi->Compare(lo) < 0) return false;
      continue;
    }
    auto simple = ExtractSimpleClause(*clause);
    if (!simple || simple->range != range_index || simple->column != column) {
      continue;
    }
    const Value& v = simple->constant;
    switch (simple->op) {
      case BinaryOp::kEq:
        if (!lo.is_null() && v.Compare(lo) < 0) return false;
        if (!hi.is_null() && v.Compare(hi) >= 0) return false;
        break;
      case BinaryOp::kLt:
        if (!lo.is_null() && v.Compare(lo) <= 0) return false;
        break;
      case BinaryOp::kLe:
        if (!lo.is_null() && v.Compare(lo) < 0) return false;
        break;
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (!hi.is_null() && v.Compare(hi) >= 0) return false;
        break;
      default:
        break;  // <> and friends never prune
    }
  }
  return true;
}

}  // namespace parinda

