#ifndef PARINDA_OPTIMIZER_COST_MODEL_H_
#define PARINDA_OPTIMIZER_COST_MODEL_H_

#include "catalog/catalog.h"
#include "optimizer/cost_params.h"

namespace parinda {

/// Scan costing shared by the planner, the INUM cached cost model, and the
/// ILP benefit computation. Keeping one implementation is what makes INUM's
/// "internal cost + access cost" recomposition exact.

struct ScanCost {
  double startup = 0.0;
  double total = 0.0;
  /// Rows the scan emits after all quals.
  double rows = 0.0;
};

/// Sequential scan over the whole heap with `filter_sel` surviving the quals.
ScanCost CostSeqScan(const CostParams& params, const TableInfo& table,
                     double filter_sel, int num_filter_quals);

/// B-tree index scan fetching `index_sel` of the table through the index and
/// keeping `filter_sel` (<= index_sel) after residual quals. Implements
/// PostgreSQL's cost_index: Mackert–Lohman page fetch estimation with
/// correlation-squared interpolation between best and worst case I/O.
/// `loop_count` > 1 models a parameterized inner scan of a nested loop and
/// amortizes cache effects across rescans.
ScanCost CostIndexScan(const CostParams& params, const TableInfo& table,
                       const IndexInfo& index, double index_sel,
                       double filter_sel, int num_index_conds,
                       int num_filter_quals, double loop_count = 1.0);

/// Mackert–Lohman estimate of distinct heap pages touched when fetching
/// `tuples` random tuples from a table of `pages` pages with
/// `cache_pages` of buffer available (PostgreSQL's index_pages_fetched).
double MackertLohmanPagesFetched(double tuples, double pages,
                                 double cache_pages);

/// Bitmap index + heap scan: the index produces a page bitmap, the heap is
/// read in physical page order at a per-page cost interpolated between
/// sequential and random by density (PostgreSQL's cost_bitmap_heap_scan).
/// Unordered output; wins at medium selectivities where plain index scans
/// thrash and sequential scans read too much.
ScanCost CostBitmapHeapScan(const CostParams& params, const TableInfo& table,
                            const IndexInfo& index, double index_sel,
                            double filter_sel, int num_index_conds,
                            int num_filter_quals);

/// In-memory sort of `rows` tuples of `width` bytes (PostgreSQL cost_sort,
/// with the external-merge surcharge when the data exceeds work_mem).
struct SortCost {
  double startup = 0.0;  // cost before the first output row
  double per_output = 0.0;
};
SortCost CostSort(const CostParams& params, double rows, double width,
                  double input_total_cost);

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_COST_MODEL_H_
