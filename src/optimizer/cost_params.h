#ifndef PARINDA_OPTIMIZER_COST_PARAMS_H_
#define PARINDA_OPTIMIZER_COST_PARAMS_H_

namespace parinda {

/// Planner cost parameters, mirroring PostgreSQL 8.3's GUCs (same names,
/// same defaults). The `enable_*` flags are the knobs the paper's *what-if
/// join component* flips: "INUM caches two plans for each scenario — one
/// with nested-loop enabled and one with nested-loop disabled" (§3.2).
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  /// In pages (PostgreSQL default 128MB / 8KB).
  double effective_cache_size = 16384.0;
  double work_mem_bytes = 4.0 * 1024 * 1024;

  // Plan-method switches (the what-if join component).
  bool enable_seqscan = true;
  bool enable_indexscan = true;
  bool enable_nestloop = true;
  bool enable_mergejoin = true;
  bool enable_hashjoin = true;
  bool enable_sort = true;

  /// Cost penalty applied to disabled paths instead of pruning them outright
  /// (PostgreSQL's disable_cost), so a plan always exists.
  static constexpr double kDisableCost = 1.0e10;
};

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_COST_PARAMS_H_
