#ifndef PARINDA_OPTIMIZER_INDEX_MATCH_H_
#define PARINDA_OPTIMIZER_INDEX_MATCH_H_

#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/cost_params.h"
#include "parser/ast.h"

namespace parinda {

/// Result of matching a query's restriction clauses against a B-tree index:
/// the usable condition prefix (equalities on leading keys plus one range on
/// the next key) and its selectivity.
struct IndexMatch {
  std::vector<const Expr*> matched_conds;
  /// Selectivity of matched_conds (1.0 when none matched).
  double index_sel = 1.0;
  /// Leading key columns pinned by equality conditions.
  int num_eq_columns = 0;
  /// True when an IN-list was matched (bitmap-only execution).
  bool has_in_list = false;
  bool HasConds() const { return !matched_conds.empty(); }
};

/// Matches `restrictions` (single-range conjuncts of `range`) against the
/// leading columns of `index`. Shared by the planner's path generation and
/// INUM's access-cost recomposition so both price index usability
/// identically.
/// `allow_in_list` admits IN-list predicates on the leading key column —
/// legal for bitmap scans (multi-probe union) but not plain index scans.
IndexMatch MatchIndexConditions(const std::vector<const TableInfo*>& tables,
                                const std::vector<const Expr*>& restrictions,
                                int range, const IndexInfo& index,
                                bool allow_in_list = false);

/// Cost of accessing `table` through `index` for a query whose restrictions
/// on this range are `restrictions` (with combined selectivity
/// `restriction_sel`): matches conditions, then prices the scan. This is the
/// "index access cost" term of INUM's cost recomposition.
ScanCost IndexAccessCost(const CostParams& params,
                         const std::vector<const TableInfo*>& tables,
                         const std::vector<const Expr*>& restrictions,
                         double restriction_sel, int range,
                         const TableInfo& table, const IndexInfo& index);

}  // namespace parinda

#endif  // PARINDA_OPTIMIZER_INDEX_MATCH_H_
