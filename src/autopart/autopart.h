#ifndef PARINDA_AUTOPART_AUTOPART_H_
#define PARINDA_AUTOPART_AUTOPART_H_

#include <atomic>
#include <limits>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "optimizer/cost_params.h"
#include "workload/workload.h"

namespace parinda {

/// One suggested vertical fragment: `columns` of `table` (the parent's
/// primary key is always carried implicitly, as in the what-if table
/// component).
struct FragmentDef {
  TableId table = kInvalidTableId;
  std::vector<ColumnId> columns;
};

/// Configuration for the AutoPart search.
struct AutoPartOptions {
  /// The DBA's replication constraint (paper §3: "the maximum space taken by
  /// replicated columns in the partitions"). Replicated bytes are the extra
  /// copies beyond one copy of each column plus one primary key.
  double replication_limit_bytes = std::numeric_limits<double>::infinity();
  /// Maximum composite-generation iterations (the algorithm also stops when
  /// no move improves the workload).
  int max_iterations = 12;
  /// Candidate pair cap per iteration, to bound evaluation work.
  int max_candidates_per_iteration = 128;
  /// Minimum relative improvement for a move to be applied.
  double min_improvement = 1e-4;
  /// Worker threads for the per-iteration composite-fragment evaluation.
  /// 1 = serial on the calling thread; 0 = one worker per hardware thread.
  /// The selected design is bit-identical at any setting: all candidate
  /// states of an iteration are enumerated first, evaluated into pre-sized
  /// slots, and the winner picked by a serial scan in enumeration order.
  int parallelism = 0;
  CostParams params;
  /// Time budget for the whole search. Checked per iteration (and per query
  /// inside each evaluation): on expiry the advisor stops and returns the
  /// best selection found so far with `degradation.degraded = true`. The
  /// default infinite deadline reproduces the un-budgeted advice
  /// bit-identically. See DESIGN.md §10.
  Deadline deadline;
};

/// Output of the automatic partition suggestion scenario (Figure 2): the
/// fragments, the workload benefit, per-query benefits, and the rewritten
/// queries.
struct PartitionAdvice {
  std::vector<FragmentDef> fragments;
  double base_cost = 0.0;
  double optimized_cost = 0.0;
  std::vector<double> per_query_base;
  std::vector<double> per_query_optimized;
  /// Rewritten workload for the suggested partitions (ready to save).
  std::vector<std::string> rewritten_sql;
  /// Replicated bytes of the final design.
  double replicated_bytes = 0.0;
  /// Workload cost evaluations performed (each evaluates every query).
  int evaluations = 0;
  int iterations_run = 0;
  /// What the budget did to this advice (see DegradationReport).
  DegradationReport degradation;

  double Speedup() const {
    return optimized_cost > 0.0 ? base_cost / optimized_cost : 1.0;
  }
};

/// The AutoPart algorithm of Papadomanolakis & Ailamaki (SSDBM 2004), as
/// integrated in PARINDA §3.3:
///  1. *Atomic fragments*: the finest column groups such that every workload
///     query reads each group entirely or not at all.
///  2. *Composite fragment generation*: unions of selected fragments with
///     atomic fragments (and atomic with atomic in the first iteration).
///  3. *Fragment selection*: candidates are evaluated through the what-if
///     table component + query rewriter; the best improving move is applied
///     (a merge, or a replicated addition if the replication constraint
///     allows) and the loop repeats until no improvement is found.
class AutoPartAdvisor {
 public:
  /// The workload must be bound against `catalog`; both must outlive this.
  AutoPartAdvisor(const CatalogReader& catalog, const Workload& workload,
                  AutoPartOptions options = {});

  AutoPartAdvisor(const AutoPartAdvisor&) = delete;
  AutoPartAdvisor& operator=(const AutoPartAdvisor&) = delete;

  /// Runs the search and returns the suggested partitions.
  [[nodiscard]] Result<PartitionAdvice> Suggest();

  /// Atomic fragments of `table` under this workload (exposed for tests and
  /// the ablation bench).
  [[nodiscard]] Result<std::vector<FragmentDef>> AtomicFragments(TableId table) const;

 private:
  /// One table's in-progress partitioning state.
  struct TableState {
    TableId table = kInvalidTableId;
    std::vector<std::vector<ColumnId>> fragments;
  };

  /// Evaluates the workload cost of a candidate state (what-if tables +
  /// rewrite + plan). Returns the weighted total; per-query costs go to
  /// `per_query` when non-null. Safe to call concurrently from pool
  /// workers: it builds a private what-if overlay per call and only reads
  /// `catalog_` / `workload_` / `options_` (the evaluation counter is
  /// atomic).
  [[nodiscard]] Result<double> EvaluateState(const std::vector<TableState>& state,
                               std::vector<double>* per_query,
                               std::vector<std::string>* rewritten_sql);

  /// Replicated bytes of a state.
  double ReplicatedBytes(const std::vector<TableState>& state) const;

  const CatalogReader& catalog_;
  const Workload& workload_;
  AutoPartOptions options_;
  // Instance-local result statistic surfaced in PartitionAdvice, not a
  // process-wide tally — the metrics registry would conflate concurrent
  // searches.
  // parinda-lint: allow(bare-counter)
  std::atomic<int> evaluations_{0};
};

}  // namespace parinda

#endif  // PARINDA_AUTOPART_AUTOPART_H_
