#ifndef PARINDA_AUTOPART_AUTOPART_H_
#define PARINDA_AUTOPART_AUTOPART_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "engine/advice.h"
#include "engine/cache_governor.h"
#include "engine/eval_context.h"
#include "engine/workload_evaluator.h"
#include "optimizer/cost_params.h"
#include "workload/compress.h"
#include "workload/workload.h"

namespace parinda {

/// One suggested vertical fragment: `columns` of `table` (the parent's
/// primary key is always carried implicitly, as in the what-if table
/// component).
struct FragmentDef {
  TableId table = kInvalidTableId;
  std::vector<ColumnId> columns;
};

/// Configuration for the AutoPart search.
struct AutoPartOptions {
  /// The DBA's replication constraint (paper §3: "the maximum space taken by
  /// replicated columns in the partitions"). Replicated bytes are the extra
  /// copies beyond one copy of each column plus one primary key.
  double replication_limit_bytes = std::numeric_limits<double>::infinity();
  /// Maximum composite-generation iterations (the algorithm also stops when
  /// no move improves the workload).
  int max_iterations = 12;
  /// Candidate pair cap per iteration, to bound evaluation work.
  int max_candidates_per_iteration = 128;
  /// Minimum relative improvement for a move to be applied.
  double min_improvement = 1e-4;
  /// Worker threads for the per-iteration composite-fragment evaluation.
  /// 1 = serial on the calling thread; 0 = one worker per hardware thread.
  /// The selected design is bit-identical at any setting: all candidate
  /// states of an iteration are enumerated first, evaluated into pre-sized
  /// slots, and the winner picked by a serial scan in enumeration order.
  int parallelism = 0;
  CostParams params;
  /// Time budget for the whole search. Checked per iteration (and per query
  /// inside each evaluation): on expiry the advisor stops and returns the
  /// best selection found so far with `degradation.degraded = true`. The
  /// default infinite deadline reproduces the un-budgeted advice
  /// bit-identically. See DESIGN.md §10.
  Deadline deadline;
  /// Serve candidate evaluations from the engine's per-(query, overlay)
  /// cost cache (DESIGN.md §13). Never changes the advice — cached costs
  /// are bit-identical to re-planned ones — only the planner-call count;
  /// false restores the pre-engine full re-plan per candidate (kept for
  /// A/B benchmarks).
  bool engine_cache = true;
  /// Byte budget for the engine's cost cache during the search (DESIGN.md
  /// §14). 0 (default) = unbounded. Under a budget, cold entries are
  /// LRU-evicted and re-planned on the next touch; the advice stays
  /// bit-identical, only planner-call counts change. Eviction is recorded as
  /// `engine:cache-evicted` in the advice's DegradationReport.
  int64_t memory_budget_bytes = 0;
  /// Fold duplicate queries (same normalized text, same stats scope) into
  /// one representative before evaluating (DESIGN.md §15). Never changes the
  /// advice — totals and per-query outputs are expanded back over the
  /// original queries in their original order, so every floating-point add
  /// sequence matches the uncompressed run — only the planner-call and
  /// analysis counts; false keeps the one-evaluation-per-query behaviour
  /// (the bench_scale ablation arm).
  bool compress = true;
};

/// Output of the automatic partition suggestion scenario (Figure 2): the
/// fragments, the workload benefit (AdviceSummary), per-query benefits, and
/// the rewritten queries.
struct PartitionAdvice : AdviceSummary {
  std::vector<FragmentDef> fragments;
  /// Rewritten workload for the suggested partitions (ready to save).
  std::vector<std::string> rewritten_sql;
  /// Replicated bytes of the final design.
  double replicated_bytes = 0.0;
  /// Workload cost evaluations performed (each evaluates every query,
  /// whether the per-query costs come from the planner or the cache).
  int evaluations = 0;
  int iterations_run = 0;
};

/// The AutoPart algorithm of Papadomanolakis & Ailamaki (SSDBM 2004), as
/// integrated in PARINDA §3.3:
///  1. *Atomic fragments*: the finest column groups such that every workload
///     query reads each group entirely or not at all.
///  2. *Composite fragment generation*: unions of selected fragments with
///     atomic fragments (and atomic with atomic in the first iteration).
///  3. *Fragment selection*: candidates are evaluated through the shared
///     evaluation engine (what-if table component + query rewriter +
///     planner, with per-query cost caching); the best improving move is
///     applied (a merge, or a replicated addition if the replication
///     constraint allows) and the loop repeats until no improvement is
///     found.
class AutoPartAdvisor {
 public:
  /// The workload must be bound against `catalog`; both must outlive this.
  AutoPartAdvisor(const CatalogReader& catalog, const Workload& workload,
                  AutoPartOptions options = {});

  AutoPartAdvisor(const AutoPartAdvisor&) = delete;
  AutoPartAdvisor& operator=(const AutoPartAdvisor&) = delete;

  /// Runs the search and returns the suggested partitions.
  [[nodiscard]] Result<PartitionAdvice> Suggest();

  /// Atomic fragments of `table` under this workload (exposed for tests and
  /// the ablation bench).
  [[nodiscard]] Result<std::vector<FragmentDef>> AtomicFragments(TableId table) const;

  /// The engine evaluator's cache/evaluation counters (exposed for tests
  /// and the cache-ablation bench).
  EvaluatorStats evaluator_stats() const { return evaluator_.stats(); }

  /// The cache governor, when `memory_budget_bytes` armed one; nullptr on
  /// unbudgeted advisors.
  const CacheGovernor* governor() const { return governor_.get(); }

 private:
  /// One table's in-progress partitioning state (the engine's design
  /// currency).
  using TableState = PartitionedTable;

  /// Evaluates the workload cost of a candidate state through the shared
  /// engine. Returns the weighted total; per-query costs go to `per_query`
  /// when non-null. Safe to call concurrently from pool workers: the
  /// engine's cache is mutex-guarded and each evaluation builds a private
  /// what-if overlay.
  [[nodiscard]] Result<double> EvaluateState(const std::vector<TableState>& state,
                               std::vector<double>* per_query,
                               std::vector<std::string>* rewritten_sql);

  /// Replicated bytes of a state.
  double ReplicatedBytes(const std::vector<TableState>& state) const;

  /// Compressed (eval) query index of original query `orig`.
  int RepOf(int orig) const {
    return expansion_ != nullptr
               ? expansion_->representative[static_cast<size_t>(orig)]
               : orig;
  }

  const CatalogReader& catalog_;
  const Workload& workload_;
  AutoPartOptions options_;
  /// Compressed workload view (null when compression is off or folds
  /// nothing). The evaluator runs over the compressed queries; all advice
  /// outputs stay in original-query terms via `expansion_`.
  std::unique_ptr<CompressedWorkload> compressed_;
  /// The workload the evaluator sees: &compressed_->workload or &workload_.
  const Workload* eval_workload_ = nullptr;
  const WorkloadExpansion* expansion_ = nullptr;
  /// Derived from options_; threaded through every engine call.
  EvalContext ctx_;
  /// Governs only the evaluator's cost cache (safe under pool parallelism:
  /// the cache is mutex-guarded and hands out values, not pointers). Must be
  /// declared before evaluator_ so it outlives the cache it governs.
  std::unique_ptr<CacheGovernor> governor_;
  int evaluator_shard_ = 0;
  WorkloadEvaluator evaluator_;
};

}  // namespace parinda

#endif  // PARINDA_AUTOPART_AUTOPART_H_
