#include "autopart/autopart.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "optimizer/query_analysis.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("autopart.evaluate");

namespace {

/// Sorted, deduplicated column set union.
std::vector<ColumnId> UnionColumns(const std::vector<ColumnId>& a,
                                   const std::vector<ColumnId>& b) {
  std::set<ColumnId> merged(a.begin(), a.end());
  merged.insert(b.begin(), b.end());
  return {merged.begin(), merged.end()};
}

/// Folds the workload when compression is on and actually folds something;
/// nullptr otherwise (the advisor then evaluates the original workload).
std::unique_ptr<CompressedWorkload> MaybeCompress(const CatalogReader& catalog,
                                                  const Workload& workload,
                                                  bool enabled) {
  if (!enabled) return nullptr;
  PARINDA_TRACE_SPAN("autopart.compress");
  CompressedWorkload compressed = CompressWorkload(catalog, workload);
  if (compressed.folded() == 0) return nullptr;
  // Gauges are integral; the ratio is stored in centi-units (100 = 1.0x).
  metrics::Registry::Global()
      .gauge("advisor.compression_ratio")
      .Set(static_cast<int64_t>(compressed.ratio() * 100.0));
  return std::make_unique<CompressedWorkload>(std::move(compressed));
}

double ColumnBytes(const TableInfo& table, ColumnId col) {
  const ColumnStats* stats = table.StatsFor(col);
  const double width =
      stats != nullptr
          ? stats->avg_width
          : (TypeFixedSize(table.schema.column(col).type) > 0
                 ? TypeFixedSize(table.schema.column(col).type)
                 : table.schema.column(col).declared_avg_width);
  return width * std::max(0.0, table.row_count);
}

}  // namespace

AutoPartAdvisor::AutoPartAdvisor(const CatalogReader& catalog,
                                 const Workload& workload,
                                 AutoPartOptions options)
    : catalog_(catalog),
      workload_(workload),
      options_(options),
      compressed_(MaybeCompress(catalog, workload, options_.compress)),
      eval_workload_(compressed_ != nullptr ? &compressed_->workload
                                            : &workload_),
      expansion_(compressed_ != nullptr ? &compressed_->expansion : nullptr),
      ctx_{options_.params, options_.parallelism, options_.deadline, nullptr},
      evaluator_(catalog_, *eval_workload_) {
  ctx_.expansion = expansion_;
  if (options_.memory_budget_bytes > 0) {
    governor_ = std::make_unique<CacheGovernor>(
        MemoryBudget{options_.memory_budget_bytes});
    evaluator_shard_ =
        governor_->RegisterShard("evaluator", [this](const std::string& id) {
          evaluator_.EraseCacheEntry(id);
        });
    evaluator_.set_governor(governor_.get(), evaluator_shard_);
  }
}

Result<std::vector<FragmentDef>> AutoPartAdvisor::AtomicFragments(
    TableId table) const {
  const TableInfo* info = catalog_.GetTable(table);
  if (info == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(table));
  }
  // Column usage signature: the set of queries reading the column.
  std::map<ColumnId, std::vector<int>> signature;
  for (ColumnId c = 0; c < info->schema.num_columns(); ++c) {
    signature[c] = {};
  }
  // One analysis per distinct (eval) query; under compression each fold
  // class records its ORIGINAL member ids, so the signatures — and with
  // them the fragment grouping and ordering — are exactly those of the
  // uncompressed workload.
  for (int q = 0; q < eval_workload_->size(); ++q) {
    PARINDA_ASSIGN_OR_RETURN(
        AnalyzedQuery analyzed,
        AnalyzeQuery(catalog_, eval_workload_->queries[q].stmt));
    for (size_t r = 0; r < analyzed.tables.size(); ++r) {
      if (analyzed.tables[r]->id != table) continue;
      for (ColumnId c : analyzed.referenced_columns[r]) {
        if (expansion_ != nullptr) {
          const std::vector<int>& members =
              expansion_->members[static_cast<size_t>(q)];
          signature[c].insert(signature[c].end(), members.begin(),
                              members.end());
        } else {
          signature[c].push_back(q);
        }
      }
    }
  }
  // Primary-key columns ride along with every fragment; exclude them from
  // the partitioning domain.
  const std::set<ColumnId> pk(info->primary_key.begin(),
                              info->primary_key.end());
  std::map<std::vector<int>, std::vector<ColumnId>> groups;
  for (auto& [col, sig] : signature) {
    if (pk.count(col) > 0) continue;
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    groups[sig].push_back(col);
  }
  std::vector<FragmentDef> out;
  for (auto& [sig, cols] : groups) {
    FragmentDef def;
    def.table = table;
    def.columns = cols;
    out.push_back(std::move(def));
  }
  return out;
}

Result<double> AutoPartAdvisor::EvaluateState(
    const std::vector<TableState>& state, std::vector<double>* per_query,
    std::vector<std::string>* rewritten_sql) {
  PARINDA_FAILPOINT("autopart.evaluate");
  PartitionEvalOptions opts;
  opts.use_cache = options_.engine_cache;
  // The final (reporting) pass wants rewritten SQL under the stable
  // `<table>_part<k>` names MaterializePartitions will create, so the saved
  // rewritten workload runs against the materialized design as-is; the
  // engine does the full work for that pass instead of serving its cache.
  opts.stable_names = rewritten_sql != nullptr;
  return evaluator_.EvaluatePartitioning(state, ctx_, opts, per_query,
                                         rewritten_sql);
}

double AutoPartAdvisor::ReplicatedBytes(
    const std::vector<TableState>& state) const {
  double replicated = 0.0;
  for (const TableState& ts : state) {
    const TableInfo* table = catalog_.GetTable(ts.table);
    if (table == nullptr) continue;
    double pk_bytes = 0.0;
    for (ColumnId pk : table->primary_key) {
      pk_bytes += ColumnBytes(*table, pk);
    }
    // One PK copy is the table's own; each extra fragment replicates it.
    if (!ts.fragments.empty()) {
      replicated += pk_bytes * static_cast<double>(ts.fragments.size() - 1);
    }
    std::map<ColumnId, int> copies;
    for (const auto& frag : ts.fragments) {
      for (ColumnId col : frag) copies[col] += 1;
    }
    for (const auto& [col, count] : copies) {
      if (count > 1) {
        replicated += ColumnBytes(*table, col) * static_cast<double>(count - 1);
      }
    }
  }
  return replicated;
}

Result<PartitionAdvice> AutoPartAdvisor::Suggest() {
  const auto fp_before = failpoint::AllHits();
  const int64_t evictions_before =
      governor_ != nullptr ? governor_->stats().evictions : 0;
  // Budget-forced eviction degraded the run to extra planner calls (the
  // advice itself is unaffected); note it in whichever report we return.
  auto note_evictions = [&](DegradationReport* rep) {
    if (governor_ != nullptr &&
        governor_->stats().evictions > evictions_before) {
      rep->AddFallback("engine:cache-evicted");
    }
  };
  DegradationReport report;
  PartitionAdvice advice;
  advice.per_query_base.assign(static_cast<size_t>(workload_.size()), 0.0);
  advice.per_query_optimized.assign(static_cast<size_t>(workload_.size()), 0.0);
  advice.rewritten_sql.assign(static_cast<size_t>(workload_.size()), "");

  // Best-effort return when the budget runs out before the search can even
  // start (or never catches up): the un-partitioned base design — always
  // feasible — with whatever cost information exists so far.
  auto base_design = [&](DegradationReport rep) {
    advice.optimized_cost = advice.base_cost;
    advice.per_query_optimized = advice.per_query_base;
    for (int q = 0; q < workload_.size(); ++q) {
      advice.rewritten_sql[q] = workload_.queries[q].sql;
    }
    advice.fragments.clear();
    advice.replicated_bytes = 0.0;
    advice.evaluations = static_cast<int>(evaluator_.stats().evaluations);
    note_evictions(&rep);
    rep.failpoint_hits = failpoint::HitsSince(fp_before);
    advice.degradation = std::move(rep);
    return advice;
  };

  // Base cost: the un-partitioned design, through the engine's base-cost
  // cache (a repeated Suggest() on the same advisor re-plans nothing).
  {
    PhaseTimer timer(&report, "base", "autopart.base");
    double total = 0.0;
    for (int q = 0; q < workload_.size(); ++q) {
      if (options_.deadline.Expired()) {
        report.AddFallback("base:truncated");
        advice.base_cost = total;
        timer.Stop();
        return base_design(std::move(report));
      }
      PARINDA_ASSIGN_OR_RETURN(const double cost,
                               evaluator_.BaseCost(RepOf(q), ctx_));
      advice.per_query_base[q] = cost;
      total += cost * workload_.queries[q].weight;
    }
    advice.base_cost = total;
  }

  // Tables referenced by the workload.
  std::set<TableId> tables;
  for (const WorkloadQuery& query : workload_.queries) {
    for (const TableRef& ref : query.stmt.from) {
      tables.insert(ref.bound_table);
    }
  }

  // Initial state: atomic fragments per table.
  std::vector<TableState> state;
  for (TableId table : tables) {
    PARINDA_ASSIGN_OR_RETURN(std::vector<FragmentDef> atomics,
                             AtomicFragments(table));
    TableState ts;
    ts.table = table;
    for (FragmentDef& def : atomics) {
      ts.fragments.push_back(std::move(def.columns));
    }
    if (!ts.fragments.empty()) state.push_back(std::move(ts));
  }

  double current_cost = 0.0;
  {
    auto initial = EvaluateState(state, nullptr, nullptr);
    if (!initial.ok()) {
      if (!IsBudgetError(initial.status())) return initial.status();
      report.AddFallback("initial-eval:truncated");
      return base_design(std::move(report));
    }
    current_cost = *initial;
  }
  // Keep the un-partitioned design when atomic partitioning already loses.
  // (The search below can only improve on `state`, not return to base.)
  const bool base_wins_initially = advice.base_cost < current_cost;

  // Composite-candidate pool per table: atomic fragments plus the per-query
  // usage sets (the column group each query reads as a whole) — AutoPart's
  // composite fragments correspond to query access patterns, not just
  // pairwise atomic unions.
  std::map<TableId, std::vector<std::vector<ColumnId>>> composites_of;
  for (const TableState& ts : state) {
    composites_of[ts.table] = ts.fragments;  // atomics
  }
  // Eval-workload iteration visits fold classes in first-occurrence order,
  // so the (deduplicated) pool sequence matches the uncompressed scan.
  for (const WorkloadQuery& query : eval_workload_->queries) {
    PARINDA_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                             AnalyzeQuery(catalog_, query.stmt));
    for (size_t r = 0; r < analyzed.tables.size(); ++r) {
      auto it = composites_of.find(analyzed.tables[r]->id);
      if (it == composites_of.end()) continue;
      const TableInfo* table = analyzed.tables[r];
      const std::set<ColumnId> pk(table->primary_key.begin(),
                                  table->primary_key.end());
      std::vector<ColumnId> usage;
      for (ColumnId col : analyzed.referenced_columns[r]) {
        if (pk.count(col) == 0) usage.push_back(col);
      }
      std::sort(usage.begin(), usage.end());
      if (!usage.empty() &&
          std::find(it->second.begin(), it->second.end(), usage) ==
              it->second.end()) {
        it->second.push_back(usage);
      }
    }
  }

  // Applies a composite candidate to one table's state, either replicating
  // (add, keep existing) or merging (drop fragments the union covers).
  auto apply_candidate = [](std::vector<TableState>* target, size_t si,
                            const std::vector<ColumnId>& merged,
                            bool replicate) {
    TableState& ts = (*target)[si];
    if (replicate) {
      ts.fragments.push_back(merged);
      return;
    }
    std::vector<std::vector<ColumnId>> kept;
    for (const auto& frag : ts.fragments) {
      const bool covered = std::includes(merged.begin(), merged.end(),
                                         frag.begin(), frag.end());
      if (!covered) kept.push_back(frag);
    }
    kept.push_back(merged);
    ts.fragments = std::move(kept);
  };

  const int parallelism = ResolveParallelism(options_.parallelism);
  bool search_truncated = false;
  PhaseTimer search_timer(&report, "search", "autopart.search");
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Per-iteration budget check (serial decision point): stop and keep the
    // best selection found so far.
    if (options_.deadline.Expired()) {
      report.AddFallback("autopart:search-truncated");
      search_truncated = true;
      break;
    }
    advice.iterations_run = iter + 1;
    struct Move {
      size_t state_index = 0;
      std::vector<ColumnId> merged;
      bool replicate = false;
      std::vector<TableState> trial;
    };
    // Phase 1 (serial): enumerate this iteration's trial states, in the
    // same order and under the same candidate cap as the original serial
    // search. Trials over the replication limit are rejected here, before
    // any evaluation is spent on them.
    std::vector<Move> moves;
    int candidates = 0;
    for (size_t si = 0; si < state.size() &&
                        candidates < options_.max_candidates_per_iteration;
         ++si) {
      TableState& ts = state[si];
      const auto& pool = composites_of[ts.table];
      // Candidate unions: each selected fragment extended by each pool
      // entry, plus each pool entry on its own.
      std::vector<std::vector<ColumnId>> unions = pool;
      for (const auto& frag : ts.fragments) {
        for (const auto& composite : pool) {
          unions.push_back(UnionColumns(frag, composite));
        }
      }
      std::sort(unions.begin(), unions.end());
      unions.erase(std::unique(unions.begin(), unions.end()), unions.end());
      for (const auto& merged : unions) {
        if (candidates >= options_.max_candidates_per_iteration) break;
        // Skip no-ops: the union already exists as a fragment.
        if (std::find(ts.fragments.begin(), ts.fragments.end(), merged) !=
            ts.fragments.end()) {
          continue;
        }
        ++candidates;
        for (const bool replicate : {false, true}) {
          std::vector<TableState> trial = state;
          apply_candidate(&trial, si, merged, replicate);
          if (ReplicatedBytes(trial) > options_.replication_limit_bytes) {
            continue;
          }
          moves.push_back(Move{si, merged, replicate, std::move(trial)});
        }
      }
    }
    // Phase 2 (parallel): cost every trial into its own pre-sized slot.
    // Each evaluation builds a private what-if overlay over the shared
    // read-only catalog, so workers never touch common mutable state.
    std::vector<double> trial_cost(moves.size(), 0.0);
    Status eval = ParallelFor(
        parallelism, static_cast<int>(moves.size()), [&](int m) -> Status {
          PARINDA_ASSIGN_OR_RETURN(
              trial_cost[m], EvaluateState(moves[m].trial, nullptr, nullptr));
          return Status::OK();
        });
    if (!eval.ok()) {
      if (!IsBudgetError(eval)) return eval;
      // Mid-iteration expiry: the trial costs are incomplete, so no move
      // from this round can be applied safely; keep the previous state.
      report.AddFallback("autopart:search-truncated");
      search_truncated = true;
      break;
    }
    // Phase 3 (serial): pick the winner by scanning in enumeration order —
    // the exact selection rule (and tie-breaking) of the serial search, so
    // the chosen design is identical at any parallelism.
    const Move* best_move = nullptr;
    double best_cost = current_cost;
    for (size_t m = 0; m < moves.size(); ++m) {
      if (trial_cost[m] < best_cost * (1.0 - options_.min_improvement)) {
        best_cost = trial_cost[m];
        best_move = &moves[m];
      }
    }
    if (best_move == nullptr) break;
    apply_candidate(&state, best_move->state_index, best_move->merged,
                    best_move->replicate);
    current_cost = best_cost;
  }

  search_timer.Stop();
  (void)search_truncated;

  // Final evaluation with per-query outputs.
  double final_cost = 0.0;
  {
    PhaseTimer timer(&report, "final", "autopart.final");
    auto final_eval =
        EvaluateState(state, &advice.per_query_optimized,
                      &advice.rewritten_sql);
    if (!final_eval.ok()) {
      if (!IsBudgetError(final_eval.status())) return final_eval.status();
      // No budget left to re-cost the winning state; report the search's
      // own cost estimate and leave the per-query/rewrite fields at their
      // base values (the fragments themselves are still the best found).
      report.AddFallback("final-eval:truncated");
      timer.Stop();
      advice.optimized_cost = current_cost;
      advice.per_query_optimized = advice.per_query_base;
      for (int q = 0; q < workload_.size(); ++q) {
        advice.rewritten_sql[q] = workload_.queries[q].sql;
      }
      advice.replicated_bytes = ReplicatedBytes(state);
      for (const TableState& ts : state) {
        for (const auto& frag : ts.fragments) {
          FragmentDef def;
          def.table = ts.table;
          def.columns = frag;
          advice.fragments.push_back(std::move(def));
        }
      }
      advice.evaluations = static_cast<int>(evaluator_.stats().evaluations);
      note_evictions(&report);
      report.failpoint_hits = failpoint::HitsSince(fp_before);
      advice.degradation = std::move(report);
      return advice;
    }
    final_cost = *final_eval;
  }
  if (base_wins_initially && advice.base_cost < final_cost) {
    // Partitioning never caught up with the original design: suggest nothing.
    return base_design(std::move(report));
  }
  advice.optimized_cost = final_cost;
  advice.replicated_bytes = ReplicatedBytes(state);
  for (const TableState& ts : state) {
    for (const auto& frag : ts.fragments) {
      FragmentDef def;
      def.table = ts.table;
      def.columns = frag;
      advice.fragments.push_back(std::move(def));
    }
  }
  advice.evaluations = static_cast<int>(evaluator_.stats().evaluations);
  note_evictions(&report);
  report.failpoint_hits = failpoint::HitsSince(fp_before);
  advice.degradation = std::move(report);
  return advice;
}

}  // namespace parinda
