#ifndef PARINDA_WORKLOAD_TPCH_MINI_H_
#define PARINDA_WORKLOAD_TPCH_MINI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace parinda {

/// A TPC-H-flavoured decision-support schema, scaled to memory: customer,
/// orders, lineitem, part. Secondary workload demonstrating that the
/// designer is not SDSS-specific — narrower tables, deeper join chains,
/// date-range predicates.
struct TpchMiniConfig {
  /// lineitem rows; orders = /4, customer = /40, part = /20.
  int64_t lineitem_rows = 30000;
  uint64_t seed = 77;
  int stats_target = 100;
};

struct TpchMiniDataset {
  TableId customer = kInvalidTableId;
  TableId orders = kInvalidTableId;
  TableId lineitem = kInvalidTableId;
  TableId part = kInvalidTableId;
};

/// Creates and loads the four tables, then ANALYZEs them.
[[nodiscard]] Result<TpchMiniDataset> BuildTpchMiniDatabase(Database* db,
                                              const TpchMiniConfig& config);

/// Twelve decision-support queries over the schema (TPC-H Q1/Q3/Q6-style
/// shapes adapted to the dialect: no subqueries or outer joins).
const std::vector<std::string>& TpchMiniQueries();

/// Parses and binds the 12-query workload against `catalog`.
[[nodiscard]] Result<Workload> MakeTpchMiniWorkload(const CatalogReader& catalog);

}  // namespace parinda

#endif  // PARINDA_WORKLOAD_TPCH_MINI_H_
