#ifndef PARINDA_WORKLOAD_SDSS_SCALE_H_
#define PARINDA_WORKLOAD_SDSS_SCALE_H_

#include <cstdint>
#include <string>

#include "workload/workload.h"

namespace parinda {

/// Generator knobs for expanding the 30 prototypical SDSS templates into an
/// N-thousand-query workload: template popularity follows a Zipf skew (as in
/// real query logs, a few templates dominate), each template exists in a
/// small number of literal variants, and weights model repeated submissions.
struct SdssScaleConfig {
  int num_queries = 2000;
  uint64_t seed = 42;
  /// Distinct literal perturbations per template (variant 0 is the original
  /// text). Bounds the number of fold classes at 30 * literal_variants.
  int literal_variants = 4;
  /// Zipf skew of template popularity (0 = uniform).
  double zipf_theta = 0.6;
  /// Weights are drawn uniformly from [1, max_weight].
  int max_weight = 5;
};

/// Rewrites every standalone numeric literal in `sql` for variant `variant`:
/// integers shift by +variant, decimals by +0.125*variant (exact in binary,
/// so the perturbed text round-trips deterministically). Variant 0 returns
/// `sql` unchanged. Exposed for tests.
std::string PerturbSqlLiterals(const std::string& sql, int variant);

/// Expands the SDSS templates into `config.num_queries` parsed-and-bound
/// queries with skewed template popularity, varied literals, and integral
/// weights. Deterministic in `config.seed`.
Result<Workload> MakeScaledSdssWorkload(const CatalogReader& catalog,
                                        const SdssScaleConfig& config);

}  // namespace parinda

#endif  // PARINDA_WORKLOAD_SDSS_SCALE_H_
