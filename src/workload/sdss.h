#ifndef PARINDA_WORKLOAD_SDSS_H_
#define PARINDA_WORKLOAD_SDSS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace parinda {

/// Synthetic stand-in for the paper's demo dataset — a 5% sample of SDSS DR4
/// (~150 GB) — scaled to in-memory sizes. The schema keeps the properties
/// the demo exploits: one very wide fact table (PhotoObjAll) whose queries
/// touch small column subsets (vertical partitioning pays off), selective
/// predicates on magnitudes/coordinates (indexes pay off), and joins to
/// SpecObjAll / Field / Neighbors / PhotoProfile.
struct SdssConfig {
  /// Rows in photoobj; the other tables scale from it
  /// (specobj = 1/10, field = 1/100, neighbors = 1/2, photoprofile = 3/4).
  int64_t photoobj_rows = 20000;
  uint64_t seed = 1234;
  /// ANALYZE statistics target used after loading.
  int stats_target = 100;
};

/// Table ids of a generated SDSS database.
struct SdssDataset {
  TableId photoobj = kInvalidTableId;
  TableId specobj = kInvalidTableId;
  TableId field = kInvalidTableId;
  TableId neighbors = kInvalidTableId;
  TableId photoprofile = kInvalidTableId;
};

/// Creates the five tables in `db`, generates deterministic data from
/// `config.seed`, and ANALYZEs everything.
[[nodiscard]] Result<SdssDataset> BuildSdssDatabase(Database* db, const SdssConfig& config);

/// The 30 prototypical astronomy queries of the demo workload (paper §4:
/// "for the query workload we use a set of 30 prototypical queries").
const std::vector<std::string>& SdssPrototypicalQueries();

/// Parses and binds the 30-query workload against `catalog`.
[[nodiscard]] Result<Workload> MakeSdssWorkload(const CatalogReader& catalog);

}  // namespace parinda

#endif  // PARINDA_WORKLOAD_SDSS_H_
