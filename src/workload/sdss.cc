#include "workload/sdss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace parinda {

namespace {

TableSchema PhotoObjSchema() {
  return TableSchema(
      "photoobj",
      {
          {"objid", ValueType::kInt64, 8, false},        // 0
          {"ra", ValueType::kDouble, 8, false},          // 1
          {"dec", ValueType::kDouble, 8, false},         // 2
          {"type", ValueType::kInt64, 8, false},         // 3
          {"mode", ValueType::kInt64, 8, false},         // 4
          {"flags", ValueType::kInt64, 8, false},        // 5
          {"status", ValueType::kInt64, 8, false},       // 6
          {"u", ValueType::kDouble, 8, false},           // 7
          {"g", ValueType::kDouble, 8, false},           // 8
          {"r", ValueType::kDouble, 8, false},           // 9
          {"i", ValueType::kDouble, 8, false},           // 10
          {"z", ValueType::kDouble, 8, false},           // 11
          {"err_u", ValueType::kDouble, 8, false},       // 12
          {"err_g", ValueType::kDouble, 8, false},       // 13
          {"err_r", ValueType::kDouble, 8, false},       // 14
          {"err_i", ValueType::kDouble, 8, false},       // 15
          {"err_z", ValueType::kDouble, 8, false},       // 16
          {"petrorad_r", ValueType::kDouble, 8, false},  // 17
          {"petror50_r", ValueType::kDouble, 8, false},  // 18
          {"petror90_r", ValueType::kDouble, 8, false},  // 19
          {"extinction_r", ValueType::kDouble, 8, false},  // 20
          {"rowc", ValueType::kDouble, 8, false},        // 21
          {"colc", ValueType::kDouble, 8, false},        // 22
          {"field_id", ValueType::kInt64, 8, false},     // 23
          {"nchild", ValueType::kInt64, 8, false},       // 24
      });
}

TableSchema SpecObjSchema() {
  return TableSchema("specobj",
                     {
                         {"specobjid", ValueType::kInt64, 8, false},  // 0
                         {"bestobjid", ValueType::kInt64, 8, false},  // 1
                         {"z", ValueType::kDouble, 8, false},         // 2
                         {"z_err", ValueType::kDouble, 8, false},     // 3
                         {"class", ValueType::kInt64, 8, false},      // 4
                         {"sn_median", ValueType::kDouble, 8, false}, // 5
                         {"plate", ValueType::kInt64, 8, false},      // 6
                         {"mjd", ValueType::kInt64, 8, false},        // 7
                         {"fiberid", ValueType::kInt64, 8, false},    // 8
                         {"z_warning", ValueType::kInt64, 8, false},  // 9
                     });
}

TableSchema FieldSchema() {
  return TableSchema("field",
                     {
                         {"field_id", ValueType::kInt64, 8, false},  // 0
                         {"run", ValueType::kInt64, 8, false},       // 1
                         {"camcol", ValueType::kInt64, 8, false},    // 2
                         {"field_num", ValueType::kInt64, 8, false}, // 3
                         {"ra_min", ValueType::kDouble, 8, false},   // 4
                         {"ra_max", ValueType::kDouble, 8, false},   // 5
                         {"dec_min", ValueType::kDouble, 8, false},  // 6
                         {"dec_max", ValueType::kDouble, 8, false},  // 7
                         {"quality", ValueType::kInt64, 8, false},   // 8
                         {"mjd", ValueType::kInt64, 8, false},       // 9
                     });
}

TableSchema NeighborsSchema() {
  return TableSchema("neighbors",
                     {
                         {"objid", ValueType::kInt64, 8, false},
                         {"neighbor_objid", ValueType::kInt64, 8, false},
                         {"distance", ValueType::kDouble, 8, false},
                         {"neighbor_type", ValueType::kInt64, 8, false},
                     });
}

TableSchema PhotoProfileSchema() {
  return TableSchema("photoprofile",
                     {
                         {"objid", ValueType::kInt64, 8, false},
                         {"bin", ValueType::kInt64, 8, false},
                         {"profmean", ValueType::kDouble, 8, false},
                         {"proferr", ValueType::kDouble, 8, false},
                     });
}

/// Magnitude ~ N(19, 2) clamped to the SDSS-plausible [12, 28].
double Magnitude(Random* rng) {
  return std::clamp(19.0 + 2.0 * rng->NextGaussian(), 12.0, 28.0);
}

}  // namespace

Result<SdssDataset> BuildSdssDatabase(Database* db, const SdssConfig& config) {
  PARINDA_CHECK(db != nullptr);
  SdssDataset out;
  Random rng(config.seed);
  const int64_t n_photo = std::max<int64_t>(100, config.photoobj_rows);
  const int64_t n_spec = std::max<int64_t>(10, n_photo / 10);
  const int64_t n_field = std::max<int64_t>(4, n_photo / 100);
  const int64_t n_neighbors = std::max<int64_t>(10, n_photo / 2);
  const int64_t n_profile = std::max<int64_t>(10, n_photo * 3 / 4);

  PARINDA_ASSIGN_OR_RETURN(out.field, db->CreateTable(FieldSchema(), {0}));
  PARINDA_ASSIGN_OR_RETURN(out.photoobj,
                           db->CreateTable(PhotoObjSchema(), {0}));
  PARINDA_ASSIGN_OR_RETURN(out.specobj, db->CreateTable(SpecObjSchema(), {0}));
  PARINDA_ASSIGN_OR_RETURN(out.neighbors,
                           db->CreateTable(NeighborsSchema(), {}));
  PARINDA_ASSIGN_OR_RETURN(out.photoprofile,
                           db->CreateTable(PhotoProfileSchema(), {}));

  // --- field: sky stripes with runs/camcols ---
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_field));
    for (int64_t f = 0; f < n_field; ++f) {
      const int64_t run = 700 + (f % 60);
      const double ra0 = rng.UniformDouble(0.0, 350.0);
      const double dec0 = rng.UniformDouble(-80.0, 75.0);
      rows.push_back(Row{
          Value::Int64(f),
          Value::Int64(run),
          Value::Int64(1 + static_cast<int64_t>(rng.Uniform(6))),
          Value::Int64(f % 1000),
          Value::Double(ra0),
          Value::Double(ra0 + 10.0),
          Value::Double(dec0),
          Value::Double(dec0 + 5.0),
          Value::Int64(1 + static_cast<int64_t>(rng.NextZipf(3, 0.5))),
          Value::Int64(51000 + static_cast<int64_t>(rng.Uniform(2000))),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.field, std::move(rows)));
  }

  // --- photoobj: the wide fact table ---
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_photo));
    for (int64_t id = 0; id < n_photo; ++id) {
      // objid ascending -> physical/logical correlation 1 on the PK, as a
      // clustered load would produce.
      const double r_mag = Magnitude(&rng);
      const double g_mag =
          std::clamp(r_mag + 0.4 + 0.5 * rng.NextGaussian(), 12.0, 28.0);
      const int64_t type =
          rng.Bernoulli(0.6) ? 3 : (rng.Bernoulli(0.875) ? 6 : 0);
      rows.push_back(Row{
          Value::Int64(id),
          Value::Double(rng.UniformDouble(0.0, 360.0)),
          Value::Double(std::asin(rng.UniformDouble(-1.0, 1.0)) * 57.29578),
          Value::Int64(type),
          Value::Int64(rng.Bernoulli(0.9) ? 1 : 2),
          Value::Int64(static_cast<int64_t>(rng.Uniform(1u << 22))),
          Value::Int64(static_cast<int64_t>(rng.Uniform(8))),
          Value::Double(std::clamp(g_mag + 1.2 + 0.6 * rng.NextGaussian(),
                                   12.0, 28.0)),
          Value::Double(g_mag),
          Value::Double(r_mag),
          Value::Double(std::clamp(r_mag - 0.3 + 0.4 * rng.NextGaussian(),
                                   12.0, 28.0)),
          Value::Double(std::clamp(r_mag - 0.5 + 0.5 * rng.NextGaussian(),
                                   12.0, 28.0)),
          Value::Double(rng.UniformDouble(0.01, 0.5)),
          Value::Double(rng.UniformDouble(0.01, 0.4)),
          Value::Double(rng.UniformDouble(0.01, 0.3)),
          Value::Double(rng.UniformDouble(0.01, 0.3)),
          Value::Double(rng.UniformDouble(0.01, 0.6)),
          Value::Double(rng.UniformDouble(0.5, 30.0)),
          Value::Double(rng.UniformDouble(0.2, 15.0)),
          Value::Double(rng.UniformDouble(0.5, 40.0)),
          Value::Double(rng.UniformDouble(0.0, 0.6)),
          Value::Double(rng.UniformDouble(0.0, 1489.0)),
          Value::Double(rng.UniformDouble(0.0, 2048.0)),
          Value::Int64(static_cast<int64_t>(rng.Uniform(
              static_cast<uint64_t>(n_field)))),
          Value::Int64(static_cast<int64_t>(rng.NextZipf(8, 0.8))),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.photoobj, std::move(rows)));
  }

  // --- specobj: spectra for ~10% of photo objects ---
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_spec));
    for (int64_t s = 0; s < n_spec; ++s) {
      const int64_t cls =
          rng.Bernoulli(0.7) ? 2 : (rng.Bernoulli(0.6) ? 1 : 3);
      // QSOs (class 3) reach high redshift; galaxies stay low.
      double redshift = cls == 3 ? rng.UniformDouble(0.3, 5.0)
                                 : std::fabs(0.15 * rng.NextGaussian()) +
                                       rng.UniformDouble(0.0, 0.25);
      rows.push_back(Row{
          Value::Int64(s),
          Value::Int64(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(n_photo)))),
          Value::Double(redshift),
          Value::Double(rng.UniformDouble(1e-5, 1e-3)),
          Value::Int64(cls),
          Value::Double(rng.UniformDouble(0.5, 60.0)),
          Value::Int64(266 + static_cast<int64_t>(rng.Uniform(2000))),
          Value::Int64(51600 + static_cast<int64_t>(rng.Uniform(1500))),
          Value::Int64(1 + static_cast<int64_t>(rng.Uniform(640))),
          Value::Int64(rng.Bernoulli(0.93) ? 0 : 4),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.specobj, std::move(rows)));
  }

  // --- neighbors: close pairs ---
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_neighbors));
    for (int64_t k = 0; k < n_neighbors; ++k) {
      rows.push_back(Row{
          Value::Int64(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(n_photo)))),
          Value::Int64(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(n_photo)))),
          Value::Double(rng.UniformDouble(0.05, 30.0)),
          Value::Int64(rng.Bernoulli(0.6) ? 3 : 6),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.neighbors, std::move(rows)));
  }

  // --- photoprofile: radial profile bins ---
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_profile));
    for (int64_t k = 0; k < n_profile; ++k) {
      const int64_t bin = static_cast<int64_t>(rng.Uniform(15));
      rows.push_back(Row{
          Value::Int64(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(n_photo)))),
          Value::Int64(bin),
          Value::Double(rng.UniformDouble(0.1, 500.0) /
                        static_cast<double>(bin + 1)),
          Value::Double(rng.UniformDouble(0.01, 5.0)),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.photoprofile, std::move(rows)));
  }

  AnalyzeOptions analyze;
  analyze.stats_target = config.stats_target;
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.field, analyze));
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.photoobj, analyze));
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.specobj, analyze));
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.neighbors, analyze));
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.photoprofile, analyze));
  return out;
}

const std::vector<std::string>& SdssPrototypicalQueries() {
  static const std::vector<std::string> queries = {
          // Q1: coordinate box selection.
          "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180 AND 195 "
          "AND dec BETWEEN 0 AND 12",
          // Q2: class count.
          "SELECT count(*) FROM photoobj WHERE type = 3",
          // Q3: bright galaxies.
          "SELECT objid, g, r FROM photoobj WHERE g < 16.5 AND type = 3",
          // Q4: narrow magnitude band.
          "SELECT objid FROM photoobj WHERE r BETWEEN 14.5 AND 15.5",
          // Q5: large galaxies.
          "SELECT count(*), avg(petrorad_r) FROM photoobj WHERE type = 3 "
          "AND petrorad_r > 25",
          // Q6: point lookup.
          "SELECT objid, u, g, r, i, z FROM photoobj WHERE objid = 12345",
          // Q7: class histogram.
          "SELECT type, count(*) FROM photoobj GROUP BY type",
          // Q8: brightest stars.
          "SELECT objid, r FROM photoobj WHERE type = 6 AND r < 14.5 "
          "ORDER BY r LIMIT 100",
          // Q9: red objects (color cut).
          "SELECT objid FROM photoobj WHERE g - r > 1.4 AND r < 16",
          // Q10: high-redshift matches.
          "SELECT p.objid, s.z FROM photoobj p, specobj s "
          "WHERE p.objid = s.bestobjid AND s.z > 3.5",
          // Q11: spectral class histogram.
          "SELECT class, count(*) FROM specobj GROUP BY class",
          // Q12: QSOs in a redshift band with positions.
          "SELECT p.objid, p.ra, p.dec, s.z FROM photoobj p, specobj s "
          "WHERE p.objid = s.bestobjid AND s.class = 3 "
          "AND s.z BETWEEN 1 AND 2",
          // Q13: per-plate signal-to-noise.
          "SELECT avg(sn_median) FROM specobj WHERE plate = 266",
          // Q14: good-quality galaxy fields.
          "SELECT p.objid FROM photoobj p, field f "
          "WHERE p.field_id = f.field_id AND f.quality = 3 AND p.type = 3",
          // Q15: objects per run.
          "SELECT f.run, count(*) FROM photoobj p, field f "
          "WHERE p.field_id = f.field_id GROUP BY f.run",
          // Q16: neighbors of one object.
          "SELECT neighbor_objid FROM neighbors WHERE objid = 777 "
          "AND distance < 5.0",
          // Q17: very close pairs.
          "SELECT count(*) FROM neighbors WHERE distance < 0.25",
          // Q18: star close pairs.
          "SELECT p.objid, n.distance FROM photoobj p, neighbors n "
          "WHERE p.objid = n.objid AND p.type = 6 AND n.distance < 1.0",
          // Q19: radial profile of one object.
          "SELECT bin, avg(profmean) FROM photoprofile WHERE objid = 4242 "
          "GROUP BY bin ORDER BY bin",
          // Q20: bright profile bins.
          "SELECT count(*) FROM photoprofile WHERE profmean > 200",
          // Q21: flag + magnitude band.
          "SELECT objid, r FROM photoobj WHERE flags > 4000000 "
          "AND r BETWEEN 14 AND 18",
          // Q22: polar cap.
          "SELECT objid, ra, dec FROM photoobj WHERE dec > 80",
          // Q23: mode/status audit.
          "SELECT count(*) FROM photoobj WHERE mode = 2 AND status = 3",
          // Q24: plate/mjd coverage.
          "SELECT plate, mjd, count(*) FROM specobj WHERE z_warning = 0 "
          "GROUP BY plate, mjd",
          // Q25: photometry of bright stars with spectra.
          "SELECT p.u, p.g, p.r, p.i, p.z FROM photoobj p, specobj s "
          "WHERE p.objid = s.bestobjid AND s.class = 1 AND p.r < 15",
          // Q26: QSO redshift stats.
          "SELECT max(z), min(z), avg(z) FROM specobj WHERE class = 3",
          // Q27: high-extinction galaxies.
          "SELECT objid FROM photoobj WHERE extinction_r > 0.55 AND type = 3",
          // Q28: one run's bright objects.
          "SELECT p.objid, f.run, f.camcol FROM photoobj p, field f "
          "WHERE p.field_id = f.field_id AND f.run = 710 AND p.g < 16",
          // Q29: Petrosian radii in a magnitude band.
          "SELECT avg(petror50_r), avg(petror90_r) FROM photoobj "
          "WHERE type = 3 AND r BETWEEN 16 AND 17",
          // Q30: best spectra by redshift.
          "SELECT specobjid, z FROM specobj WHERE sn_median > 45 "
          "ORDER BY z DESC LIMIT 50",
      };
  return queries;
}

Result<Workload> MakeSdssWorkload(const CatalogReader& catalog) {
  return MakeWorkload(catalog, SdssPrototypicalQueries());
}

}  // namespace parinda
