#include "workload/sdss_scale.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "workload/sdss.h"

namespace parinda {

namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.';
}

}  // namespace

std::string PerturbSqlLiterals(const std::string& sql, int variant) {
  if (variant == 0) return sql;
  std::string out;
  out.reserve(sql.size() + 16);
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    const bool starts_number =
        c >= '0' && c <= '9' && (i == 0 || !IsIdentChar(sql[i - 1]));
    if (!starts_number) {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t end = i;
    bool decimal = false;
    while (end < sql.size() && sql[end] >= '0' && sql[end] <= '9') ++end;
    if (end + 1 < sql.size() && sql[end] == '.' && sql[end + 1] >= '0' &&
        sql[end + 1] <= '9') {
      decimal = true;
      ++end;
      while (end < sql.size() && sql[end] >= '0' && sql[end] <= '9') ++end;
    }
    const std::string token = sql.substr(i, end - i);
    if (decimal) {
      // +0.125*variant is an exact binary fraction: the perturbed literal
      // round-trips through %.17g without drift, so repeated generation is
      // deterministic.
      const double value = std::strtod(token.c_str(), nullptr) +
                           0.125 * static_cast<double>(variant);
      out += StringPrintf("%.17g", value);
    } else {
      const long long value =
          std::strtoll(token.c_str(), nullptr, 10) + variant;
      out += StringPrintf("%lld", value);
    }
    i = end;
  }
  return out;
}

Result<Workload> MakeScaledSdssWorkload(const CatalogReader& catalog,
                                        const SdssScaleConfig& config) {
  const std::vector<std::string>& templates = SdssPrototypicalQueries();
  const int variants = std::max(1, config.literal_variants);
  const int max_weight = std::max(1, config.max_weight);
  Random rng(config.seed);

  std::vector<std::vector<std::string>> variant_cache(
      templates.size(), std::vector<std::string>(static_cast<size_t>(variants)));
  std::vector<std::string> sqls;
  std::vector<double> weights;
  sqls.reserve(static_cast<size_t>(config.num_queries));
  weights.reserve(static_cast<size_t>(config.num_queries));
  for (int i = 0; i < config.num_queries; ++i) {
    const size_t t = static_cast<size_t>(
        rng.NextZipf(static_cast<uint64_t>(templates.size()),
                     config.zipf_theta));
    const size_t v = static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(variants)));
    const double w = 1.0 + static_cast<double>(
        rng.Uniform(static_cast<uint64_t>(max_weight)));
    std::string& text = variant_cache[t][v];
    if (text.empty()) {
      text = PerturbSqlLiterals(templates[t], static_cast<int>(v));
    }
    sqls.push_back(text);
    weights.push_back(w);
  }

  PARINDA_ASSIGN_OR_RETURN(Workload workload, MakeWorkload(catalog, sqls));
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    workload.queries[i].weight = weights[i];
  }
  return workload;
}

}  // namespace parinda
