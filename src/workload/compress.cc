#include "workload/compress.h"

#include <map>
#include <set>

#include "catalog/catalog.h"
#include "common/strings.h"

namespace parinda {

namespace {

/// FNV-1a 64-bit, used to compress a table's full statistics content into a
/// fixed-width fingerprint for the fold key.
uint64_t Fnv1a(uint64_t hash, const std::string& data) {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void HashDouble(uint64_t* hash, double v) {
  // %a is hex-exact: any stats difference — however small — changes the
  // fingerprint, so queries over different stats scopes never fold.
  *hash = Fnv1a(*hash, StringPrintf("%a", v));
}

/// Content fingerprint of one table's statistics: everything the planner
/// reads when costing a query against it.
uint64_t TableStatsFingerprint(const TableInfo& table) {
  uint64_t hash = 14695981039346656037ULL;
  hash = Fnv1a(hash, table.name);
  HashDouble(&hash, table.row_count);
  HashDouble(&hash, table.pages);
  for (const ColumnStats& stats : table.column_stats) {
    hash = Fnv1a(hash, "|col");
    HashDouble(&hash, stats.null_frac);
    HashDouble(&hash, stats.avg_width);
    HashDouble(&hash, stats.n_distinct);
    HashDouble(&hash, stats.correlation);
    hash = Fnv1a(hash, stats.min_value.ToString());
    hash = Fnv1a(hash, stats.max_value.ToString());
    for (const Value& v : stats.mcv_values) hash = Fnv1a(hash, v.ToString());
    for (const double f : stats.mcv_freqs) HashDouble(&hash, f);
    for (const Value& v : stats.histogram_bounds) {
      hash = Fnv1a(hash, v.ToString());
    }
  }
  return hash;
}

std::string FoldKey(const CatalogReader& catalog, const WorkloadQuery& query,
                    std::map<TableId, uint64_t>* fingerprint_cache) {
  std::string key = query.stmt.ToSql();
  std::set<TableId> tables;
  for (const TableRef& ref : query.stmt.from) tables.insert(ref.bound_table);
  for (const TableId table : tables) {
    const TableInfo* info = catalog.GetTable(table);
    if (info == nullptr) {
      key += StringPrintf("|t%lld:unbound", static_cast<long long>(table));
      continue;
    }
    uint64_t fp;
    if (fingerprint_cache != nullptr) {
      auto [it, inserted] = fingerprint_cache->try_emplace(table, 0);
      if (inserted) it->second = TableStatsFingerprint(*info);
      fp = it->second;
    } else {
      fp = TableStatsFingerprint(*info);
    }
    key += StringPrintf("|t%lld:%016llx", static_cast<long long>(table),
                        static_cast<unsigned long long>(fp));
  }
  return key;
}

}  // namespace

std::string QueryFoldSignature(const CatalogReader& catalog,
                               const WorkloadQuery& query) {
  return FoldKey(catalog, query, nullptr);
}

CompressedWorkload CompressWorkload(const CatalogReader& catalog,
                                    const Workload& workload) {
  CompressedWorkload out;
  out.original_size = static_cast<int>(workload.queries.size());
  std::map<TableId, uint64_t> fingerprints;
  std::map<std::string, int> classes;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    const WorkloadQuery& query = workload.queries[i];
    const std::string key = FoldKey(catalog, query, &fingerprints);
    const int next = static_cast<int>(out.workload.queries.size());
    auto [it, inserted] = classes.try_emplace(key, next);
    if (inserted) {
      WorkloadQuery clone;
      clone.sql = query.sql;
      clone.stmt = query.stmt.Clone();
      clone.weight = query.weight;
      out.workload.queries.push_back(std::move(clone));
      out.expansion.members.emplace_back();
    } else {
      out.workload.queries[static_cast<size_t>(it->second)].weight +=
          query.weight;
    }
    out.expansion.members[static_cast<size_t>(it->second)].push_back(
        static_cast<int>(i));
    out.expansion.representative.push_back(it->second);
    out.expansion.weights.push_back(query.weight);
  }
  return out;
}

}  // namespace parinda
