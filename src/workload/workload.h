#ifndef PARINDA_WORKLOAD_WORKLOAD_H_
#define PARINDA_WORKLOAD_WORKLOAD_H_

#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"

namespace parinda {

/// One workload query: source text, bound statement, and a weight (relative
/// execution frequency).
struct WorkloadQuery {
  std::string sql;
  SelectStatement stmt;
  double weight = 1.0;
};

/// A set of queries the physical designer tunes for — the "workload file"
/// input of all three demo scenarios.
struct Workload {
  std::vector<WorkloadQuery> queries;

  int size() const { return static_cast<int>(queries.size()); }

  /// Sub-workload with the first `n` queries (used by the ILP-vs-greedy
  /// scaling experiment).
  Workload Prefix(int n) const;
};

/// Parses and binds each SQL string against `catalog`.
[[nodiscard]] Result<Workload> MakeWorkload(const CatalogReader& catalog,
                              const std::vector<std::string>& sqls);

/// Parses a semicolon-separated workload file (the GUI's "workload file"
/// input format; `--` comments allowed).
[[nodiscard]] Result<Workload> LoadWorkloadText(const CatalogReader& catalog,
                                  std::string_view text);

}  // namespace parinda

#endif  // PARINDA_WORKLOAD_WORKLOAD_H_
