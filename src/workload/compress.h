#ifndef PARINDA_WORKLOAD_COMPRESS_H_
#define PARINDA_WORKLOAD_COMPRESS_H_

#include <string>
#include <vector>

#include "workload/workload.h"

namespace parinda {

class CatalogReader;

/// Mapping between an original workload and its compressed (folded) view.
///
/// Engine costs are a pure function of (normalized query text, overlay
/// signature): two queries with identical `ToSql()` text over tables with
/// identical statistics cost the same under every design. Folding them into
/// one representative is therefore exact — the advisor evaluates the
/// representative once and expands the result back over the members.
///
/// All per-query report arrays and workload totals are accumulated over the
/// ORIGINAL queries in ascending order using the representative's unweighted
/// cost, so the floating-point addition sequence — and hence every reported
/// double, bit for bit — matches the uncompressed run.
struct WorkloadExpansion {
  /// representative[i] = compressed index whose evaluation covers original
  /// query i.
  std::vector<int> representative;
  /// members[c] = original indices folded into compressed query c
  /// (ascending).
  std::vector<std::vector<int>> members;
  /// Original per-query weights, parallel to `representative`.
  std::vector<double> weights;

  int original_size() const {
    return static_cast<int>(representative.size());
  }
};

/// A compressed workload: one representative per fold class, carrying the
/// summed weight of its members, plus the expansion mapping back to the
/// original queries.
struct CompressedWorkload {
  Workload workload;
  WorkloadExpansion expansion;
  int original_size = 0;

  /// Number of queries eliminated by folding.
  int folded() const {
    return original_size - static_cast<int>(workload.queries.size());
  }
  /// original/compressed query-count ratio (1.0 for an empty workload).
  double ratio() const {
    return workload.queries.empty()
               ? 1.0
               : static_cast<double>(original_size) /
                     static_cast<double>(workload.queries.size());
  }
};

/// The weight-independent fold key of one query: its normalized SQL text
/// plus a content fingerprint of the statistics of every table it touches
/// (row counts, pages, per-column null fraction / width / distincts /
/// correlation / MCVs / histogram bounds, hex-exact doubles). Identical
/// templates over different stats scopes get different keys and never fold.
std::string QueryFoldSignature(const CatalogReader& catalog,
                               const WorkloadQuery& query);

/// Folds queries with identical fold keys into one representative with
/// summed weight. Representatives keep first-occurrence order, so candidate
/// enumeration over the compressed workload visits the same queries in the
/// same order as the uncompressed run minus the duplicates.
CompressedWorkload CompressWorkload(const CatalogReader& catalog,
                                    const Workload& workload);

}  // namespace parinda

#endif  // PARINDA_WORKLOAD_COMPRESS_H_
