#include "workload/workload.h"

#include "parser/binder.h"
#include "parser/parser.h"

namespace parinda {

Workload Workload::Prefix(int n) const {
  Workload out;
  const int count = std::min<int>(n, size());
  out.queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    WorkloadQuery q;
    q.sql = queries[i].sql;
    q.stmt = queries[i].stmt.Clone();
    q.weight = queries[i].weight;
    out.queries.push_back(std::move(q));
  }
  return out;
}

Result<Workload> MakeWorkload(const CatalogReader& catalog,
                              const std::vector<std::string>& sqls) {
  Workload out;
  out.queries.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    WorkloadQuery q;
    q.sql = sql;
    PARINDA_ASSIGN_OR_RETURN(q.stmt, ParseSelect(sql));
    PARINDA_RETURN_IF_ERROR(BindStatement(catalog, &q.stmt));
    out.queries.push_back(std::move(q));
  }
  return out;
}

Result<Workload> LoadWorkloadText(const CatalogReader& catalog,
                                  std::string_view text) {
  PARINDA_ASSIGN_OR_RETURN(std::vector<SelectStatement> stmts,
                           ParseWorkload(text));
  Workload out;
  out.queries.reserve(stmts.size());
  for (SelectStatement& stmt : stmts) {
    WorkloadQuery q;
    q.sql = stmt.ToSql();
    q.stmt = std::move(stmt);
    PARINDA_RETURN_IF_ERROR(BindStatement(catalog, &q.stmt));
    out.queries.push_back(std::move(q));
  }
  return out;
}

}  // namespace parinda
